// End-to-end integration: one full trial per fault class, asserting the
// headline behaviour of Table 1 — MARS localizes the injected culprit
// within a small prefix of its ranked list, while the baselines show their
// documented blind spots (SpiderMon/IntSight never trigger on delay/drop).

#include "mars/scenario.hpp"

#include <gtest/gtest.h>

namespace mars {
namespace {

class ScenarioFaultTest
    : public ::testing::TestWithParam<faults::FaultKind> {};

TEST_P(ScenarioFaultTest, MarsLocalizesWithinTopFive) {
  // A few seeds: most trials must localize in the top 5. Single trials can
  // legitimately miss (the paper's own R@5 is not 100% either), and ECMP
  // imbalance is the hardest case in this reproduction (see
  // EXPERIMENTS.md): its observable effect is a moderate, slowly-building
  // queue shift that sits closest to the ambient noise floor.
  int hits = 0, trials = 0;
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    const auto cfg = default_scenario(GetParam(), seed);
    const auto result = run_scenario(cfg);
    if (!result.fault_injected) continue;
    ++trials;
    const auto& mars_outcome = result.outcome("mars");
    if (mars_outcome.rank && *mars_outcome.rank <= 5) ++hits;
  }
  ASSERT_GE(trials, 2);
  const int required =
      GetParam() == faults::FaultKind::kEcmpImbalance ? 1 : trials - 1;
  EXPECT_GE(hits, required)
      << "MARS localized only " << hits << "/" << trials << " trials";
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, ScenarioFaultTest,
    ::testing::Values(faults::FaultKind::kMicroBurst,
                      faults::FaultKind::kEcmpImbalance,
                      faults::FaultKind::kProcessRateDecrease,
                      faults::FaultKind::kDelay, faults::FaultKind::kDrop),
    [](const auto& info) {
      std::string name{faults::to_string(info.param)};
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScenarioTest, HealthyRunProducesNoDiagnosis) {
  auto cfg = default_scenario(faults::FaultKind::kDelay, 5);
  cfg.faults.events.clear();  // no fault ever fires within the trial
  cfg.duration = 4 * sim::kSecond;
  const auto result = run_scenario(cfg);
  EXPECT_TRUE(result.truths.empty());
  EXPECT_TRUE(result.outcome("mars").culprits.empty());
  EXPECT_GT(result.packets_injected, 0u);
}

TEST(ScenarioTest, SpiderMonAndIntSightMissDelayFault) {
  // Paper §5.4: both sense only queueing; a delay outside the queue never
  // triggers them ("-" cells in Table 1).
  const auto result =
      run_scenario(default_scenario(faults::FaultKind::kDelay, 31));
  ASSERT_TRUE(result.fault_injected);
  EXPECT_FALSE(result.outcome("spidermon").triggered);
  EXPECT_TRUE(result.outcome("spidermon").culprits.empty());
}

TEST(ScenarioTest, SynDbWithExpertHintLocalizesProcessRate) {
  const auto result = run_scenario(
      default_scenario(faults::FaultKind::kProcessRateDecrease, 17));
  ASSERT_TRUE(result.fault_injected);
  ASSERT_TRUE(result.outcome("syndb").rank.has_value());
  EXPECT_LE(*result.outcome("syndb").rank, 3u);
}

TEST(ScenarioTest, MarsDiagnosisBandwidthBelowSynDb) {
  // Fig. 9: SyNDB streams every p-record; MARS drains edge ring tables on
  // demand. Orders of magnitude apart.
  const auto result = run_scenario(
      default_scenario(faults::FaultKind::kProcessRateDecrease, 29));
  EXPECT_LT(result.outcome("mars").diagnosis_bytes,
            result.outcome("syndb").diagnosis_bytes / 10);
}

TEST(ScenarioTest, MarsTelemetryBandwidthBelowIntSight) {
  // IntSight's 33B header on every packet dwarfs MARS's 1B PathID + 11B
  // on one sampled packet per flow-epoch.
  const auto result = run_scenario(
      default_scenario(faults::FaultKind::kMicroBurst, 37));
  EXPECT_LT(result.outcome("mars").telemetry_bytes,
            result.outcome("intsight").telemetry_bytes);
}

TEST(ScenarioTest, DeterministicInSeed) {
  const auto a = run_scenario(
      default_scenario(faults::FaultKind::kProcessRateDecrease, 99));
  const auto b = run_scenario(
      default_scenario(faults::FaultKind::kProcessRateDecrease, 99));
  ASSERT_EQ(a.fault_injected, b.fault_injected);
  EXPECT_EQ(a.truth().switch_id, b.truth().switch_id);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  const auto& ac = a.outcome("mars").culprits;
  const auto& bc = b.outcome("mars").culprits;
  ASSERT_EQ(ac.size(), bc.size());
  for (std::size_t i = 0; i < ac.size(); ++i) {
    EXPECT_EQ(ac[i].describe(), bc[i].describe());
  }
}

TEST(ScenarioTest, PacketConservationHolds) {
  const auto result =
      run_scenario(default_scenario(faults::FaultKind::kDrop, 41));
  const auto& st = result.net_stats;
  // injected = delivered + dropped + unroutable + in-flight-at-end; the
  // in-flight remainder is bounded by a tiny number of packets.
  EXPECT_LE(st.delivered + st.dropped + st.unroutable, st.injected);
  EXPECT_GE(st.delivered + st.dropped + st.unroutable + 100, st.injected);
  EXPECT_GT(st.dropped, 0u);  // the drop fault did drop packets
}

}  // namespace
}  // namespace mars
