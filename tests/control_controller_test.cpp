#include "control/controller.hpp"

#include <gtest/gtest.h>

#include "control/path_registry.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mars::control {
namespace {

using namespace mars::sim::literals;

struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  PathRegistry registry{ft.topology, net.routing(), {}};
  dataplane::MarsPipeline pipeline;
  Controller controller;
  std::vector<DiagnosisData> diagnoses;

  Fixture()
      : pipeline(ft.topology.switch_count(), make_pipeline_config(),
                 [this](const dataplane::Notification& n) {
                   controller.on_notification(n);
                 }),
        controller(net, pipeline, make_controller_config()) {
    pipeline.set_control_mat(registry.mat());
    net.add_observer(pipeline);
    controller.set_diagnosis_callback(
        [this](const DiagnosisData& d) { diagnoses.push_back(d); });
    controller.start();
  }

  static dataplane::PipelineConfig make_pipeline_config() {
    dataplane::PipelineConfig cfg;
    cfg.epoch_period = 50_ms;
    return cfg;
  }

  static ControllerConfig make_controller_config() {
    ControllerConfig cfg;
    cfg.poll_interval = 50_ms;
    cfg.reservoir.warmup = 8;
    cfg.reservoir.volume = 64;
    // Synchronous collection keeps these unit tests direct; the delayed
    // (posterior) collection has its own test below.
    cfg.collection_delay = 0;
    return cfg;
  }

  void traffic(net::FlowId flow, std::uint32_t hash, int count,
               sim::Time gap, sim::Time start = 0) {
    for (int i = 0; i < count; ++i) {
      sim.schedule_in(start + gap * i, [this, flow, hash] {
        net.inject(flow, hash, 500);
      });
    }
  }
};

TEST(ControllerTest, PollingWarmsReservoirAndInstallsThreshold) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.traffic(flow, 3, 200, 5_ms);  // 1s of traffic -> 20 epochs of telemetry
  f.sim.run(2_s);  // bounded: the controller polls forever by design
  const auto* res = f.controller.reservoir(flow);
  ASSERT_NE(res, nullptr);
  EXPECT_TRUE(res->warmed_up());
  // The installed threshold replaced the 10s default.
  EXPECT_LT(f.pipeline.threshold(flow), 1_s);
  EXPECT_GT(f.pipeline.threshold(flow), 0);
  EXPECT_GT(f.controller.overheads().poll_bytes, 0u);
}

TEST(ControllerTest, DynamicThresholdCatchesInjectedCongestion) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  // Warm up with healthy traffic.
  f.traffic(flow, 3, 400, 5_ms);
  f.sim.run(2_s);
  ASSERT_TRUE(f.controller.reservoir(flow) != nullptr &&
              f.controller.reservoir(flow)->warmed_up());
  EXPECT_EQ(f.diagnoses.size(), 0u);  // healthy: no diagnosis sessions

  // Now throttle the egress port: queueing delay blows past the dynamic
  // threshold and the data plane notifies the controller.
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 3, out));
  f.net.node(flow.source).set_max_pps(out, 40.0);
  f.traffic(flow, 3, 200, 5_ms, 10_ms);
  f.sim.run(f.sim.now() + 8_s);
  EXPECT_GE(f.diagnoses.size(), 1u);
  EXPECT_FALSE(f.diagnoses[0].records.empty());
}

TEST(ControllerTest, DiagnosisCollectsOnlyEdgeSwitchData) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  f.traffic(flow, 3, 100, 5_ms);
  f.sim.run(1_s);  // bounded: polling reschedules forever
  // Force a diagnosis.
  dataplane::Notification n;
  n.kind = dataplane::Notification::Kind::kHighLatency;
  n.flow = flow;
  n.when = f.sim.now();
  f.controller.on_notification(n);
  ASSERT_EQ(f.diagnoses.size(), 1u);
  // Every record came from an edge switch's ring table (sinks are edges).
  for (const auto& rec : f.diagnoses[0].records) {
    EXPECT_EQ(f.ft.topology.layer(rec.flow.sink), net::Layer::kEdge);
  }
  EXPECT_GT(f.controller.overheads().diagnosis_bytes, 0u);
}

TEST(ControllerTest, ResponseWindowRateLimitsDiagnoses) {
  Fixture f;
  dataplane::Notification n;
  n.kind = dataplane::Notification::Kind::kHighLatency;
  n.when = f.sim.now();
  for (int i = 0; i < 10; ++i) f.controller.on_notification(n);
  EXPECT_EQ(f.controller.overheads().diagnoses, 1u);
  EXPECT_EQ(f.controller.overheads().notifications_suppressed, 9u);
}

TEST(ControllerTest, DelayedCollectionFoldsLaterNotifications) {
  Fixture f;
  // Re-wire a controller with posterior collection.
  ControllerConfig cfg = Fixture::make_controller_config();
  cfg.collection_delay = 200_ms;
  Controller delayed(f.net, f.pipeline, cfg);
  std::vector<DiagnosisData> sessions;
  delayed.set_diagnosis_callback(
      [&](const DiagnosisData& d) { sessions.push_back(d); });

  dataplane::Notification first;
  first.kind = dataplane::Notification::Kind::kDrop;
  first.when = f.sim.now();
  delayed.on_notification(first);
  // A different-kind notification arrives while collection is pending.
  f.sim.schedule_in(50_ms, [&] {
    dataplane::Notification second;
    second.kind = dataplane::Notification::Kind::kHighLatency;
    second.when = f.sim.now();
    delayed.on_notification(second);
  });
  f.sim.run(1_s);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].notifications.size(), 2u);
  EXPECT_TRUE(sessions[0].saw(dataplane::Notification::Kind::kDrop));
  EXPECT_TRUE(sessions[0].saw(dataplane::Notification::Kind::kHighLatency));
}

TEST(ControllerTest, ThresholdSnapshotTravelsWithDiagnosis) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.traffic(flow, 3, 300, 5_ms);
  f.sim.run(2_s);
  dataplane::Notification n;
  n.kind = dataplane::Notification::Kind::kHighLatency;
  n.flow = flow;
  n.when = f.sim.now();
  f.controller.on_notification(n);
  ASSERT_EQ(f.diagnoses.size(), 1u);
  EXPECT_TRUE(f.diagnoses[0].thresholds.count(flow));
  // is_abnormal honours the snapshot.
  telemetry::RtRecord rec;
  rec.flow = flow;
  rec.latency = f.diagnoses[0].thresholds.at(flow) + 1;
  EXPECT_TRUE(f.diagnoses[0].is_abnormal(rec));
  rec.latency = f.diagnoses[0].thresholds.at(flow) - 1;
  EXPECT_FALSE(f.diagnoses[0].is_abnormal(rec));
}

}  // namespace
}  // namespace mars::control
