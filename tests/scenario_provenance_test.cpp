// End-to-end ops plane: the diagnosis provenance DAG is closed (no
// dangling refs, every suspect reachable from an abnormal epoch) and
// attributes the injected fault to a ranked suspect on every clean fault
// kind; the structured event log captures the trial lifecycle; the flight
// recorder dumps on a low-confidence lossy-telemetry diagnosis.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "mars/scenario.hpp"
#include "mars/scenario_spec.hpp"

namespace mars {
namespace {

using NodeKind = obs::ProvenanceGraph::NodeKind;

ScenarioConfig mars_only(faults::FaultKind kind, std::uint64_t seed) {
  ScenarioConfig cfg = default_scenario(kind, seed);
  cfg.systems = {"mars"};
  cfg.obs.provenance = true;
  return cfg;
}

bool reachable_contains(const std::vector<std::string>& reached,
                        const std::string& id) {
  return std::find(reached.begin(), reached.end(), id) != reached.end();
}

class ProvenanceFaultTest
    : public ::testing::TestWithParam<faults::FaultKind> {};

TEST_P(ProvenanceFaultTest, GraphIsClosedAndAttributesTheFault) {
  bool attributed = false;
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    Observability obs;
    ScenarioConfig cfg = mars_only(GetParam(), seed);
    cfg.observability = &obs;
    const ScenarioResult result = run_scenario(cfg);
    if (!result.fault_injected) continue;

    const SystemOutcome& outcome = result.outcome("mars");
    ASSERT_EQ(outcome.provenance, &obs.provenance);
    const obs::ProvenanceGraph& g = obs.provenance;

    // Closure: every edge endpoint resolves, and every ranked suspect is
    // evidence-backed — reachable from at least one abnormal epoch.
    EXPECT_TRUE(g.validate().empty());
    if (!outcome.culprits.empty()) {
      EXPECT_FALSE(g.nodes_of(NodeKind::kEpoch).empty());
      const auto reached = g.reachable_from(NodeKind::kEpoch);
      for (const auto* suspect : g.nodes_of(NodeKind::kSuspect)) {
        EXPECT_TRUE(reachable_contains(reached, suspect->id))
            << suspect->id << " not reachable from any abnormal epoch";
      }
    }

    // One fault node per scheduled injection, regardless of diagnosis.
    EXPECT_EQ(g.nodes_of(NodeKind::kFault).size(), result.truths.size());

    // Attribution: when MARS ranked the truth, a fault node carries a
    // "manifested_as" edge to a suspect annotated with that final rank.
    if (!outcome.rank.has_value()) continue;
    for (const auto& edge : g.edges()) {
      if (edge.relation != "manifested_as") continue;
      const obs::ProvenanceGraph::Node* to = g.find(edge.to);
      ASSERT_NE(to, nullptr);
      EXPECT_EQ(to->kind, NodeKind::kSuspect);
      for (const auto& field : to->fields) {
        if (field.key == "final_rank" &&
            static_cast<std::uint64_t>(field.number) == *outcome.rank) {
          attributed = true;
        }
      }
    }
    if (attributed) break;  // one attributed seed per kind is the contract
  }
  EXPECT_TRUE(attributed)
      << "no seed produced a fault-attributed ranked suspect";
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, ProvenanceFaultTest,
    ::testing::Values(faults::FaultKind::kMicroBurst,
                      faults::FaultKind::kEcmpImbalance,
                      faults::FaultKind::kProcessRateDecrease,
                      faults::FaultKind::kDelay, faults::FaultKind::kDrop),
    [](const auto& info) {
      std::string name{faults::to_string(info.param)};
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScenarioProvenanceTest, GraphExportIsDeterministic) {
  auto render = [] {
    Observability obs;
    ScenarioConfig cfg =
        mars_only(faults::FaultKind::kProcessRateDecrease, 11);
    cfg.observability = &obs;
    (void)run_scenario(cfg);
    std::ostringstream out;
    obs.provenance.write_json(out);
    return out.str();
  };
  const std::string a = render();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, render());
}

TEST(ScenarioProvenanceTest, DisabledProvenanceLeavesGraphEmpty) {
  Observability obs;
  ScenarioConfig cfg =
      default_scenario(faults::FaultKind::kProcessRateDecrease, 11);
  cfg.systems = {"mars"};
  cfg.observability = &obs;  // obs on, provenance off
  const ScenarioResult result = run_scenario(cfg);
  EXPECT_TRUE(obs.provenance.empty());
  EXPECT_EQ(result.outcome("mars").provenance, nullptr);
}

TEST(ScenarioProvenanceTest, EventLogCapturesTrialLifecycle) {
  Observability obs;
  ScenarioConfig cfg =
      mars_only(faults::FaultKind::kProcessRateDecrease, 11);
  cfg.obs.log_level = obs::LogLevel::kDebug;
  cfg.observability = &obs;
  (void)run_scenario(cfg);

  auto has = [&](const char* component, const char* event) {
    for (const auto& e : obs.log.events()) {
      if (e.component == component && e.event == event) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("scenario", "start"));
  EXPECT_TRUE(has("scenario", "complete"));
  EXPECT_TRUE(has("injector", "fault_injected"));
  EXPECT_TRUE(has("mars", "diagnosis_complete"));
}

TEST(ScenarioProvenanceTest, FlightRecorderDumpsOnLossyLowConfidence) {
  // The lossy-telemetry chaos scenario (scenarios/lossy_telemetry.json)
  // completes its diagnosis with confidence ~0.99; a threshold of 1.0
  // makes any degradation-lowered confidence dump the black box.
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "name": "lossy-flight",
    "topology": {"name": "fat-tree", "k": 4},
    "seed": 7,
    "systems": ["mars"],
    "channel": {
      "notification_loss": 0.2,
      "read_failure": 0.1,
      "record_loss": 0.05,
      "record_corruption": 0.02
    },
    "faults": [{"kind": "rate", "at_s": 3.0}],
    "obs": {
      "log_level": "debug",
      "flight_recorder": {"enabled": true, "confidence_threshold": 1.0}
    }
  })");
  ASSERT_TRUE(spec.validate().empty());

  Observability obs;
  ScenarioConfig cfg = spec.to_config();
  cfg.observability = &obs;
  const ScenarioResult result = run_scenario(cfg);
  ASSERT_TRUE(result.fault_injected);

  EXPECT_GE(obs.recorder.triggers_total(), 1u);
  ASSERT_FALSE(obs.recorder.dumps().empty());
  const auto& dump = obs.recorder.dumps().front();
  EXPECT_EQ(dump.reason, "low_confidence");
  EXPECT_FALSE(dump.events.empty());

  // The degraded channel leaves its marks in the retained log too: the
  // controller logs its read failures / quarantines at warn.
  bool degradation_logged = false;
  for (const auto& e : obs.log.events()) {
    if (e.component == "controller" && e.level == obs::LogLevel::kWarn) {
      degradation_logged = true;
    }
  }
  EXPECT_TRUE(degradation_logged);
}

}  // namespace
}  // namespace mars
