// Degraded-telemetry robustness: determinism of chaos runs, retry/backoff
// behaviour, partial-data diagnosis, and the confidence invariants under
// a randomized soak.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mars/mars.hpp"
#include "mars/scenario.hpp"
#include "mars/sweep.hpp"
#include "net/fat_tree.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic_gen.hpp"

namespace mars {
namespace {

using namespace mars::sim::literals;

ScenarioConfig lossy_config(std::uint64_t seed, double notification_loss,
                            double read_failure, double record_loss = 0.0,
                            double record_corruption = 0.0) {
  ScenarioConfig cfg =
      default_scenario(faults::FaultKind::kProcessRateDecrease, seed);
  cfg.systems = {"mars"};
  cfg.mars.channel.notification_loss = notification_loss;
  cfg.mars.channel.read_failure = read_failure;
  cfg.mars.channel.record_loss = record_loss;
  cfg.mars.channel.record_corruption = record_corruption;
  return cfg;
}

TEST(RobustnessTest, FixedSeedChaosRunsAreBitIdentical) {
  const ScenarioConfig cfg = lossy_config(7, 0.2, 0.1, 0.05, 0.02);
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.net_stats.delivered, b.net_stats.delivered);
  const SystemOutcome& oa = a.outcome("mars");
  const SystemOutcome& ob = b.outcome("mars");
  EXPECT_EQ(oa.rank, ob.rank);
  EXPECT_EQ(oa.diagnosis_bytes, ob.diagnosis_bytes);
  EXPECT_EQ(oa.confidence, ob.confidence);
  ASSERT_EQ(oa.culprits.size(), ob.culprits.size());
  for (std::size_t i = 0; i < oa.culprits.size(); ++i) {
    EXPECT_EQ(oa.culprits[i].describe(), ob.culprits[i].describe());
  }
}

TEST(RobustnessTest, DifferentTrialSeedsSeeDifferentChaos) {
  // The trial seed is mixed into the channel seed: two trials that differ
  // only in seed must not replay the same drop pattern (decorrelation).
  const ScenarioResult a = run_scenario(lossy_config(1, 0.3, 0.2));
  const ScenarioResult b = run_scenario(lossy_config(2, 0.3, 0.2));
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(RobustnessTest, SweepThreadCountDoesNotChangeChaosOutcomes) {
  std::vector<SweepPoint> points;
  for (std::uint64_t seed = 11; seed < 17; ++seed) {
    SweepPoint point;
    point.config = lossy_config(seed, 0.25, 0.15, 0.1, 0.05);
    point.label = "chaos/seed=" + std::to_string(seed);
    points.push_back(std::move(point));
  }
  const SweepResult serial = run_sweep(points, {.threads = 1});
  const SweepResult parallel = run_sweep(points, {.threads = 4});
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    const ScenarioResult& s = serial.trials[i].result;
    const ScenarioResult& p = parallel.trials[i].result;
    EXPECT_EQ(s.events_executed, p.events_executed) << points[i].label;
    EXPECT_EQ(s.outcome("mars").rank, p.outcome("mars").rank)
        << points[i].label;
    EXPECT_EQ(s.outcome("mars").confidence, p.outcome("mars").confidence)
        << points[i].label;
  }
}

TEST(RobustnessTest, TotalReadOutageYieldsZeroCoveragePartialSessions) {
  ScenarioConfig cfg = lossy_config(5, 0.0, 1.0);  // every drain read fails
  const ScenarioResult result = run_scenario(cfg);
  const SystemOutcome& mars = result.outcome("mars");
  // The controller still runs RCA on zero records without crashing; any
  // session it produced has no evidence behind it.
  if (mars.confidence) {
    EXPECT_DOUBLE_EQ(*mars.confidence, 0.0);
  }
}

TEST(RobustnessTest, PerfectChannelReportsFullConfidence) {
  const ScenarioResult result =
      run_scenario(lossy_config(7, 0.0, 0.0));  // perfect
  const SystemOutcome& mars = result.outcome("mars");
  ASSERT_TRUE(mars.triggered);
  ASSERT_TRUE(mars.confidence.has_value());
  EXPECT_DOUBLE_EQ(*mars.confidence, 1.0);
}

// The MarsSystem-level soak drives aggressive chaos across many seeds and
// checks the hard invariants: no crash, the run ends (no hang past the
// horizon), confidence stays in [0, 1], and confidence == 1 exactly when
// the controller observed zero degradation. (Silently corrupted records —
// plausible garbage — are invisible by construction and cannot lower
// confidence; the quarantine counters only see detectable damage.)
TEST(RobustnessTest, AggressiveChaosSoakHoldsInvariants) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    sim::Simulator sim;
    net::FatTree ft = net::build_fat_tree(
        {.k = 4, .edge_agg_gbps = 0.007, .agg_core_gbps = 0.010});
    net::Network net{sim, ft.topology};
    for (net::SwitchId sw = 0; sw < net.switch_count(); ++sw) {
      net.node(sw).set_queue_capacity(4096);
    }
    MarsConfig cfg;
    cfg.controller.reservoir.warmup = 12;
    cfg.controller.reservoir.relative_margin = 0.3;
    cfg.channel.notification_loss = 0.5;
    cfg.channel.notification_delay_prob = 0.3;
    cfg.channel.read_failure = 0.5;
    cfg.channel.record_loss = 0.3;
    cfg.channel.record_corruption = 0.3;
    cfg.channel.seed = seed * 7919;
    MarsSystem mars{net, cfg};
    mars.start();

    workload::TrafficGenerator traffic(net, seed);
    workload::BackgroundConfig bg;
    bg.flows = 24;
    traffic.add_background(bg, ft.edge, 4);
    traffic.start();
    const auto& spec = traffic.flows().front();
    net::PortId out = 0;
    ASSERT_TRUE(net.routing().select_port(spec.flow.source, spec.flow.sink,
                                          spec.flow_hash, out));
    sim.schedule_at(3_s, [&net, &spec, out] {
      net.node(spec.flow.source).set_max_pps(out, 60.0);
    });

    sim.run(6_s);  // returns: no hang past the horizon
    EXPECT_GT(sim.events_executed(), 0u) << "seed " << seed;
    EXPECT_LE(sim.now(), 6_s) << "seed " << seed;

    const auto confidence = mars.confidence();
    bool any_degraded = false;
    for (const auto& d : mars.diagnoses()) {
      const auto& q = d.session.quality;
      EXPECT_GE(q.confidence(), 0.0) << "seed " << seed;
      EXPECT_LE(q.confidence(), 1.0) << "seed " << seed;
      EXPECT_LE(q.switches_drained, q.switches_total) << "seed " << seed;
      if (q.degraded()) any_degraded = true;
      EXPECT_EQ(q.confidence() == 1.0, !q.degraded()) << "seed " << seed;
    }
    if (confidence) {
      EXPECT_GE(*confidence, 0.0) << "seed " << seed;
      EXPECT_LE(*confidence, 1.0) << "seed " << seed;
      EXPECT_EQ(*confidence == 1.0, !any_degraded) << "seed " << seed;
      EXPECT_EQ(mars.controller().overheads().partial_sessions > 0,
                any_degraded)
          << "seed " << seed;
    }
  }
}

// Retry/backoff accounting: with reads failing often, the controller must
// log retry rounds, and abandoned drains only after the bounded retries.
TEST(RobustnessTest, RetriesAreBoundedAndAccounted) {
  ScenarioConfig cfg = lossy_config(3, 0.0, 0.6);
  cfg.mars.controller.max_read_retries = 2;
  const ScenarioResult result = run_scenario(cfg);
  (void)result;
  // Accounting is visible through the obs gauges in scenario runs; here we
  // check the controller directly on a hand-wired system.
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  MarsConfig mc;
  mc.channel.read_failure = 0.6;
  mc.controller.max_read_retries = 2;
  mc.controller.collection_delay = 0;
  MarsSystem mars{net, mc};
  dataplane::Notification n;
  n.kind = dataplane::Notification::Kind::kHighLatency;
  n.when = sim.now();
  mars.controller().on_notification(n);
  sim.run(10_s);  // let retry rounds play out
  const auto& oh = mars.controller().overheads();
  EXPECT_EQ(oh.diagnoses, 1u);
  EXPECT_GT(oh.drain_read_failures, 0u);
  // Each failed switch was retried at most max_read_retries times.
  EXPECT_LE(oh.drain_retry_rounds, 2u);
  ASSERT_EQ(mars.controller().sessions().size(), 1u);
  const auto& q = mars.controller().sessions().front().quality;
  EXPECT_EQ(q.switches_total, 8u);  // K=4 fat-tree edge switches
  EXPECT_EQ(q.switches_drained + oh.drains_abandoned, q.switches_total);
}

}  // namespace
}  // namespace mars
