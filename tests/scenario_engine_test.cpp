// The declarative experiment engine: topology/system registries,
// up-front scenario validation, multi-fault schedules, and the
// leaf-spine end-to-end path.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "mars/scenario.hpp"
#include "mars/system_registry.hpp"
#include "net/topology_registry.hpp"

namespace mars {
namespace {

using sim::kSecond;

// ---------------------------------------------------------------- registries

TEST(TopologyRegistryTest, BuiltinsAreRegistered) {
  const auto names = net::TopologyRegistry::instance().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "fat-tree"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "leaf-spine"), names.end());
  EXPECT_TRUE(net::TopologyRegistry::instance().contains("fat-tree"));
  EXPECT_FALSE(net::TopologyRegistry::instance().contains("torus"));
}

TEST(TopologyRegistryTest, UnknownNameListsKnownOnes) {
  net::TopologySpec spec;
  spec.name = "torus";
  const auto errors = net::TopologyRegistry::instance().validate(spec);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("torus"), std::string::npos);
  EXPECT_NE(errors.front().find("fat-tree"), std::string::npos);
  EXPECT_THROW((void)net::TopologyRegistry::instance().build(spec),
               std::invalid_argument);
}

TEST(TopologyRegistryTest, FatTreeRejectsOddOrTinyArity) {
  net::TopologySpec spec;
  spec.k = 5;
  EXPECT_FALSE(net::TopologyRegistry::instance().validate(spec).empty());
  spec.k = 2;
  EXPECT_FALSE(net::TopologyRegistry::instance().validate(spec).empty());
  spec.k = 4;
  EXPECT_TRUE(net::TopologyRegistry::instance().validate(spec).empty());
}

TEST(TopologyRegistryTest, RejectsNonPositiveLinkRates) {
  net::TopologySpec spec;
  spec.edge_gbps = 0.0;
  EXPECT_FALSE(net::TopologyRegistry::instance().validate(spec).empty());
  spec.edge_gbps = 10.0;
  spec.core_gbps = -1.0;
  EXPECT_FALSE(net::TopologyRegistry::instance().validate(spec).empty());
}

TEST(TopologyRegistryTest, BuildsLeafSpineWithRoleMetadata) {
  net::TopologySpec spec;
  spec.name = "leaf-spine";
  spec.leaves = 6;
  spec.spines = 3;
  const auto fabric = net::TopologyRegistry::instance().build(spec);
  EXPECT_EQ(fabric.edge.size(), 6u);
  EXPECT_EQ(fabric.core.size(), 3u);
  EXPECT_EQ(fabric.pods, 1);
  EXPECT_EQ(fabric.topology.switch_count(), 9u);
}

TEST(SystemRegistryTest, AllFourPaperSystemsRegistered) {
  const auto names = SystemRegistry::instance().names();
  for (const char* expected : {"mars", "spidermon", "intsight", "syndb"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_FALSE(SystemRegistry::instance().contains("netsight"));
}

// ---------------------------------------------------------------- validation

TEST(ScenarioValidationTest, DefaultScenarioIsValid) {
  const auto cfg =
      default_scenario(faults::FaultKind::kProcessRateDecrease, 1);
  EXPECT_TRUE(validate_scenario(cfg).empty());
}

TEST(ScenarioValidationTest, RejectsOddFatTreeArity) {
  auto cfg = default_scenario(faults::FaultKind::kDrop, 1);
  cfg.topology.k = 5;
  EXPECT_FALSE(validate_scenario(cfg).empty());
}

TEST(ScenarioValidationTest, RejectsFaultAtOrPastDuration) {
  auto cfg = default_scenario(faults::FaultKind::kDrop, 1);
  cfg.faults = faults::FaultSchedule::single(faults::FaultKind::kDrop,
                                             cfg.duration);
  const auto errors = validate_scenario(cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("past the scenario duration"),
            std::string::npos);
}

TEST(ScenarioValidationTest, RejectsZeroQueueCapacity) {
  auto cfg = default_scenario(faults::FaultKind::kDrop, 1);
  cfg.queue_capacity = 0;
  EXPECT_FALSE(validate_scenario(cfg).empty());
}

TEST(ScenarioValidationTest, RejectsNonPositiveFlowRate) {
  auto cfg = default_scenario(faults::FaultKind::kDrop, 1);
  cfg.background.pps = 0.0;
  EXPECT_FALSE(validate_scenario(cfg).empty());
}

TEST(ScenarioValidationTest, RejectsUnknownAndDuplicateSystems) {
  auto cfg = default_scenario(faults::FaultKind::kDrop, 1);
  cfg.systems = {"mars", "netsight", "mars"};
  const auto errors = validate_scenario(cfg);
  ASSERT_GE(errors.size(), 2u);
  bool unknown = false, duplicate = false;
  for (const auto& e : errors) {
    if (e.find("netsight") != std::string::npos) unknown = true;
    if (e.find("more than once") != std::string::npos) duplicate = true;
  }
  EXPECT_TRUE(unknown);
  EXPECT_TRUE(duplicate);
}

TEST(ScenarioValidationTest, RejectsPinnedPortWithoutSwitch) {
  auto cfg = default_scenario(faults::FaultKind::kDrop, 1);
  cfg.faults.events.front().target_port = 1;
  EXPECT_FALSE(validate_scenario(cfg).empty());
}

TEST(ScenarioValidationTest, RejectsOutOfRangePathIdWidth) {
  auto cfg = default_scenario(faults::FaultKind::kDrop, 1);
  cfg.mars.pipeline.path_id.width_bits = 33;
  const auto errors = validate_scenario(cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("path_id.width_bits"), std::string::npos);
}

TEST(ScenarioValidationTest, RejectsNonConflictFreePathIdRegistry) {
  // 6-bit ids cannot cover the K=4 fat-tree's 208 paths, so the registry
  // audit is not conflict-free and deployment must be refused up front —
  // an ambiguous PathID would decompress diagnoses to the wrong path.
  auto cfg = default_scenario(faults::FaultKind::kDrop, 1);
  cfg.mars.pipeline.path_id = {telemetry::HashKind::kCrc16, 6};
  const auto errors = validate_scenario(cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("not conflict-free"), std::string::npos);
  EXPECT_NE(errors.front().find("pigeonhole"), std::string::npos);
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);

  // Without MARS deployed the PathID shape is irrelevant: no rejection.
  cfg.systems = {"syndb"};
  EXPECT_TRUE(validate_scenario(cfg).empty());
}

TEST(ScenarioValidationTest, RunScenarioThrowsOnInvalidConfig) {
  auto cfg = default_scenario(faults::FaultKind::kDrop, 1);
  cfg.queue_capacity = 0;
  cfg.systems = {"netsight"};
  try {
    (void)run_scenario(cfg);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("queue capacity"), std::string::npos) << what;
    EXPECT_NE(what.find("netsight"), std::string::npos) << what;
  }
}

// ------------------------------------------------------------ fault schedules

TEST(FaultScheduleTest, OverlappingFaultsAreDeterministicInSeed) {
  // Two overlapping faults of different kinds; the same seed must yield
  // the same event count, the same truths, and the same ranked culprits.
  auto make = [] {
    auto cfg = default_scenario(faults::FaultKind::kProcessRateDecrease, 13);
    cfg.faults = {};
    faults::FaultEvent rate;
    rate.kind = faults::FaultKind::kProcessRateDecrease;
    rate.at = 2 * kSecond;
    rate.duration = 2 * kSecond;
    cfg.faults.add(rate);
    faults::FaultEvent drop;
    drop.kind = faults::FaultKind::kDrop;
    drop.at = 3 * kSecond;  // overlaps the rate fault
    cfg.faults.add(drop);
    return cfg;
  };
  const auto a = run_scenario(make());
  const auto b = run_scenario(make());

  ASSERT_EQ(a.truths.size(), 2u);
  ASSERT_EQ(b.truths.size(), 2u);
  EXPECT_EQ(a.events_executed, b.events_executed);
  for (std::size_t i = 0; i < a.truths.size(); ++i) {
    EXPECT_EQ(a.truths[i].describe(), b.truths[i].describe());
  }
  const auto& ac = a.outcome("mars");
  const auto& bc = b.outcome("mars");
  ASSERT_EQ(ac.culprits.size(), bc.culprits.size());
  for (std::size_t i = 0; i < ac.culprits.size(); ++i) {
    EXPECT_EQ(ac.culprits[i].describe(), bc.culprits[i].describe());
  }
  EXPECT_EQ(ac.ranks, bc.ranks);
  // Every outcome carries one rank slot per ground truth.
  for (const auto& outcome : a.systems) {
    EXPECT_EQ(outcome.ranks.size(), a.truths.size());
  }
}

TEST(FaultScheduleTest, PinnedTargetIsHonoured) {
  auto cfg = default_scenario(faults::FaultKind::kProcessRateDecrease, 3);
  cfg.faults.events.front().target_switch = 2;
  cfg.faults.events.front().target_port = 0;
  const auto result = run_scenario(cfg);
  ASSERT_TRUE(result.fault_injected);
  EXPECT_EQ(result.truth().switch_id, 2u);
  EXPECT_EQ(result.truth().port, 0u);
}

TEST(FaultScheduleTest, SubsetDeploymentGradesOnlyNamedSystems) {
  auto cfg = default_scenario(faults::FaultKind::kProcessRateDecrease, 5);
  cfg.systems = {"mars", "syndb"};
  const auto result = run_scenario(cfg);
  ASSERT_EQ(result.systems.size(), 2u);
  EXPECT_EQ(result.systems[0].system, "mars");
  EXPECT_EQ(result.systems[1].system, "syndb");
  EXPECT_EQ(result.find("spidermon"), nullptr);
  EXPECT_THROW((void)result.outcome("spidermon"), std::out_of_range);
}

// --------------------------------------------------------------- leaf-spine

TEST(LeafSpineScenarioTest, EndToEndLocalizesProcessRateFault) {
  auto cfg = default_scenario(faults::FaultKind::kProcessRateDecrease, 11);
  cfg.topology.name = "leaf-spine";
  cfg.topology.leaves = 8;
  cfg.topology.spines = 4;
  cfg.topology.edge_gbps = 0.007;
  cfg.topology.core_gbps = 0.010;
  const auto result = run_scenario(cfg);
  ASSERT_TRUE(result.fault_injected);
  EXPECT_GT(result.packets_injected, 0u);
  EXPECT_GT(result.net_stats.delivered, 0u);
  // At least one system pins the culprit in its top five on this seed.
  bool localized = false;
  for (const auto& outcome : result.systems) {
    if (outcome.rank && *outcome.rank <= 5) localized = true;
  }
  EXPECT_TRUE(localized);
}

TEST(LeafSpineScenarioTest, DeterministicInSeed) {
  auto make = [] {
    auto cfg = default_scenario(faults::FaultKind::kDrop, 19);
    cfg.topology.name = "leaf-spine";
    cfg.topology.edge_gbps = 0.007;
    cfg.topology.core_gbps = 0.010;
    return cfg;
  };
  const auto a = run_scenario(make());
  const auto b = run_scenario(make());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.net_stats.delivered, b.net_stats.delivered);
  EXPECT_EQ(a.outcome("mars").rank, b.outcome("mars").rank);
}

}  // namespace
}  // namespace mars
