#include "telemetry/int_md.hpp"

#include <gtest/gtest.h>

#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mars::telemetry {
namespace {

using namespace mars::sim::literals;

struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  IntMdPipeline pipeline;

  explicit Fixture(IntMdConfig cfg = {}) : pipeline(cfg) {
    net.add_observer(pipeline);
  }

  void traffic(net::FlowId flow, std::uint32_t hash, int count,
               sim::Time gap) {
    for (int i = 0; i < count; ++i) {
      sim.schedule_in(gap * i,
                      [this, flow, hash] { net.inject(flow, hash, 600); });
    }
  }
};

TEST(IntMdTest, RecordsEveryHopInOrder) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};  // 5-switch path
  f.traffic(flow, 77, 3, 1_ms);
  f.sim.run();
  ASSERT_EQ(f.pipeline.records().size(), 3u);
  for (const auto& rec : f.pipeline.records()) {
    ASSERT_EQ(rec.hops.size(), 5u);
    EXPECT_EQ(rec.hops.front().sw, flow.source);
    EXPECT_EQ(rec.hops.back().sw, flow.sink);
    EXPECT_EQ(rec.hops.back().out_port, net::kHostPort);
    for (std::size_t h = 0; h + 1 < rec.hops.size(); ++h) {
      EXPECT_GT(rec.hops[h].hop_latency, 0);
    }
  }
}

TEST(IntMdTest, HeaderBytesGrowWithPathLength) {
  Fixture intra;
  const net::FlowId short_flow{intra.ft.edge[0], intra.ft.edge[1]};  // 3 sw
  intra.traffic(short_flow, 5, 10, 1_ms);
  intra.sim.run();
  const auto short_bytes = intra.pipeline.telemetry_bytes();

  Fixture inter;
  const net::FlowId long_flow{inter.ft.edge[0], inter.ft.edge[4]};  // 5 sw
  inter.traffic(long_flow, 5, 10, 1_ms);
  inter.sim.run();
  // Same packet count, longer paths: strictly more in-band bytes — the
  // Fig. 3 motivation for fixed-width PathIDs.
  EXPECT_GT(inter.pipeline.telemetry_bytes(), short_bytes);
  // Exact accounting for the short path: per packet, 2 recorded links
  // carrying shim + stack of 1 then 2 entries.
  EXPECT_EQ(short_bytes, 10u * (12 + 8 + 12 + 16));
}

TEST(IntMdTest, SamplingReducesCoverageAndBytes) {
  IntMdConfig cfg;
  cfg.sample_every = 5;
  Fixture f(cfg);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.traffic(flow, 5, 50, 1_ms);
  f.sim.run();
  EXPECT_EQ(f.pipeline.records().size(), 10u);
}

TEST(IntMdTest, MaxHopsCapsTheStack) {
  IntMdConfig cfg;
  cfg.max_hops = 2;
  Fixture f(cfg);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  f.traffic(flow, 5, 2, 1_ms);
  f.sim.run();
  ASSERT_FALSE(f.pipeline.records().empty());
  // 2 transit entries + the sink's own entry appended at delivery.
  EXPECT_EQ(f.pipeline.records().front().hops.size(), 3u);
}

TEST(IntMdTest, MeanHopLatencyLocalizesSlowSwitch) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_max_pps(out, 100.0);
  f.traffic(flow, 5, 50, 2_ms);
  f.sim.run();
  const auto means = f.pipeline.mean_hop_latency(
      0, std::numeric_limits<sim::Time>::max());
  ASSERT_TRUE(means.count(flow.source));
  // The throttled switch's hop latency dwarfs everything else.
  for (const auto& [sw, mean] : means) {
    if (sw != flow.source) EXPECT_GT(means.at(flow.source), mean);
  }
}

TEST(IntMdTest, RetentionCapBoundsRecordGrowth) {
  // Regression: records() used to grow without bound when nothing ever
  // collected — a long-lived pipeline leaked one hop stack per telemetry
  // packet. At the cap the oldest half is evicted, newest evidence wins.
  IntMdConfig cfg;
  cfg.max_records = 8;
  Fixture f(cfg);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.traffic(flow, 5, 30, 1_ms);
  f.sim.run();
  EXPECT_LE(f.pipeline.records().size(), 8u);
  EXPECT_GT(f.pipeline.dropped_records(), 0u);
  // The survivors are the newest half, still in delivery order.
  ASSERT_GE(f.pipeline.records().size(), 2u);
  EXPECT_LT(f.pipeline.records().front().sink_time,
            f.pipeline.records().back().sink_time);
}

TEST(IntMdTest, CollectDrainsAndResetsRetention) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.traffic(flow, 5, 10, 1_ms);
  f.sim.run();
  ASSERT_EQ(f.pipeline.records().size(), 10u);
  const auto collected = f.pipeline.collect();
  EXPECT_EQ(collected.size(), 10u);
  EXPECT_TRUE(f.pipeline.records().empty())
      << "collect() must hand off ownership, not copy";
  // Post-collect traffic accumulates fresh records from zero.
  f.traffic(flow, 5, 3, 1_ms);
  f.sim.run();
  EXPECT_EQ(f.pipeline.records().size(), 3u);
}

TEST(IntMdTest, DropCleansUpInFlightState) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_drop_probability(out, 1.0);
  f.traffic(flow, 5, 10, 1_ms);
  f.sim.run();
  EXPECT_TRUE(f.pipeline.records().empty());
}

}  // namespace
}  // namespace mars::telemetry
