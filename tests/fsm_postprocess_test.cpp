#include "fsm/postprocess.hpp"

#include <gtest/gtest.h>

#include "fsm/miner.hpp"
#include "util/rng.hpp"

namespace mars::fsm {
namespace {

TEST(SubpatternTest, ProperSubpatternSemantics) {
  const Pattern sw{{2}, 6};
  const Pattern link{{2, 4}, 4};
  EXPECT_TRUE(is_proper_subpattern(sw, link, true));
  EXPECT_FALSE(is_proper_subpattern(link, sw, true));
  EXPECT_FALSE(is_proper_subpattern(sw, sw, true));  // not proper
  const Pattern gapped{{1, 3}, 2};
  const Pattern seq{{1, 2, 3}, 2};
  EXPECT_FALSE(is_proper_subpattern(gapped, seq, true));
  EXPECT_TRUE(is_proper_subpattern(gapped, seq, false));
}

TEST(ClosedPatternsTest, DropsAbsorbedSubpatterns) {
  // <s2> support 4 is absorbed by <s2,s4> support 4; <s3> support 7 is
  // NOT absorbed (strictly higher support than any super-pattern).
  std::vector<Pattern> patterns{
      {{2}, 4},
      {{2, 4}, 4},
      {{3}, 7},
      {{3, 2}, 4},
  };
  const auto closed = closed_patterns(patterns, true);
  ASSERT_EQ(closed.size(), 3u);
  EXPECT_EQ(closed[0].items, (Sequence{2, 4}));
  EXPECT_EQ(closed[1].items, (Sequence{3}));
  EXPECT_EQ(closed[2].items, (Sequence{3, 2}));
}

TEST(ClosedPatternsTest, PaperExampleClosure) {
  // §4.4.2 output: <s2>:6 <s2,s4>:4 <s3>:4 <s3,s2>:4 <s4>:4.
  // Closed: <s2>:6 stays (no equal-support super-pattern); <s3>, <s4>
  // are absorbed by the links containing them.
  std::vector<Pattern> patterns{
      {{2}, 6}, {{2, 4}, 4}, {{3}, 4}, {{3, 2}, 4}, {{4}, 4},
  };
  const auto closed = closed_patterns(patterns, true);
  ASSERT_EQ(closed.size(), 3u);
  EXPECT_EQ(closed[0].items, (Sequence{2}));
  EXPECT_EQ(closed[1].items, (Sequence{2, 4}));
  EXPECT_EQ(closed[2].items, (Sequence{3, 2}));
}

TEST(TopKTest, SortsBySupportWithDeterministicTies) {
  std::vector<Pattern> patterns{
      {{9}, 3}, {{1, 2}, 5}, {{7}, 5}, {{2}, 8},
  };
  const auto top = top_k_patterns(patterns, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].items, (Sequence{2}));       // support 8
  EXPECT_EQ(top[1].items, (Sequence{7}));       // tie at 5: shorter first
  EXPECT_EQ(top[2].items, (Sequence{1, 2}));
}

TEST(TopKTest, KLargerThanInputKeepsAll) {
  std::vector<Pattern> patterns{{{1}, 1}, {{2}, 2}};
  EXPECT_EQ(top_k_patterns(patterns, 10).size(), 2u);
}

TEST(ClosedPatternsTest, ClosureNeverLosesSupportInformation) {
  // Property: every dropped pattern has a retained super-pattern with >=
  // its support (on mined output from random databases).
  util::Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    SequenceDatabase db;
    for (int s = 0; s < 30; ++s) {
      Sequence seq;
      for (int i = 0; i < 5; ++i) {
        seq.push_back(static_cast<Item>(rng.below(6)));
      }
      db.add(std::move(seq), 1 + rng.below(3));
    }
    MiningParams params;
    params.min_support_abs = 2;
    params.max_length = 3;
    const auto mined =
        make_miner(MinerKind::kPrefixSpan)->mine(db, params);
    const auto closed = closed_patterns(mined, true);
    for (const auto& original : mined) {
      bool retained = false;
      for (const auto& kept : closed) {
        if (kept.items == original.items) retained = true;
      }
      if (retained) continue;
      bool covered = false;
      for (const auto& kept : closed) {
        if (is_proper_subpattern(original, kept, true) &&
            kept.support >= original.support) {
          covered = true;
        }
      }
      EXPECT_TRUE(covered) << to_string(original);
    }
  }
}

}  // namespace
}  // namespace mars::fsm
