#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace mars;
using namespace mars::sim::literals;

TEST(Sampler, TicksOnExactPeriodMultiples) {
  sim::Simulator simulator;
  obs::MetricsRegistry registry;
  registry.gauge("t", [&] { return sim::to_seconds(simulator.now()); });
  obs::SeriesStore series;
  obs::Sampler sampler(simulator, registry, series,
                       {.period = 100_ms, .until = 1_s});
  sampler.start();
  simulator.run(2_s);

  // 0, 100ms, ..., 1000ms inclusive.
  ASSERT_EQ(series.rows(), 11u);
  for (std::size_t i = 0; i < series.rows(); ++i) {
    EXPECT_EQ(series.times()[i], static_cast<sim::Time>(i) * 100_ms);
  }
  EXPECT_EQ(sampler.ticks(), 11u);
  const std::vector<double>* col = series.column("t");
  ASSERT_NE(col, nullptr);
  EXPECT_DOUBLE_EQ((*col)[3], 0.3);  // gauge read AT the tick time
}

TEST(Sampler, EpochAlignsWhenStartedOffGrid) {
  sim::Simulator simulator;
  obs::MetricsRegistry registry;
  registry.gauge("g", [] { return 1.0; });
  obs::SeriesStore series;
  obs::Sampler sampler(simulator, registry, series,
                       {.period = 100_ms, .until = 1_s});
  // Start at t = 237 ms: the first tick must land on 300 ms, not 337 ms.
  simulator.schedule_at(237_ms, [&] { sampler.start(); });
  simulator.run(2_s);

  ASSERT_EQ(series.rows(), 8u);  // 300, 400, ..., 1000 ms
  EXPECT_EQ(series.times().front(), 300_ms);
  EXPECT_EQ(series.times().back(), 1_s);
  for (const sim::Time t : series.times()) EXPECT_EQ(t % 100_ms, 0);
}

TEST(Sampler, SampleNowIsOffGridAndKeepsPeriodicPhase) {
  sim::Simulator simulator;
  obs::MetricsRegistry registry;
  registry.gauge("g", [] { return 1.0; });
  obs::SeriesStore series;
  obs::Sampler sampler(simulator, registry, series,
                       {.period = 100_ms, .until = 1_s});
  sampler.start();
  simulator.schedule_at(250_ms, [&] { sampler.sample_now(); });
  simulator.run(400_ms);

  // 0, 100, 200, 250 (extra), 300, 400: the off-grid sample must not shift
  // the following periodic ticks.
  std::vector<sim::Time> want = {0, 100_ms, 200_ms, 250_ms, 300_ms, 400_ms};
  EXPECT_EQ(series.times(), want);
}

TEST(Sampler, StopsAtUntilAndStopCancelsPending) {
  sim::Simulator simulator;
  obs::MetricsRegistry registry;
  registry.gauge("g", [] { return 1.0; });
  obs::SeriesStore series;
  obs::Sampler sampler(simulator, registry, series,
                       {.period = 1_s, .until = 3_s});
  sampler.start();
  simulator.run(10_s);
  EXPECT_EQ(series.rows(), 4u);  // 0..3 s, nothing past `until`

  sampler.stop();  // idempotent after the schedule drained
  simulator.run(11_s);
  EXPECT_EQ(series.rows(), 4u);
}

TEST(SeriesStore, LateGaugeJoinsWithNanBackfill) {
  sim::Simulator simulator;
  obs::MetricsRegistry registry;
  registry.gauge("early", [] { return 1.0; });
  obs::SeriesStore series;
  obs::Sampler sampler(simulator, registry, series,
                       {.period = 100_ms, .until = 500_ms});
  sampler.start();
  simulator.schedule_at(250_ms, [&] {
    registry.gauge("late", [] { return 2.0; });
  });
  simulator.run(1_s);

  ASSERT_EQ(series.rows(), 6u);
  const std::vector<double>* late = series.column("late");
  ASSERT_NE(late, nullptr);
  ASSERT_EQ(late->size(), 6u);
  EXPECT_TRUE(std::isnan((*late)[0]));  // rows before registration
  EXPECT_TRUE(std::isnan((*late)[2]));
  EXPECT_DOUBLE_EQ((*late)[3], 2.0);  // first row after registration (300ms)
  EXPECT_DOUBLE_EQ(series.last("late", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(series.last("missing", -1.0), -1.0);
}

TEST(SeriesStore, RemovedGaugePadsWithNan) {
  sim::Simulator simulator;
  obs::MetricsRegistry registry;
  registry.gauge("keep", [] { return 1.0; });
  registry.gauge("drop", [] { return 2.0; });
  obs::SeriesStore series;
  obs::Sampler sampler(simulator, registry, series,
                       {.period = 100_ms, .until = 300_ms});
  sampler.start();
  simulator.schedule_at(150_ms, [&] { registry.remove_gauges("drop"); });
  simulator.run(1_s);

  ASSERT_EQ(series.rows(), 4u);
  const std::vector<double>* dropped = series.column("drop");
  ASSERT_NE(dropped, nullptr);
  ASSERT_EQ(dropped->size(), 4u);  // stays row-aligned with NaN padding
  EXPECT_DOUBLE_EQ((*dropped)[1], 2.0);
  EXPECT_TRUE(std::isnan((*dropped)[2]));
}

TEST(Sampler, ForwardsSamplesToTracerAsCounters) {
  sim::Simulator simulator;
  obs::MetricsRegistry registry;
  registry.gauge("g", [] { return 4.0; });
  obs::SeriesStore series;
  obs::SpanTracer tracer;
  obs::Sampler sampler(simulator, registry, series,
                       {.period = 100_ms, .until = 200_ms});
  sampler.set_tracer(&tracer);
  sampler.start();
  simulator.run(1_s);
  EXPECT_EQ(tracer.size(), 3u);  // one 'C' event per tick
}

TEST(SeriesStore, JsonRendersNanAsNull) {
  obs::SeriesStore series;
  series.append_row(0, {{"a", 1.0}});
  series.append_row(100_ms, {{"a", 2.0}, {"b", 3.0}});
  std::ostringstream out;
  series.write_json(out);
  EXPECT_NE(out.str().find("null"), std::string::npos);  // b's backfill
  EXPECT_EQ(out.str().find("nan"), std::string::npos);
}

}  // namespace
