#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "control/path_registry.hpp"
#include "control/path_registry_cache.hpp"
#include "net/fat_tree.hpp"
#include "net/leaf_spine.hpp"

namespace mars::control {
namespace {

// The parallel build promises bit-identity with the sequential one: same
// MAT (keys AND assigned control values), same path table (switch lists,
// hops, replayed ids), same audit census. These tests pin that promise at
// every thread count the CI matrix exercises.

[[nodiscard]] bool same_registry(const PathRegistry& a,
                                 const PathRegistry& b) {
  if (a.path_count() != b.path_count()) return false;
  for (std::size_t i = 0; i < a.path_count(); ++i) {
    const auto& pa = a.paths()[i];
    const auto& pb = b.paths()[i];
    if (pa.switches != pb.switches) return false;
    if (pa.path_id != pb.path_id) return false;
    if (pa.hops.size() != pb.hops.size()) return false;
    for (std::size_t h = 0; h < pa.hops.size(); ++h) {
      if (pa.hops[h].sw != pb.hops[h].sw) return false;
      if (pa.hops[h].in_port != pb.hops[h].in_port) return false;
      if (pa.hops[h].out_port != pb.hops[h].out_port) return false;
    }
  }
  if (a.mat() != b.mat()) return false;
  const auto& ra = a.audit();
  const auto& rb = b.audit();
  return ra.initial_collisions == rb.initial_collisions &&
         ra.residual_collisions == rb.residual_collisions &&
         ra.ambiguous_ids == rb.ambiguous_ids &&
         ra.mat_entries == rb.mat_entries &&
         ra.mat_overwrites == rb.mat_overwrites &&
         ra.rounds == rb.rounds && ra.conflict_free == rb.conflict_free;
}

TEST(PathRegistryParallelTest, FatTreeBitIdenticalAcrossThreadCounts) {
  const net::FatTree ft = net::build_fat_tree({.k = 4});
  const net::RoutingTable routing{ft.topology};
  for (const telemetry::PathIdConfig cfg :
       {telemetry::PathIdConfig{telemetry::HashKind::kCrc16, 16},
        telemetry::PathIdConfig{telemetry::HashKind::kCrc16, 10}}) {
    const PathRegistry seq(ft.topology, routing, cfg, 1);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      const PathRegistry par(ft.topology, routing, cfg, threads);
      EXPECT_TRUE(same_registry(seq, par))
          << "width " << cfg.width_bits << " threads " << threads;
      EXPECT_EQ(par.audit().build_threads, threads);
    }
  }
}

TEST(PathRegistryParallelTest, LeafSpineBitIdenticalAcrossThreadCounts) {
  const net::LeafSpine ls = net::build_leaf_spine({.leaves = 12, .spines = 6});
  const net::RoutingTable routing{ls.topology};
  const telemetry::PathIdConfig cfg{telemetry::HashKind::kCrc16, 12};
  const PathRegistry seq(ls.topology, routing, cfg, 1);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const PathRegistry par(ls.topology, routing, cfg, threads);
    EXPECT_TRUE(same_registry(seq, par)) << "threads " << threads;
  }
}

TEST(PathRegistryParallelTest, RandomizedDifferentialSequentialVsParallel) {
  std::mt19937_64 rng(0xA11D5EEDull);
  std::uniform_int_distribution<int> leaves(4, 14);
  std::uniform_int_distribution<int> spines(2, 6);
  std::uniform_int_distribution<std::uint32_t> width(8, 20);
  for (int trial = 0; trial < 6; ++trial) {
    const net::LeafSpine ls =
        net::build_leaf_spine({.leaves = leaves(rng), .spines = spines(rng)});
    const net::RoutingTable routing{ls.topology};
    const telemetry::PathIdConfig cfg{telemetry::HashKind::kCrc16,
                                      width(rng)};
    const PathRegistry seq(ls.topology, routing, cfg, 1);
    const PathRegistry par(ls.topology, routing, cfg, 4);
    EXPECT_TRUE(same_registry(seq, par))
        << "trial " << trial << ": " << ls.leaf.size() << " leaves, "
        << ls.spine.size() << " spines, width " << cfg.width_bits;
  }
}

TEST(PathRegistryParallelTest, ThreadsZeroMeansHardwareConcurrency) {
  const net::FatTree ft = net::build_fat_tree({.k = 4});
  const net::RoutingTable routing{ft.topology};
  const telemetry::PathIdConfig cfg{telemetry::HashKind::kCrc16, 16};
  const PathRegistry seq(ft.topology, routing, cfg, 1);
  const PathRegistry autod(ft.topology, routing, cfg, 0);
  EXPECT_TRUE(same_registry(seq, autod));
  EXPECT_GE(autod.audit().build_threads, 1u);
}

TEST(PathRegistryCacheTest, HitReturnsSameRegistryAsColdBuild) {
  auto& cache = PathRegistryCache::instance();
  cache.clear();
  const net::FatTree ft = net::build_fat_tree({.k = 4});
  const net::RoutingTable routing{ft.topology};
  const telemetry::PathIdConfig cfg{telemetry::HashKind::kCrc16, 16};

  const auto first = cache.get_or_build(ft.topology, routing, cfg);
  const auto second = cache.get_or_build(ft.topology, routing, cfg);
  EXPECT_EQ(first.get(), second.get());  // hit: the very same object
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // A cached registry must be indistinguishable from a direct cold build.
  const PathRegistry cold(ft.topology, routing, cfg, 1);
  EXPECT_TRUE(same_registry(cold, *first));
  cache.clear();
}

TEST(PathRegistryCacheTest, KeyDistinguishesConfigAndTopology) {
  auto& cache = PathRegistryCache::instance();
  cache.clear();
  const net::FatTree ft = net::build_fat_tree({.k = 4});
  const net::RoutingTable ft_routing{ft.topology};
  const net::LeafSpine ls = net::build_leaf_spine({.leaves = 6, .spines = 3});
  const net::RoutingTable ls_routing{ls.topology};

  const auto a = cache.get_or_build(ft.topology, ft_routing,
                                    {telemetry::HashKind::kCrc16, 16});
  const auto b = cache.get_or_build(ft.topology, ft_routing,
                                    {telemetry::HashKind::kCrc16, 12});
  const auto c = cache.get_or_build(ft.topology, ft_routing,
                                    {telemetry::HashKind::kCrc32, 16});
  const auto d = cache.get_or_build(ls.topology, ls_routing,
                                    {telemetry::HashKind::kCrc16, 16});
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
  cache.clear();
}

TEST(PathRegistryCacheTest, ConcurrentGetOrBuildBuildsOnce) {
  auto& cache = PathRegistryCache::instance();
  cache.clear();
  const net::FatTree ft = net::build_fat_tree({.k = 4});
  const net::RoutingTable routing{ft.topology};
  const telemetry::PathIdConfig cfg{telemetry::HashKind::kCrc16, 16};

  std::vector<std::shared_ptr<const PathRegistry>> got(8);
  std::vector<std::thread> workers;
  workers.reserve(got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    workers.emplace_back([&, i] {
      got[i] = cache.get_or_build(ft.topology, routing, cfg, /*threads=*/1);
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& r : got) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), got[0].get());
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, got.size() - 1);
  cache.clear();
}

}  // namespace
}  // namespace mars::control
