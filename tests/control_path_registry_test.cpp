#include "control/path_registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/fat_tree.hpp"

namespace mars::control {
namespace {

struct Built {
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::RoutingTable routing{ft.topology};
};

TEST(PathRegistryTest, RegistersAllEdgePaths) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing, {});
  // K=4 ordered edge pairs: 16 three-switch + 192 five-switch paths.
  EXPECT_EQ(reg.path_count(), 208u);
}

TEST(PathRegistryTest, ResolvesToUniqueIds) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 16});
  EXPECT_TRUE(reg.conflict_free());
  std::set<std::uint32_t> ids;
  for (const auto& p : reg.paths()) ids.insert(p.path_id);
  EXPECT_EQ(ids.size(), reg.path_count());
}

TEST(PathRegistryTest, LookupDecompressesPath) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing, {});
  for (const auto& p : reg.paths()) {
    const auto* found = reg.lookup(p.path_id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, p.switches);
  }
  EXPECT_EQ(reg.lookup(0xDEADBEEF & 0xFFFF), nullptr);  // probably unknown
}

TEST(PathRegistryTest, NarrowWidthForcesConflictsButStillResolves) {
  Built b;
  // 208 paths into 8 bits (256 values): collisions guaranteed by load.
  const PathRegistry reg(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 8});
  EXPECT_GT(reg.initial_collisions(), 0u);
  if (reg.conflict_free()) {
    std::set<std::uint32_t> ids;
    for (const auto& p : reg.paths()) ids.insert(p.path_id);
    EXPECT_EQ(ids.size(), reg.path_count());
    EXPECT_GT(reg.mat_entry_count(), 0u);
  }
}

TEST(PathRegistryTest, WiderHashNeedsFewerMatEntriesThanNarrow) {
  Built b;
  const PathRegistry narrow(b.ft.topology, b.routing,
                            {telemetry::HashKind::kCrc16, 10});
  const PathRegistry wide(b.ft.topology, b.routing,
                          {telemetry::HashKind::kCrc32, 32});
  EXPECT_LE(wide.mat_entry_count(), narrow.mat_entry_count());
}

TEST(PathRegistryTest, MemoryAccountingMatchesPaperShape) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 16});
  // IntSight assigns one entry per hop of every path; MARS only pays for
  // hash conflicts. §5.5: M_IS > M_MS in all cases.
  EXPECT_GT(reg.intsight_memory_bytes(), reg.mars_memory_bytes());
  // Our ordered-pair census: 16*3 + 192*5 = 1008 hops at 7B each.
  EXPECT_EQ(reg.intsight_memory_bytes(), 1008u * 7u);
}

TEST(PathRegistryTest, HopPortsAreConsistentWithTopology) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing, {});
  for (const auto& p : reg.paths()) {
    ASSERT_EQ(p.hops.size(), p.switches.size());
    EXPECT_EQ(p.hops.front().in_port, net::kHostPort);
    EXPECT_EQ(p.hops.back().out_port, net::kHostPort);
    for (std::size_t i = 0; i + 1 < p.switches.size(); ++i) {
      const auto port =
          b.ft.topology.port_towards(p.switches[i], p.switches[i + 1]);
      ASSERT_TRUE(port.has_value());
      EXPECT_EQ(p.hops[i].out_port, *port);
    }
  }
}

}  // namespace
}  // namespace mars::control
