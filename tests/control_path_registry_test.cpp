#include "control/path_registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/fat_tree.hpp"
#include "obs/event_log.hpp"

namespace mars::control {
namespace {

struct Built {
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::RoutingTable routing{ft.topology};
};

TEST(PathRegistryTest, RegistersAllEdgePaths) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing, {});
  // K=4 ordered edge pairs: 16 three-switch + 192 five-switch paths.
  EXPECT_EQ(reg.path_count(), 208u);
}

TEST(PathRegistryTest, ResolvesToUniqueIds) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 16});
  EXPECT_TRUE(reg.conflict_free());
  std::set<std::uint32_t> ids;
  for (const auto& p : reg.paths()) ids.insert(p.path_id);
  EXPECT_EQ(ids.size(), reg.path_count());
}

TEST(PathRegistryTest, LookupDecompressesPath) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing, {});
  for (const auto& p : reg.paths()) {
    const auto* found = reg.lookup(p.path_id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, p.switches);
  }
  EXPECT_EQ(reg.lookup(0xDEADBEEF & 0xFFFF), nullptr);  // probably unknown
}

TEST(PathRegistryTest, NarrowWidthForcesConflictsButStillResolves) {
  Built b;
  // 208 paths into 8 bits (256 values): collisions guaranteed by load.
  const PathRegistry reg(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 8});
  EXPECT_GT(reg.initial_collisions(), 0u);
  if (reg.conflict_free()) {
    std::set<std::uint32_t> ids;
    for (const auto& p : reg.paths()) ids.insert(p.path_id);
    EXPECT_EQ(ids.size(), reg.path_count());
    EXPECT_GT(reg.mat_entry_count(), 0u);
  }
}

TEST(PathRegistryTest, WiderHashNeedsFewerMatEntriesThanNarrow) {
  Built b;
  const PathRegistry narrow(b.ft.topology, b.routing,
                            {telemetry::HashKind::kCrc16, 10});
  const PathRegistry wide(b.ft.topology, b.routing,
                          {telemetry::HashKind::kCrc32, 32});
  EXPECT_LE(wide.mat_entry_count(), narrow.mat_entry_count());
}

TEST(PathRegistryTest, MemoryAccountingMatchesPaperShape) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 16});
  // IntSight assigns one entry per hop of every path; MARS only pays for
  // hash conflicts. §5.5: M_IS > M_MS in all cases.
  EXPECT_GT(reg.intsight_memory_bytes(), reg.mars_memory_bytes());
  // Our ordered-pair census: 16*3 + 192*5 = 1008 hops at 7B each.
  EXPECT_EQ(reg.intsight_memory_bytes(), 1008u * 7u);
}

TEST(PathRegistryTest, AmbiguousLookupReturnsNullAndCounts) {
  Built b;
  // 208 paths into 1 bit: two PathID values, so almost every id is shared
  // by many paths and can never be resolved (pigeonhole).
  const PathRegistry reg(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 1});
  EXPECT_FALSE(reg.conflict_free());
  ASSERT_GT(reg.audit().ambiguous_ids, 0u);
  EXPECT_EQ(reg.ambiguous_lookups(), 0u);
  std::uint64_t expected = 0;
  for (const std::uint32_t id : {0u, 1u}) {
    if (reg.is_ambiguous(id)) {
      // An ambiguous id must never decompress to an arbitrary survivor.
      EXPECT_EQ(reg.lookup(id), nullptr);
      ++expected;
    }
  }
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(reg.ambiguous_lookups(), expected);
}

TEST(PathRegistryTest, PigeonholeInfeasibleWidthIsAuditedNotChurned) {
  Built b;
  // 208 paths into 6 bits (64 values) cannot be injective; the build must
  // record the census and skip resolution instead of spinning 64 rounds.
  const PathRegistry reg(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 6});
  const PathAuditReport& a = reg.audit();
  EXPECT_FALSE(a.conflict_free);
  EXPECT_TRUE(a.pigeonhole_infeasible);
  EXPECT_EQ(a.rounds, 0);
  EXPECT_EQ(a.mat_entries, 0u);
  EXPECT_EQ(a.residual_collisions, a.initial_collisions);
  EXPECT_GE(a.initial_collisions, reg.path_count() - a.id_space);
}

TEST(PathRegistryTest, SeparateNeverOverwritesInstalledEntries) {
  Built b;
  // Dense widths stress the separate() fallback paths; a clobbered MAT
  // entry would un-resolve a previously separated pair, so the overwrite
  // counter must stay zero everywhere resolution is feasible.
  for (const std::uint32_t width : {8u, 9u, 10u, 12u, 16u}) {
    const PathRegistry reg(b.ft.topology, b.routing,
                           {telemetry::HashKind::kCrc16, width});
    EXPECT_EQ(reg.audit().mat_overwrites, 0u) << "width " << width;
  }
}

TEST(PathRegistryTest, AuditReportMatchesRegistryCounts) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 10});
  const PathAuditReport& a = reg.audit();
  EXPECT_EQ(a.path_count, reg.path_count());
  EXPECT_EQ(a.hop_count, 1008u);
  EXPECT_EQ(a.id_space, 1024u);
  EXPECT_EQ(a.initial_collisions, reg.initial_collisions());
  EXPECT_EQ(a.conflict_free, reg.conflict_free());
  EXPECT_EQ(a.mat_entries, reg.mat_entry_count());
  EXPECT_EQ(a.mars_memory_bytes, reg.mars_memory_bytes());
  EXPECT_EQ(a.intsight_memory_bytes, reg.intsight_memory_bytes());
  EXPECT_EQ(a.build_threads, 1u);
  if (a.conflict_free) {
    EXPECT_EQ(a.residual_collisions, 0u);
    EXPECT_EQ(a.ambiguous_ids, 0u);
  }
}

TEST(PathRegistryTest, UnresolvedCollisionsEmitStructuredError) {
  Built b;
  const PathRegistry bad(b.ft.topology, b.routing,
                         {telemetry::HashKind::kCrc16, 1});
  obs::EventLog log;
  bad.log_audit(log, 0);
  bool saw_audit = false, saw_error = false;
  for (const auto& e : log.events()) {
    if (e.component != "pathid") continue;
    if (e.event == "audit") saw_audit = true;
    if (e.event == "unresolved_collisions") {
      saw_error = true;
      EXPECT_EQ(e.level, obs::LogLevel::kError);
    }
  }
  EXPECT_TRUE(saw_audit);
  EXPECT_TRUE(saw_error);

  const PathRegistry good(b.ft.topology, b.routing,
                          {telemetry::HashKind::kCrc16, 16});
  obs::EventLog clean_log;
  good.log_audit(clean_log, 0);
  for (const auto& e : clean_log.events()) {
    EXPECT_NE(e.event, "unresolved_collisions");
  }
}

TEST(PathRegistryTest, HopPortsAreConsistentWithTopology) {
  Built b;
  const PathRegistry reg(b.ft.topology, b.routing, {});
  for (const auto& p : reg.paths()) {
    ASSERT_EQ(p.hops.size(), p.switches.size());
    EXPECT_EQ(p.hops.front().in_port, net::kHostPort);
    EXPECT_EQ(p.hops.back().out_port, net::kHostPort);
    for (std::size_t i = 0; i + 1 < p.switches.size(); ++i) {
      const auto port =
          b.ft.topology.port_towards(p.switches[i], p.switches[i + 1]);
      ASSERT_TRUE(port.has_value());
      EXPECT_EQ(p.hops[i].out_port, *port);
    }
  }
}

}  // namespace
}  // namespace mars::control
