#include "dataplane/mars_pipeline.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "control/path_registry.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mars::dataplane {
namespace {

using namespace mars::sim::literals;

struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  control::PathRegistry registry{ft.topology, net.routing(), {}};
  std::vector<Notification> notifications;
  MarsPipeline pipeline;
  std::vector<net::Packet> delivered;

  explicit Fixture(PipelineConfig cfg = {})
      : pipeline(ft.topology.switch_count(), cfg,
                 [this](const Notification& n) {
                   notifications.push_back(n);
                 }) {
    pipeline.set_control_mat(registry.mat());
    net.add_observer(pipeline);
    net.set_delivery_callback([this](const net::Packet& p, sim::Time) {
      delivered.push_back(p);
    });
  }

  /// Inject `count` packets of `flow` spaced `gap` apart, starting at the
  /// current simulation time.
  void traffic(net::FlowId flow, std::uint32_t hash, int count,
               sim::Time gap) {
    for (int i = 0; i < count; ++i) {
      sim.schedule_in(gap * i, [this, flow, hash] {
        net.inject(flow, hash, 500);
      });
    }
  }
};

TEST(PipelineTest, MarksOneTelemetryPacketPerFlowPerEpoch) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.traffic(flow, 7, 50, 10_ms);  // 50 packets over 500ms = 5 epochs
  f.sim.run();
  ASSERT_EQ(f.delivered.size(), 50u);
  EXPECT_EQ(f.pipeline.overheads().telemetry_packets_marked, 5u);
  // INT headers are stripped at the sink: no delivered packet carries one.
  for (const auto& p : f.delivered) EXPECT_FALSE(p.telemetry.has_value());
}

TEST(PipelineTest, PathIdMatchesRegistry) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  f.traffic(flow, 99, 10, 1_ms);
  f.sim.run();
  ASSERT_FALSE(f.delivered.empty());
  for (const auto& p : f.delivered) {
    const auto* path = f.registry.lookup(p.path_id);
    ASSERT_NE(path, nullptr) << "unknown PathID " << p.path_id;
    EXPECT_EQ(*path, p.true_path)
        << "PathID decompressed to the wrong switch sequence";
  }
}

TEST(PipelineTest, DistinctRoutesYieldDistinctPathIds) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  // Many flow hashes explore multiple ECMP paths.
  for (std::uint32_t h = 0; h < 64; ++h) {
    f.sim.schedule_in(h * 100'000, [&f, flow, h] {
      f.net.inject(flow, h * 2654435761u, 500);
    });
  }
  f.sim.run();
  std::set<std::uint32_t> ids;
  std::set<std::vector<net::SwitchId>> paths;
  for (const auto& p : f.delivered) {
    ids.insert(p.path_id);
    paths.insert(p.true_path);
  }
  EXPECT_GT(paths.size(), 1u);
  EXPECT_EQ(ids.size(), paths.size());  // bijection on this sample
}

TEST(PipelineTest, RingTableRecordsTelemetryAtSink) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.traffic(flow, 5, 30, 10_ms);
  f.sim.run();
  const auto records = f.pipeline.ring_snapshot(flow.sink);
  ASSERT_GE(records.size(), 2u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.flow, flow);
    EXPECT_GT(rec.latency, 0);
    EXPECT_EQ(rec.latency, rec.sink_timestamp - rec.source_timestamp);
    EXPECT_NE(f.registry.lookup(rec.path_id), nullptr);
  }
  // The source switch's ring table stays empty (it is not this flow's sink).
  EXPECT_TRUE(f.pipeline.ring_snapshot(flow.source).empty());
}

TEST(PipelineTest, EgressTableCountsAllPackets) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.traffic(flow, 5, 20, 1_ms);
  f.sim.run();
  const auto& et = f.pipeline.egress_table(flow.sink);
  EXPECT_EQ(et.flow_current_packets(flow, f.sim.now()), 20u);
}

TEST(PipelineTest, HighLatencyTriggersNotification) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.pipeline.set_threshold(flow, 1_ms);  // everything above 1ms flags
  // Slow the egress port so queueing pushes latency over the threshold.
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_max_pps(out, 50.0);
  // Spread packets over several epochs: the persistence filter requires
  // consecutive anomalous telemetry packets before notifying.
  f.traffic(flow, 5, 150, 5_ms);
  f.sim.run();
  ASSERT_GE(f.notifications.size(), 1u);
  EXPECT_EQ(f.notifications[0].kind, Notification::Kind::kHighLatency);
  EXPECT_EQ(f.notifications[0].flow, flow);
  EXPECT_GT(f.notifications[0].latency, 1_ms);
  // Per-switch windows bound the notification rate well below the number
  // of over-threshold packets.
  EXPECT_LT(f.notifications.size(), 30u);
}

TEST(PipelineTest, SingleEpochSpikeIsFilteredByPersistence) {
  // One anomalous telemetry packet (a single-epoch ambient spike) must
  // not notify; the streak needs latency_persistence consecutive hits.
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.pipeline.set_threshold(flow, 1_ms);
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_max_pps(out, 50.0);
  f.traffic(flow, 5, 10, 1_ms);  // all within one epoch
  f.sim.run();
  EXPECT_TRUE(f.notifications.empty());
}

TEST(PipelineTest, DropDetectedByCountMismatch) {
  PipelineConfig cfg;
  cfg.drop_count_threshold = 2;
  Fixture f(cfg);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  // Lose half the packets; telemetry packets that survive reveal the
  // mismatch between source and sink epoch counts.
  f.net.node(flow.source).set_drop_probability(out, 0.5);
  f.traffic(flow, 5, 200, 5_ms);  // 1s of traffic across 10 epochs
  f.sim.run();
  bool saw_drop = false;
  for (const auto& n : f.notifications) {
    saw_drop |= n.kind == Notification::Kind::kDrop;
  }
  EXPECT_TRUE(saw_drop);
}

TEST(PipelineTest, DropDetectedByEpochGap) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));

  // Healthy epoch 0 traffic.
  f.traffic(flow, 5, 10, 5_ms);
  f.sim.run(99_ms);
  // Total loss for two full epochs, then recovery.
  f.net.node(flow.source).set_drop_probability(out, 1.0);
  f.traffic(flow, 5, 40, 5_ms);
  f.sim.run(299_ms);
  f.net.node(flow.source).clear_faults();
  f.traffic(flow, 5, 10, 5_ms);
  f.sim.run();

  bool saw_gap = false;
  for (const auto& n : f.notifications) {
    if (n.kind == Notification::Kind::kDrop && n.epoch_gap >= 1) {
      saw_gap = true;
    }
  }
  EXPECT_TRUE(saw_gap);
}

TEST(PipelineTest, TelemetryBandwidthAccountingGrows) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  f.traffic(flow, 5, 10, 1_ms);
  f.sim.run();
  const auto& oh = f.pipeline.overheads();
  // Every packet carries 1 PathID byte per link; telemetry packets add 11B.
  EXPECT_GT(oh.telemetry_bytes, 0u);
  EXPECT_GE(oh.telemetry_bytes, 10u * 4u);  // >= 1B x 4 links x 10 packets
}

TEST(PipelineTest, NewFlowUsesDefaultThreshold) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[2], f.ft.edge[3]};
  EXPECT_EQ(f.pipeline.threshold(flow), f.pipeline.config().default_threshold);
  f.pipeline.set_threshold(flow, 3_ms);
  EXPECT_EQ(f.pipeline.threshold(flow), 3_ms);
}

}  // namespace
}  // namespace mars::dataplane
