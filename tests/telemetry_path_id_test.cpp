#include "telemetry/path_id.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mars::telemetry {
namespace {

TEST(PathIdTest, DeterministicUpdate) {
  const PathIdConfig cfg{};
  const auto a = update_path_id(cfg, 0, 3, 1, 2, 0);
  const auto b = update_path_id(cfg, 0, 3, 1, 2, 0);
  EXPECT_EQ(a, b);
}

TEST(PathIdTest, SensitiveToEachField) {
  const PathIdConfig cfg{};
  const auto base = update_path_id(cfg, 7, 3, 1, 2, 0);
  EXPECT_NE(update_path_id(cfg, 8, 3, 1, 2, 0), base);
  EXPECT_NE(update_path_id(cfg, 7, 4, 1, 2, 0), base);
  EXPECT_NE(update_path_id(cfg, 7, 3, 0, 2, 0), base);
  EXPECT_NE(update_path_id(cfg, 7, 3, 1, 3, 0), base);
  EXPECT_NE(update_path_id(cfg, 7, 3, 1, 2, 1), base);
}

TEST(PathIdTest, RespectsWidthMask) {
  PathIdConfig cfg;
  cfg.width_bits = 8;
  for (std::uint32_t sw = 0; sw < 50; ++sw) {
    EXPECT_LE(update_path_id(cfg, 0, sw, 1, 2, 0), 0xFFu);
  }
  cfg.width_bits = 16;
  bool above_byte = false;
  for (std::uint32_t sw = 0; sw < 50; ++sw) {
    const auto id = update_path_id(cfg, 0, sw, 1, 2, 0);
    EXPECT_LE(id, 0xFFFFu);
    above_byte |= id > 0xFFu;
  }
  EXPECT_TRUE(above_byte);  // 16-bit ids actually use the upper byte
}

TEST(PathIdTest, Crc32DiffersFromCrc16) {
  PathIdConfig c16{HashKind::kCrc16, 16};
  PathIdConfig c32{HashKind::kCrc32, 32};
  std::set<std::uint32_t> ids16, ids32;
  for (std::uint32_t sw = 0; sw < 20; ++sw) {
    ids16.insert(update_path_id(c16, 0, sw, 0, 1, 0));
    ids32.insert(update_path_id(c32, 0, sw, 0, 1, 0));
  }
  EXPECT_EQ(ids16.size(), 20u);  // no collisions on this tiny set
  EXPECT_EQ(ids32.size(), 20u);
}

TEST(PathIdTest, MatOverridesControl) {
  const PathIdConfig cfg{};
  ControlMat mat;
  const HopKey key{0, 3, 1, 2};
  mat[key] = 5;
  const auto with_mat = update_path_id_with_mat(cfg, mat, 0, 3, 1, 2);
  const auto expected = update_path_id(cfg, 0, 3, 1, 2, 5);
  EXPECT_EQ(with_mat, expected);
  // A non-matching hop keeps control = 0.
  const auto other = update_path_id_with_mat(cfg, mat, 0, 4, 1, 2);
  EXPECT_EQ(other, update_path_id(cfg, 0, 4, 1, 2, 0));
}

TEST(PathIdTest, ChainedHopsReproducible) {
  // Simulate a 4-hop path twice and at the control plane.
  const PathIdConfig cfg{};
  const ControlMat mat;
  std::uint32_t id1 = 0, id2 = 0;
  const std::uint32_t switches[] = {10, 11, 12, 13};
  for (int pass = 0; pass < 2; ++pass) {
    std::uint32_t& id = pass == 0 ? id1 : id2;
    id = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
      id = update_path_id_with_mat(cfg, mat, id, switches[i],
                                   static_cast<net::PortId>(i),
                                   static_cast<net::PortId>(i + 1));
    }
  }
  EXPECT_EQ(id1, id2);
}

}  // namespace
}  // namespace mars::telemetry
