#include "net/leaf_spine.hpp"

#include <gtest/gtest.h>

#include "control/path_registry.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"

namespace mars::net {
namespace {

class LeafSpineParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LeafSpineParamTest, StructuralInvariants) {
  const auto [leaves, spines] = GetParam();
  const auto ls = build_leaf_spine({.leaves = leaves, .spines = spines});
  EXPECT_EQ(ls.leaf.size(), static_cast<std::size_t>(leaves));
  EXPECT_EQ(ls.spine.size(), static_cast<std::size_t>(spines));
  EXPECT_EQ(ls.topology.link_count(),
            static_cast<std::size_t>(leaves * spines));
  for (const auto leaf : ls.leaf) {
    EXPECT_EQ(ls.topology.port_count(leaf),
              static_cast<std::size_t>(spines));
    EXPECT_EQ(ls.topology.layer(leaf), Layer::kEdge);
  }
  for (const auto spine : ls.spine) {
    EXPECT_EQ(ls.topology.port_count(spine),
              static_cast<std::size_t>(leaves));
    EXPECT_EQ(ls.topology.layer(spine), Layer::kCore);
  }
}

TEST_P(LeafSpineParamTest, EveryLeafPairHasSpinesPaths) {
  const auto [leaves, spines] = GetParam();
  const auto ls = build_leaf_spine({.leaves = leaves, .spines = spines});
  const RoutingTable routing(ls.topology);
  EXPECT_EQ(routing.distance(ls.leaf[0], ls.leaf[1]), 2);
  const auto paths = routing.enumerate_paths(ls.leaf[0], ls.leaf[1]);
  EXPECT_EQ(paths.size(), static_cast<std::size_t>(spines));
  EXPECT_EQ(routing.group(ls.leaf[0], ls.leaf[1]).members.size(),
            static_cast<std::size_t>(spines));
}

INSTANTIATE_TEST_SUITE_P(Shapes, LeafSpineParamTest,
                         ::testing::Values(std::pair{2, 1}, std::pair{4, 2},
                                           std::pair{8, 4},
                                           std::pair{16, 8}));

TEST(LeafSpineTest, PathRegistryResolvesUniqueIds) {
  // MARS's control plane works unchanged on the second fabric shape.
  const auto ls = build_leaf_spine({.leaves = 8, .spines = 4});
  const RoutingTable routing(ls.topology);
  const control::PathRegistry registry(ls.topology, routing, {});
  // 8*7 ordered pairs x 4 spine choices.
  EXPECT_EQ(registry.path_count(), 8u * 7u * 4u);
  EXPECT_TRUE(registry.conflict_free());
}

TEST(LeafSpineTest, TrafficFlowsEndToEnd) {
  sim::Simulator sim;
  const auto ls = build_leaf_spine({.leaves = 4, .spines = 2});
  Network net(sim, ls.topology);
  int delivered = 0;
  net.set_delivery_callback(
      [&](const Packet& p, sim::Time) {
        ++delivered;
        EXPECT_EQ(p.true_path.size(), 3u);  // leaf-spine-leaf
      });
  for (std::uint32_t h = 0; h < 20; ++h) {
    net.inject({ls.leaf[0], ls.leaf[3]}, h * 2654435761u, 700);
  }
  sim.run();
  EXPECT_EQ(delivered, 20);
}

}  // namespace
}  // namespace mars::net
