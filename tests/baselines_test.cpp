#include "baselines/intsight.hpp"
#include "baselines/spidermon.hpp"
#include "baselines/syndb.hpp"

#include <gtest/gtest.h>

#include "net/fat_tree.hpp"
#include "sim/simulator.hpp"

namespace mars::baselines {
namespace {

using namespace mars::sim::literals;

struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};

  void traffic(net::FlowId flow, std::uint32_t hash, int count,
               sim::Time gap, sim::Time start = 0) {
    for (int i = 0; i < count; ++i) {
      sim.schedule_in(start + gap * i, [this, flow, hash] {
        net.inject(flow, hash, 500);
      });
    }
  }
};

TEST(SpiderMonTest, NoTriggerOnHealthyTraffic) {
  Fixture f;
  SpiderMon sm(f.ft.topology.switch_count());
  f.net.add_observer(sm);
  f.traffic({f.ft.edge[0], f.ft.edge[1]}, 5, 100, 5_ms);
  f.sim.run();
  EXPECT_FALSE(sm.triggered());
  EXPECT_TRUE(sm.diagnose().empty());
  EXPECT_GT(sm.overheads().telemetry_bytes, 0u);  // headers always ride
  EXPECT_EQ(sm.overheads().diagnosis_bytes, 0u);  // but nothing collected
}

TEST(SpiderMonTest, QueueingDelayTriggersAndLocalizesSwitch) {
  Fixture f;
  SpiderMon sm(f.ft.topology.switch_count());
  f.net.add_observer(sm);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_max_pps(out, 50.0);
  // Two flows sharing the throttled queue create wait-for edges.
  f.traffic(flow, 5, 100, 2_ms);
  f.traffic(flow, 1234567, 100, 2_ms);
  f.sim.run();
  ASSERT_TRUE(sm.triggered());
  const auto culprits = sm.diagnose();
  ASSERT_FALSE(culprits.empty());
  bool found = false;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, culprits.size());
       ++i) {
    if (culprits[i].level == rca::CulpritLevel::kSwitch &&
        culprits[i].location == std::vector<net::SwitchId>{flow.source}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(sm.overheads().diagnosis_bytes, 0u);
}

TEST(SpiderMonTest, NoTriggerOnPureDelayFault) {
  Fixture f;
  SpiderMon sm(f.ft.topology.switch_count());
  f.net.add_observer(sm);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_extra_delay(out, 20_ms);  // outside the queue
  f.traffic(flow, 5, 100, 5_ms);
  f.sim.run();
  EXPECT_FALSE(sm.triggered());  // the paper's "-" cell
}

TEST(IntSightTest, SloViolationProducesFlowReports) {
  Fixture f;
  IntSightConfig cfg;
  cfg.slo = 2_ms;
  IntSight is(cfg);
  f.net.add_observer(is);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_max_pps(out, 50.0);
  f.traffic(flow, 5, 200, 2_ms);
  f.sim.run();
  EXPECT_TRUE(is.triggered());
  EXPECT_FALSE(is.reports().empty());
  const auto culprits = is.diagnose();
  EXPECT_FALSE(culprits.empty());
  EXPECT_GT(is.overheads().telemetry_bytes, 0u);
}

TEST(IntSightTest, ContentionBitmapMarksCongestedSwitch) {
  Fixture f;
  IntSightConfig cfg;
  cfg.slo = 2_ms;
  cfg.contention_threshold = 1_ms;
  IntSight is(cfg);
  f.net.add_observer(is);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_max_pps(out, 50.0);
  f.traffic(flow, 5, 200, 2_ms);
  f.sim.run();
  const auto culprits = is.diagnose();
  ASSERT_FALSE(culprits.empty());
  EXPECT_EQ(culprits[0].location, std::vector<net::SwitchId>{flow.source});
}

TEST(IntSightTest, HeaderBytesAreLarge) {
  Fixture f;
  IntSight is;
  f.net.add_observer(is);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};  // 5-switch path
  f.traffic(flow, 5, 10, 1_ms);
  f.sim.run();
  // 33B per packet per traversed link (4 inter-switch hops).
  EXPECT_EQ(is.overheads().telemetry_bytes, 10u * 4u * 33u);
}

TEST(SynDbTest, RecordsEverythingAndChargesBandwidth) {
  Fixture f;
  SynDb db;
  f.net.add_observer(db);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  f.traffic(flow, 5, 50, 1_ms);
  f.sim.run();
  const auto oh = db.overheads();
  EXPECT_EQ(oh.telemetry_bytes, 0u);  // no INT headers
  // >= one ingress + one egress record per hop per packet.
  EXPECT_GE(oh.diagnosis_bytes, 50u * 5u * 40u);
}

TEST(SynDbTest, ExpertQueryLocalizesSlowSwitch) {
  Fixture f;
  SynDb db;
  f.net.add_observer(db);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  // Healthy baseline, then throttle.
  f.traffic(flow, 5, 200, 2_ms);
  f.sim.run(500_ms);
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_max_pps(out, 50.0);
  f.traffic(flow, 5, 100, 2_ms, 10_ms);
  f.sim.run();
  const auto culprits = db.diagnose_with_hint(
      faults::FaultKind::kProcessRateDecrease, f.sim.now());
  ASSERT_FALSE(culprits.empty());
  EXPECT_EQ(culprits[0].location, std::vector<net::SwitchId>{flow.source});
}

TEST(SynDbTest, ExpertQueryLocalizesDrops) {
  Fixture f;
  SynDb db;
  f.net.add_observer(db);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));
  f.net.node(flow.source).set_drop_probability(out, 0.5);
  f.traffic(flow, 5, 100, 2_ms);
  f.sim.run();
  const auto culprits =
      db.diagnose_with_hint(faults::FaultKind::kDrop, f.sim.now());
  ASSERT_FALSE(culprits.empty());
  EXPECT_EQ(culprits[0].location, std::vector<net::SwitchId>{flow.source});
  EXPECT_EQ(culprits[0].cause, rca::CauseKind::kDrop);
}

TEST(SynDbTest, UnaidedDiagnosisIsEmpty) {
  Fixture f;
  SynDb db;
  f.net.add_observer(db);
  f.traffic({f.ft.edge[0], f.ft.edge[1]}, 5, 10, 1_ms);
  f.sim.run();
  EXPECT_TRUE(db.diagnose().empty());
}

}  // namespace
}  // namespace mars::baselines
