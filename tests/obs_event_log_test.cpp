// EventLog: admission (level filter + per-key token bucket), determinism
// of the admitted sequence under fixed virtual-time inputs, and NDJSON
// that round-trips through obs::JsonReader.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json_reader.hpp"
#include "sim/time.hpp"

namespace mars::obs {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(EventLogTest, LevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    const auto parsed = level_from_name(level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(level_from_name("verbose").has_value());
  EXPECT_FALSE(level_from_name("").has_value());
}

TEST(EventLogTest, LevelFilterDropsBelowMin) {
  EventLogConfig config;
  config.min_level = LogLevel::kWarn;
  EventLog log(config);

  log.log(LogLevel::kDebug, 1 * kMillisecond, "c", "debug_event");
  log.log(LogLevel::kInfo, 2 * kMillisecond, "c", "info_event");
  log.log(LogLevel::kWarn, 3 * kMillisecond, "c", "warn_event");
  log.log(LogLevel::kError, 4 * kMillisecond, "c", "error_event");

  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].event, "warn_event");
  EXPECT_EQ(log.events()[1].event, "error_event");
  EXPECT_EQ(log.stats().logged, 2u);
  EXPECT_EQ(log.stats().below_level, 2u);
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kWarn));
}

TEST(EventLogTest, TokenBucketLimitsPerKeyAndCountsSuppressed) {
  EventLogConfig config;
  config.min_level = LogLevel::kDebug;
  config.rate_limit_per_s = 1.0;  // one token per virtual second
  config.rate_limit_burst = 2;
  EventLog log(config);

  // Three same-key events at the same instant: burst admits 2, drops 1.
  for (int i = 0; i < 3; ++i) {
    log.log(LogLevel::kInfo, 1 * kMillisecond, "ctl", "retry");
  }
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.stats().rate_suppressed, 1u);

  // A different key has its own bucket.
  log.log(LogLevel::kInfo, 1 * kMillisecond, "ctl", "quarantine");
  EXPECT_EQ(log.events().size(), 3u);

  // After 2 virtual seconds the bucket refilled; the admitted event
  // carries the count of same-key drops since the last admitted one.
  log.log(LogLevel::kInfo, 3 * kSecond, "ctl", "retry");
  ASSERT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.events().back().event, "retry");
  EXPECT_EQ(log.events().back().suppressed, 1u);
}

TEST(EventLogTest, AdmissionIsDeterministicAcrossRuns) {
  // Same virtual-time call sequence => bit-identical admitted sequence
  // (ignoring wall_ms, the one nondeterministic field).
  auto run = [] {
    EventLogConfig config;
    config.min_level = LogLevel::kInfo;
    config.rate_limit_per_s = 10.0;
    config.rate_limit_burst = 3;
    EventLog log(config);
    for (int i = 0; i < 50; ++i) {
      const sim::Time at = static_cast<sim::Time>(i) * 17 * kMillisecond;
      log.log(i % 4 == 0 ? LogLevel::kDebug : LogLevel::kInfo, at, "comp",
              i % 2 == 0 ? "even" : "odd", {{"i", std::int64_t{i}}});
    }
    std::vector<std::string> lines;
    for (const LogEvent& e : log.events()) {
      std::ostringstream one;
      // Zero wall_ms so the comparison covers every deterministic field.
      LogEvent copy = e;
      copy.wall_ms = 0.0;
      EventLog::write_event(one, copy);
      lines.push_back(one.str());
    }
    return std::make_pair(lines, log.stats().rate_suppressed);
  };

  const auto [lines_a, suppressed_a] = run();
  const auto [lines_b, suppressed_b] = run();
  EXPECT_FALSE(lines_a.empty());
  EXPECT_EQ(lines_a, lines_b);
  EXPECT_EQ(suppressed_a, suppressed_b);
}

TEST(EventLogTest, NdjsonRoundTripsThroughJsonReader) {
  EventLogConfig config;
  config.min_level = LogLevel::kDebug;
  EventLog log(config);
  log.log(LogLevel::kInfo, 1500 * kMillisecond, "controller",
          "session_complete",
          {{"records", std::uint64_t{42}},
           {"trigger", "notification"},
           {"confidence", 0.975}});
  log.log(LogLevel::kError, 2 * kSecond, "mars", "diagnosis_empty");

  std::ostringstream out;
  log.write_ndjson(out);

  std::istringstream in(out.str());
  std::string line;
  std::vector<JsonValue> docs;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    docs.push_back(JsonValue::parse(line));  // throws on malformed NDJSON
  }
  ASSERT_EQ(docs.size(), 2u);

  const JsonValue& first = docs[0];
  ASSERT_TRUE(first.is_object());
  EXPECT_DOUBLE_EQ(first.find("ts_s")->as_number(), 1.5);
  EXPECT_EQ(first.find("level")->as_string(), "info");
  EXPECT_EQ(first.find("component")->as_string(), "controller");
  EXPECT_EQ(first.find("event")->as_string(), "session_complete");
  const JsonValue* fields = first.find("fields");
  ASSERT_NE(fields, nullptr);
  EXPECT_EQ(fields->find("records")->as_uint(), 42u);
  EXPECT_EQ(fields->find("trigger")->as_string(), "notification");
  EXPECT_DOUBLE_EQ(fields->find("confidence")->as_number(), 0.975);
  EXPECT_TRUE(first.contains("wall_ms"));

  EXPECT_EQ(docs[1].find("level")->as_string(), "error");
  EXPECT_EQ(docs[1].find("event")->as_string(), "diagnosis_empty");
}

TEST(EventLogTest, MaxEventsCapsRetention) {
  EventLogConfig config;
  config.min_level = LogLevel::kDebug;
  config.rate_limit_per_s = 0.0;  // disable the bucket
  config.max_events = 4;
  EventLog log(config);
  for (int i = 0; i < 10; ++i) {
    log.log(LogLevel::kInfo, static_cast<sim::Time>(i) * kMillisecond, "c",
            "e" + std::to_string(i));
  }
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.stats().overflow_dropped, 6u);
}

TEST(EventLogTest, RecorderSeesEventsBeforeFiltering) {
  EventLogConfig config;
  config.min_level = LogLevel::kError;  // retained log keeps almost nothing
  EventLog log(config);
  FlightRecorder recorder(FlightRecorderConfig{.capacity = 8});
  log.set_recorder(&recorder);

  log.log(LogLevel::kDebug, 1 * kMillisecond, "c", "a");
  log.log(LogLevel::kInfo, 2 * kMillisecond, "c", "b");

  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(recorder.ring_size(), 2u);  // full verbosity on the ring
  // enabled() must stay true so call sites still build the event.
  EXPECT_TRUE(log.enabled(LogLevel::kDebug));
}

}  // namespace
}  // namespace mars::obs
