// Histogram telemetry backend: event-detector hysteresis, digest
// quantization, epoch-rollover sealing/resets, and the in-band accounting
// that makes it the cheap end of the bandwidth frontier.

#include "telemetry/histogram_backend.hpp"

#include <gtest/gtest.h>

#include "control/path_registry.hpp"
#include "dataplane/mars_pipeline.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mars::telemetry {
namespace {

using namespace mars::sim::literals;

TEST(EventDetectorTest, FiresOnlyOnRisingEdge) {
  EventDetector d(0.10, 0.02);
  EXPECT_FALSE(d.update(0.05));  // below enter: armed, silent
  EXPECT_TRUE(d.update(0.10));   // crosses enter (>=): fires once
  EXPECT_TRUE(d.triggered());
  EXPECT_FALSE(d.update(0.50));  // still high: no re-fire
  EXPECT_FALSE(d.update(0.05));  // between exit and enter: still latched
  EXPECT_TRUE(d.triggered());
}

TEST(EventDetectorTest, ReArmsAtExitThreshold) {
  EventDetector d(0.10, 0.02);
  EXPECT_TRUE(d.update(0.20));
  EXPECT_FALSE(d.update(0.02));  // falls to exit (<=): re-arms, no event
  EXPECT_FALSE(d.triggered());
  EXPECT_TRUE(d.update(0.15));   // second rising edge fires again
}

TEST(EventDetectorTest, HysteresisBandSuppressesFlapping) {
  EventDetector d(0.10, 0.02);
  EXPECT_TRUE(d.update(0.12));
  // A signal oscillating inside (exit, enter) produces no further events
  // in either direction — the point of the dead band.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(d.update(i % 2 == 0 ? 0.03 : 0.09));
    EXPECT_TRUE(d.triggered());
  }
}

struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  control::PathRegistry registry{ft.topology, net.routing(), {}};
  dataplane::MarsPipeline pipeline;

  explicit Fixture(dataplane::PipelineConfig cfg = make_config())
      : pipeline(ft.topology.switch_count(), cfg,
                 [](const dataplane::Notification&) {}) {
    pipeline.set_control_mat(registry.mat());
    net.add_observer(pipeline);
  }

  static dataplane::PipelineConfig make_config() {
    dataplane::PipelineConfig cfg;
    cfg.backend.kind = BackendKind::kHistogram;
    return cfg;
  }

  [[nodiscard]] const HistogramBackend& backend() const {
    return dynamic_cast<const HistogramBackend&>(pipeline.backend());
  }

  void traffic(net::FlowId flow, std::uint32_t hash, int count,
               sim::Time gap, sim::Time start = 0) {
    for (int i = 0; i < count; ++i) {
      sim.schedule_in(start + gap * i,
                      [this, flow, hash] { net.inject(flow, hash, 500); });
    }
  }
};

TEST(HistogramBackendTest, DigestsQuantizeLatencyAndDropQueueDepth) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  f.traffic(flow, 7, 40, 10_ms);
  f.sim.run();
  const auto records = f.pipeline.ring_snapshot(flow.sink);
  ASSERT_FALSE(records.empty());
  const auto& backend = f.backend();
  for (const auto& rec : records) {
    EXPECT_EQ(rec.flow, flow);
    // Latency is reported at its log-linear bucket floor (microsecond
    // resolution), and the timestamps are back-dated to keep the
    // controller's latency == sink - source plausibility check happy.
    EXPECT_EQ(rec.latency, backend.quantize_latency(rec.latency));
    EXPECT_EQ(rec.latency, rec.sink_timestamp - rec.source_timestamp);
    // The accuracy cost this backend trades for bandwidth: queue depths
    // live in the in-switch histograms, not in the digests.
    EXPECT_EQ(rec.total_queue_depth, 0u);
  }
}

TEST(HistogramBackendTest, PortHistogramsObserveTrafficPerPort) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  f.traffic(flow, 99, 25, 5_ms);
  f.sim.run(90_ms);  // stay inside epoch 0: nothing reset yet
  const auto& backend = f.backend();
  // The source switch egressed every packet through exactly one uplink
  // (single flow hash): its latency histogram saw each one.
  std::uint64_t total = 0;
  bool found = false;
  for (net::PortId port = 0; port < 8; ++port) {
    if (const auto* h = backend.port_latency_hist(flow.source, port)) {
      total += h->total();
      found |= h->total() > 0;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(total, 18u);  // packets egressed by 90ms at 5ms spacing
}

TEST(HistogramBackendTest, RolloverSealsDigestsAndResetsHistograms) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  // Epoch 0 (period 100ms): 30 packets. Then silence, then 5 packets in
  // epoch 2 whose arrival drives observe_epoch -> rollover at each hop.
  f.traffic(flow, 7, 30, 3_ms);
  f.traffic(flow, 7, 5, 3_ms, 230_ms);
  f.sim.run();
  const auto& backend = f.backend();
  EXPECT_GT(backend.counters().epochs, 0u);
  // Epoch-0 digests were sealed at rollover and are still drainable.
  EXPECT_GE(f.pipeline.backend().store_size(flow.sink), 1u);
  const auto records = f.pipeline.ring_snapshot(flow.sink);
  ASSERT_GE(records.size(), 2u);  // sealed epoch-0 + live epoch-2 digest
  // The rollover cleared the source's port histograms: only the 5 late
  // packets remain counted.
  std::uint64_t total = 0;
  for (net::PortId port = 0; port < 8; ++port) {
    if (const auto* h = backend.port_latency_hist(flow.source, port)) {
      total += h->total();
    }
  }
  EXPECT_EQ(total, 5u);
}

TEST(HistogramBackendTest, DigestFoldingBoundsStoreGrowth) {
  // Many flows, many epochs: the sink store holds one digest per (flow,
  // epoch) at most — bounded by the digest ring, never per-packet.
  Fixture f;
  const net::FlowId a{f.ft.edge[0], f.ft.edge[1]};
  const net::FlowId b{f.ft.edge[2], f.ft.edge[1]};
  f.traffic(a, 7, 200, 2_ms);
  f.traffic(b, 9, 200, 2_ms);
  f.sim.run();  // 400ms of traffic = 4+ epochs, 400 delivered packets
  const auto records = f.pipeline.ring_snapshot(a.sink);
  EXPECT_LE(records.size(), 2u * 6u)
      << "at most flows x epochs digests, never per-packet records";
  // Drain = sealed digests (counted as exports) + live current-epoch
  // digests, matching the store occupancy exactly.
  EXPECT_EQ(records.size(), f.pipeline.backend().store_size(a.sink));
  EXPECT_LE(f.backend().counters().records, records.size());
}

TEST(HistogramBackendTest, TriggerFiresUnderInducedTailLatency) {
  dataplane::PipelineConfig cfg = Fixture::make_config();
  // Make the trigger reachable in a short run: a 1ms tail bound with a
  // low enter fraction.
  cfg.backend.histogram.tail_latency = 1_ms;
  cfg.backend.histogram.trigger_enter = 0.5;
  cfg.backend.histogram.trigger_exit = 0.1;
  Fixture f(cfg);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 7, out));
  f.net.node(flow.source).set_max_pps(out, 50.0);  // force queueing delay
  f.traffic(flow, 7, 120, 5_ms);
  f.sim.run();
  EXPECT_GE(f.backend().counters().triggers, 1u)
      << "sustained tail latency above the bound must fire the detector";
  EXPECT_GE(f.pipeline.backend().store_size(flow.sink), 1u)
      << "the trigger seals live digests for immediate drainability";
}

}  // namespace
}  // namespace mars::telemetry
