#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "obs/tracer.hpp"
#include "sim/time.hpp"

namespace {

using namespace mars;
using namespace mars::sim::literals;

TEST(SpanTracer, StartsEmpty) {
  obs::SpanTracer tracer;
  EXPECT_TRUE(tracer.empty());
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(SpanTracer, VirtualEventsRenderInMicroseconds) {
  obs::SpanTracer tracer;
  tracer.complete("window", "control", 2_ms, 5_ms, {{"records", 7}});
  tracer.instant("notify", "dataplane", 1_ms);
  tracer.counter("queue_depth", 3_ms, 42.0);
  EXPECT_EQ(tracer.size(), 3u);

  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();

  // 2 ms -> ts 2000 us, dur 3000 us on the virtual-time track.
  EXPECT_NE(json.find("\"name\": \"window\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 2000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 3000"), std::string::npos);
  EXPECT_NE(json.find("\"records\": 7"), std::string::npos);
  // Instants are process-scoped so Perfetto draws them full-height.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"p\""), std::string::npos);
  // Counters carry their value in args.value.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 42"), std::string::npos);
}

TEST(SpanTracer, ChromeJsonHasMetadataForBothClockDomains) {
  obs::SpanTracer tracer;
  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("virtual time (simulated)"), std::string::npos);
  EXPECT_NE(json.find("wall clock (host)"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(SpanTracer, WallSpanRecordsOnDestruction) {
  obs::SpanTracer tracer;
  {
    auto span = tracer.wall_span("drain", "control");
    span.arg({"records", std::uint64_t{12}});
    EXPECT_TRUE(tracer.empty());  // nothing until the scope closes
  }
  EXPECT_EQ(tracer.size(), 1u);

  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\": \"drain\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);  // wall track
  EXPECT_NE(json.find("\"records\": 12"), std::string::npos);
}

TEST(SpanTracer, MovedFromWallSpanDoesNotDoubleRecord) {
  obs::SpanTracer tracer;
  {
    auto a = tracer.wall_span("once", "control");
    auto b = std::move(a);
    // `a` is dead here; only `b`'s destruction may record.
  }
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(SpanTracer, StringAndNumberArgsRenderDistinctly) {
  obs::SpanTracer tracer;
  tracer.instant("fault", "scenario", 0,
                 {{"kind", "micro-burst"}, {"severity", 3.5}});
  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"kind\": \"micro-burst\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": 3.5"), std::string::npos);
}

}  // namespace
