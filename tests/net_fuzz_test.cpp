// Randomized (seeded, deterministic) stress tests of the substrate:
// arbitrary interleavings of traffic, fault application and removal must
// never violate conservation or crash, and the MARS pipeline must keep
// its tables consistent throughout.

#include <gtest/gtest.h>

#include "control/path_registry.hpp"
#include "dataplane/mars_pipeline.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/traffic_gen.hpp"

namespace mars {
namespace {

using namespace mars::sim::literals;

class NetFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetFuzzTest, ConservationUnderRandomFaultChurn) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);

  sim::Simulator simulator;
  auto ft = net::build_fat_tree(
      {.k = 4, .edge_agg_gbps = 0.006, .agg_core_gbps = 0.010});
  net::Network network(simulator, ft.topology);
  for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    network.node(sw).set_queue_capacity(64 + rng.below(512));
  }

  workload::TrafficGenerator traffic(network, seed * 31 + 1);
  workload::BackgroundConfig cfg;
  cfg.flows = 16 + static_cast<int>(rng.below(24));
  cfg.pps = 150 + static_cast<double>(rng.below(200));
  traffic.add_background(cfg, ft.edge, 4);
  traffic.start();

  // Random fault churn: every ~200ms flip a random knob on a random port.
  for (int step = 0; step < 15; ++step) {
    const auto at = static_cast<sim::Time>(200_ms * step + rng.below(100));
    const auto sw = static_cast<net::SwitchId>(
        rng.below(network.switch_count()));
    const auto ports = network.topology().port_count(sw);
    if (ports == 0) continue;
    const auto port = static_cast<net::PortId>(rng.below(ports));
    const int knob = static_cast<int>(rng.below(4));
    simulator.schedule_at(at, [&network, sw, port, knob, &rng] {
      auto& node = network.node(sw);
      switch (knob) {
        case 0: node.set_max_pps(port, 30.0 + rng.uniform() * 200.0); break;
        case 1: node.set_extra_delay(port, 1_ms + rng.below(50) * 1_ms);
          break;
        case 2: node.set_drop_probability(port, rng.uniform() * 0.9); break;
        default: node.clear_faults(); break;
      }
    });
  }
  traffic.stop_at(4_s);
  simulator.run(4_s);
  // Drain: lift every fault and let queues flush.
  for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    network.node(sw).clear_faults();
  }
  simulator.run(simulator.now() + 30_s);

  const auto& stats = network.stats();
  EXPECT_GT(stats.injected, 100u);
  // Exact conservation once fully drained.
  EXPECT_EQ(stats.injected,
            stats.delivered + stats.dropped + stats.unroutable);
  EXPECT_EQ(stats.unroutable, 0u);
  // No residual buffered packets.
  for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    EXPECT_EQ(network.node(sw).total_queue_depth(), 0u);
  }
}

TEST_P(NetFuzzTest, PipelinePathIdsAlwaysDecompress) {
  const std::uint64_t seed = GetParam();
  sim::Simulator simulator;
  auto ft = net::build_fat_tree({.k = 4});
  net::Network network(simulator, ft.topology);
  control::PathRegistry registry(ft.topology, network.routing(), {});
  dataplane::MarsPipeline pipeline(ft.topology.switch_count(), {}, nullptr);
  pipeline.set_control_mat(registry.mat());
  network.add_observer(pipeline);

  int checked = 0;
  network.set_delivery_callback([&](const net::Packet& p, sim::Time) {
    const auto* path = registry.lookup(p.path_id);
    ASSERT_NE(path, nullptr) << "PathID " << p.path_id;
    EXPECT_EQ(*path, p.true_path);
    ++checked;
  });

  workload::TrafficGenerator traffic(network, seed);
  workload::BackgroundConfig cfg;
  cfg.flows = 32;
  traffic.add_background(cfg, ft.edge, 4);
  traffic.start();
  simulator.run(2_s);
  EXPECT_GT(checked, 1000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mars
