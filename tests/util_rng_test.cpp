#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.hpp"

namespace mars::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats rs;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    rs.add(u);
  }
  EXPECT_NEAR(rs.mean(), 0.5, 0.01);
  EXPECT_NEAR(rs.stddev(), 1.0 / std::sqrt(12.0), 0.01);
}

TEST(RngTest, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10'000, 500);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.range(4, 10);
    ASSERT_GE(v, 4);
    ASSERT_LE(v, 10);
    saw_lo |= (v == 4);
    saw_hi |= (v == 10);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  RunningStats rs;
  for (int i = 0; i < 200'000; ++i) rs.add(rng.exponential(2.0));
  EXPECT_NEAR(rs.mean(), 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  RunningStats rs;
  for (int i = 0; i < 200'000; ++i) rs.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 3.0, 0.05);
}

TEST(RngTest, ParetoIsHeavyTailedAboveScale) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) ASSERT_GE(rng.pareto(1.5, 2.0), 1.5);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(77);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ChanceProbability) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits, 30'000, 1'000);
}

}  // namespace
}  // namespace mars::util
