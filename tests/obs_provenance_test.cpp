// ProvenanceGraph: id assignment, annotation, field-joined lookup,
// structural validation, forward reachability, and the JSON export shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_reader.hpp"
#include "obs/provenance.hpp"

namespace mars::obs {
namespace {

using NodeKind = ProvenanceGraph::NodeKind;

TEST(ProvenanceTest, NodeIdsArePerKindSequences) {
  ProvenanceGraph g;
  EXPECT_EQ(g.add_node(NodeKind::kFault), "fault:0");
  EXPECT_EQ(g.add_node(NodeKind::kSuspect), "suspect:0");
  EXPECT_EQ(g.add_node(NodeKind::kFault), "fault:1");
  EXPECT_EQ(g.add_node(NodeKind::kPattern), "pattern:0");
  EXPECT_EQ(g.nodes().size(), 4u);

  ASSERT_NE(g.find("fault:1"), nullptr);
  EXPECT_EQ(g.find("fault:1")->kind, NodeKind::kFault);
  EXPECT_EQ(g.find("fault:7"), nullptr);
  EXPECT_EQ(g.nodes_of(NodeKind::kFault).size(), 2u);
}

TEST(ProvenanceTest, AnnotateOverwritesSameKeyField) {
  ProvenanceGraph g;
  const std::string id =
      g.add_node(NodeKind::kSuspect, {{"key", "drop|switch|3"}});
  g.annotate(id, {"final_rank", std::int64_t{2}});
  g.annotate(id, {"final_rank", std::int64_t{1}});  // overwrite

  const ProvenanceGraph::Node* node = g.find(id);
  ASSERT_NE(node, nullptr);
  ASSERT_EQ(node->fields.size(), 2u);
  const auto it = std::find_if(
      node->fields.begin(), node->fields.end(),
      [](const SpanArg& a) { return a.key == "final_rank"; });
  ASSERT_NE(it, node->fields.end());
  EXPECT_DOUBLE_EQ(it->number, 1.0);
}

TEST(ProvenanceTest, FindNodesJoinsOnStringField) {
  ProvenanceGraph g;
  g.add_node(NodeKind::kSuspect, {{"key", "rate|switch|5"}});
  g.add_node(NodeKind::kSuspect, {{"key", "drop|port|2|p1"}});
  g.add_node(NodeKind::kSuspect, {{"key", "rate|switch|5"}});  // duplicate key
  g.add_node(NodeKind::kPattern, {{"key", "rate|switch|5"}});  // wrong kind

  const auto hits = g.find_nodes(NodeKind::kSuspect, "key", "rate|switch|5");
  EXPECT_EQ(hits, (std::vector<std::string>{"suspect:0", "suspect:2"}));
  EXPECT_TRUE(
      g.find_nodes(NodeKind::kSuspect, "key", "missing").empty());
}

TEST(ProvenanceTest, ValidateFlagsDanglingEdges) {
  ProvenanceGraph g;
  const std::string epoch = g.add_node(NodeKind::kEpoch);
  const std::string pattern = g.add_node(NodeKind::kPattern);
  g.add_edge(epoch, pattern, "mined");
  EXPECT_TRUE(g.validate().empty());

  g.add_edge(epoch, "suspect:9", "scored");  // never materialises
  const auto problems = g.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("suspect:9"), std::string::npos);
}

TEST(ProvenanceTest, ReachableFromFollowsForwardEdges) {
  ProvenanceGraph g;
  const std::string epoch = g.add_node(NodeKind::kEpoch);
  const std::string p0 = g.add_node(NodeKind::kPattern);
  const std::string p1 = g.add_node(NodeKind::kPattern);  // orphan
  const std::string s0 = g.add_node(NodeKind::kSuspect);
  g.add_edge(epoch, p0, "mined");
  g.add_edge(p0, s0, "scored");

  const auto reached = g.reachable_from(NodeKind::kEpoch);
  EXPECT_NE(std::find(reached.begin(), reached.end(), s0), reached.end());
  EXPECT_NE(std::find(reached.begin(), reached.end(), epoch),
            reached.end());  // seeds included
  EXPECT_EQ(std::find(reached.begin(), reached.end(), p1), reached.end());
}

TEST(ProvenanceTest, ClearResetsIdCounters) {
  ProvenanceGraph g;
  g.add_node(NodeKind::kFault);
  g.add_edge("fault:0", "fault:0", "self");
  g.clear();
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.edges().empty());
  EXPECT_EQ(g.add_node(NodeKind::kFault), "fault:0");
}

TEST(ProvenanceTest, JsonExportRoundTripsThroughReader) {
  ProvenanceGraph g;
  const std::string fault = g.add_node(
      NodeKind::kFault, {{"kind", "rate"}, {"ts_s", 3.0}});
  const std::string suspect = g.add_node(
      NodeKind::kSuspect, {{"rank", std::int64_t{1}}, {"cause", "rate"}});
  g.add_edge(fault, suspect, "manifested_as");

  std::ostringstream out;
  g.write_json(out);
  const JsonValue doc = JsonValue::parse(out.str());

  const JsonValue& nodes = *doc.find("nodes");
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes.at(0).find("id")->as_string(), "fault:0");
  EXPECT_EQ(nodes.at(0).find("kind")->as_string(), "fault");
  EXPECT_EQ(nodes.at(0).find("fields")->find("kind")->as_string(), "rate");
  EXPECT_DOUBLE_EQ(
      nodes.at(0).find("fields")->find("ts_s")->as_number(), 3.0);

  const JsonValue& edges = *doc.find("edges");
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges.at(0).find("from")->as_string(), "fault:0");
  EXPECT_EQ(edges.at(0).find("to")->as_string(), "suspect:0");
  EXPECT_EQ(edges.at(0).find("relation")->as_string(), "manifested_as");
}

}  // namespace
}  // namespace mars::obs
