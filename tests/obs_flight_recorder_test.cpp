// FlightRecorder: bounded ring, metric-delta synthesis, trigger/dump
// semantics, and the JSON dump shape.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json_reader.hpp"
#include "obs/registry.hpp"
#include "sim/time.hpp"

namespace mars::obs {
namespace {

using sim::kMillisecond;
using sim::kSecond;

LogEvent make_event(sim::Time at, std::string name) {
  LogEvent e;
  e.at = at;
  e.component = "test";
  e.event = std::move(name);
  return e;
}

TEST(FlightRecorderTest, RingIsBoundedOldestFirst) {
  FlightRecorder recorder(FlightRecorderConfig{.capacity = 3});
  for (int i = 0; i < 7; ++i) {
    recorder.record(
        make_event(static_cast<sim::Time>(i) * kMillisecond,
                   "e" + std::to_string(i)));
  }
  EXPECT_EQ(recorder.ring_size(), 3u);

  recorder.trigger("probe", 10 * kMillisecond);
  ASSERT_EQ(recorder.dumps().size(), 1u);
  const auto& events = recorder.dumps()[0].events;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].event, "e4");  // oldest survivor first
  EXPECT_EQ(events[2].event, "e6");
}

TEST(FlightRecorderTest, ShouldTriggerIsStrictlyBelowThreshold) {
  FlightRecorder recorder(
      FlightRecorderConfig{.confidence_threshold = 0.8});
  EXPECT_TRUE(recorder.should_trigger(0.5));
  EXPECT_FALSE(recorder.should_trigger(0.8));  // strict
  EXPECT_FALSE(recorder.should_trigger(0.99));
}

TEST(FlightRecorderTest, NoteMetricsAppendsOnlyMovedCounters) {
  FlightRecorder recorder(FlightRecorderConfig{.capacity = 16});
  MetricsRegistry registry;
  auto& moved = registry.counter("ctl.retries");
  registry.counter("ctl.idle");  // never incremented

  recorder.note_metrics(1 * kSecond, registry.snapshot());
  EXPECT_EQ(recorder.ring_size(), 0u);  // first tick only sets the baseline

  moved.inc(5);
  recorder.note_metrics(2 * kSecond, registry.snapshot());
  ASSERT_EQ(recorder.ring_size(), 1u);

  recorder.trigger("probe", 2 * kSecond);
  const auto& events = recorder.dumps()[0].events;
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].component, "metrics");
  EXPECT_EQ(events[0].event, "delta");
  ASSERT_EQ(events[0].fields.size(), 1u);  // idle counter excluded
  EXPECT_EQ(events[0].fields[0].key, "ctl.retries");
  EXPECT_DOUBLE_EQ(events[0].fields[0].number, 5.0);

  // No movement between ticks => no synthetic event at all.
  recorder.note_metrics(3 * kSecond, registry.snapshot());
  EXPECT_EQ(recorder.ring_size(), 1u);
}

TEST(FlightRecorderTest, MaxDumpsRetainsEarlyDumpsButCountsAllTriggers) {
  FlightRecorder recorder(
      FlightRecorderConfig{.capacity = 4, .max_dumps = 2});
  recorder.record(make_event(1 * kMillisecond, "seed"));
  for (int i = 0; i < 5; ++i) {
    recorder.trigger("t" + std::to_string(i),
                     static_cast<sim::Time>(i) * kSecond);
  }
  EXPECT_EQ(recorder.triggers_total(), 5u);
  ASSERT_EQ(recorder.dumps().size(), 2u);
  EXPECT_EQ(recorder.dumps()[0].reason, "t0");
  EXPECT_EQ(recorder.dumps()[1].reason, "t1");
}

TEST(FlightRecorderTest, DumpsSnapshotWithoutClearing) {
  FlightRecorder recorder(FlightRecorderConfig{.capacity = 8});
  recorder.record(make_event(1 * kMillisecond, "a"));
  recorder.trigger("first", 1 * kSecond);
  recorder.record(make_event(2 * kMillisecond, "b"));
  recorder.trigger("second", 2 * kSecond);

  ASSERT_EQ(recorder.dumps().size(), 2u);
  EXPECT_EQ(recorder.dumps()[0].events.size(), 1u);
  EXPECT_EQ(recorder.dumps()[1].events.size(), 2u);  // shared history
}

TEST(FlightRecorderTest, WriteJsonShape) {
  FlightRecorder recorder(FlightRecorderConfig{.capacity = 4});
  LogEvent e = make_event(250 * kMillisecond, "quarantine");
  e.level = LogLevel::kWarn;
  e.fields.emplace_back("switch", std::uint64_t{7});
  recorder.record(e);
  recorder.trigger("low_confidence", 1 * kSecond);

  std::ostringstream out;
  recorder.write_json(out);
  const JsonValue doc = JsonValue::parse(out.str());
  EXPECT_EQ(doc.find("triggers_total")->as_uint(), 1u);
  const JsonValue& dumps = *doc.find("dumps");
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps.at(0).find("reason")->as_string(), "low_confidence");
  EXPECT_DOUBLE_EQ(dumps.at(0).find("ts_s")->as_number(), 1.0);
  const JsonValue& events = *dumps.at(0).find("events");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.at(0).find("level")->as_string(), "warn");
  EXPECT_EQ(events.at(0).find("event")->as_string(), "quarantine");
  EXPECT_EQ(events.at(0).find("fields")->find("switch")->as_uint(), 7u);
}

TEST(FlightRecorderTest, ConfigureResetsEverything) {
  FlightRecorder recorder(FlightRecorderConfig{.capacity = 4});
  recorder.record(make_event(1 * kMillisecond, "a"));
  recorder.trigger("t", 1 * kSecond);
  recorder.configure(FlightRecorderConfig{.capacity = 2});
  EXPECT_EQ(recorder.ring_size(), 0u);
  EXPECT_TRUE(recorder.dumps().empty());
  EXPECT_EQ(recorder.triggers_total(), 0u);
}

}  // namespace
}  // namespace mars::obs
