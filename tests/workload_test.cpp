#include "workload/traffic_gen.hpp"

#include <gtest/gtest.h>

#include <map>

#include "net/fat_tree.hpp"
#include "sim/simulator.hpp"

namespace mars::workload {
namespace {

using namespace mars::sim::literals;

struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  TrafficGenerator gen{net, 7};
};

TEST(TrafficGeneratorTest, FlowRateApproximatesSpec) {
  Fixture f;
  FlowSpec spec;
  spec.flow = {f.ft.edge[0], f.ft.edge[1]};
  spec.pps = 200.0;
  f.gen.add_flow(spec);
  f.gen.start();
  f.sim.run(5_s);
  // Poisson with rate 200/s over 5s: ~1000 packets, generous tolerance.
  EXPECT_NEAR(static_cast<double>(f.gen.packets_injected()), 1000.0, 150.0);
}

TEST(TrafficGeneratorTest, FlowRespectsStartStop) {
  Fixture f;
  FlowSpec spec;
  spec.flow = {f.ft.edge[0], f.ft.edge[1]};
  spec.pps = 1000.0;
  spec.start = 1_s;
  spec.stop = 2_s;
  f.gen.add_flow(spec);
  f.gen.start();
  f.sim.run(900_ms);
  EXPECT_EQ(f.gen.packets_injected(), 0u);
  f.sim.run(5_s);
  EXPECT_NEAR(static_cast<double>(f.gen.packets_injected()), 1000.0, 200.0);
}

TEST(TrafficGeneratorTest, PacketSizesWithinEthernetBounds) {
  Fixture f;
  std::vector<std::uint32_t> sizes;
  f.net.set_delivery_callback([&](const net::Packet& p, sim::Time) {
    sizes.push_back(p.size_bytes);
  });
  FlowSpec spec;
  spec.flow = {f.ft.edge[0], f.ft.edge[1]};
  spec.pps = 500.0;
  f.gen.add_flow(spec);
  f.gen.start();
  f.sim.run(2_s);
  ASSERT_GT(sizes.size(), 100u);
  for (const auto s : sizes) {
    EXPECT_GE(s, 64u);
    EXPECT_LE(s, 1500u);
  }
}

TEST(TrafficGeneratorTest, BackgroundHonoursInterPodFraction) {
  Fixture f;
  BackgroundConfig cfg;
  cfg.flows = 200;
  cfg.inter_pod_fraction = 0.8;
  f.gen.add_background(cfg, f.ft.edge, 4);
  int inter = 0;
  for (const auto& spec : f.gen.flows()) {
    ASSERT_NE(spec.flow.source, spec.flow.sink);
    const int per_pod = 2;
    const int src_pod = static_cast<int>(spec.flow.source >= 0
        ? (std::find(f.ft.edge.begin(), f.ft.edge.end(), spec.flow.source) -
           f.ft.edge.begin()) / per_pod : 0);
    const int dst_pod = static_cast<int>(
        (std::find(f.ft.edge.begin(), f.ft.edge.end(), spec.flow.sink) -
         f.ft.edge.begin()) / per_pod);
    inter += (src_pod != dst_pod);
  }
  EXPECT_NEAR(inter, 160, 30);
}

TEST(TrafficGeneratorTest, BurstExceedsBackgroundRate) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  f.gen.add_burst(flow, 1500.0, 1_s, 1_s);
  f.gen.start();
  f.sim.run(3_s);
  // ~1500 packets within the burst second (paper: > 1000 pps).
  EXPECT_GT(f.gen.packets_injected(), 1000u);
  EXPECT_LT(f.gen.packets_injected(), 2200u);
}

TEST(TrafficGeneratorTest, DiurnalModulationChangesRateOverTime) {
  Fixture f;
  BackgroundConfig cfg;
  cfg.flows = 1;
  cfg.pps = 400.0;
  cfg.diurnal.enabled = true;
  cfg.diurnal.amplitude = 0.9;
  cfg.diurnal.period = 8_s;
  f.gen.add_background(cfg, f.ft.edge, 4);
  f.gen.start();
  // Count arrivals per second over one full period.
  std::map<int, int> per_second;
  f.net.set_delivery_callback([&](const net::Packet&, sim::Time t) {
    ++per_second[static_cast<int>(sim::to_seconds(t))];
  });
  f.sim.run(8_s);
  int lo = INT_MAX, hi = 0;
  for (const auto& [sec, n] : per_second) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  // Peak-to-trough swing must be pronounced under amplitude 0.9.
  EXPECT_GT(hi, 2 * std::max(lo, 1));
}

TEST(TrafficGeneratorTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    auto ft = net::build_fat_tree({.k = 4});
    net::Network net{sim, ft.topology};
    TrafficGenerator gen{net, seed};
    BackgroundConfig cfg;
    cfg.flows = 8;
    gen.add_background(cfg, ft.edge, 4);
    gen.start();
    sim.run(2 * sim::kSecond);
    return gen.packets_injected();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace mars::workload
