// Gray-failure fault family: Gilbert–Elliott flap determinism, per-kind
// manifestation accounting, and the late-injection liveness fix (the
// injector must never target a port whose flows finished before the
// fault window opens).

#include "faults/injector.hpp"
#include "faults/schedule.hpp"

#include <gtest/gtest.h>

#include "net/fat_tree.hpp"
#include "sim/simulator.hpp"

namespace mars::faults {
namespace {

using namespace mars::sim::literals;

struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  workload::TrafficGenerator gen{net, 3};
  FaultInjector injector{net, gen, 17};

  explicit Fixture(bool traffic = true) {
    if (!traffic) return;
    workload::BackgroundConfig cfg;
    cfg.flows = 8;
    gen.add_background(cfg, ft.edge, 4);
    gen.start();
  }
};

FaultEvent gray_event(FaultKind kind, sim::Time at, sim::Time duration) {
  FaultEvent event;
  event.kind = kind;
  event.at = at;
  event.duration = duration;
  return event;
}

// The whole Gilbert–Elliott timeline is drawn at injection time from the
// injector's seeded stream: two injectors with the same seed produce
// bit-identical transition sequences; a different seed diverges.
TEST(GrayFaultsTest, FlapTimelineIsSeedDeterministic) {
  Fixture a, b;
  const auto ta = a.injector.inject(gray_event(FaultKind::kLinkFlap, 1_s, 3_s));
  const auto tb = b.injector.inject(gray_event(FaultKind::kLinkFlap, 1_s, 3_s));
  ASSERT_TRUE(ta.has_value());
  ASSERT_TRUE(tb.has_value());
  ASSERT_FALSE(ta->flap_transitions.empty());
  EXPECT_EQ(ta->flap_transitions, tb->flap_transitions);
  EXPECT_EQ(ta->switch_id, tb->switch_id);
  EXPECT_EQ(ta->port, tb->port);

  sim::Simulator sim2;
  net::Network net2{sim2, a.ft.topology};
  workload::TrafficGenerator gen2{net2, 3};
  FaultInjector other{net2, gen2, 18};  // different injector seed
  workload::BackgroundConfig cfg;
  cfg.flows = 8;
  gen2.add_background(cfg, a.ft.edge, 4);
  gen2.start();
  const auto tc = other.inject(gray_event(FaultKind::kLinkFlap, 1_s, 3_s));
  ASSERT_TRUE(tc.has_value());
  EXPECT_NE(ta->flap_transitions, tc->flap_transitions);
}

// Transitions alternate down/up inside (at, at+duration) and the mean
// dwell knobs shape the timeline: a much shorter mean down time yields
// more transitions over the same window.
TEST(GrayFaultsTest, FlapTransitionsStayInsideFaultWindow) {
  Fixture f;
  const auto truth =
      f.injector.inject(gray_event(FaultKind::kLinkFlap, 1_s, 3_s));
  ASSERT_TRUE(truth.has_value());
  for (const sim::Time t : truth->flap_transitions) {
    EXPECT_GT(t, 1_s);
    EXPECT_LT(t, 4_s);
  }
  for (std::size_t i = 1; i < truth->flap_transitions.size(); ++i) {
    EXPECT_LT(truth->flap_transitions[i - 1], truth->flap_transitions[i]);
  }
}

// A flapping link actually drops packets while down, and the injector's
// probes record the burst structure: manifested in some but (for dwell
// times comparable to the window) typically not all windows.
TEST(GrayFaultsTest, FlapManifestsAndIsAccounted) {
  Fixture f;
  const auto truth =
      f.injector.inject(gray_event(FaultKind::kLinkFlap, 1_s, 2_s));
  ASSERT_TRUE(truth.has_value());
  f.sim.run(4_s);
  const GroundTruth& final = f.injector.injected().front();
  EXPECT_GT(final.windows_total, 0u);
  EXPECT_GT(final.windows_active, 0u);
  EXPECT_LE(final.windows_active, final.windows_total);
  EXPECT_GT(final.manifestation_ratio, 0.0);
  EXPECT_GT(f.net.stats().dropped, 0u);
  // Drops were attributed to the fault, not just ambient congestion.
  std::uint64_t fault_drops = 0;
  for (net::PortId p = 0; p < f.net.topology().port_count(final.switch_id);
       ++p) {
    fault_drops += f.net.node(final.switch_id).counters(p).fault_drops;
  }
  EXPECT_GT(fault_drops, 0u);
}

// A gray fault pinned to an unloaded switch never perturbs a packet, and
// the bookkeeping says so: every probe window inactive, ratio 0. This is
// the honesty property the flap-aware confidence calibration builds on.
TEST(GrayFaultsTest, UnloadedSlowDrainManifestsNowhere) {
  Fixture f{/*traffic=*/false};
  auto event = gray_event(FaultKind::kSlowDrain, 1_s, 2_s);
  event.target_switch = f.ft.core.front();
  event.target_port = 0;
  const auto truth = f.injector.inject(event);
  ASSERT_TRUE(truth.has_value());
  f.sim.run(4_s);
  const GroundTruth& final = f.injector.injected().front();
  EXPECT_GT(final.windows_total, 0u);
  EXPECT_EQ(final.windows_active, 0u);
  EXPECT_EQ(final.manifestation_ratio, 0.0);
}

TEST(GrayFaultsTest, GatedDelayInertBelowThreshold) {
  Fixture f{/*traffic=*/false};
  auto event = gray_event(FaultKind::kLoadGatedDelay, 1_s, 2_s);
  event.target_switch = f.ft.core.front();
  event.target_port = 0;
  event.gray.gate_depth = 64;  // far above any queue this trial builds
  const auto truth = f.injector.inject(event);
  ASSERT_TRUE(truth.has_value());
  f.sim.run(4_s);
  EXPECT_EQ(f.injector.injected().front().manifestation_ratio, 0.0);
}

TEST(GrayFaultsTest, DescribeIncludesManifestation) {
  GroundTruth t;
  t.kind = FaultKind::kLinkFlap;
  t.switch_id = 9;
  t.port = 2;
  EXPECT_EQ(t.describe(), "link-flap @ s9 port 2");
  t.windows_total = 10;
  t.windows_active = 7;
  EXPECT_EQ(t.describe(), "link-flap @ s9 port 2 manifested 7/10 windows");
}

// Regression for the late-injection liveness fix: with every background
// flow finished before the fault window opens, the draw must either find
// the one still-alive flow or (if none) decline to inject — never target
// a port whose traffic is already gone.
TEST(GrayFaultsTest, LateInjectionDrawsFromAliveFlowsOnly) {
  Fixture f{/*traffic=*/false};
  // One short-lived flow (stops at 1s) and one long-lived flow on a
  // disjoint edge pair; inject at 2s.
  workload::FlowSpec dead;
  dead.flow = {f.ft.edge[0], f.ft.edge[1]};
  dead.flow_hash = 7;
  dead.stop = 1_s;
  f.gen.add_flow(dead);
  workload::FlowSpec alive;
  alive.flow = {f.ft.edge[2], f.ft.edge[3]};
  alive.flow_hash = 11;
  f.gen.add_flow(alive);
  f.gen.start();

  const auto truth = f.injector.inject(FaultKind::kDrop, 2_s);
  ASSERT_TRUE(truth.has_value());
  // The target must sit on the alive flow's path: walk it and collect the
  // (switch, egress) hops.
  bool on_alive_path = false;
  net::SwitchId at = alive.flow.source;
  for (int hop = 0; hop < 8 && at != alive.flow.sink; ++hop) {
    net::PortId out = 0;
    ASSERT_TRUE(
        f.net.routing().select_port(at, alive.flow.sink, alive.flow_hash, out));
    if (at == truth->switch_id && out == truth->port) on_alive_path = true;
    at = f.net.topology().peer(at, out).neighbor;
  }
  EXPECT_TRUE(on_alive_path)
      << "fault landed on " << truth->describe()
      << " which the only alive flow never crosses";
}

TEST(GrayFaultsTest, NoAliveFlowMeansNoInjection) {
  Fixture f{/*traffic=*/false};
  workload::FlowSpec dead;
  dead.flow = {f.ft.edge[0], f.ft.edge[1]};
  dead.flow_hash = 7;
  dead.stop = 1_s;
  f.gen.add_flow(dead);
  f.gen.start();
  EXPECT_FALSE(f.injector.inject(FaultKind::kDrop, 2_s).has_value());
}

// Schedule validation: gray parameter blocks only attach to gray kinds,
// and out-of-range values are named errors.
TEST(GrayFaultsTest, ValidateRejectsGrayParamsOnCleanKinds) {
  FaultSchedule schedule;
  auto event = gray_event(FaultKind::kDrop, 1_s, 1_s);
  event.gray.flap_mean_up_ms = 50.0;
  schedule.add(event);
  const auto errors = schedule.validate(5_s);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("gray"), std::string::npos);
}

TEST(GrayFaultsTest, ValidateRejectsOutOfRangeGrayParams) {
  FaultSchedule schedule;
  auto flap = gray_event(FaultKind::kLinkFlap, 1_s, 1_s);
  flap.gray.flap_mean_down_ms = -3.0;
  schedule.add(flap);
  auto loss = gray_event(FaultKind::kAsymmetricLoss, 1_s, 1_s);
  loss.gray.loss_fwd = 1.5;
  schedule.add(loss);
  auto gate = gray_event(FaultKind::kLoadGatedDelay, 1_s, 1_s);
  gate.gray.gate_depth = 1;
  schedule.add(gate);
  const auto errors = schedule.validate(5_s);
  EXPECT_EQ(errors.size(), 3u);
}

}  // namespace
}  // namespace mars::faults
