#include "net/network.hpp"
#include "net/switch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/fat_tree.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mars::net {
namespace {

using namespace mars::sim::literals;

struct Delivery {
  Packet pkt;
  sim::Time at;
};

struct Fixture {
  sim::Simulator sim;
  FatTree ft = build_fat_tree({.k = 4});
  Network net{sim, ft.topology};
  std::vector<Delivery> deliveries;

  Fixture() {
    net.set_delivery_callback([this](const Packet& p, sim::Time t) {
      deliveries.push_back(Delivery{p, t});
    });
  }
};

TEST(NetworkTest, DeliversAPacketEndToEnd) {
  Fixture f;
  const FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  f.net.inject(flow, 0xABCD, 1000);
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  const auto& d = f.deliveries[0];
  EXPECT_EQ(d.pkt.flow, flow);
  // Inter-pod path visits 5 switches.
  EXPECT_EQ(d.pkt.true_path.size(), 5u);
  EXPECT_EQ(d.pkt.true_path.front(), flow.source);
  EXPECT_EQ(d.pkt.true_path.back(), flow.sink);
  EXPECT_GT(d.at, 0);
  EXPECT_EQ(f.net.stats().delivered, 1u);
  EXPECT_EQ(f.net.stats().injected, 1u);
}

TEST(NetworkTest, LatencyIncludesSerializationAndPropagation) {
  Fixture f;
  const FlowId flow{f.ft.edge[0], f.ft.edge[1]};  // intra-pod: 3 switches
  f.net.inject(flow, 1, 1250);  // 1250B at 10Gbps = 1us serialization
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  // 2 store-and-forward hops: 2 * (1us serialization + 1us propagation).
  EXPECT_EQ(f.deliveries[0].at, 4_us);
}

TEST(NetworkTest, SamePacketsSameFlowFollowOnePath) {
  Fixture f;
  const FlowId flow{f.ft.edge[0], f.ft.edge[6]};
  for (int i = 0; i < 20; ++i) f.net.inject(flow, 777, 500);
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 20u);
  for (const auto& d : f.deliveries) {
    EXPECT_EQ(d.pkt.true_path, f.deliveries[0].pkt.true_path);
  }
}

TEST(NetworkTest, ConservationAcrossManyFlows) {
  Fixture f;
  int injected = 0;
  for (std::uint32_t h = 0; h < 50; ++h) {
    for (std::size_t s = 0; s < f.ft.edge.size(); ++s) {
      const FlowId flow{f.ft.edge[s], f.ft.edge[(s + 3) % f.ft.edge.size()]};
      f.net.inject(flow, h * 7919 + static_cast<std::uint32_t>(s), 800);
      ++injected;
    }
  }
  f.sim.run();
  const auto& st = f.net.stats();
  EXPECT_EQ(st.injected, static_cast<std::uint64_t>(injected));
  EXPECT_EQ(st.injected, st.delivered + st.dropped + st.unroutable);
  EXPECT_EQ(st.dropped, 0u);
}

TEST(NetworkTest, ProcessRateFaultBuildsQueueAndDelays) {
  Fixture f;
  const FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  // Find the egress port flow uses, then throttle it hard.
  PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 42, out));
  f.net.node(flow.source).set_max_pps(out, 100.0);  // paper: < 100 pps

  const auto t0 = f.sim.now();
  for (int i = 0; i < 10; ++i) f.net.inject(flow, 42, 500);
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 10u);
  // At 100 pps the 10th packet leaves the source no earlier than 90ms.
  EXPECT_GE(f.deliveries.back().at - t0, 90_ms);
}

TEST(NetworkTest, DropFaultDropsEverything) {
  Fixture f;
  const FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 9, out));
  f.net.node(flow.source).set_drop_probability(out, 1.0);
  for (int i = 0; i < 5; ++i) f.net.inject(flow, 9, 500);
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), 0u);
  EXPECT_EQ(f.net.stats().dropped, 5u);
  EXPECT_EQ(f.net.node(flow.source).counters(out).drops, 5u);
}

TEST(NetworkTest, ExtraDelayFaultDelaysWithoutQueueing) {
  Fixture f;
  const FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 5, out));

  f.net.inject(flow, 5, 1250);
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  const auto healthy_transit = f.deliveries[0].at - f.deliveries[0].pkt.created;

  f.deliveries.clear();
  f.net.node(flow.source).set_extra_delay(out, 10_ms);
  f.net.inject(flow, 5, 1250);
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  const auto faulty_transit = f.deliveries[0].at - f.deliveries[0].pkt.created;
  EXPECT_EQ(faulty_transit - healthy_transit, 10_ms);
  // Delay fault must not inflate the queue (its paper signature).
  EXPECT_EQ(f.net.node(flow.source).queue_depth(out), 0u);
}

TEST(NetworkTest, TailDropWhenQueueOverflows) {
  Fixture f;
  const FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 3, out));
  f.net.node(flow.source).set_queue_capacity(4);
  f.net.node(flow.source).set_max_pps(out, 10.0);  // drain very slowly
  for (int i = 0; i < 50; ++i) f.net.inject(flow, 3, 500);
  f.sim.run(10_s);
  EXPECT_GT(f.net.stats().dropped, 0u);
  EXPECT_EQ(f.net.stats().injected, 50u);
}

TEST(NetworkTest, ClearFaultsRestoresHealth) {
  Fixture f;
  const FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(flow.source, flow.sink, 4, out));
  f.net.node(flow.source).set_drop_probability(out, 1.0);
  f.net.node(flow.source).clear_faults();
  f.net.inject(flow, 4, 500);
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), 1u);
}

TEST(NetworkTest, ObserverSeesIngressEgressDeliver) {
  struct Recorder : PacketObserver {
    int ingress = 0, enqueue = 0, egress = 0, deliver = 0, drop = 0;
    void on_ingress(SwitchContext&, Packet&) override { ++ingress; }
    void on_enqueue(SwitchContext&, Packet&, PortId, std::uint32_t) override {
      ++enqueue;
    }
    void on_egress(SwitchContext&, Packet&, PortId, sim::Time) override {
      ++egress;
    }
    void on_deliver(SwitchContext&, Packet&) override { ++deliver; }
    void on_drop(SwitchContext&, const Packet&, PortId) override { ++drop; }
  };
  Fixture f;
  Recorder rec;
  f.net.add_observer(rec);
  const FlowId flow{f.ft.edge[0], f.ft.edge[4]};  // 5-switch path
  f.net.inject(flow, 8, 900);
  f.sim.run();
  EXPECT_EQ(rec.ingress, 5);
  EXPECT_EQ(rec.enqueue, 4);  // sink does not enqueue
  EXPECT_EQ(rec.egress, 4);
  EXPECT_EQ(rec.deliver, 1);
  EXPECT_EQ(rec.drop, 0);
}

TEST(NetworkTest, UtilizationAccountsBusyTime) {
  Fixture f;
  const FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  for (int i = 0; i < 100; ++i) f.net.inject(flow, 2, 1250);
  f.sim.run();
  const auto utils = f.net.link_utilization();
  double max_util = 0.0;
  for (const auto& u : utils) max_util = std::max(max_util, u.utilization);
  EXPECT_GT(max_util, 0.0);
  EXPECT_LE(max_util, 1.0);
}

}  // namespace
}  // namespace mars::net
