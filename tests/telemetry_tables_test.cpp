#include "telemetry/tables.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace mars::telemetry {
namespace {

using namespace mars::sim::literals;

constexpr net::FlowId kFlow{1, 5};
constexpr net::FlowId kOther{2, 6};

TEST(IngressTableTest, CountsPerEpoch) {
  IngressTable it(100_ms);
  for (int i = 0; i < 7; ++i) it.count_packet(kFlow, 10_ms * (i + 1));
  EXPECT_EQ(it.current_epoch_count(kFlow, 80_ms), 7u);
  EXPECT_EQ(it.current_epoch_count(kOther, 80_ms), 0u);
}

TEST(IngressTableTest, LastEpochCountRollsOver) {
  IngressTable it(100_ms);
  for (int i = 0; i < 5; ++i) it.count_packet(kFlow, 10_ms);
  // Move into the next epoch.
  it.count_packet(kFlow, 150_ms);
  EXPECT_EQ(it.last_epoch_count(kFlow, 150_ms), 5u);
  EXPECT_EQ(it.current_epoch_count(kFlow, 150_ms), 1u);
}

TEST(IngressTableTest, LastEpochCountZeroAfterIdleGap) {
  IngressTable it(100_ms);
  it.count_packet(kFlow, 10_ms);
  // Two epochs of silence: epoch 3's "last epoch" (2) saw nothing.
  EXPECT_EQ(it.last_epoch_count(kFlow, 310_ms), 0u);
}

TEST(IngressTableTest, OneTelemetryPacketPerFlowPerEpoch) {
  IngressTable it(100_ms);
  EXPECT_TRUE(it.try_mark_telemetry(kFlow, 10_ms));
  EXPECT_FALSE(it.try_mark_telemetry(kFlow, 50_ms));
  EXPECT_FALSE(it.try_mark_telemetry(kFlow, 99_ms));
  // New epoch: marking allowed again.
  EXPECT_TRUE(it.try_mark_telemetry(kFlow, 101_ms));
  // Independent per flow.
  EXPECT_TRUE(it.try_mark_telemetry(kOther, 150_ms));
}

TEST(EgressTableTest, PerPathPerFlowCounters) {
  EgressTable et(100_ms);
  et.count_packet(0xAA, kFlow, 500, 10_ms);
  et.count_packet(0xAA, kFlow, 700, 20_ms);
  et.count_packet(0xBB, kFlow, 100, 30_ms);
  const auto a = et.current(0xAA, kFlow, 50_ms);
  EXPECT_EQ(a.packets, 2u);
  EXPECT_EQ(a.bytes, 1200u);
  const auto b = et.current(0xBB, kFlow, 50_ms);
  EXPECT_EQ(b.packets, 1u);
  EXPECT_EQ(et.flow_current_packets(kFlow, 50_ms), 3u);
  EXPECT_EQ(et.flow_current_packets(kOther, 50_ms), 0u);
}

TEST(EgressTableTest, PreviousEpochVisibleFromNext) {
  EgressTable et(100_ms);
  et.count_packet(0xAA, kFlow, 500, 50_ms);
  et.count_packet(0xAA, kFlow, 500, 60_ms);
  // Query from epoch 1 without new traffic: the entry still holds epoch 0
  // as "current", which previous() must interpret correctly.
  EXPECT_EQ(et.previous(0xAA, kFlow, 150_ms).packets, 2u);
  EXPECT_EQ(et.flow_previous_packets(kFlow, 150_ms), 2u);
  // After new traffic in epoch 1 the rollover is explicit.
  et.count_packet(0xAA, kFlow, 500, 160_ms);
  EXPECT_EQ(et.previous(0xAA, kFlow, 170_ms).packets, 2u);
  EXPECT_EQ(et.current(0xAA, kFlow, 170_ms).packets, 1u);
}

TEST(EgressTableTest, StaleEpochsReadZero) {
  EgressTable et(100_ms);
  et.count_packet(0xAA, kFlow, 500, 50_ms);
  EXPECT_EQ(et.current(0xAA, kFlow, 550_ms).packets, 0u);
  EXPECT_EQ(et.previous(0xAA, kFlow, 550_ms).packets, 0u);
}

TEST(RingTableTest, OverwritesOldestAndReportsMemory) {
  RingTable rt(4);
  for (std::uint32_t i = 0; i < 6; ++i) {
    RtRecord rec;
    rec.epoch_id = i;
    rt.insert(rec);
  }
  const auto snap = rt.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().epoch_id, 2u);
  EXPECT_EQ(snap.back().epoch_id, 5u);
  EXPECT_EQ(rt.memory_bytes(), 4 * RtRecord::kWireBytes);
}

}  // namespace
}  // namespace mars::telemetry
