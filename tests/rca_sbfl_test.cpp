#include "rca/sbfl.hpp"

#include <gtest/gtest.h>

namespace mars::rca {
namespace {

TEST(SbflTest, RelativeRiskMatchesEquationOne) {
  // Score = (N_pf/(N_pf+N_ps)) / (N_nf/(N_nf+N_ns)).
  const SpectrumCounts c{8, 2, 4, 16};
  const double expected = (8.0 / 10.0) / (4.0 / 20.0);
  EXPECT_DOUBLE_EQ(sbfl_score(c, SbflFormula::kRelativeRisk), expected);
}

TEST(SbflTest, RelativeRiskGuardsZeroNnf) {
  // All abnormal packets contain the pattern: N_nf = 0 becomes 1 (§4.4.3).
  const SpectrumCounts c{10, 5, 0, 20};
  const double expected = (10.0 / 15.0) / (1.0 / 21.0);
  EXPECT_DOUBLE_EQ(sbfl_score(c, SbflFormula::kRelativeRisk), expected);
}

TEST(SbflTest, RelativeRiskZeroWhenPatternUncovered) {
  const SpectrumCounts c{0, 0, 5, 5};
  EXPECT_DOUBLE_EQ(sbfl_score(c, SbflFormula::kRelativeRisk), 0.0);
}

TEST(SbflTest, FaultyLocationOutscoresInnocentOne) {
  // Pattern on the faulty path: covered by most failures, few successes.
  const SpectrumCounts faulty{90, 10, 10, 190};
  // Innocent pattern: covered uniformly.
  const SpectrumCounts innocent{50, 100, 50, 100};
  for (const auto formula :
       {SbflFormula::kRelativeRisk, SbflFormula::kTarantula,
        SbflFormula::kOchiai, SbflFormula::kJaccard, SbflFormula::kDstar2}) {
    EXPECT_GT(sbfl_score(faulty, formula), sbfl_score(innocent, formula))
        << to_string(formula);
  }
}

TEST(SbflTest, TarantulaKnownValue) {
  const SpectrumCounts c{6, 2, 2, 6};
  // fail_frac = 6/8, pass_frac = 2/8 -> 0.75/(0.75+0.25) = 0.75.
  EXPECT_DOUBLE_EQ(sbfl_score(c, SbflFormula::kTarantula), 0.75);
}

TEST(SbflTest, OchiaiKnownValue) {
  const SpectrumCounts c{4, 0, 0, 4};
  // 4 / sqrt((4+0)*(4+0)) = 1.
  EXPECT_DOUBLE_EQ(sbfl_score(c, SbflFormula::kOchiai), 1.0);
}

TEST(ScorePatternsTest, CountsAndRanksPatterns) {
  fsm::SequenceDatabase abnormal, normal;
  abnormal.add({1, 2, 3}, 8);  // failing traffic through s2
  abnormal.add({4, 2, 5}, 4);
  normal.add({1, 6, 3}, 50);  // healthy traffic avoids s2
  normal.add({4, 2, 5}, 2);   // a little healthy traffic crosses s2

  std::vector<fsm::Pattern> patterns{
      {{2}, 12},
      {{1}, 8},
      {{6}, 0},
  };
  const auto scored = score_patterns(patterns, abnormal, normal, true,
                                     SbflFormula::kRelativeRisk);
  ASSERT_EQ(scored.size(), 3u);
  // s2 covers all 12 abnormal and only 2 of 52 normal: ranked first.
  EXPECT_EQ(scored[0].pattern.items, fsm::Sequence{2});
  EXPECT_EQ(scored[0].counts.n_pf, 12u);
  EXPECT_EQ(scored[0].counts.n_ps, 2u);
  EXPECT_EQ(scored[0].counts.n_nf, 0u);
  EXPECT_EQ(scored[0].counts.n_ns, 50u);
  // s6 only appears in healthy traffic: last, score 0.
  EXPECT_EQ(scored[2].pattern.items, fsm::Sequence{6});
  EXPECT_DOUBLE_EQ(scored[2].score, 0.0);
  // Scores descend.
  EXPECT_GE(scored[0].score, scored[1].score);
  EXPECT_GE(scored[1].score, scored[2].score);
}

TEST(ScorePatternsTest, LinkPatternsUseContiguity) {
  fsm::SequenceDatabase abnormal, normal;
  abnormal.add({1, 2, 3}, 10);
  normal.add({1, 9, 2, 3}, 10);  // contains <1,2> only with a gap

  std::vector<fsm::Pattern> patterns{{{1, 2}, 10}};
  const auto contiguous = score_patterns(patterns, abnormal, normal, true,
                                         SbflFormula::kRelativeRisk);
  EXPECT_EQ(contiguous[0].counts.n_ps, 0u);  // gapped match doesn't count
  const auto gapped = score_patterns(patterns, abnormal, normal, false,
                                     SbflFormula::kRelativeRisk);
  EXPECT_EQ(gapped[0].counts.n_ps, 10u);
}

}  // namespace
}  // namespace mars::rca
