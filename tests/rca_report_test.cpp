#include "rca/report.hpp"

#include <gtest/gtest.h>

namespace mars::rca {
namespace {

control::DiagnosisData make_session() {
  control::DiagnosisData session;
  session.trigger.kind = dataplane::Notification::Kind::kHighLatency;
  session.trigger.reporter = 7;
  session.trigger.flow = {7, 11};
  session.trigger.when = 3 * sim::kSecond;
  session.notifications.push_back(session.trigger);
  session.collected_at = 3'500'000'000;
  session.records.resize(42);
  return session;
}

CulpritList make_culprits() {
  CulpritList list;
  Culprit port;
  port.level = CulpritLevel::kPort;
  port.location = {8};
  port.port = 3;
  port.cause = CauseKind::kProcessRateDecrease;
  port.score = 12.5;
  list.push_back(port);
  Culprit flow;
  flow.level = CulpritLevel::kFlow;
  flow.flow = {7, 11};
  flow.cause = CauseKind::kMicroBurst;
  flow.score = 4.0;
  list.push_back(flow);
  return list;
}

TEST(ReportTest, RendersTriggerEvidenceAndRankedList) {
  const auto text = render_report(make_session(), make_culprits());
  EXPECT_NE(text.find("high latency"), std::string::npos);
  EXPECT_NE(text.find("s7"), std::string::npos);
  EXPECT_NE(text.find("42 telemetry records"), std::string::npos);
  EXPECT_NE(text.find("1. port-level process-rate-decrease @ s8 port 3"),
            std::string::npos);
  EXPECT_NE(text.find("2. flow-level micro-burst @ <s7,s11>"),
            std::string::npos);
  // Remediation hints ride along by default.
  EXPECT_NE(text.find("CPU, scheduler or meter"), std::string::npos);
}

TEST(ReportTest, EmptyListReportsTransient) {
  const auto text = render_report(make_session(), {});
  EXPECT_NE(text.find("no culprit isolated"), std::string::npos);
}

TEST(ReportTest, TruncatesAndCountsRemainder) {
  CulpritList many;
  for (int i = 0; i < 9; ++i) {
    Culprit c;
    c.level = CulpritLevel::kSwitch;
    c.location = {static_cast<net::SwitchId>(i)};
    c.cause = CauseKind::kDelay;
    c.score = 9.0 - i;
    many.push_back(c);
  }
  ReportOptions options;
  options.max_culprits = 3;
  options.include_remediation = false;
  const auto text = render_report(make_session(), many, options);
  EXPECT_NE(text.find("(+6 lower-ranked entries)"), std::string::npos);
  EXPECT_EQ(text.find("4. "), std::string::npos);
}

TEST(ReportTest, EveryCauseHasARemediationHint) {
  for (const auto cause :
       {CauseKind::kMicroBurst, CauseKind::kEcmpImbalance,
        CauseKind::kProcessRateDecrease, CauseKind::kDelay,
        CauseKind::kDrop}) {
    EXPECT_GT(std::string(remediation_hint(cause)).size(), 10u);
  }
}

TEST(ReportTest, MiningStatsLineAppearsOnlyWhenPassed) {
  fsm::MiningStats mining;
  mining.patterns = 12;
  mining.nodes_expanded = 340;
  mining.peak_bytes = 2048;
  mining.wall_seconds = 0.004;
  mining.threads_used = 4;
  const auto with = render_report(make_session(), make_culprits(), {},
                                  &mining);
  EXPECT_NE(with.find("mining    : 12 patterns from 340 candidates"),
            std::string::npos);
  EXPECT_NE(with.find("2.0 KB peak, 4 threads"), std::string::npos);
  const auto without = render_report(make_session(), make_culprits());
  EXPECT_EQ(without.find("mining"), std::string::npos);
}

TEST(ReportJsonTest, MiningObjectAppearsOnlyWhenPassed) {
  fsm::MiningStats mining;
  mining.patterns = 12;
  mining.nodes_expanded = 340;
  mining.peak_bytes = 2048;
  mining.threads_used = 1;
  const auto with = render_json(make_session(), make_culprits(), {},
                                &mining);
  EXPECT_NE(with.find("\"mining\":{\"patterns\":12,\"nodes\":340,"
                      "\"peak_bytes\":2048"),
            std::string::npos);
  const auto without = render_json(make_session(), make_culprits());
  EXPECT_EQ(without.find("\"mining\""), std::string::npos);
}

TEST(ReportJsonTest, WellFormedAndComplete) {
  const auto json = render_json(make_session(), make_culprits());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"kind\":\"high latency\""), std::string::npos);
  EXPECT_NE(json.find("\"records\":42"), std::string::npos);
  EXPECT_NE(json.find("\"port\":3"), std::string::npos);
  EXPECT_NE(json.find("\"flow\":\"<s7,s11>\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace mars::rca
