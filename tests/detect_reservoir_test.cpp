#include "detect/reservoir.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mars::detect {
namespace {

ReservoirConfig small_config() {
  ReservoirConfig cfg;
  cfg.volume = 64;
  cfg.warmup = 16;
  return cfg;
}

TEST(ReservoirTest, UsesDefaultThresholdWhenCold) {
  Reservoir r(small_config());
  EXPECT_FALSE(r.warmed_up());
  EXPECT_DOUBLE_EQ(r.threshold(),
                   static_cast<double>(small_config().default_threshold));
  // Nothing below 10s flags while cold.
  EXPECT_FALSE(r.input(1e6));
  EXPECT_FALSE(r.input(5e6));
}

TEST(ReservoirTest, WarmsUpAndTracksDistribution) {
  Reservoir r(small_config());
  util::Rng rng(1);
  for (int i = 0; i < 64; ++i) r.input(rng.normal(1e6, 5e4));
  EXPECT_TRUE(r.warmed_up());
  EXPECT_NEAR(r.median(), 1e6, 1e5);
  // Threshold sits above the bulk of the distribution.
  EXPECT_GT(r.threshold(), 1.05e6);
  EXPECT_LT(r.threshold(), 2e6);
}

TEST(ReservoirTest, FlagsOutliers) {
  Reservoir r(small_config());
  util::Rng rng(2);
  for (int i = 0; i < 64; ++i) r.input(rng.normal(1e6, 5e4));
  EXPECT_TRUE(r.input(1e7));   // 10x the median
  EXPECT_FALSE(r.input(1e6));  // normal again
}

TEST(ReservoirTest, PenaltyKeepsThresholdStableUnderOutlierBurst) {
  // The Fig. 8 story: without the penalty factor a burst of high latencies
  // pollutes the reservoir, inflating sigma and raising the threshold so
  // later anomalies are missed.
  ReservoirConfig with_penalty = small_config();
  with_penalty.penalty = PenaltyMode::kConsecutiveOutliers;
  ReservoirConfig without_penalty = small_config();
  without_penalty.penalty = PenaltyMode::kNone;

  Reservoir penalized(with_penalty, 7);
  Reservoir naive(without_penalty, 7);
  util::Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    const double v = rng.normal(1e6, 5e4);
    penalized.input(v);
    naive.input(v);
  }
  const double thr_before = penalized.threshold();
  // Long anomaly burst.
  for (int i = 0; i < 200; ++i) {
    penalized.input(5e6);
    naive.input(5e6);
  }
  // The penalized reservoir barely moved; the naive one absorbed outliers.
  EXPECT_LT(penalized.threshold(), thr_before * 1.5);
  EXPECT_GT(naive.threshold(), penalized.threshold());
  // And the penalized reservoir still flags the anomaly as an outlier.
  EXPECT_TRUE(penalized.input(5e6));
}

TEST(ReservoirTest, ConsecutiveOutlierCountResetsOnNormal) {
  Reservoir r(small_config());
  util::Rng rng(4);
  for (int i = 0; i < 64; ++i) r.input(rng.normal(1e6, 5e4));
  r.input(1e8);
  r.input(1e8);
  EXPECT_EQ(r.consecutive_outliers(), 2);
  r.input(1e6);
  EXPECT_EQ(r.consecutive_outliers(), 0);
}

TEST(ReservoirTest, ZeroVarianceUsesRelativeMargin) {
  Reservoir r(small_config());
  for (int i = 0; i < 64; ++i) r.input(1e6);
  // sigma == 0; the margin floor keeps jitter below 5% unflagged.
  EXPECT_FALSE(r.input(1.04e6));
  EXPECT_TRUE(r.input(1.06e6));
}

TEST(ReservoirTest, CapacityNeverExceeded) {
  ReservoirConfig cfg = small_config();
  cfg.volume = 32;
  Reservoir r(cfg);
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) r.input(rng.normal(1e6, 1e5));
  EXPECT_EQ(r.size(), 32u);
}

class ReservoirSigmaParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ReservoirSigmaParamTest, ThresholdScalesWithC) {
  ReservoirConfig cfg = small_config();
  cfg.sigma_multiplier = GetParam();
  Reservoir r(cfg, 11);
  util::Rng rng(6);
  for (int i = 0; i < 64; ++i) r.input(rng.normal(1e6, 1e5));
  EXPECT_NEAR(r.threshold(), r.median() + GetParam() * r.sigma(),
              0.05 * r.median() + 1.0);
}

INSTANTIATE_TEST_SUITE_P(SigmaMultipliers, ReservoirSigmaParamTest,
                         ::testing::Values(2.0, 3.0, 4.0, 6.0));

TEST(StaticThresholdTest, FlagsAboveFixedValue) {
  StaticThresholdDetector d(2e6);
  EXPECT_FALSE(d.input(1.9e6));
  EXPECT_TRUE(d.input(2.1e6));
}

}  // namespace
}  // namespace mars::detect
