#include "util/count_min.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace mars::util {
namespace {

TEST(CountMinTest, ExactWhenUncrowded) {
  CountMinSketch sketch(1024, 4);
  for (std::uint64_t k = 0; k < 10; ++k) sketch.add(k, k + 1);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(sketch.estimate(k), k + 1);
  }
  EXPECT_EQ(sketch.estimate(999), 0u);
  EXPECT_EQ(sketch.total(), 55u);
}

TEST(CountMinTest, NeverUndercounts) {
  // The defining one-sided guarantee, exercised under heavy crowding.
  CountMinSketch sketch(64, 3);
  util::Rng rng(7);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.below(500);
    const std::uint64_t count = 1 + rng.below(4);
    sketch.add(key, count);
    truth[key] += count;
  }
  for (const auto& [key, exact] : truth) {
    EXPECT_GE(sketch.estimate(key), exact);
  }
}

TEST(CountMinTest, ErrorBoundHolds) {
  // Overcount <= 2N/width for the vast majority of keys (Markov bound per
  // row, amplified across depth).
  const std::size_t width = 512;
  CountMinSketch sketch(width, 4);
  util::Rng rng(13);
  std::map<std::uint64_t, std::uint64_t> truth;
  std::uint64_t total = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.below(2000);
    sketch.add(key);
    ++truth[key];
    ++total;
  }
  const double bound = 2.0 * static_cast<double>(total) /
                       static_cast<double>(width);
  int violations = 0;
  for (const auto& [key, exact] : truth) {
    if (static_cast<double>(sketch.estimate(key) - exact) > bound) {
      ++violations;
    }
  }
  // With depth 4 the per-key failure probability is ~(1/2)^4.
  EXPECT_LT(violations, static_cast<int>(truth.size() / 10));
}

TEST(CountMinTest, HeavyHitterStandsOut) {
  // The Ingress-Table use case: the micro-burst flow's count must remain
  // clearly separable from background flows despite sketch noise.
  CountMinSketch sketch(256, 4);
  util::Rng rng(21);
  for (int i = 0; i < 4000; ++i) sketch.add(rng.below(400));  // background
  sketch.add(0xB00B5, 1500);                                  // the burst
  EXPECT_GE(sketch.estimate(0xB00B5), 1500u);
  EXPECT_LT(sketch.estimate(12345) * 10, sketch.estimate(0xB00B5));
}

TEST(CountMinTest, ClearResets) {
  CountMinSketch sketch(64, 2);
  sketch.add(1, 100);
  sketch.clear();
  EXPECT_EQ(sketch.estimate(1), 0u);
  EXPECT_EQ(sketch.total(), 0u);
}

TEST(CountMinTest, MemoryAccounting) {
  const CountMinSketch sketch(2048, 4);
  EXPECT_EQ(sketch.memory_bytes(), 2048u * 4u * 4u);
}

class CountMinWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CountMinWidthTest, WiderIsNeverWorse) {
  // Property: mean overcount shrinks (weakly) as width grows.
  util::Rng rng(5);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stream;
  for (int i = 0; i < 10000; ++i) stream.push_back({rng.below(1000), 1});

  auto mean_error = [&](std::size_t width) {
    CountMinSketch sketch(width, 4);
    std::map<std::uint64_t, std::uint64_t> truth;
    for (const auto& [k, c] : stream) {
      sketch.add(k, c);
      truth[k] += c;
    }
    double err = 0;
    for (const auto& [k, exact] : truth) {
      err += static_cast<double>(sketch.estimate(k) - exact);
    }
    return err / static_cast<double>(truth.size());
  };
  EXPECT_LE(mean_error(GetParam() * 2), mean_error(GetParam()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, CountMinWidthTest,
                         ::testing::Values(64, 128, 256, 512));

}  // namespace
}  // namespace mars::util
