// Topology partitioner for the sharded simulator (net/partition.hpp).
//
// The contract under test: shards cut the topology along links only,
// intra-pod traffic stays shard-local (removing the core layer leaves one
// component per pod and each becomes an atom), assignment is deterministic
// largest-first/least-loaded, and min_boundary_propagation reports the
// slimmest shard-crossing edge — the network's contribution to the
// conservative lookahead window.

#include "net/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/fat_tree.hpp"
#include "net/leaf_spine.hpp"
#include "net/topology.hpp"

namespace mars::net {
namespace {

Topology fat_tree_k4() { return build_fat_tree({.k = 4}).topology; }

TEST(ShardPartitionTest, FatTreeCapacityIsPodsPlusCores) {
  // k=4: 4 pods (atoms) + (k/2)^2 = 4 core singletons.
  EXPECT_EQ(partition_capacity(fat_tree_k4()), 8);
}

TEST(ShardPartitionTest, LeafSpineCapacityIsLeavesPlusSpines) {
  const auto ls = build_leaf_spine({.leaves = 6, .spines = 3});
  EXPECT_EQ(partition_capacity(ls.topology), 9);
}

TEST(ShardPartitionTest, SingleShardOwnsEverythingWithNoBoundary) {
  const Topology topo = fat_tree_k4();
  const Partition p = partition_topology(topo, 1);
  EXPECT_EQ(p.shards, 1);
  ASSERT_EQ(p.shard_of.size(), topo.switch_count());
  for (const int s : p.shard_of) EXPECT_EQ(s, 0);
  EXPECT_TRUE(p.boundary_links.empty());
  EXPECT_EQ(p.min_boundary_propagation, 0);
}

TEST(ShardPartitionTest, EverySwitchAssignedToAValidShard) {
  const Topology topo = fat_tree_k4();
  for (const int shards : {2, 3, 4, 8}) {
    const Partition p = partition_topology(topo, shards);
    ASSERT_EQ(p.shard_of.size(), topo.switch_count());
    for (const int s : p.shard_of) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shards);
    }
    // Every shard is non-empty (capacity was respected).
    std::vector<int> load(shards, 0);
    for (const int s : p.shard_of) ++load[s];
    for (const int l : load) EXPECT_GT(l, 0);
  }
}

TEST(ShardPartitionTest, PodsNeverSplitAcrossShards) {
  const Topology topo = fat_tree_k4();
  const Partition p = partition_topology(topo, 4);
  // Two non-core switches joined by a link are in the same pod component
  // and therefore must share a shard; only links touching the core may
  // cross boundaries.
  for (const Link& link : topo.links()) {
    const bool touches_core = topo.layer(link.a.sw) == Layer::kCore ||
                              topo.layer(link.b.sw) == Layer::kCore;
    if (!touches_core) {
      EXPECT_EQ(p.shard_of[link.a.sw], p.shard_of[link.b.sw])
          << "intra-pod link s" << link.a.sw << "<->s" << link.b.sw
          << " crosses a shard boundary";
    }
  }
}

TEST(ShardPartitionTest, BoundaryLinksAreExactlyTheShardCrossingOnes) {
  const Topology topo = fat_tree_k4();
  const Partition p = partition_topology(topo, 2);
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < topo.links().size(); ++i) {
    const Link& link = topo.links()[i];
    if (p.shard_of[link.a.sw] != p.shard_of[link.b.sw]) expected.push_back(i);
  }
  EXPECT_EQ(p.boundary_links, expected);
  EXPECT_FALSE(p.boundary_links.empty());
}

TEST(ShardPartitionTest, MinBoundaryPropagationIsTheSlimmestCrossingEdge) {
  // Hand-built: two 2-switch islands bridged through one core switch, with
  // distinct propagation delays on the two bridge links.
  Topology topo;
  const SwitchId a0 = topo.add_switch(Layer::kEdge);
  const SwitchId a1 = topo.add_switch(Layer::kAggregation);
  const SwitchId b0 = topo.add_switch(Layer::kEdge);
  const SwitchId b1 = topo.add_switch(Layer::kAggregation);
  const SwitchId core = topo.add_switch(Layer::kCore);
  topo.add_link(a0, a1, 10.0, 500);    // intra-island: not a boundary
  topo.add_link(b0, b1, 10.0, 700);
  topo.add_link(a1, core, 40.0, 3'000);
  topo.add_link(b1, core, 40.0, 2'000);

  EXPECT_EQ(partition_capacity(topo), 3);  // two islands + the core
  const Partition p = partition_topology(topo, 3);
  EXPECT_NE(p.shard_of[a0], p.shard_of[b0]);
  EXPECT_EQ(p.shard_of[a0], p.shard_of[a1]);
  EXPECT_EQ(p.shard_of[b0], p.shard_of[b1]);
  EXPECT_EQ(p.min_boundary_propagation, 2'000);
}

TEST(ShardPartitionTest, AssignmentIsDeterministic) {
  const Topology topo = fat_tree_k4();
  for (const int shards : {2, 4, 8}) {
    const Partition first = partition_topology(topo, shards);
    const Partition second = partition_topology(topo, shards);
    EXPECT_EQ(first.shard_of, second.shard_of);
    EXPECT_EQ(first.boundary_links, second.boundary_links);
    EXPECT_EQ(first.min_boundary_propagation,
              second.min_boundary_propagation);
  }
}

TEST(ShardPartitionTest, LoadsAreBalancedLargestFirst) {
  // k=4 fat-tree: 4 pods of 4 switches + 4 core singletons = 20 switches.
  // Largest-first/least-loaded onto 4 shards puts one pod plus one core on
  // each shard: a perfect 5/5/5/5 split.
  const Partition p = partition_topology(fat_tree_k4(), 4);
  std::vector<int> load(4, 0);
  for (const int s : p.shard_of) ++load[s];
  std::sort(load.begin(), load.end());
  EXPECT_EQ(load, (std::vector<int>{5, 5, 5, 5}));
}

}  // namespace
}  // namespace mars::net
