// ShardedSimulator unit tests: the conservative-lookahead window protocol
// (sim/sharded.hpp) in isolation, before the network stacks on top.
//
// The suite pins the synchronization contract: shard events below a window
// all run, global events run single-threaded between windows and BEFORE
// same-time shard events, control mail posted from shard threads is
// delivered sorted by (time, key), and a keyed entity executes at the same
// virtual times no matter which shard it lands on.

#include "sim/sharded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/lane.hpp"
#include "sim/time.hpp"

namespace mars::sim {
namespace {

TEST(ShardedSimTest, RunsAllShardEventsAndAdvancesEveryClock) {
  parallel::ThreadPool pool(2);
  ShardedSimulator ssim(pool, {.shards = 2});
  std::atomic<int> ran{0};
  for (int s = 0; s < 2; ++s) {
    for (int i = 1; i <= 5; ++i) {
      ssim.shard(s).schedule_at(i * kMicrosecond,
                                [&ran] { ran.fetch_add(1); });
    }
  }
  ssim.run(1 * kMillisecond);
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(ssim.events_executed(), 10u);
  EXPECT_EQ(ssim.shard(0).now(), 1 * kMillisecond);
  EXPECT_EQ(ssim.shard(1).now(), 1 * kMillisecond);
  EXPECT_EQ(ssim.global().now(), 1 * kMillisecond);
}

TEST(ShardedSimTest, GlobalEventRunsBeforeSameTimeShardEvents) {
  // The tie rule that makes threshold updates / fault injections exact:
  // a global event at t is observed by every shard event at or after t.
  parallel::ThreadPool pool(2);
  ShardedSimulator ssim(pool, {.shards = 2});
  int knob = 0;
  std::vector<int> seen(2, -1);
  const Time t = 50 * kMicrosecond;
  ssim.global().schedule_at(t, [&knob] { knob = 7; });
  ssim.shard(0).schedule_at(t, [&] { seen[0] = knob; });
  ssim.shard(1).schedule_at(t, [&] { seen[1] = knob; });
  ssim.run(1 * kMillisecond);
  EXPECT_EQ(seen[0], 7);
  EXPECT_EQ(seen[1], 7);
  EXPECT_GE(ssim.sync_stats().global_rounds, 1u);
}

TEST(ShardedSimTest, ShardEventBeforeLaterGlobalEvent) {
  parallel::ThreadPool pool(1);
  ShardedSimulator ssim(pool, {.shards = 1});
  std::vector<int> order;
  ssim.shard(0).schedule_at(10 * kMicrosecond,
                            [&order] { order.push_back(0); });
  ssim.global().schedule_at(20 * kMicrosecond,
                            [&order] { order.push_back(1); });
  ssim.run(1 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(ShardedSimTest, ControlMailDeliveredSortedByTimeThenKey) {
  parallel::ThreadPool pool(2);
  ShardedConfig config{.shards = 2};
  ShardedSimulator ssim(pool, config);
  std::vector<int> order;  // global domain: single-threaded, no lock
  // Each shard posts two control messages from inside a window, staged in
  // per-shard outboxes in arbitrary relative order. Delivery must sort by
  // (at, key) regardless of which outbox a message sat in.
  const Time latency = config.control_latency;
  ssim.shard(0).schedule_at(1 * kMicrosecond, [&ssim, &order, latency] {
    const Time at = ssim.shard(0).now() + latency;
    ssim.post_control(0, at, /*key=*/40,
                      EventFn([&order] { order.push_back(40); }));
    ssim.post_control(0, at, /*key=*/10,
                      EventFn([&order] { order.push_back(10); }));
  });
  ssim.shard(1).schedule_at(1 * kMicrosecond, [&ssim, &order, latency] {
    const Time at = ssim.shard(1).now() + latency;
    ssim.post_control(1, at, /*key=*/30,
                      EventFn([&order] { order.push_back(30); }));
    ssim.post_control(1, at + 1, /*key=*/0,
                      EventFn([&order] { order.push_back(99); }));
  });
  ssim.run(10 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{10, 30, 40, 99}));
}

TEST(ShardedSimTest, DrainHookRunsBeforeEventTimesAreRead) {
  // The network drains cross-shard packet mailboxes in this hook; an event
  // moved by the hook must still run even when it is the only thing left.
  parallel::ThreadPool pool(2);
  ShardedSimulator ssim(pool, {.shards = 2});
  bool moved = false;
  bool delivered = false;
  bool staged = false;
  ssim.set_drain_hook([&] {
    if (staged && !moved) {
      moved = true;
      ssim.shard(1).schedule_at_keyed(300 * kMicrosecond, 1,
                                      [&delivered] { delivered = true; });
    }
  });
  ssim.shard(0).schedule_at(100 * kMicrosecond, [&staged] { staged = true; });
  ssim.run(1 * kMillisecond);
  EXPECT_TRUE(moved);
  EXPECT_TRUE(delivered);
}

TEST(ShardedSimTest, LookaheadStallsAreCounted) {
  // Two shards with work spread far apart in time: windows are repeatedly
  // clipped to T_l + lookahead, each clip counted as a stall.
  parallel::ThreadPool pool(2);
  ShardedSimulator ssim(pool, {.shards = 2, .lookahead = 1 * kMicrosecond});
  std::atomic<int> ran{0};
  for (int i = 1; i <= 8; ++i) {
    ssim.shard(i % 2).schedule_at(i * 100 * kMicrosecond,
                                  [&ran] { ran.fetch_add(1); });
  }
  ssim.run(1 * kMillisecond);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_GE(ssim.sync_stats().lookahead_stalls, 1u);
  EXPECT_GE(ssim.sync_stats().windows, 1u);
}

TEST(ShardedSimTest, KeyedEntityExecutesIdenticallyAtEveryShardCount) {
  // A keyed entity's event times are a pure function of the entity — not
  // of how many shards exist or which one it runs on. Four entities each
  // run a self-rescheduling chain; the per-entity time trace must be
  // byte-identical at 1, 2, and 4 shards.
  constexpr int kEntities = 4;
  constexpr int kHops = 16;
  auto trace_at = [&](int shard_count) {
    parallel::ThreadPool pool(static_cast<std::size_t>(shard_count));
    ShardedSimulator ssim(pool, {.shards = shard_count});
    std::vector<std::vector<Time>> trace(kEntities);
    std::vector<Lane> lanes(kEntities);
    struct Chain {
      std::vector<Time>* out;
      Lane* lane;
      int left;
      void operator()() {
        out->push_back(lane->now());
        if (--left > 0) {
          lane->schedule_in((out->size() % 3 + 1) * kMicrosecond, *this);
        }
      }
    };
    for (int e = 0; e < kEntities; ++e) {
      lanes[e] = Lane::keyed(ssim.shard(e % shard_count),
                             static_cast<std::uint64_t>(e));
      lanes[e].schedule_at((e + 1) * kMicrosecond,
                           Chain{&trace[e], &lanes[e], kHops});
    }
    ssim.run(1 * kMillisecond);
    return trace;
  };
  const auto base = trace_at(1);
  for (const auto& entity : base) EXPECT_EQ(entity.size(), kHops);
  EXPECT_EQ(trace_at(2), base);
  EXPECT_EQ(trace_at(4), base);
}

TEST(ShardedSimTest, EventsExecutedSumsShardsAndGlobal) {
  parallel::ThreadPool pool(2);
  ShardedSimulator ssim(pool, {.shards = 2});
  ssim.shard(0).schedule_at(1 * kMicrosecond, [] {});
  ssim.shard(1).schedule_at(2 * kMicrosecond, [] {});
  ssim.global().schedule_at(3 * kMicrosecond, [] {});
  ssim.run(1 * kMillisecond);
  EXPECT_EQ(ssim.events_executed(), 3u);
}

TEST(ShardedSimTest, WindowEndAttributionSumsToWindows) {
  // The profiler attributes every parallel window's end to exactly one
  // cap: lookahead stall, a pending global event, or end-of-run.
  parallel::ThreadPool pool(2);
  ShardedSimulator ssim(pool, {.shards = 2, .lookahead = 1 * kMicrosecond});
  for (int i = 1; i <= 8; ++i) {
    ssim.shard(i % 2).schedule_at(i * 100 * kMicrosecond, [] {});
  }
  ssim.global().schedule_at(450 * kMicrosecond, [] {});
  ssim.run(1 * kMillisecond);

  const ShardSyncStats& sync = ssim.sync_stats();
  EXPECT_GE(sync.lookahead_stalls, 1u);
  EXPECT_EQ(sync.lookahead_stalls + sync.windows_capped_by_global +
                sync.windows_to_end,
            sync.windows);
}

TEST(ShardedSimTest, ShardOccupancyStatsAccountForEveryWindowEvent) {
  parallel::ThreadPool pool(2);
  ShardedSimulator ssim(pool, {.shards = 2, .lookahead = 1 * kMicrosecond});
  // Shard 0 gets a dense burst plus stragglers; shard 1 stays empty — its
  // windows must all count as idle (busy_fraction 0).
  for (int i = 0; i < 12; ++i) {
    ssim.shard(0).schedule_at((10 + i % 3) * kMicrosecond, [] {});
  }
  ssim.shard(0).schedule_at(500 * kMicrosecond, [] {});
  ssim.run(1 * kMillisecond);

  const ShardStats& busy = ssim.shard_stats(0);
  const ShardStats& idle = ssim.shard_stats(1);
  EXPECT_EQ(busy.windows, ssim.sync_stats().windows);
  EXPECT_EQ(idle.windows, ssim.sync_stats().windows);
  EXPECT_EQ(busy.window_events, 13u);  // every shard event ran in a window
  EXPECT_GE(busy.max_window_events, 1u);
  EXPECT_LE(busy.busy_windows, busy.windows);
  EXPECT_GT(busy.busy_fraction(), 0.0);
  EXPECT_EQ(idle.window_events, 0u);
  EXPECT_EQ(idle.busy_windows, 0u);
  EXPECT_EQ(idle.busy_fraction(), 0.0);

  // The events-per-window histogram covers every window: bucket 0 holds
  // the empty windows, the rest hold the busy ones.
  std::uint64_t hist_total = 0;
  for (const std::uint64_t n : busy.window_event_hist) hist_total += n;
  EXPECT_EQ(hist_total, busy.windows);
  EXPECT_EQ(busy.window_event_hist[0], busy.windows - busy.busy_windows);
}

TEST(ShardedSimTest, HistBucketIsLog2WithSaturation) {
  EXPECT_EQ(ShardStats::hist_bucket(0), 0u);
  EXPECT_EQ(ShardStats::hist_bucket(1), 1u);
  EXPECT_EQ(ShardStats::hist_bucket(2), 2u);
  EXPECT_EQ(ShardStats::hist_bucket(3), 2u);
  EXPECT_EQ(ShardStats::hist_bucket(4), 3u);
  EXPECT_EQ(ShardStats::hist_bucket(7), 3u);
  EXPECT_EQ(ShardStats::hist_bucket(8), 4u);
  // The last bucket absorbs the tail.
  EXPECT_EQ(ShardStats::hist_bucket(~std::uint64_t{0}),
            ShardStats::kHistBuckets - 1);
}

}  // namespace
}  // namespace mars::sim
