#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mars::sim {
namespace {

using namespace mars::sim::literals;

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel reports false
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const auto id = q.schedule(1, [] {});
  q.schedule(9, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(SimulatorTest, TimeAdvancesMonotonically) {
  Simulator sim;
  std::vector<Time> times;
  sim.schedule_in(5_us, [&] { times.push_back(sim.now()); });
  sim.schedule_in(1_us, [&] {
    times.push_back(sim.now());
    sim.schedule_in(2_us, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{1_us, 3_us, 5_us}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.schedule_in(10, [&] { ++ran; });
  sim.schedule_in(100, [&] { ++ran; });
  sim.run(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run(200);
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, EventAtExactlyUntilRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule_in(50, [&] { ran = true; });
  sim.run(50);
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  Time when = -1;
  sim.schedule_in(7, [&] {
    sim.schedule_in(0, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(when, 7);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int ran = 0;
  sim.schedule_in(1, [&] { ++ran; });
  sim.schedule_in(2, [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(ran, 2);
}

TEST(TimeTest, LiteralsAndConversions) {
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_EQ(3_ms, 3'000'000);
  EXPECT_EQ(2_us, 2'000);
  EXPECT_DOUBLE_EQ(to_seconds(1_s + 500_ms), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(250_us), 0.25);
}

}  // namespace
}  // namespace mars::sim
