#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mars::sim {
namespace {

using namespace mars::sim::literals;

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel reports false
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const auto id = q.schedule(1, [] {});
  q.schedule(9, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueueTest, CancelAfterPopReturnsFalse) {
  EventQueue q;
  int runs = 0;
  const auto id = q.schedule(10, [&] { ++runs; });
  q.pop().second();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(q.cancel(id));  // already executed
  EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  const auto id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, StaleIdDoesNotCancelSlotReuse) {
  // After an event runs, its arena slot is recycled under a bumped
  // generation; the old id must not cancel the new occupant.
  EventQueue q;
  const auto old_id = q.schedule(10, [] {});
  q.pop().second();  // slot retired, generation bumped

  int runs = 0;
  const auto new_id = q.schedule(20, [&] { ++runs; });
  // Same slot, different generation => different id.
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
  q.pop().second();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(q.cancel(new_id));  // it already ran
}

TEST(EventQueueTest, IdsStayUniqueAcrossManyGenerations) {
  EventQueue q;
  std::uint64_t prev = 0;
  for (int round = 0; round < 100; ++round) {
    const auto id = q.schedule(round, [] {});
    if (round > 0) EXPECT_NE(id, prev);
    prev = id;
    if (round % 2 == 0) {
      q.pop().second();
    } else {
      EXPECT_TRUE(q.cancel(id));
    }
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TieBreakSurvivesInterleavedCancels) {
  // Cancelled tombstones between equal-time events must not perturb the
  // insertion-order tie-break of the survivors.
  EventQueue q;
  std::vector<int> order;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(q.schedule(5, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 16; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9, 11, 13, 15}));
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const auto a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);  // tombstone still in heap, but not live
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.next_time(), 2);
  q.pop().second();
  EXPECT_TRUE(q.empty());
}

TEST(SimulatorTest, TimeAdvancesMonotonically) {
  Simulator sim;
  std::vector<Time> times;
  sim.schedule_in(5_us, [&] { times.push_back(sim.now()); });
  sim.schedule_in(1_us, [&] {
    times.push_back(sim.now());
    sim.schedule_in(2_us, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{1_us, 3_us, 5_us}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.schedule_in(10, [&] { ++ran; });
  sim.schedule_in(100, [&] { ++ran; });
  sim.run(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run(200);
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, EventAtExactlyUntilRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule_in(50, [&] { ran = true; });
  sim.run(50);
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  Time when = -1;
  sim.schedule_in(7, [&] {
    sim.schedule_in(0, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(when, 7);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int ran = 0;
  sim.schedule_in(1, [&] { ++ran; });
  sim.schedule_in(2, [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(ran, 2);
}

TEST(TimeTest, LiteralsAndConversions) {
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_EQ(3_ms, 3'000'000);
  EXPECT_EQ(2_us, 2'000);
  EXPECT_DOUBLE_EQ(to_seconds(1_s + 500_ms), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(250_us), 0.25);
}

}  // namespace
}  // namespace mars::sim
