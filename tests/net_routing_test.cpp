#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/fat_tree.hpp"

namespace mars::net {
namespace {

TEST(RoutingTest, DistancesInFatTree) {
  const auto ft = build_fat_tree({.k = 4});
  const RoutingTable rt(ft.topology);
  // Same pod: edge -> agg -> edge = 2 hops.
  EXPECT_EQ(rt.distance(ft.edge[0], ft.edge[1]), 2);
  // Different pod: edge -> agg -> core -> agg -> edge = 4 hops.
  EXPECT_EQ(rt.distance(ft.edge[0], ft.edge[2]), 4);
  EXPECT_EQ(rt.distance(ft.edge[0], ft.edge[0]), 0);
}

TEST(RoutingTest, EcmpGroupSizes) {
  const auto ft = build_fat_tree({.k = 4});
  const RoutingTable rt(ft.topology);
  // Towards an intra-pod edge, both aggs are equally good: group of 2.
  EXPECT_EQ(rt.group(ft.edge[0], ft.edge[1]).members.size(), 2u);
  // Towards an inter-pod edge from an edge switch: both aggs work.
  EXPECT_EQ(rt.group(ft.edge[0], ft.edge[4]).members.size(), 2u);
  // An agg switch towards another pod can use both of its core uplinks.
  EXPECT_EQ(rt.group(ft.agg[0], ft.edge[4]).members.size(), 2u);
}

TEST(RoutingTest, SelectPortIsDeterministicPerFlow) {
  const auto ft = build_fat_tree({.k = 4});
  const RoutingTable rt(ft.topology);
  PortId p1 = 0, p2 = 0;
  ASSERT_TRUE(rt.select_port(ft.edge[0], ft.edge[4], 12345, p1));
  ASSERT_TRUE(rt.select_port(ft.edge[0], ft.edge[4], 12345, p2));
  EXPECT_EQ(p1, p2);
}

TEST(RoutingTest, SelectPortSpreadsFlows) {
  const auto ft = build_fat_tree({.k = 4});
  const RoutingTable rt(ft.topology);
  std::map<PortId, int> counts;
  for (std::uint32_t h = 0; h < 1000; ++h) {
    PortId p = 0;
    ASSERT_TRUE(rt.select_port(ft.edge[0], ft.edge[4], h * 2654435761u, p));
    ++counts[p];
  }
  ASSERT_EQ(counts.size(), 2u);
  for (const auto& [port, n] : counts) EXPECT_NEAR(n, 500, 150);
}

TEST(RoutingTest, WeightedSelectionFollowsWeights) {
  const auto ft = build_fat_tree({.k = 4});
  RoutingTable rt(ft.topology);
  auto& g = rt.mutable_group(ft.edge[0], ft.edge[4]);
  ASSERT_EQ(g.members.size(), 2u);
  g.members[0].weight = 1;
  g.members[1].weight = 9;  // the paper's imbalance fault uses 1:4..1:10
  std::map<PortId, int> counts;
  for (std::uint32_t h = 0; h < 5000; ++h) {
    PortId p = 0;
    ASSERT_TRUE(rt.select_port(ft.edge[0], ft.edge[4], h * 2654435761u, p));
    ++counts[p];
  }
  EXPECT_NEAR(counts[g.members[0].port], 500, 200);
  EXPECT_NEAR(counts[g.members[1].port], 4500, 200);
}

TEST(RoutingTest, EnumeratePathsIntraPod) {
  const auto ft = build_fat_tree({.k = 4});
  const RoutingTable rt(ft.topology);
  const auto paths = rt.enumerate_paths(ft.edge[0], ft.edge[1]);
  // Two 3-switch paths, one through each pod agg.
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.front(), ft.edge[0]);
    EXPECT_EQ(p.back(), ft.edge[1]);
    EXPECT_EQ(ft.topology.layer(p[1]), Layer::kAggregation);
  }
}

TEST(RoutingTest, EnumeratePathsInterPod) {
  const auto ft = build_fat_tree({.k = 4});
  const RoutingTable rt(ft.topology);
  const auto paths = rt.enumerate_paths(ft.edge[0], ft.edge[4]);
  // 2 aggs * 2 cores each = 4 five-switch paths.
  ASSERT_EQ(paths.size(), 4u);
  std::set<SwitchPath> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), 4u);
  for (const auto& p : paths) EXPECT_EQ(p.size(), 5u);
}

TEST(RoutingTest, EdgePathCensusMatchesPaper) {
  // Paper §5.5 path census for K=4 (per unordered pair): every edge pair in
  // the same pod has 2 three-switch paths; inter-pod pairs have 4
  // five-switch paths. Ordered-pair totals double that.
  const auto ft = build_fat_tree({.k = 4});
  const RoutingTable rt(ft.topology);
  const auto all = rt.enumerate_edge_paths();
  std::size_t three = 0, five = 0;
  for (const auto& p : all) {
    if (p.size() == 3) ++three;
    if (p.size() == 5) ++five;
  }
  // 8 intra-pod ordered pairs * 2 paths = 16; 48 inter-pod ordered pairs
  // * 4 paths = 192.
  EXPECT_EQ(three, 16u);
  EXPECT_EQ(five, 192u);
  EXPECT_EQ(all.size(), three + five);
}

}  // namespace
}  // namespace mars::net
