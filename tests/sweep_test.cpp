// run_sweep: the parallel batch driver must be a pure speedup — trial i
// of a sweep equals run_scenario(points[i].config) result-for-result,
// regardless of thread count — and its per-system aggregates must match
// what a sequential merge would produce.

#include "mars/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mars/scenario.hpp"

namespace mars {
namespace {

void expect_same_result(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.net_stats.delivered, b.net_stats.delivered);
  EXPECT_EQ(a.net_stats.dropped, b.net_stats.dropped);
  ASSERT_EQ(a.truths.size(), b.truths.size());
  for (std::size_t i = 0; i < a.truths.size(); ++i) {
    EXPECT_EQ(a.truths[i].describe(), b.truths[i].describe());
  }
  ASSERT_EQ(a.systems.size(), b.systems.size());
  for (std::size_t s = 0; s < a.systems.size(); ++s) {
    EXPECT_EQ(a.systems[s].system, b.systems[s].system);
    EXPECT_EQ(a.systems[s].rank, b.systems[s].rank);
    EXPECT_EQ(a.systems[s].triggered, b.systems[s].triggered);
    EXPECT_EQ(a.systems[s].telemetry_bytes, b.systems[s].telemetry_bytes);
    EXPECT_EQ(a.systems[s].diagnosis_bytes, b.systems[s].diagnosis_bytes);
    ASSERT_EQ(a.systems[s].culprits.size(), b.systems[s].culprits.size());
    for (std::size_t c = 0; c < a.systems[s].culprits.size(); ++c) {
      EXPECT_EQ(a.systems[s].culprits[c].describe(),
                b.systems[s].culprits[c].describe());
    }
  }
}

TEST(SweepTest, MatchesSequentialRunScenario) {
  const auto base = default_scenario(faults::FaultKind::kDrop, 0);
  const auto points = seed_sweep(base, 7, 3, "drop/");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].label, "drop/seed=7");
  EXPECT_EQ(points[2].config.seed, 9u);

  SweepOptions options;
  options.threads = 3;
  const SweepResult sweep = run_sweep(points, options);
  ASSERT_EQ(sweep.trials.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(sweep.trials[i].label, points[i].label);
    const ScenarioResult sequential = run_scenario(points[i].config);
    expect_same_result(sweep.trials[i].result, sequential);
  }
}

TEST(SweepTest, AggregatesMatchManualMerge) {
  const auto base =
      default_scenario(faults::FaultKind::kProcessRateDecrease, 0);
  const auto points = seed_sweep(base, 21, 2);
  const SweepResult sweep = run_sweep(points);

  const auto* mars_agg = sweep.find("mars");
  ASSERT_NE(mars_agg, nullptr);
  EXPECT_EQ(mars_agg->deployments, 2u);

  metrics::LocalizationStats expected;
  std::uint64_t telemetry = 0;
  std::size_t triggered = 0;
  for (const auto& trial : sweep.trials) {
    const auto& outcome = trial.result.outcome("mars");
    if (!trial.result.truths.empty()) expected.add(outcome.rank);
    telemetry += outcome.telemetry_bytes;
    triggered += outcome.triggered ? 1 : 0;
  }
  EXPECT_EQ(mars_agg->stats.recall_at(5), expected.recall_at(5));
  EXPECT_EQ(mars_agg->stats.exam_score(), expected.exam_score());
  EXPECT_EQ(mars_agg->telemetry_bytes, telemetry);
  EXPECT_EQ(mars_agg->triggered, triggered);
  EXPECT_EQ(sweep.find("no-such-system"), nullptr);
}

TEST(SweepTest, SingleThreadEqualsManyThreads) {
  const auto base = default_scenario(faults::FaultKind::kMicroBurst, 0);
  const auto points = seed_sweep(base, 11, 3);
  SweepOptions one;
  one.threads = 1;
  SweepOptions many;
  many.threads = 4;
  const auto a = run_sweep(points, one);
  const auto b = run_sweep(points, many);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    expect_same_result(a.trials[i].result, b.trials[i].result);
  }
}

TEST(SweepTest, CollectObservabilityAttachesPerTrialBundles) {
  const auto base =
      default_scenario(faults::FaultKind::kProcessRateDecrease, 0);
  const auto points = seed_sweep(base, 31, 2);
  SweepOptions options;
  options.collect_observability = true;
  const auto sweep = run_sweep(points, options);
  for (const auto& trial : sweep.trials) {
    ASSERT_NE(trial.observability, nullptr);
    EXPECT_GT(trial.observability->snapshot.gauges.size(), 0u);
    EXPECT_GE(trial.observability->snapshot.gauge_or("mars.telemetry_bytes",
                                                     -1.0),
              0.0);
  }
  // Without the flag, no bundle is allocated.
  const auto bare = run_sweep(points);
  for (const auto& trial : bare.trials) {
    EXPECT_EQ(trial.observability, nullptr);
  }
}

TEST(SweepTest, ValidatesEveryPointUpFront) {
  const auto base = default_scenario(faults::FaultKind::kDrop, 0);
  auto points = seed_sweep(base, 1, 2);
  points[1].config.queue_capacity = 0;
  points[1].label = "bad-point";
  try {
    (void)run_sweep(points);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bad-point"), std::string::npos)
        << e.what();
  }
}

TEST(SweepTest, FaultGridCoversAllKinds) {
  const auto points = fault_grid(100, 2);
  ASSERT_EQ(points.size(), 10u);
  EXPECT_EQ(points[0].label, "microburst/seed=100");
  EXPECT_EQ(points.back().label, "drop/seed=101");
  for (const auto& point : points) {
    EXPECT_TRUE(validate_scenario(point.config).empty()) << point.label;
  }
}

}  // namespace
}  // namespace mars
