#include "util/crc.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string_view>
#include <vector>

namespace mars::util {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(Crc16Test, KnownVectors) {
  // CRC-16/CCITT-FALSE("123456789") == 0x29B1 (standard check value).
  EXPECT_EQ(Crc16::compute(bytes_of("123456789")), 0x29B1);
  EXPECT_EQ(Crc16::compute({}), 0xFFFF);  // init value for empty input
}

TEST(Crc32Test, KnownVectors) {
  // CRC-32/IEEE("123456789") == 0xCBF43926 (standard check value).
  EXPECT_EQ(Crc32::compute(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32::compute({}), 0x00000000u);
}

TEST(Crc16Test, IncrementalMatchesOneShot) {
  const auto data = bytes_of("mars path id hashing");
  Crc16 crc;
  for (std::byte b : data) crc.update(static_cast<std::uint8_t>(b));
  EXPECT_EQ(crc.value(), Crc16::compute(data));
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const auto data = bytes_of("mars path id hashing");
  Crc32 crc;
  for (std::byte b : data) crc.update(static_cast<std::uint8_t>(b));
  EXPECT_EQ(crc.value(), Crc32::compute(data));
}

TEST(CrcWordsTest, DeterministicAndSensitiveToOrder) {
  const std::array<std::uint32_t, 4> a{1, 2, 3, 4};
  const std::array<std::uint32_t, 4> b{4, 3, 2, 1};
  EXPECT_EQ(crc16_words(a), crc16_words(a));
  EXPECT_NE(crc16_words(a), crc16_words(b));
  EXPECT_EQ(crc32_words(a), crc32_words(a));
  EXPECT_NE(crc32_words(a), crc32_words(b));
}

TEST(CrcWordsTest, SensitiveToEveryField) {
  // PathID update hashes {path_id, switch, in_port, out_port, control};
  // flipping any single word must change the digest.
  const std::array<std::uint32_t, 5> base{7, 11, 2, 3, 0};
  const auto h = crc32_words(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    auto mutated = base;
    mutated[i] ^= 1;
    EXPECT_NE(crc32_words(mutated), h) << "word " << i;
  }
}

TEST(Crc16Test, ResetRestoresInitialState) {
  Crc16 crc;
  crc.update(bytes_of("junk"));
  crc.reset();
  crc.update(bytes_of("123456789"));
  EXPECT_EQ(crc.value(), 0x29B1);
}

}  // namespace
}  // namespace mars::util
