// Validation and spec plumbing for the sharded-simulation "sim" block.
//
// validate_scenario must reject every configuration the sharded engine
// cannot honour — out-of-range shard counts, baselines it does not deploy,
// a degraded channel it does not model, topologies with no partition
// boundary — with sentences that name the offending path, mirroring the
// channel/mining validation style. The spec layer round-trips the block
// and lowers seconds to simulator time.

#include "mars/scenario.hpp"
#include "mars/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "faults/injector.hpp"
#include "net/partition.hpp"
#include "sim/time.hpp"

namespace mars {
namespace {

ScenarioConfig sharded_base(int shards) {
  auto cfg = default_scenario(faults::FaultKind::kProcessRateDecrease, 7);
  cfg.systems = {"mars"};
  cfg.sim.shards = shards;
  return cfg;
}

bool any_error_contains(const std::vector<std::string>& errors,
                        const std::string& needle) {
  for (const auto& e : errors) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ShardedValidationTest, DefaultConfigHasNoShardingAndValidates) {
  const auto cfg =
      default_scenario(faults::FaultKind::kProcessRateDecrease, 7);
  EXPECT_EQ(cfg.sim.shards, 0);  // legacy engine, bit-identical goldens
  EXPECT_TRUE(validate_scenario(cfg).empty());
}

TEST(ShardedValidationTest, ShardCountsWithinCapacityValidate) {
  for (const int shards : {1, 2, 4, 8}) {
    EXPECT_TRUE(validate_scenario(sharded_base(shards)).empty())
        << shards << " shards rejected";
  }
}

TEST(ShardedValidationTest, ShardCountOutOfRangeIsPathNamed) {
  auto errors = validate_scenario(sharded_base(65));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("sim.shards must be in [1, 64] (got 65)"),
            std::string::npos);

  errors = validate_scenario(sharded_base(-1));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("sim.shards must be in [1, 64]"),
            std::string::npos);
}

TEST(ShardedValidationTest, ShardsBeyondPartitionCapacityAreRejected) {
  // A k=4 fat-tree splits into 8 atoms (4 pods + 4 cores): 9 shards have
  // no boundary to cut along.
  const auto errors = validate_scenario(sharded_base(9));
  ASSERT_FALSE(errors.empty());
  EXPECT_TRUE(any_error_contains(errors, "partition capacity"));
  EXPECT_TRUE(any_error_contains(errors, "9 shards"));
  EXPECT_TRUE(any_error_contains(errors, "8 components"));
}

TEST(ShardedValidationTest, BaselineSystemsAreRejectedUnderSharding) {
  auto cfg = sharded_base(2);
  cfg.systems = {"mars", "spidermon"};
  const auto errors = validate_scenario(cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_TRUE(any_error_contains(
      errors, "supports only the 'mars' telemetry system (got 'spidermon')"));
}

TEST(ShardedValidationTest, DegradedChannelIsRejectedUnderSharding) {
  auto cfg = sharded_base(2);
  cfg.mars.channel.notification_loss = 0.2;
  const auto errors = validate_scenario(cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_TRUE(any_error_contains(errors, "perfect control channel"));
  EXPECT_TRUE(any_error_contains(errors, "mars.channel"));
}

TEST(ShardedValidationTest, TelemetryFaultsAreRejectedUnderSharding) {
  auto cfg = sharded_base(2);
  cfg.faults = faults::FaultSchedule::single(
      faults::FaultKind::kNotificationLoss, 3 * sim::kSecond);
  const auto errors = validate_scenario(cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_TRUE(any_error_contains(errors, "telemetry fault"));
  EXPECT_TRUE(any_error_contains(errors, "sharded simulation"));
}

TEST(ShardedValidationTest, NonPositiveControlLatencyIsRejected) {
  auto cfg = sharded_base(2);
  cfg.sim.control_latency = 0;
  const auto errors = validate_scenario(cfg);
  ASSERT_FALSE(errors.empty());
  EXPECT_TRUE(any_error_contains(errors, "sim.control_latency"));
}

TEST(ShardedValidationTest, RunScenarioThrowsEveryShardingSentence) {
  auto cfg = sharded_base(2);
  cfg.systems = {"mars", "syndb"};
  cfg.mars.channel.read_failure = 0.5;
  try {
    (void)run_scenario(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'mars' telemetry system"), std::string::npos);
    EXPECT_NE(what.find("perfect control channel"), std::string::npos);
  }
}

// ---- spec layer ----

TEST(ShardedSpecTest, SimBlockRoundTripsAndLowers) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "name": "sharded",
    "systems": ["mars"],
    "sim": {"shards": 4, "control_latency_s": 0.002}
  })");
  ASSERT_TRUE(spec.sim.shards.has_value());
  EXPECT_EQ(*spec.sim.shards, 4);
  ASSERT_TRUE(spec.sim.control_latency_s.has_value());
  EXPECT_DOUBLE_EQ(*spec.sim.control_latency_s, 0.002);

  // Exact round trip: serialize -> parse is a fixed point.
  EXPECT_EQ(parse_scenario_spec(to_json(spec)), spec);

  const ScenarioConfig cfg = spec.to_config();
  EXPECT_EQ(cfg.sim.shards, 4);
  EXPECT_EQ(cfg.sim.control_latency, 2 * sim::kMillisecond);
}

TEST(ShardedSpecTest, SpecWithoutSimBlockRunsLegacyEngine) {
  const ScenarioSpec spec = parse_scenario_spec(R"({"seed": 7})");
  EXPECT_FALSE(spec.sim.any_set());
  EXPECT_EQ(spec.to_config().sim.shards, 0);
}

TEST(ShardedSpecTest, ShardsOutOfRangeIsPathNamed) {
  ScenarioSpec spec;
  spec.sim.shards = 0;
  auto errors = spec.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("spec.sim.shards must be in [1, 64] (got 0)"),
            std::string::npos);

  spec.sim.shards = 65;
  errors = spec.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("spec.sim.shards must be in [1, 64]"),
            std::string::npos);
}

TEST(ShardedSpecTest, UnknownSimKeyNamesItsPath) {
  try {
    (void)parse_scenario_spec(R"({"sim": {"shard_count": 4}})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.sim"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("shard_count"), std::string::npos);
  }
}

TEST(ShardedSpecTest, PropagationOverrideLowersToNanoseconds) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "topology": {"name": "fat-tree", "k": 4, "propagation_us": 10.0}
  })");
  ASSERT_TRUE(spec.propagation_us.has_value());
  EXPECT_EQ(spec.to_config().topology.propagation, 10'000);
  EXPECT_EQ(parse_scenario_spec(to_json(spec)), spec);
}

TEST(ShardedSpecTest, FatTree16RegistryEntryBuildsTheBigFabric) {
  // The datacenter-scale alias ignores the spec's k and pins arity 16:
  // (16/2)^2 = 64 cores + 16 pods x 16 switches = 320 switches.
  ScenarioConfig cfg = sharded_base(8);
  cfg.topology.name = "fat-tree-16";
  // 990208 paths pigeonhole the default crc16/16 PathID space, and the
  // registry audit refuses to deploy MARS on an ambiguous shape — the
  // big fabric needs the full-width hash (as datacenter_scale.json pins).
  cfg.mars.pipeline.path_id = {telemetry::HashKind::kCrc32, 32};
  EXPECT_TRUE(validate_scenario(cfg).empty());
  const auto fabric = net::TopologyRegistry::instance().build(cfg.topology);
  EXPECT_EQ(fabric.topology.switch_count(), 320u);
  EXPECT_EQ(fabric.pods, 16);
  EXPECT_EQ(net::partition_capacity(fabric.topology), 80);
}

}  // namespace
}  // namespace mars
