#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace {

using namespace mars;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsRegistry, CounterHandlesAreStableAndCreateOrGet) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x");
  registry.counter("y").inc(7);  // insertion must not invalidate `a`
  a.inc(3);
  EXPECT_EQ(&a, &registry.counter("x"));
  EXPECT_EQ(registry.counter("x").value(), 3u);
  EXPECT_EQ(registry.counter_count(), 2u);
}

// ---- LogHistogram bucket layout -----------------------------------------
// With sub_bucket_bits = B (S = 2^B), values in [0, 2S) get exact unit
// buckets; above that each octave splits into S linear sub-buckets, so the
// relative bucket width never exceeds 1/S.

TEST(LogHistogram, UnitBucketsBelowTwoS) {
  const obs::LogHistogram h(4);  // S = 16 -> unit buckets for [0, 32)
  for (std::uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(h.bucket_index(v), v) << "v=" << v;
    EXPECT_EQ(h.bucket_lo(h.bucket_index(v)), v);
    EXPECT_EQ(h.bucket_hi(h.bucket_index(v)), v + 1);
  }
}

TEST(LogHistogram, BucketBoundsContainValue) {
  const obs::LogHistogram h(4);
  // Probe power-of-two edges and their neighbours across many octaves.
  std::vector<std::uint64_t> probes = {0, 1, 31, 32, 33};
  for (int k = 6; k <= 40; k += 2) {
    const std::uint64_t p = 1ull << k;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  for (const std::uint64_t v : probes) {
    const std::size_t idx = h.bucket_index(v);
    EXPECT_LE(h.bucket_lo(idx), v) << "v=" << v;
    EXPECT_LT(v, h.bucket_hi(idx)) << "v=" << v;
  }
}

TEST(LogHistogram, BucketIndexIsMonotone) {
  const obs::LogHistogram h(4);
  std::size_t prev = h.bucket_index(0);
  for (std::uint64_t v = 1; v < 4096; ++v) {
    const std::size_t idx = h.bucket_index(v);
    EXPECT_GE(idx, prev) << "v=" << v;
    prev = idx;
  }
}

TEST(LogHistogram, RelativeBucketWidthBounded) {
  const obs::LogHistogram h(4);  // S = 16 -> width/lo <= 1/16
  for (const std::uint64_t v :
       {100ull, 1'000ull, 123'456ull, 1'000'000'007ull, 1ull << 50}) {
    const std::size_t idx = h.bucket_index(v);
    const double lo = static_cast<double>(h.bucket_lo(idx));
    const double width = static_cast<double>(h.bucket_hi(idx) - h.bucket_lo(idx));
    EXPECT_LE(width / lo, 1.0 / 16.0 + 1e-12) << "v=" << v;
  }
}

TEST(LogHistogram, StatsAndQuantile) {
  obs::LogHistogram h(4);
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_EQ(h.sum(), 500'500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Quantile error is bounded by the bucket's relative width (<= 1/16).
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 500.0, 500.0 / 16.0);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 990.0, 990.0 / 16.0);
  EXPECT_EQ(h.quantile(1.0), h.max());
}

TEST(LogHistogram, RecordNMatchesRepeatedRecord) {
  obs::LogHistogram a(4);
  obs::LogHistogram b(4);
  for (int i = 0; i < 9; ++i) a.record(77);
  b.record_n(77, 9);
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.bucket_count(a.bucket_index(77)),
            b.bucket_count(b.bucket_index(77)));
}

TEST(LogHistogram, MergeAddsCountsAndWidensRange) {
  obs::LogHistogram a(4);
  obs::LogHistogram b(4);
  for (std::uint64_t v = 1; v <= 100; ++v) a.record(v);
  for (std::uint64_t v = 1'000; v <= 2'000; v += 10) b.record(v);
  const std::uint64_t want_total = a.total() + b.total();
  const std::uint64_t want_sum = a.sum() + b.sum();
  a.merge(b);
  EXPECT_EQ(a.total(), want_total);
  EXPECT_EQ(a.sum(), want_sum);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 2'000u);
  EXPECT_EQ(a.bucket_count(a.bucket_index(20)), 1u);  // unit bucket [20,21)
  EXPECT_GE(a.bucket_count(a.bucket_index(1'500)), 1u);
}

// ---- Snapshot / delta ----------------------------------------------------

TEST(MetricsSnapshot, SortedAndDeterministic) {
  obs::MetricsRegistry registry;
  registry.counter("z.late").inc(1);
  registry.counter("a.early").inc(2);
  registry.gauge("m.gauge", [] { return 3.5; });
  registry.histogram("h.hist").record(10);

  const auto s1 = registry.snapshot();
  const auto s2 = registry.snapshot();
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].first, "a.early");
  EXPECT_EQ(s1.counters[1].first, "z.late");
  EXPECT_EQ(s1.counters, s2.counters);  // repeat snapshots identical
  EXPECT_EQ(s1.gauges, s2.gauges);
  EXPECT_DOUBLE_EQ(s1.gauge_or("m.gauge", -1.0), 3.5);
  EXPECT_DOUBLE_EQ(s1.gauge_or("missing", -1.0), -1.0);
  EXPECT_EQ(s1.counter_or("z.late", 0), 1u);
  EXPECT_EQ(s1.counter_or("missing", 9), 9u);
}

TEST(MetricsSnapshot, DeltaSubtractsCountersKeepsLaterGauges) {
  obs::MetricsRegistry registry;
  double g = 1.0;
  registry.counter("c").inc(10);
  registry.gauge("g", [&g] { return g; });
  const auto before = registry.snapshot();

  registry.counter("c").inc(5);
  registry.counter("fresh").inc(3);  // absent from `before`
  g = 2.0;
  const auto after = registry.snapshot();

  const auto d = after.delta(before);
  EXPECT_EQ(d.counter_or("c", 0), 5u);
  EXPECT_EQ(d.counter_or("fresh", 0), 3u);  // keeps full value
  EXPECT_DOUBLE_EQ(d.gauge_or("g", 0.0), 2.0);
}

TEST(MetricsRegistry, RemoveGaugesByPrefix) {
  obs::MetricsRegistry registry;
  registry.gauge("net.a", [] { return 1.0; });
  registry.gauge("net.b", [] { return 2.0; });
  registry.gauge("mars.c", [] { return 3.0; });
  EXPECT_EQ(registry.remove_gauges("net."), 2u);
  EXPECT_EQ(registry.gauge_count(), 1u);
  EXPECT_EQ(registry.remove_gauges(""), 1u);
  EXPECT_EQ(registry.gauge_count(), 0u);
}

TEST(MetricsRegistry, ExportersCoverAllKinds) {
  obs::MetricsRegistry registry;
  registry.counter("c").inc(4);
  registry.gauge("g", [] { return 2.5; });
  registry.histogram("h").record(100);
  const auto snap = registry.snapshot();

  std::ostringstream json;
  obs::MetricsRegistry::write_json(json, snap);
  EXPECT_NE(json.str().find("\"c\""), std::string::npos);
  EXPECT_NE(json.str().find("\"g\""), std::string::npos);
  EXPECT_NE(json.str().find("\"h\""), std::string::npos);

  std::ostringstream csv;
  obs::MetricsRegistry::write_csv(csv, snap);
  EXPECT_NE(csv.str().find("counter,c,4"), std::string::npos);
}

}  // namespace
