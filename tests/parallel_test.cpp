#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mars::parallel {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitIdleDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelForTest, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(pool, 0, touched.size(),
               [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, RethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](std::size_t i) {
                              if (i == 7) throw std::logic_error("task 7");
                            }),
               std::logic_error);
}

TEST(ParallelMapTest, PreservesOrder) {
  ThreadPool pool(4);
  const auto out =
      parallel_map(pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForTest, LargeReductionMatchesSerial) {
  ThreadPool pool;
  std::atomic<long long> sum{0};
  const std::size_t n = 1 << 16;
  parallel_for(pool, 0, n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace mars::parallel
