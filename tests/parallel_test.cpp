#include "parallel/barrier.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mars::parallel {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitIdleDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelForTest, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(pool, 0, touched.size(),
               [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, RethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](std::size_t i) {
                              if (i == 7) throw std::logic_error("task 7");
                            }),
               std::logic_error);
}

TEST(ParallelForTest, ExceptionDoesNotSkipOtherChunks) {
  // A throw aborts only its own chunk; every other chunk still runs to
  // completion (futures are drained before the rethrow). With 100 items
  // and min_chunk=10 on a 4-thread pool the split is ten chunks of 10;
  // the chunk [50,60) throws on its first index, so exactly 90 run.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(parallel_for(
                   pool, 0, 100,
                   [&](std::size_t i) {
                     if (i == 50) throw std::runtime_error("mid");
                     ++executed;
                   },
                   /*min_chunk=*/10),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 90);
}

TEST(ChunkSizesTest, RemainderNeverProducesRuntChunk) {
  // n=10, min_chunk=3: ceil-division sizing would split 4/4/2 and break
  // the floor; the remainder must spread over the leading chunks instead.
  const auto sizes = detail::chunk_sizes(10, 3, 16);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(sizes[2], 3u);
}

TEST(ChunkSizesTest, SweepHonoursFloorAndCoversRange) {
  for (std::size_t n = 1; n <= 128; ++n) {
    for (std::size_t min_chunk = 1; min_chunk <= 9; ++min_chunk) {
      for (std::size_t max_chunks : {1u, 4u, 16u}) {
        const auto sizes = detail::chunk_sizes(n, min_chunk, max_chunks);
        ASSERT_LE(sizes.size(), max_chunks);
        std::size_t total = 0;
        for (std::size_t s : sizes) {
          total += s;
          EXPECT_GE(s, std::min(min_chunk, n))
              << "n=" << n << " min_chunk=" << min_chunk
              << " max_chunks=" << max_chunks;
        }
        EXPECT_EQ(total, n);
      }
    }
  }
}

TEST(ChunkSizesTest, RangeSmallerThanMinChunkIsOneChunk) {
  const auto sizes = detail::chunk_sizes(2, 8, 16);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 2u);
}

TEST(ChunkSizesTest, EmptyRangeHasNoChunks) {
  EXPECT_TRUE(detail::chunk_sizes(0, 4, 16).empty());
}

TEST(ParallelForTest, MinChunkStillCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(101);  // prime-ish, forces remainder
  parallel_for(
      pool, 0, touched.size(), [&](std::size_t i) { ++touched[i]; },
      /*min_chunk=*/7);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelMapTest, PreservesOrder) {
  ThreadPool pool(4);
  const auto out =
      parallel_map(pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForTest, LargeReductionMatchesSerial) {
  ThreadPool pool;
  std::atomic<long long> sum{0};
  const std::size_t n = 1 << 16;
  parallel_for(pool, 0, n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelBarrierTest, ReusableAcrossManyGenerations) {
  constexpr std::size_t kParties = 4;
  constexpr int kGenerations = 2000;
  SpinBarrier barrier(kParties);
  EXPECT_EQ(barrier.parties(), kParties);

  std::atomic<int> completions{0};
  std::vector<std::thread> threads;
  threads.reserve(kParties);
  for (std::size_t p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        barrier.arrive_and_wait(
            [&] { completions.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : threads) t.join();
  // Exactly one completer per generation, never lapped or skipped.
  EXPECT_EQ(completions.load(), kGenerations);
}

TEST(ParallelBarrierTest, CompletionRunsExclusivelyAndPublishes) {
  constexpr std::size_t kParties = 3;
  constexpr int kGenerations = 500;
  SpinBarrier barrier(kParties);

  // Unsynchronized: only safe if the completion callback really is
  // single-threaded and its writes are released to every leaving party.
  std::uint64_t epoch_value = 0;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        barrier.arrive_and_wait([&] { epoch_value = std::uint64_t(g) + 1; });
        if (epoch_value != std::uint64_t(g) + 1) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ParallelEpochsTest, EveryLaneRunsOncePerEpoch) {
  ThreadPool pool(3);
  constexpr std::size_t kLanes = 10;
  constexpr std::uint64_t kEpochs = 50;
  std::vector<std::uint64_t> per_lane(kLanes, 0);  // lane-owned, no atomics
  pool.run_epochs(
      kLanes, [&](std::size_t lane, std::uint64_t) { ++per_lane[lane]; },
      [&](std::uint64_t e) { return e + 1 < kEpochs; });
  for (const auto count : per_lane) EXPECT_EQ(count, kEpochs);
}

TEST(ParallelEpochsTest, LaneOwnershipIsFixedAcrossEpochs) {
  ThreadPool pool(4);
  constexpr std::size_t kLanes = 9;
  std::vector<std::set<std::thread::id>> owners(kLanes);
  pool.run_epochs(
      kLanes,
      [&](std::size_t lane, std::uint64_t) {
        // Safe unsynchronized: each lane is visited by one party per epoch
        // and control() barriers order the epochs.
        owners[lane].insert(std::this_thread::get_id());
      },
      [](std::uint64_t e) { return e + 1 < 200; });
  for (const auto& ids : owners) EXPECT_EQ(ids.size(), 1u);
}

TEST(ParallelEpochsTest, ControlSeesLaneWritesAndLanesSeeControl) {
  ThreadPool pool(3);
  constexpr std::size_t kLanes = 8;
  constexpr std::uint64_t kEpochs = 300;
  std::vector<std::uint64_t> lane_out(kLanes, 0);
  std::uint64_t broadcast = 1;  // written by control, read by every lane
  std::atomic<int> bad_reads{0};
  std::uint64_t checked_epochs = 0;
  pool.run_epochs(
      kLanes,
      [&](std::size_t lane, std::uint64_t e) {
        if (broadcast != e + 1) bad_reads.fetch_add(1);
        lane_out[lane] = (e + 1) * lane;
      },
      [&](std::uint64_t e) {
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          if (lane_out[lane] == (e + 1) * lane) ++checked_epochs;
        }
        broadcast = e + 2;
        return e + 1 < kEpochs;
      });
  EXPECT_EQ(bad_reads.load(), 0);
  EXPECT_EQ(checked_epochs, kEpochs * kLanes);
}

TEST(ParallelEpochsTest, SingleWorkerPoolStillCompletes) {
  ThreadPool pool(1);  // two parties: the worker plus the calling thread
  std::vector<std::uint64_t> per_lane(4, 0);
  pool.run_epochs(
      4, [&](std::size_t lane, std::uint64_t) { ++per_lane[lane]; },
      [](std::uint64_t e) { return e < 2; });
  for (const auto count : per_lane) EXPECT_EQ(count, 3u);
}

TEST(ParallelEpochsTest, ZeroLanesIsNoop) {
  ThreadPool pool(2);
  bool control_ran = false;
  pool.run_epochs(
      0, [](std::size_t, std::uint64_t) { FAIL() << "no lanes to run"; },
      [&](std::uint64_t) {
        control_ran = true;
        return false;
      });
  EXPECT_FALSE(control_ran);
}

TEST(ParallelEpochsTest, MoreLanesThanPartiesStillCoversAll) {
  ThreadPool pool(2);  // 3 parties, 32 lanes -> strided ownership
  std::vector<std::uint64_t> per_lane(32, 0);
  pool.run_epochs(
      32, [&](std::size_t lane, std::uint64_t) { ++per_lane[lane]; },
      [](std::uint64_t e) { return e + 1 < 10; });
  for (const auto count : per_lane) EXPECT_EQ(count, 10u);
}

TEST(ParallelEpochsTest, PoolIsReusableAfterEpochLoop) {
  ThreadPool pool(2);
  int epochs = 0;
  pool.run_epochs(
      2, [](std::size_t, std::uint64_t) {},
      [&](std::uint64_t) { return ++epochs < 5; });
  // Workers must have fully returned to the queue loop.
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
  pool.run_epochs(
      3, [](std::size_t, std::uint64_t) {},
      [&](std::uint64_t) { return ++epochs < 8; });
  EXPECT_EQ(epochs, 8);
}

}  // namespace
}  // namespace mars::parallel
