// Gray-failure golden universe: fixed-seed fingerprints for every gray
// fault kind on the sharded engine, byte-identical at every shard count
// (the Gilbert–Elliott timeline and all gray severity draws happen at
// injection time from the injector's own stream, so thread/shard count
// cannot reorder them). Plus the clean-counterpart differential: a gray
// fault that manifests in 100% of windows grades exactly like its
// always-on sibling.

#include "mars/scenario.hpp"
#include "mars/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

namespace mars {
namespace {

ScenarioConfig gray_config(faults::FaultKind kind, std::uint64_t seed,
                           int shards) {
  auto cfg = default_scenario(kind, seed);
  cfg.duration = 4 * sim::kSecond;
  cfg.systems = {"mars"};  // validate_scenario: sharded runs are mars-only
  cfg.sim.shards = shards;
  cfg.mars.rca.accumulator.enabled = true;
  return cfg;
}

/// Everything an operator would act on, including the gray-specific
/// surfaces (manifestation bookkeeping, presence-calibrated confidence),
/// so "same diagnosis" is one string comparison.
std::string serialize_gray(const ScenarioResult& r) {
  std::ostringstream out;
  out << "events=" << r.events_executed
      << " injected=" << r.net_stats.injected
      << " delivered=" << r.net_stats.delivered
      << " dropped=" << r.net_stats.dropped << "\n";
  for (const auto& truth : r.truths) {
    out << "truth " << truth.describe()
        << " ratio=" << truth.manifestation_ratio
        << " transitions=" << truth.flap_transitions.size() << "\n";
  }
  for (const auto& outcome : r.systems) {
    out << outcome.system << " rank=";
    if (outcome.rank) {
      out << *outcome.rank;
    } else {
      out << "null";
    }
    out << " presence=";
    if (outcome.presence) {
      out << *outcome.presence;
    } else {
      out << "null";
    }
    out << "\n";
    for (const auto& culprit : outcome.culprits) {
      out << "  " << culprit.describe() << "\n";
    }
  }
  return out.str();
}

struct GrayFingerprint {
  faults::FaultKind kind;
  const char* label;
  std::uint64_t seed;
  std::uint64_t events;
  std::uint64_t injected;
  std::uint64_t delivered;
  std::uint64_t dropped;
  std::optional<std::size_t> mars_rank;
  std::uint32_t windows_active;
  std::uint32_t windows_total;
};

class GrayScenarioDeterminismTest
    : public ::testing::TestWithParam<GrayFingerprint> {};

TEST_P(GrayScenarioDeterminismTest, GoldenAtShardOneByteIdenticalAtFour) {
  const GrayFingerprint& golden = GetParam();
  const ScenarioResult reference =
      run_scenario(gray_config(golden.kind, golden.seed, 1));
  EXPECT_EQ(reference.events_executed, golden.events);
  EXPECT_EQ(reference.net_stats.injected, golden.injected);
  EXPECT_EQ(reference.net_stats.delivered, golden.delivered);
  EXPECT_EQ(reference.net_stats.dropped, golden.dropped);
  EXPECT_EQ(reference.outcome("mars").rank, golden.mars_rank);
  ASSERT_EQ(reference.truths.size(), 1u);
  EXPECT_EQ(reference.truths.front().windows_active, golden.windows_active);
  EXPECT_EQ(reference.truths.front().windows_total, golden.windows_total);

  const ScenarioResult sharded =
      run_scenario(gray_config(golden.kind, golden.seed, 4));
  EXPECT_EQ(serialize_gray(sharded), serialize_gray(reference))
      << "gray diagnosis diverged between 1 and 4 shards";
}

INSTANTIATE_TEST_SUITE_P(
    GrayGoldenFingerprints, GrayScenarioDeterminismTest,
    ::testing::Values(
        GrayFingerprint{faults::FaultKind::kLinkFlap, "LinkFlap", 7, 305729,
                        40650, 40192, 423, 1, 6, 10},
        GrayFingerprint{faults::FaultKind::kSlowDrain, "SlowDrain", 7,
                        303284, 40650, 39936, 0, std::nullopt, 6, 10},
        GrayFingerprint{faults::FaultKind::kAsymmetricLoss, "AsymmetricLoss",
                        7, 304433, 40650, 40079, 538, 2, 10, 10},
        GrayFingerprint{faults::FaultKind::kLoadGatedDelay, "LoadGatedDelay",
                        7, 308721, 40650, 40614, 0, std::nullopt, 9, 10}),
    [](const ::testing::TestParamInfo<GrayFingerprint>& info) {
      return std::string(info.param.label) + "Seed" +
             std::to_string(info.param.seed);
    });

// The Gilbert–Elliott transition sequence itself — not just its summary —
// is bit-identical across shard counts.
TEST(GrayScenarioDeterminismTest, FlapTimelineIdenticalAcrossShardCounts) {
  const ScenarioResult one =
      run_scenario(gray_config(faults::FaultKind::kLinkFlap, 11, 1));
  ASSERT_EQ(one.truths.size(), 1u);
  ASSERT_FALSE(one.truths.front().flap_transitions.empty());
  for (const int shards : {2, 4}) {
    const ScenarioResult r =
        run_scenario(gray_config(faults::FaultKind::kLinkFlap, 11, shards));
    ASSERT_EQ(r.truths.size(), 1u);
    EXPECT_EQ(r.truths.front().flap_transitions,
              one.truths.front().flap_transitions)
        << "transition sequence diverged at " << shards << " shards";
  }
}

// Differential against the clean counterpart: an asymmetric-loss event
// whose forward probability is pinned to the same value a drop fault
// would use, with no reverse loss, produces the same packet-level run and
// the same ranked diagnosis — the gray kind only adds manifestation
// bookkeeping (which must read 100%).
TEST(GrayScenarioDeterminismTest, FullyManifestedAsymLossGradesLikeDrop) {
  auto clean = default_scenario(faults::FaultKind::kDrop, 21);
  clean.duration = 4 * sim::kSecond;
  clean.systems = {"mars"};
  clean.injector.drop_prob_min = 0.55;
  clean.injector.drop_prob_max = 0.55;
  const ScenarioResult a = run_scenario(clean);

  auto gray = default_scenario(faults::FaultKind::kAsymmetricLoss, 21);
  gray.duration = 4 * sim::kSecond;
  gray.systems = {"mars"};
  gray.faults.events.front().gray.loss_fwd = 0.55;
  const ScenarioResult b = run_scenario(gray);

  ASSERT_EQ(a.truths.size(), 1u);
  ASSERT_EQ(b.truths.size(), 1u);
  EXPECT_EQ(b.truths.front().switch_id, a.truths.front().switch_id);
  EXPECT_EQ(b.truths.front().port, a.truths.front().port);
  EXPECT_EQ(b.truths.front().manifestation_ratio, 1.0);
  // Identical packet history...
  EXPECT_EQ(b.net_stats.injected, a.net_stats.injected);
  EXPECT_EQ(b.net_stats.delivered, a.net_stats.delivered);
  EXPECT_EQ(b.net_stats.dropped, a.net_stats.dropped);
  // ...and an identical ranked verdict.
  const SystemOutcome& oa = a.outcome("mars");
  const SystemOutcome& ob = b.outcome("mars");
  EXPECT_EQ(ob.rank, oa.rank);
  ASSERT_EQ(ob.culprits.size(), oa.culprits.size());
  for (std::size_t i = 0; i < oa.culprits.size(); ++i) {
    EXPECT_EQ(ob.culprits[i].describe(), oa.culprits[i].describe());
  }
}

// Spec-driven gray run: the shipped scenarios/gray_failures.json shape
// parses, validates, runs, and surfaces both gray outputs (manifestation
// on the truth, presence on the outcome).
TEST(GrayScenarioDeterminismTest, SpecDrivenGrayRunSurfacesPresence) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "name": "gray-spec",
    "topology": {"name": "fat-tree"},
    "seed": 11,
    "duration_s": 4.0,
    "systems": ["mars"],
    "rca": {"accumulator": {"enabled": true, "half_life_s": 2.0}},
    "faults": [{
      "kind": "flap",
      "at_s": 2.0,
      "duration_s": 1.5,
      "gray": {"mean_up_ms": 100.0, "mean_down_ms": 50.0, "fanout": 2}
    }]
  })");
  EXPECT_TRUE(spec.validate().empty());
  const ScenarioResult r = run_scenario(spec.to_config());
  ASSERT_EQ(r.truths.size(), 1u);
  EXPECT_GT(r.truths.front().windows_total, 0u);
  const SystemOutcome& outcome = r.outcome("mars");
  ASSERT_TRUE(outcome.presence.has_value());
  EXPECT_GT(*outcome.presence, 0.0);
  EXPECT_LE(*outcome.presence, 1.0);
}

}  // namespace
}  // namespace mars
