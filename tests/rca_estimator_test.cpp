#include "rca/traffic_estimator.hpp"

#include <gtest/gtest.h>

namespace mars::rca {
namespace {

using namespace mars::sim::literals;

telemetry::RtRecord make_record(std::uint32_t path_packets,
                                sim::Time sink_ts) {
  telemetry::RtRecord rec;
  rec.flow = {1, 5};
  rec.path_id = 0xAB;
  rec.sink_timestamp = sink_ts;
  rec.latency = 2_ms;
  rec.total_queue_depth = 7;
  rec.path_epoch_packets = path_packets;
  return rec;
}

TEST(EstimatorTest, ReplicatesSampleByCount) {
  const auto recs = std::vector<telemetry::RtRecord>{make_record(5, 1_s)};
  const auto est = estimate_traffic(recs, {.sample_gap = 100_ms});
  ASSERT_EQ(est.size(), 5u);
  for (const auto& p : est) {
    EXPECT_EQ(p.flow, (net::FlowId{1, 5}));
    EXPECT_EQ(p.path_id, 0xABu);
    EXPECT_EQ(p.latency, 2_ms);
    EXPECT_EQ(p.total_queue_depth, 7u);
  }
}

TEST(EstimatorTest, SpreadsTimestampsEvenlyAcrossGap) {
  // Alg. 2 line 5: t_hat = t + i*T/count.
  const auto recs = std::vector<telemetry::RtRecord>{make_record(4, 1_s)};
  const auto est = estimate_traffic(recs, {.sample_gap = 100_ms});
  ASSERT_EQ(est.size(), 4u);
  EXPECT_EQ(est[0].t, 1_s);
  EXPECT_EQ(est[1].t, 1_s + 25_ms);
  EXPECT_EQ(est[2].t, 1_s + 50_ms);
  EXPECT_EQ(est[3].t, 1_s + 75_ms);
}

TEST(EstimatorTest, ZeroCountStillYieldsTheSampleItself) {
  const auto recs = std::vector<telemetry::RtRecord>{make_record(0, 1_s)};
  const auto est = estimate_traffic(recs, {});
  EXPECT_EQ(est.size(), 1u);
}

TEST(EstimatorTest, CapBoundsExpansion) {
  const auto recs = std::vector<telemetry::RtRecord>{make_record(100000, 0)};
  const auto est =
      estimate_traffic(recs, {.sample_gap = 100_ms, .max_per_record = 64});
  EXPECT_EQ(est.size(), 64u);
}

TEST(EstimatorTest, MultipleRecordsConcatenate) {
  const std::vector<telemetry::RtRecord> recs{make_record(3, 0),
                                              make_record(2, 100_ms)};
  const auto est = estimate_traffic(recs, {.sample_gap = 100_ms});
  EXPECT_EQ(est.size(), 5u);
}

}  // namespace
}  // namespace mars::rca
