// EvidenceAccumulator: magnitude-first multi-epoch SBFL support and
// per-suspect presence. The properties pinned here are the ones the
// gray-failure confidence calibration depends on: presence is the exact
// fraction of windows a suspect appears in, recurrence breaks near-ties
// for repeat offenders but never outvotes decisively louder evidence,
// and suspects unseen for over a half-life decay away.

#include "rca/accumulator.hpp"

#include <gtest/gtest.h>

namespace mars::rca {
namespace {

Culprit port_culprit(net::SwitchId sw, net::PortId port, double score,
                     CauseKind cause = CauseKind::kDrop) {
  Culprit c;
  c.level = CulpritLevel::kPort;
  c.cause = cause;
  c.location = {sw};
  c.port = port;
  c.score = score;
  return c;
}

TEST(EvidenceAccumulatorTest, PresenceIsFractionOfWindows) {
  EvidenceAccumulator acc;
  const Culprit flaky = port_culprit(3, 1, 10.0);
  const Culprit steady = port_culprit(5, 0, 8.0);
  acc.observe({steady, flaky}, 1 * sim::kSecond);
  acc.observe({steady}, 2 * sim::kSecond);
  acc.observe({steady, flaky}, 3 * sim::kSecond);
  acc.observe({steady}, 4 * sim::kSecond);
  EXPECT_EQ(acc.window_count(0), 4u);
  EXPECT_DOUBLE_EQ(acc.presence_of(steady, 0), 1.0);
  EXPECT_DOUBLE_EQ(acc.presence_of(flaky, 0), 0.5);
  // The `since` cut restricts the denominator.
  EXPECT_EQ(acc.window_count(3 * sim::kSecond), 2u);
  EXPECT_DOUBLE_EQ(acc.presence_of(flaky, 3 * sim::kSecond), 0.5);
}

TEST(EvidenceAccumulatorTest, RepeatOffenderOutranksNearTieTransients) {
  EvidenceAccumulator acc;
  // Each window's transient edges out the repeat offender slightly, but
  // the repeat offender shows up every time; recurrence must break the
  // near-tie in its favour.
  const Culprit repeat = port_culprit(3, 1, 8.5);
  for (int w = 0; w < 4; ++w) {
    const Culprit transient = port_culprit(
        static_cast<net::SwitchId>(10 + w), 0, 9.0);
    acc.observe({transient, repeat}, (1 + w) * sim::kSecond);
  }
  const CulpritList ranked = acc.ranked(0);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().location.front(), 3u);
  EXPECT_EQ(ranked.front().port, 1u);
}

TEST(EvidenceAccumulatorTest, RecurrenceNeverOutvotesDecisiveEvidence) {
  EvidenceAccumulator acc;
  // An ambient suspect re-reported every epoch (a fault's collateral
  // congestion echoes at near-constant strength) must not accumulate past
  // a decisively louder one-window root cause.
  const Culprit echo = port_culprit(5, 0, 5.0);
  const Culprit source = port_culprit(3, 1, 9.0);
  acc.observe({echo}, 1 * sim::kSecond);
  acc.observe({source, echo}, 2 * sim::kSecond);
  acc.observe({echo}, 3 * sim::kSecond);
  acc.observe({echo}, 4 * sim::kSecond);
  const CulpritList ranked = acc.ranked(0);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked.front().location.front(), 3u);
  EXPECT_EQ(ranked.front().port, 1u);
}

TEST(EvidenceAccumulatorTest, DecayForgetsStaleEvidence) {
  AccumulatorConfig cfg;
  cfg.half_life = 1 * sim::kSecond;
  EvidenceAccumulator acc(cfg);
  // Old culprit dominates early windows; new culprit owns the last one.
  const Culprit old_c = port_culprit(2, 0, 9.0);
  const Culprit new_c = port_culprit(7, 1, 9.0);
  acc.observe({old_c}, 1 * sim::kSecond);
  acc.observe({old_c}, 2 * sim::kSecond);
  // Ten half-lives later: the old evidence is worth ~2^-10 of a window.
  acc.observe({new_c}, 12 * sim::kSecond);
  const CulpritList ranked = acc.ranked(0);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked.front().location.front(), 7u);
}

TEST(EvidenceAccumulatorTest, MaxWindowsEvictsOldest) {
  AccumulatorConfig cfg;
  cfg.max_windows = 2;
  EvidenceAccumulator acc(cfg);
  const Culprit evicted = port_culprit(1, 0, 5.0);
  acc.observe({evicted}, 1 * sim::kSecond);
  acc.observe({port_culprit(2, 0, 5.0)}, 2 * sim::kSecond);
  acc.observe({port_culprit(3, 0, 5.0)}, 3 * sim::kSecond);
  EXPECT_EQ(acc.window_count(0), 2u);
  EXPECT_DOUBLE_EQ(acc.presence_of(evicted, 0), 0.0);
}

TEST(EvidenceAccumulatorTest, TopPresenceIsOneWithoutEvidence) {
  EvidenceAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.top_presence(0), 1.0);
  acc.observe({port_culprit(3, 1, 4.0)}, 1 * sim::kSecond);
  acc.observe({}, 2 * sim::kSecond);
  EXPECT_DOUBLE_EQ(acc.top_presence(0), 0.5);
}

// ranked() fuses causes per element and rewards cross-symptom
// corroboration: an element reported for BOTH latency-family and drop
// evidence (the slow-drain signature — service degrades, then its queue
// overflows) must outrank a slightly-louder single-symptom echo.
TEST(EvidenceAccumulatorTest, CrossSymptomCorroborationBeatsEcho) {
  EvidenceAccumulator acc;
  const Culprit sick_latency =
      port_culprit(2, 1, 8.0, CauseKind::kProcessRateDecrease);
  const Culprit sick_drop = port_culprit(2, 1, 7.0, CauseKind::kDrop);
  const Culprit echo = port_culprit(9, 0, 8.6, CauseKind::kDrop);
  acc.observe({echo, sick_latency}, 1 * sim::kSecond);
  acc.observe({echo, sick_drop}, 2 * sim::kSecond);
  const CulpritList ranked = acc.ranked(0);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked.front().location.front(), 2u);
  EXPECT_EQ(ranked.front().port, 1u);
  // The fused element is displayed as its loudest sighting.
  EXPECT_EQ(ranked.front().cause, CauseKind::kProcessRateDecrease);
}

TEST(EvidenceAccumulatorTest, CauseIsPartOfSuspectIdentity) {
  EvidenceAccumulator acc;
  const Culprit as_drop = port_culprit(4, 2, 5.0, CauseKind::kDrop);
  const Culprit as_delay = port_culprit(4, 2, 5.0, CauseKind::kDelay);
  acc.observe({as_drop}, 1 * sim::kSecond);
  acc.observe({as_delay}, 2 * sim::kSecond);
  EXPECT_DOUBLE_EQ(acc.presence_of(as_drop, 0), 0.5);
  EXPECT_DOUBLE_EQ(acc.presence_of(as_delay, 0), 0.5);
}

// A load-dependent port classifies as rate-decrease under congestion and
// plain delay when quiet; both sightings must feed one suspect or the
// split evidence loses to persistent ambient noise.
TEST(EvidenceAccumulatorTest, LatencyFamilyCausesAccumulateTogether) {
  EvidenceAccumulator acc;
  const Culprit as_delay = port_culprit(4, 2, 5.0, CauseKind::kDelay);
  const Culprit as_rate =
      port_culprit(4, 2, 5.0, CauseKind::kProcessRateDecrease);
  acc.observe({as_delay}, 1 * sim::kSecond);
  acc.observe({as_rate}, 2 * sim::kSecond);
  EXPECT_DOUBLE_EQ(acc.presence_of(as_delay, 0), 1.0);
  EXPECT_DOUBLE_EQ(acc.presence_of(as_rate, 0), 1.0);
  ASSERT_EQ(acc.ranked(0).size(), 1u);
}

TEST(EvidenceAccumulatorTest, ClearResets) {
  EvidenceAccumulator acc;
  acc.observe({port_culprit(3, 1, 4.0)}, 1 * sim::kSecond);
  acc.clear();
  EXPECT_EQ(acc.window_count(0), 0u);
  EXPECT_TRUE(acc.ranked(0).empty());
}

}  // namespace
}  // namespace mars::rca
