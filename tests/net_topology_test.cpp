#include "net/fat_tree.hpp"
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mars::net {
namespace {

TEST(TopologyTest, LinkAssignsDensePorts) {
  Topology t;
  const auto a = t.add_switch(Layer::kEdge);
  const auto b = t.add_switch(Layer::kAggregation);
  const auto c = t.add_switch(Layer::kCore);
  t.add_link(a, b);
  t.add_link(a, c);
  t.add_link(b, c);
  EXPECT_EQ(t.port_count(a), 2u);
  EXPECT_EQ(t.port_count(b), 2u);
  EXPECT_EQ(t.port_count(c), 2u);
  EXPECT_EQ(t.peer(a, 0).neighbor, b);
  EXPECT_EQ(t.peer(a, 1).neighbor, c);
  // Symmetric: the peer's peer is us.
  const auto& p = t.peer(a, 0);
  EXPECT_EQ(t.peer(p.neighbor, p.neighbor_port).neighbor, a);
}

TEST(TopologyTest, PortTowards) {
  Topology t;
  const auto a = t.add_switch(Layer::kEdge);
  const auto b = t.add_switch(Layer::kEdge);
  const auto c = t.add_switch(Layer::kEdge);
  t.add_link(a, b);
  EXPECT_TRUE(t.port_towards(a, b).has_value());
  EXPECT_FALSE(t.port_towards(a, c).has_value());
}

TEST(TopologyTest, LayerQueries) {
  Topology t;
  t.add_switch(Layer::kEdge);
  t.add_switch(Layer::kCore);
  t.add_switch(Layer::kEdge);
  EXPECT_EQ(t.switches_in_layer(Layer::kEdge).size(), 2u);
  EXPECT_EQ(t.switches_in_layer(Layer::kCore).size(), 1u);
  EXPECT_EQ(t.switches_in_layer(Layer::kAggregation).size(), 0u);
}

class FatTreeParamTest : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeParamTest, StructuralInvariants) {
  const int k = GetParam();
  const int half = k / 2;
  const auto ft = build_fat_tree({.k = k});
  // Switch counts: k pods * (k/2 edge + k/2 agg) + (k/2)^2 core.
  EXPECT_EQ(ft.edge.size(), static_cast<std::size_t>(k * half));
  EXPECT_EQ(ft.agg.size(), static_cast<std::size_t>(k * half));
  EXPECT_EQ(ft.core.size(), static_cast<std::size_t>(half * half));
  EXPECT_EQ(ft.topology.switch_count(),
            ft.edge.size() + ft.agg.size() + ft.core.size());
  // Link count: every edge connects to k/2 aggs, every agg to k/2 cores.
  EXPECT_EQ(ft.topology.link_count(),
            static_cast<std::size_t>(k * half * half * 2));
  // Degree checks.
  for (const auto sw : ft.edge) {
    EXPECT_EQ(ft.topology.port_count(sw), static_cast<std::size_t>(half));
    EXPECT_EQ(ft.topology.layer(sw), Layer::kEdge);
  }
  for (const auto sw : ft.agg) {
    EXPECT_EQ(ft.topology.port_count(sw), static_cast<std::size_t>(k));
    EXPECT_EQ(ft.topology.layer(sw), Layer::kAggregation);
  }
  for (const auto sw : ft.core) {
    EXPECT_EQ(ft.topology.port_count(sw), static_cast<std::size_t>(k));
    EXPECT_EQ(ft.topology.layer(sw), Layer::kCore);
  }
}

TEST_P(FatTreeParamTest, EdgeOnlyTouchesAggInOwnPod) {
  const int k = GetParam();
  const int half = k / 2;
  const auto ft = build_fat_tree({.k = k});
  for (std::size_t e = 0; e < ft.edge.size(); ++e) {
    const int pod = static_cast<int>(e) / half;
    const auto nbrs = ft.topology.neighbors(ft.edge[e]);
    std::set<SwitchId> expected;
    for (int j = 0; j < half; ++j) {
      expected.insert(ft.agg[static_cast<std::size_t>(pod * half + j)]);
    }
    EXPECT_EQ(std::set<SwitchId>(nbrs.begin(), nbrs.end()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, FatTreeParamTest,
                         ::testing::Values(2, 4, 6, 8));

TEST(FatTreeTest, K4MatchesPaperScale) {
  // Paper §5.5: in a K=4 fat-tree there are 8 edge switches.
  const auto ft = build_fat_tree({.k = 4});
  EXPECT_EQ(ft.edge.size(), 8u);
  EXPECT_EQ(ft.agg.size(), 8u);
  EXPECT_EQ(ft.core.size(), 4u);
  EXPECT_EQ(ft.topology.switch_count(), 20u);
}

}  // namespace
}  // namespace mars::net
