#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace mars::util {
namespace {

TEST(RunningStatsTest, MatchesBatchComputation) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(42.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7}), 7.0);
}

TEST(MedianTest, RobustToOutliers) {
  // The reservoir relies on the median staying stable under a minority of
  // extreme latency outliers.
  std::vector<double> xs(100, 10.0);
  for (int i = 0; i < 10; ++i) xs[static_cast<std::size_t>(i)] = 1e9;
  EXPECT_DOUBLE_EQ(median(xs), 10.0);
}

TEST(QuantileTest, Interpolates) {
  const std::vector<double> xs{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(EcdfTest, FractionAtOrBelow) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> at{0.5, 1.0, 2.5, 4.0, 9.0};
  const auto f = ecdf(xs, at);
  ASSERT_EQ(f.size(), at.size());
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.25);
  EXPECT_DOUBLE_EQ(f[2], 0.5);
  EXPECT_DOUBLE_EQ(f[3], 1.0);
  EXPECT_DOUBLE_EQ(f[4], 1.0);
}

TEST(HistogramTest, BinningAndQuantile) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < h.bins(); ++b) EXPECT_EQ(h.count(b), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_DOUBLE_EQ(h.cumulative(9), 1.0);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(CdfSeriesTest, MonotoneAndEndsAtOne) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform());
  const auto cdf = make_cdf("u", xs);
  ASSERT_EQ(cdf.x.size(), xs.size());
  for (std::size_t i = 1; i < cdf.x.size(); ++i) {
    EXPECT_LE(cdf.x[i - 1], cdf.x[i]);
    EXPECT_LT(cdf.f[i - 1], cdf.f[i]);
  }
  EXPECT_DOUBLE_EQ(cdf.f.back(), 1.0);
}

}  // namespace
}  // namespace mars::util
