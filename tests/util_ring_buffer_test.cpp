#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mars::util {
namespace {

TEST(RingBufferTest, FillsThenOverwritesOldest) {
  RingBuffer<int> rb(3);
  EXPECT_FALSE(rb.push(1));
  EXPECT_FALSE(rb.push(2));
  EXPECT_FALSE(rb.push(3));
  EXPECT_TRUE(rb.full());
  // Paper §4.2.2: "When RT is full, the oldest data will be covered by the
  // newest data."
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.at(0), 2);
  EXPECT_EQ(rb.at(1), 3);
  EXPECT_EQ(rb.at(2), 4);
  EXPECT_EQ(rb.back(), 4);
}

TEST(RingBufferTest, SnapshotIsOldestToNewest) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 10; ++i) rb.push(i);
  EXPECT_EQ(rb.snapshot(), (std::vector<int>{6, 7, 8, 9}));
}

TEST(RingBufferTest, PartialFill) {
  RingBuffer<int> rb(8);
  rb.push(5);
  rb.push(6);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.snapshot(), (std::vector<int>{5, 6}));
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.at(0), 9);
}

class RingBufferParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingBufferParamTest, AlwaysKeepsTheNewestCapacityElements) {
  const std::size_t cap = GetParam();
  RingBuffer<std::size_t> rb(cap);
  const std::size_t total = cap * 3 + 1;
  for (std::size_t i = 0; i < total; ++i) rb.push(i);
  ASSERT_EQ(rb.size(), cap);
  for (std::size_t i = 0; i < cap; ++i) {
    EXPECT_EQ(rb.at(i), total - cap + i);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferParamTest,
                         ::testing::Values(1, 2, 3, 7, 64, 1024));

}  // namespace
}  // namespace mars::util
