#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include "net/fat_tree.hpp"
#include "sim/simulator.hpp"

namespace mars::faults {
namespace {

using namespace mars::sim::literals;

struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  workload::TrafficGenerator gen{net, 3};
  FaultInjector injector{net, gen, 17};

  Fixture() {
    workload::BackgroundConfig cfg;
    cfg.flows = 8;
    gen.add_background(cfg, ft.edge, 4);
    gen.start();
  }
};

TEST(FaultInjectorTest, MicroBurstAddsBurstFlow) {
  Fixture f;
  const auto truth = f.injector.inject(FaultKind::kMicroBurst, 1_s);
  ASSERT_TRUE(truth.has_value());
  EXPECT_EQ(truth->kind, FaultKind::kMicroBurst);
  EXPECT_NE(truth->flow.source, net::kInvalidSwitch);
  const auto before = f.gen.flows().size();
  EXPECT_EQ(before, 9u);  // 8 background + 1 burst
}

TEST(FaultInjectorTest, EcmpRewritesWeightsAndRestores) {
  Fixture f;
  const auto truth = f.injector.inject(FaultKind::kEcmpImbalance, 1_s);
  ASSERT_TRUE(truth.has_value());
  const auto sw = truth->switch_id;
  ASSERT_NE(sw, net::kInvalidSwitch);
  f.sim.run(1500_ms);  // mid-fault
  bool skewed = false;
  for (net::SwitchId dst = 0; dst < f.net.switch_count(); ++dst) {
    const auto& g = f.net.routing().group(sw, dst);
    for (const auto& m : g.members) skewed |= (m.weight > 1);
  }
  EXPECT_TRUE(skewed);
  f.sim.run(3_s);  // past restoration
  for (net::SwitchId dst = 0; dst < f.net.switch_count(); ++dst) {
    for (const auto& m : f.net.routing().group(sw, dst).members) {
      EXPECT_EQ(m.weight, 1u);
    }
  }
}

TEST(FaultInjectorTest, ProcessRateFaultOnLoadedPort) {
  Fixture f;
  const auto truth = f.injector.inject(FaultKind::kProcessRateDecrease, 1_s);
  ASSERT_TRUE(truth.has_value());
  EXPECT_NE(truth->switch_id, net::kInvalidSwitch);
  // The chosen switch lies on some flow's path (loaded).
  bool on_path = false;
  for (const auto& spec : f.gen.flows()) {
    net::SwitchId at = spec.flow.source;
    for (int hop = 0; hop < 8 && at != spec.flow.sink; ++hop) {
      if (at == truth->switch_id) on_path = true;
      net::PortId out = 0;
      if (!f.net.routing().select_port(at, spec.flow.sink, spec.flow_hash,
                                       out)) {
        break;
      }
      at = f.net.topology().peer(at, out).neighbor;
    }
    on_path |= (truth->switch_id == spec.flow.sink);
  }
  EXPECT_TRUE(on_path);
}

TEST(FaultInjectorTest, DropFaultCausesLoss) {
  Fixture f;
  const auto truth = f.injector.inject(FaultKind::kDrop, 1_s);
  ASSERT_TRUE(truth.has_value());
  f.sim.run(3_s);
  EXPECT_GT(f.net.stats().dropped, 0u);
}

TEST(FaultInjectorTest, DelayFaultRestoredAfterDuration) {
  Fixture f;
  InjectorConfig cfg;
  cfg.duration = 500_ms;
  FaultInjector inj{f.net, f.gen, 5, cfg};
  const auto truth = inj.inject(FaultKind::kDelay, 1_s);
  ASSERT_TRUE(truth.has_value());
  f.sim.run(5_s);
  // After clear_faults, traffic flows without the extra delay: compare a
  // probe's transit to the healthy baseline by injecting directly.
  std::vector<sim::Time> transits;
  f.net.set_delivery_callback([&](const net::Packet& p, sim::Time t) {
    transits.push_back(t - p.created);
  });
  f.net.inject({truth->switch_id == f.ft.edge[0] ? f.ft.edge[1] : f.ft.edge[0],
                truth->switch_id == f.ft.edge[0] ? f.ft.edge[0]
                                                 : f.ft.edge[1]},
               1, 500);
  f.sim.run(10_s);
  ASSERT_FALSE(transits.empty());
  EXPECT_LT(transits.back(), 5_ms);
}

TEST(FaultInjectorTest, HistoryAccumulates) {
  Fixture f;
  f.injector.inject(FaultKind::kDrop, 1_s);
  f.injector.inject(FaultKind::kDelay, 2_s);
  EXPECT_EQ(f.injector.injected().size(), 2u);
}

TEST(FaultInjectorTest, DescribeIsHumanReadable) {
  GroundTruth t;
  t.kind = FaultKind::kEcmpImbalance;
  t.switch_id = 9;
  EXPECT_EQ(t.describe(), "ecmp-imbalance @ s9");
  t.kind = FaultKind::kDrop;
  t.port = 2;
  EXPECT_EQ(t.describe(), "drop @ s9 port 2");
}

}  // namespace
}  // namespace mars::faults
