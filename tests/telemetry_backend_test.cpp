// TelemetryBackend contract tests: name registry, the postcard/int-md
// differential (same seed => identical drained records), histogram wire
// accounting, and the full Table-1 fault suite running through the common
// interface under every backend.

#include "telemetry/backend.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "control/path_registry.hpp"
#include "dataplane/mars_pipeline.hpp"
#include "mars/scenario.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "telemetry/int_md_backend.hpp"
#include "telemetry/postcard_backend.hpp"

namespace mars::telemetry {
namespace {

using namespace mars::sim::literals;

TEST(BackendNamesTest, RoundTripAllKinds) {
  for (const auto kind :
       {BackendKind::kPostcard, BackendKind::kIntMd, BackendKind::kHistogram}) {
    const auto back = backend_from_name(to_string(kind));
    ASSERT_TRUE(back.has_value()) << to_string(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_EQ(known_backend_names().size(), 3u);
}

TEST(BackendNamesTest, UnknownNameIsRejected) {
  EXPECT_FALSE(backend_from_name("postcards").has_value());
  EXPECT_FALSE(backend_from_name("").has_value());
}

TEST(BackendNamesTest, SuggestsCloseMisspellings) {
  EXPECT_EQ(suggest_backend("histgram"), "histogram");
  EXPECT_EQ(suggest_backend("postcrd"), "postcard");
  EXPECT_EQ(suggest_backend("int_md"), "int-md");
  // Nothing within edit range: no suggestion beats a wrong one.
  EXPECT_EQ(suggest_backend("zzzzzzzzzz"), "");
}

/// A fat-tree with a MarsPipeline wired for one backend kind; traffic
/// schedules are identical across fixtures, which is what makes the
/// differential meaningful.
struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  control::PathRegistry registry{ft.topology, net.routing(), {}};
  dataplane::MarsPipeline pipeline;

  explicit Fixture(BackendKind kind)
      : pipeline(ft.topology.switch_count(), config_for(kind),
                 [](const dataplane::Notification&) {}) {
    pipeline.set_control_mat(registry.mat());
    net.add_observer(pipeline);
  }

  static dataplane::PipelineConfig config_for(BackendKind kind) {
    dataplane::PipelineConfig cfg;
    cfg.backend.kind = kind;
    return cfg;
  }

  void traffic(net::FlowId flow, std::uint32_t hash, int count,
               sim::Time gap) {
    for (int i = 0; i < count; ++i) {
      sim.schedule_in(gap * i,
                      [this, flow, hash] { net.inject(flow, hash, 500); });
    }
  }
};

void expect_same_records(const std::vector<RtRecord>& a,
                         const std::vector<RtRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flow, b[i].flow) << "record " << i;
    EXPECT_EQ(a[i].path_id, b[i].path_id) << "record " << i;
    EXPECT_EQ(a[i].epoch_id, b[i].epoch_id) << "record " << i;
    EXPECT_EQ(a[i].latency, b[i].latency) << "record " << i;
    EXPECT_EQ(a[i].source_timestamp, b[i].source_timestamp) << "record " << i;
    EXPECT_EQ(a[i].sink_timestamp, b[i].sink_timestamp) << "record " << i;
    EXPECT_EQ(a[i].total_queue_depth, b[i].total_queue_depth)
        << "record " << i;
    EXPECT_EQ(a[i].epoch_gap, b[i].epoch_gap) << "record " << i;
  }
}

TEST(BackendDifferentialTest, PostcardAndIntMdDrainIdenticalRecords) {
  // Same topology, same traffic, same seed-free schedule: on a perfect
  // channel the postcard ring and the INT-MD sink store must expose the
  // SAME record stream — the backends differ in wire format, not in what
  // the telemetry packets measured.
  Fixture postcard(BackendKind::kPostcard);
  Fixture intmd(BackendKind::kIntMd);
  for (Fixture* f : {&postcard, &intmd}) {
    const net::FlowId intra{f->ft.edge[0], f->ft.edge[1]};
    const net::FlowId inter{f->ft.edge[0], f->ft.edge[4]};
    f->traffic(intra, 7, 40, 10_ms);
    f->traffic(inter, 99, 40, 10_ms);
    f->sim.run();
  }
  EXPECT_EQ(postcard.sim.now(), intmd.sim.now())
      << "backend choice must not move the event schedule";
  for (const net::SwitchId sink :
       {postcard.ft.edge[1], postcard.ft.edge[4]}) {
    const auto from_ring = postcard.pipeline.ring_snapshot(sink);
    const auto from_stack = intmd.pipeline.ring_snapshot(sink);
    ASSERT_FALSE(from_ring.empty());
    expect_same_records(from_ring, from_stack);
  }
}

TEST(BackendDifferentialTest, IntMdHopStacksMatchTheRecordedPath) {
  Fixture f(BackendKind::kIntMd);
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};  // inter-pod, 5 hops
  f.traffic(flow, 99, 30, 10_ms);
  f.sim.run();
  const auto* backend =
      dynamic_cast<const IntMdBackend*>(&f.pipeline.backend());
  ASSERT_NE(backend, nullptr);
  const auto stored = backend->records_with_hops(flow.sink);
  ASSERT_FALSE(stored.empty());
  for (const auto& s : stored) {
    // The hop stack IS the PathID's switch sequence, in order — the
    // hop-exact evidence this backend pays extra in-band bytes for.
    const auto* path = f.registry.lookup(s.rec.path_id);
    ASSERT_NE(path, nullptr);
    ASSERT_EQ(s.hops.size(), path->size());
    for (std::size_t h = 0; h < s.hops.size(); ++h) {
      EXPECT_EQ(s.hops[h].sw, (*path)[h]);
    }
    EXPECT_EQ(s.hops.back().sw, flow.sink);
    EXPECT_EQ(s.hops.back().out_port, net::kHostPort);
    // Transit hop latencies are measured, and each is bounded by the
    // record's end-to-end latency.
    for (std::size_t h = 0; h + 1 < s.hops.size(); ++h) {
      EXPECT_GT(s.hops[h].hop_latency, 0);
      EXPECT_LE(s.hops[h].hop_latency, s.rec.latency);
    }
  }
}

TEST(BackendDifferentialTest, InBandByteOrderingAcrossBackends) {
  // Identical traffic, three backends: histogram must undercut postcard
  // (7B marker vs 11B header) and int-md must exceed it (per-hop stack).
  std::uint64_t inband[3] = {};
  const BackendKind kinds[] = {BackendKind::kPostcard, BackendKind::kIntMd,
                               BackendKind::kHistogram};
  for (int i = 0; i < 3; ++i) {
    Fixture f(kinds[i]);
    const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
    f.traffic(flow, 99, 60, 5_ms);
    f.sim.run();
    inband[i] = f.pipeline.backend().counters().inband_bytes;
    EXPECT_EQ(f.pipeline.overheads().telemetry_bytes, inband[i])
        << "pipeline accounting must mirror " << to_string(kinds[i]);
  }
  EXPECT_LT(inband[2], inband[0]) << "histogram must be cheapest in band";
  EXPECT_GT(inband[1], inband[0]) << "int-md must be dearest in band";
}

TEST(BackendSuiteTest, AllBackendsRunTheFaultSuite) {
  // The acceptance bar: every backend drives the full Table-1 fault suite
  // through the unmodified scenario runner — backends are config, not
  // code paths the runner knows about.
  const faults::FaultKind causes[] = {
      faults::FaultKind::kMicroBurst, faults::FaultKind::kEcmpImbalance,
      faults::FaultKind::kProcessRateDecrease, faults::FaultKind::kDelay,
      faults::FaultKind::kDrop};
  for (const auto kind :
       {BackendKind::kPostcard, BackendKind::kIntMd, BackendKind::kHistogram}) {
    for (const auto cause : causes) {
      ScenarioConfig cfg = default_scenario(cause, 11);
      cfg.duration = 4 * sim::kSecond;
      cfg.systems = {"mars"};
      cfg.mars.pipeline.backend.kind = kind;
      const ScenarioResult r = run_scenario(cfg);
      ASSERT_TRUE(r.fault_injected)
          << to_string(kind) << "/" << faults::to_string(cause);
      const SystemOutcome& outcome = r.outcome("mars");
      EXPECT_GT(outcome.telemetry_bytes, 0u)
          << to_string(kind) << "/" << faults::to_string(cause);
      EXPECT_FALSE(outcome.culprits.empty())
          << to_string(kind) << "/" << faults::to_string(cause);
    }
  }
}

}  // namespace
}  // namespace mars::telemetry
