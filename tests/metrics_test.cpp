#include "metrics/ranking.hpp"

#include <gtest/gtest.h>

#include "metrics/classification.hpp"

namespace mars::metrics {
namespace {

rca::Culprit switch_culprit(net::SwitchId sw, rca::CauseKind cause,
                            double score) {
  rca::Culprit c;
  c.level = rca::CulpritLevel::kSwitch;
  c.location = {sw};
  c.cause = cause;
  c.score = score;
  return c;
}

faults::GroundTruth switch_truth(faults::FaultKind kind, net::SwitchId sw) {
  faults::GroundTruth t;
  t.kind = kind;
  t.switch_id = sw;
  return t;
}

TEST(ClassificationTest, PrecisionRecallF1) {
  BinaryCounts c;
  // 8 TP, 2 FP, 1 FN, 89 TN.
  for (int i = 0; i < 8; ++i) c.add(true, true);
  for (int i = 0; i < 2; ++i) c.add(true, false);
  c.add(false, true);
  for (int i = 0; i < 89; ++i) c.add(false, false);
  EXPECT_DOUBLE_EQ(c.precision(), 0.8);
  EXPECT_NEAR(c.recall(), 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(c.f1(), 2 * 0.8 * (8.0 / 9.0) / (0.8 + 8.0 / 9.0), 1e-12);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.97);
}

TEST(ClassificationTest, DegenerateCases) {
  BinaryCounts c;
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(MatchTest, SwitchLocationAndCause) {
  const auto truth =
      switch_truth(faults::FaultKind::kProcessRateDecrease, 7);
  const auto right =
      switch_culprit(7, rca::CauseKind::kProcessRateDecrease, 1.0);
  const auto wrong_loc =
      switch_culprit(8, rca::CauseKind::kProcessRateDecrease, 1.0);
  const auto wrong_cause = switch_culprit(7, rca::CauseKind::kDelay, 1.0);
  EXPECT_TRUE(culprit_matches(right, truth));
  EXPECT_FALSE(culprit_matches(wrong_loc, truth));
  EXPECT_FALSE(culprit_matches(wrong_cause, truth));
  // Location-only grading (baselines) accepts the wrong cause.
  EXPECT_TRUE(culprit_matches(wrong_cause, truth, {.require_cause = false}));
}

TEST(MatchTest, LinkCulpritMatchesIfItContainsTheSwitch) {
  const auto truth = switch_truth(faults::FaultKind::kDrop, 3);
  rca::Culprit link;
  link.level = rca::CulpritLevel::kLink;
  link.location = {3, 9};
  link.cause = rca::CauseKind::kDrop;
  EXPECT_TRUE(culprit_matches(link, truth));
  link.location = {4, 9};
  EXPECT_FALSE(culprit_matches(link, truth));
}

TEST(MatchTest, MicroBurstMatchesFlow) {
  faults::GroundTruth truth;
  truth.kind = faults::FaultKind::kMicroBurst;
  truth.flow = {2, 6};
  rca::Culprit c;
  c.level = rca::CulpritLevel::kFlow;
  c.flow = {2, 6};
  c.cause = rca::CauseKind::kMicroBurst;
  EXPECT_TRUE(culprit_matches(c, truth));
  c.flow = {2, 7};
  EXPECT_FALSE(culprit_matches(c, truth));
}

TEST(RankTest, FindsFirstMatch) {
  const auto truth = switch_truth(faults::FaultKind::kDelay, 5);
  rca::CulpritList list{
      switch_culprit(1, rca::CauseKind::kDelay, 3.0),
      switch_culprit(5, rca::CauseKind::kDelay, 2.0),
      switch_culprit(5, rca::CauseKind::kDelay, 1.0),
  };
  const auto rank = rank_of_truth(list, truth);
  ASSERT_TRUE(rank.has_value());
  EXPECT_EQ(*rank, 2u);
  EXPECT_FALSE(rank_of_truth({}, truth).has_value());
}

TEST(LocalizationStatsTest, RecallAtK) {
  LocalizationStats stats;
  stats.add(1);             // top-1
  stats.add(2);             // top-2
  stats.add(4);             // top-5
  stats.add(std::nullopt);  // miss
  EXPECT_DOUBLE_EQ(stats.recall_at(1), 0.25);
  EXPECT_DOUBLE_EQ(stats.recall_at(2), 0.5);
  EXPECT_DOUBLE_EQ(stats.recall_at(5), 0.75);
}

TEST(LocalizationStatsTest, ExamScoreDefaultsOutOfTopFive) {
  LocalizationStats stats;
  stats.add(1);             // 0 false positives
  stats.add(3);             // 2 false positives
  stats.add(7);             // beyond top-5 -> default 10
  stats.add(std::nullopt);  // missing -> default 10
  EXPECT_DOUBLE_EQ(stats.exam_score(), (0.0 + 2.0 + 10.0 + 10.0) / 4.0);
}

TEST(LocalizationStatsTest, PerfectSystem) {
  LocalizationStats stats;
  for (int i = 0; i < 10; ++i) stats.add(1);
  EXPECT_DOUBLE_EQ(stats.recall_at(1), 1.0);
  EXPECT_DOUBLE_EQ(stats.exam_score(), 0.0);
}

}  // namespace
}  // namespace mars::metrics
