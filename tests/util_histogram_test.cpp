// LogLinearHistogram: bucket-boundary math (the HDR-style layout the
// histogram telemetry backend models in-switch), floor inversion,
// clamping, and the fraction_above tail query.

#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace mars::util {
namespace {

TEST(LogLinearHistogramTest, LinearRegionIsExact) {
  // Below 2^sub_bits every value owns its own bucket: no quantization.
  LogLinearHistogram h(2, 64);
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(h.bucket_of(v), v);
    EXPECT_EQ(h.bucket_floor(v), v);
  }
}

TEST(LogLinearHistogramTest, LogRegionBoundaries) {
  LogLinearHistogram h(2, 64);
  // Each half-open power-of-two range [2^e, 2^(e+1)) splits into
  // 2^sub_bits equal sub-buckets.
  EXPECT_EQ(h.bucket_of(4), 4u);
  EXPECT_EQ(h.bucket_of(5), 5u);
  EXPECT_EQ(h.bucket_of(7), 7u);
  EXPECT_EQ(h.bucket_of(8), 8u);   // new range: width-2 sub-buckets
  EXPECT_EQ(h.bucket_of(9), 8u);   // shares 8's bucket
  EXPECT_EQ(h.bucket_of(10), 9u);
  EXPECT_EQ(h.bucket_of(15), 11u);
  EXPECT_EQ(h.bucket_of(16), 12u);  // next range: width-4 sub-buckets
  EXPECT_EQ(h.bucket_of(19), 12u);
  EXPECT_EQ(h.bucket_of(20), 13u);
}

TEST(LogLinearHistogramTest, BucketFloorInvertsBucketOf) {
  LogLinearHistogram h(3, 128);
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 100ull, 1000ull,
                          4097ull, 1ull << 20, (1ull << 40) + 12345}) {
    const std::size_t bucket = h.bucket_of(v);
    const std::uint64_t floor = h.bucket_floor(bucket);
    EXPECT_LE(floor, v);
    EXPECT_EQ(h.bucket_of(floor), bucket)
        << "floor must land in its own bucket (v=" << v << ")";
    if (bucket + 1 < h.buckets()) {
      EXPECT_GT(h.bucket_floor(bucket + 1), v)
          << "v must fall below the next bucket's floor";
    }
  }
}

TEST(LogLinearHistogramTest, OverflowClampsToLastBucket) {
  LogLinearHistogram h(2, 8);
  h.add(1u << 30);  // far past what 8 buckets span
  h.add(3);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count(7), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(LogLinearHistogramTest, FractionAboveCountsStrictlyHigherBuckets) {
  LogLinearHistogram h(2, 64);
  for (std::uint64_t v : {1ull, 2ull, 8ull, 9ull, 100ull, 200ull}) h.add(v);
  // Threshold 8: its bucket also holds 9, so only {100, 200} count.
  EXPECT_DOUBLE_EQ(h.fraction_above(8), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(1), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(200), 0.0);
}

TEST(LogLinearHistogramTest, FractionAboveEmptyAndClamped) {
  LogLinearHistogram h(2, 8);
  EXPECT_DOUBLE_EQ(h.fraction_above(1), 0.0);  // empty histogram
  h.add(5);
  // Threshold past the clamp bucket: nothing can be strictly above.
  EXPECT_DOUBLE_EQ(h.fraction_above(1u << 30), 0.0);
}

TEST(LogLinearHistogramTest, ClearResetsCountsAndTotal) {
  LogLinearHistogram h(2, 16);
  h.add_n(7, 5);
  ASSERT_EQ(h.total(), 5u);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  for (std::size_t b = 0; b < h.buckets(); ++b) EXPECT_EQ(h.count(b), 0u);
}

}  // namespace
}  // namespace mars::util
