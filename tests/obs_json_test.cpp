#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "obs/json_writer.hpp"

namespace {

using namespace mars;
using obs::JsonWriter;

TEST(JsonEscape, QuotesBackslashAndShortEscapes) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
}

TEST(JsonEscape, ControlCharactersBecomeUnicodeEscapes) {
  EXPECT_EQ(JsonWriter::escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::escape(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(JsonWriter::escape(std::string("a\x00z", 3)), "a\\u0000z");
}

TEST(JsonEscape, Utf8BytesPassThrough) {
  EXPECT_EQ(JsonWriter::escape("héllo→"), "héllo→");
}

TEST(JsonWriter, CompactObjectWithNestingAndCommas) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.member("a", std::uint64_t{1});
  w.key("arr").begin_array().value(std::int64_t{-2}).value("x").end_array();
  w.key("nested").begin_object().member("b", true).member_null("c")
      .end_object();
  w.end_object();
  EXPECT_EQ(out.str(),
            R"({"a":1,"arr":[-2,"x"],"nested":{"b":true,"c":null}})");
  EXPECT_EQ(w.depth(), 0u);
}

TEST(JsonWriter, EmptyContainersHaveNoInnerWhitespace) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/2);
  w.begin_object();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.end_object();
  EXPECT_NE(out.str().find("{}"), std::string::npos);
  EXPECT_NE(out.str().find("[]"), std::string::npos);
}

TEST(JsonWriter, IndentedOutputNestsByDepth) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/2);
  w.begin_object().key("k").begin_array().value(std::uint64_t{7}).end_array()
      .end_object();
  EXPECT_EQ(out.str(), "{\n  \"k\": [\n    7\n  ]\n}");
}

TEST(JsonWriter, DoublesRoundTripAndStayShort) {
  const auto render = [](double v) {
    std::ostringstream out;
    JsonWriter(out, 0).value(v);
    return out.str();
  };
  EXPECT_EQ(render(0.1), "0.1");
  EXPECT_EQ(render(2.0), "2");
  EXPECT_EQ(render(-1.5), "-1.5");
  // An awkward double must still parse back to the identical bits.
  const double ugly = 0.1 + 0.2;
  EXPECT_EQ(std::stod(render(ugly)), ugly);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(out.str(), "[null,null,null]");
}

TEST(JsonWriter, KeysAreEscaped) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object().member("we\"ird\n", std::uint64_t{1}).end_object();
  EXPECT_EQ(out.str(), R"({"we\"ird\n":1})");
}

}  // namespace
