// ScenarioSpec: the JSON surface of the experiment engine. Pins the
// round-trip fixed point (parse(to_json(spec)) == spec), the contract
// that a minimal spec lowers to exactly default_scenario, and the
// rejection paths (unknown keys, unknown names, malformed JSON).

#include "mars/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace mars {
namespace {

ScenarioSpec full_spec() {
  ScenarioSpec spec;
  spec.name = "everything-set";
  spec.topology = "leaf-spine";
  spec.leaves = 6;
  spec.spines = 3;
  spec.edge_gbps = 0.008;
  spec.core_gbps = 0.012;
  spec.queue_capacity = 2048;
  spec.flows = 24;
  spec.pps = 180.0;
  spec.inter_pod_fraction = 0.5;
  spec.duration_s = 6.0;
  spec.seed = 42;
  spec.systems = std::vector<std::string>{"mars", "syndb"};
  ScenarioSpec::Fault drop;
  drop.kind = "drop";
  drop.at_s = 2.5;
  drop.duration_s = 1.5;
  drop.target_switch = 3;
  drop.target_port = 1;
  spec.faults.push_back(drop);
  ScenarioSpec::Fault delay;
  delay.kind = "delay";
  delay.at_s = 3.0;
  spec.faults.push_back(delay);
  spec.telemetry.backend = "int-md";
  spec.telemetry.ring_capacity = 512;
  spec.telemetry.int_md.sample_every = 2;
  spec.telemetry.int_md.max_hops = 8;
  spec.telemetry.histogram.buckets = 64;
  spec.telemetry.histogram.sub_bucket_bits = 3;
  spec.telemetry.histogram.tail_latency_ms = 12.5;
  spec.telemetry.histogram.trigger_enter = 0.2;
  spec.telemetry.histogram.trigger_exit = 0.05;
  spec.telemetry.histogram.digest_capacity = 256;
  spec.telemetry.path_id.hash = "crc32";
  spec.telemetry.path_id.width_bits = 24;
  spec.obs.log_level = "debug";
  spec.obs.log_rate_limit_per_s = 25.0;
  spec.obs.log_rate_limit_burst = 8;
  spec.obs.flight_recorder.enabled = true;
  spec.obs.flight_recorder.capacity = 128;
  spec.obs.flight_recorder.confidence_threshold = 0.9;
  spec.obs.provenance = true;
  return spec;
}

TEST(ScenarioSpecTest, RoundTripIsFixedPoint) {
  const ScenarioSpec spec = full_spec();
  const std::string json = to_json(spec);
  const ScenarioSpec reparsed = parse_scenario_spec(json);
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(to_json(reparsed), json);
}

TEST(ScenarioSpecTest, MinimalSpecRoundTrips) {
  const ScenarioSpec spec;  // all defaults, no faults
  EXPECT_EQ(parse_scenario_spec(to_json(spec)), spec);
}

TEST(ScenarioSpecTest, MinimalSpecLowersToDefaultScenario) {
  ScenarioSpec spec;
  spec.seed = 7;
  spec.faults.emplace_back();  // kind "rate" at 3.0s, nothing pinned

  const ScenarioConfig lowered = spec.to_config();
  const ScenarioConfig reference =
      default_scenario(faults::FaultKind::kProcessRateDecrease, 7);

  EXPECT_EQ(lowered.topology, reference.topology);
  EXPECT_EQ(lowered.faults, reference.faults);
  EXPECT_EQ(lowered.seed, reference.seed);
  EXPECT_EQ(lowered.duration, reference.duration);
  EXPECT_EQ(lowered.queue_capacity, reference.queue_capacity);
  EXPECT_EQ(lowered.background.flows, reference.background.flows);
  EXPECT_EQ(lowered.background.pps, reference.background.pps);
  EXPECT_EQ(lowered.systems, reference.systems);
  EXPECT_EQ(lowered.sample_period, reference.sample_period);
}

TEST(ScenarioSpecTest, FirstFaultKindSelectsTunedDefaults) {
  // default_scenario(kEcmpImbalance) raises the background load; a spec
  // whose first fault is ECMP must inherit that tuning.
  ScenarioSpec spec;
  spec.faults.emplace_back();
  spec.faults.back().kind = "ecmp";
  const ScenarioConfig lowered = spec.to_config();
  const ScenarioConfig reference =
      default_scenario(faults::FaultKind::kEcmpImbalance, 1);
  EXPECT_EQ(lowered.background.flows, reference.background.flows);
  EXPECT_EQ(lowered.background.pps, reference.background.pps);
}

TEST(ScenarioSpecTest, UnknownTopLevelKeyIsRejected) {
  EXPECT_THROW(parse_scenario_spec(R"({"sede": 7})"), std::invalid_argument);
}

TEST(ScenarioSpecTest, UnknownNestedKeyNamesItsPath) {
  try {
    (void)parse_scenario_spec(R"({"topology": {"kk": 8}})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.topology"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("kk"), std::string::npos);
  }
}

TEST(ScenarioSpecTest, MalformedJsonReportsPosition) {
  try {
    (void)parse_scenario_spec("{\"seed\": }");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpecTest, NegativeSeedIsRejected) {
  EXPECT_THROW(parse_scenario_spec(R"({"seed": -1})"), std::invalid_argument);
}

TEST(ScenarioSpecTest, ValidateFlagsEveryUnknownName) {
  ScenarioSpec spec;
  spec.topology = "torus";
  spec.systems = std::vector<std::string>{"mars", "netsight"};
  const auto topo_errors = spec.validate();
  ASSERT_FALSE(topo_errors.empty());
  bool topo = false, system = false;
  for (const auto& e : topo_errors) {
    if (e.find("torus") != std::string::npos) topo = true;
    if (e.find("netsight") != std::string::npos) system = true;
  }
  EXPECT_TRUE(topo);
  EXPECT_TRUE(system);

  ScenarioSpec bad_fault;
  bad_fault.faults.emplace_back();
  bad_fault.faults.back().kind = "gremlins";
  const auto fault_errors = bad_fault.validate();
  ASSERT_FALSE(fault_errors.empty());
  EXPECT_NE(fault_errors.front().find("gremlins"), std::string::npos);
  EXPECT_THROW((void)bad_fault.to_config(), std::invalid_argument);
}

TEST(ScenarioSpecTest, LoadRejectsMissingFile) {
  EXPECT_THROW((void)load_scenario_spec("/nonexistent/spec.json"),
               std::invalid_argument);
}

TEST(ScenarioSpecTest, ChannelBlockRoundTripsAndLowers) {
  ScenarioSpec spec;
  spec.channel.notification_loss = 0.2;
  spec.channel.read_failure = 0.1;
  spec.channel.notification_delay_prob = 0.05;
  spec.channel.notification_delay_max_s = 0.08;
  spec.channel.max_read_retries = 5;
  const ScenarioSpec reparsed = parse_scenario_spec(to_json(spec));
  EXPECT_EQ(reparsed, spec);

  const ScenarioConfig cfg = spec.to_config();
  EXPECT_DOUBLE_EQ(cfg.mars.channel.notification_loss, 0.2);
  EXPECT_DOUBLE_EQ(cfg.mars.channel.read_failure, 0.1);
  EXPECT_EQ(cfg.mars.channel.notification_delay_max,
            80 * sim::kMillisecond);
  EXPECT_EQ(cfg.mars.controller.max_read_retries, 5u);
  EXPECT_TRUE(spec.validate().empty());
}

TEST(ScenarioSpecTest, SpecWithoutChannelBlockRunsPerfectChannel) {
  const ScenarioConfig cfg = parse_scenario_spec("{}").to_config();
  EXPECT_TRUE(cfg.mars.channel.perfect());
}

TEST(ScenarioSpecTest, MiningThreadsRoundTripsAndLowers) {
  ScenarioSpec spec;
  spec.mining.threads = 4;
  const ScenarioSpec reparsed = parse_scenario_spec(to_json(spec));
  EXPECT_EQ(reparsed, spec);

  const ScenarioConfig cfg = spec.to_config();
  EXPECT_EQ(cfg.mars.rca.mining.threads, 4u);
  EXPECT_TRUE(spec.validate().empty());

  // Unset keeps the sequential default (threads = 1, no pool).
  EXPECT_EQ(parse_scenario_spec("{}").to_config().mars.rca.mining.threads,
            1u);
}

TEST(ScenarioSpecTest, MiningThreadsOutOfRangeIsRejected) {
  ScenarioSpec spec;
  spec.mining.threads = 0;
  auto errors = spec.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("mars.rca.mining.threads"),
            std::string::npos);

  spec.mining.threads = 65;
  errors = spec.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("[1, 64]"), std::string::npos);
}

TEST(ScenarioSpecTest, MiningUnknownKeyNamesItsPath) {
  try {
    (void)parse_scenario_spec(R"({"mining": {"thread_count": 4}})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.mining"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("thread_count"), std::string::npos);
  }
}

TEST(ScenarioSpecTest, ChannelUnknownKeyNamesItsPath) {
  try {
    (void)parse_scenario_spec(R"({"channel": {"notif_loss": 0.5}})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.channel"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("notif_loss"), std::string::npos);
  }
}

TEST(ScenarioSpecTest, ChannelProbabilityOutOfRangeIsPathNamed) {
  ScenarioSpec spec;
  spec.channel.notification_loss = 1.5;
  spec.channel.record_corruption = -0.1;
  const auto errors = spec.validate();
  ASSERT_FALSE(errors.empty());
  bool loss = false, corruption = false;
  for (const auto& e : errors) {
    if (e.find("mars.channel.notification_loss") != std::string::npos) {
      loss = true;
    }
    if (e.find("mars.channel.record_corruption") != std::string::npos) {
      corruption = true;
    }
  }
  EXPECT_TRUE(loss);
  EXPECT_TRUE(corruption);
}

TEST(ScenarioSpecTest, ChannelNegativeDelaysAndDeadlinesAreRejected) {
  ScenarioSpec spec;
  spec.channel.notification_delay_min_s = -0.01;
  spec.channel.read_deadline_s = -1.0;
  spec.channel.retry_backoff_s = -0.5;
  const auto errors = spec.validate();
  bool delay = false, deadline = false, backoff = false;
  for (const auto& e : errors) {
    if (e.find("notification_delay_min") != std::string::npos) delay = true;
    if (e.find("read_deadline") != std::string::npos) deadline = true;
    if (e.find("retry_backoff") != std::string::npos) backoff = true;
  }
  EXPECT_TRUE(delay);
  EXPECT_TRUE(deadline);
  EXPECT_TRUE(backoff);
}

TEST(ScenarioSpecTest, ChannelRetryCountBoundIsEnforced) {
  ScenarioSpec spec;
  spec.channel.max_read_retries = 99;
  const auto errors = spec.validate();
  ASSERT_FALSE(errors.empty());
  bool found = false;
  for (const auto& e : errors) {
    if (e.find("max_read_retries") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ScenarioSpecTest, DelayMaxBelowMinIsRejected) {
  ScenarioSpec spec;
  spec.channel.notification_delay_min_s = 0.05;
  spec.channel.notification_delay_max_s = 0.01;
  const auto errors = spec.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("notification_delay_max"),
            std::string::npos);
}

TEST(ScenarioSpecTest, TelemetryFaultKindsParseAndValidate) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "faults": [
      {"kind": "rate", "at_s": 3.0},
      {"kind": "notifloss", "at_s": 3.0, "duration_s": 1.0},
      {"kind": "read-outage", "at_s": 3.5, "duration_s": 0.5}
    ]
  })");
  EXPECT_TRUE(spec.validate().empty());
  const ScenarioConfig cfg = spec.to_config();
  ASSERT_EQ(cfg.faults.size(), 3u);
  EXPECT_EQ(cfg.faults.events[1].kind, faults::FaultKind::kNotificationLoss);
  EXPECT_EQ(cfg.faults.events[2].kind, faults::FaultKind::kReadOutage);

  // A pinned switch on a telemetry fault is a schedule error.
  ScenarioSpec pinned;
  pinned.faults.emplace_back();
  pinned.faults.back().kind = "notifloss";
  pinned.faults.back().target_switch = 3;
  const auto errors = pinned.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("control channel"), std::string::npos);
}

TEST(ScenarioSpecTest, ObsBlockRoundTripsAndLowers) {
  ScenarioSpec spec;
  spec.obs.log_level = "warn";
  spec.obs.log_rate_limit_per_s = 10.0;
  spec.obs.log_rate_limit_burst = 4;
  spec.obs.flight_recorder.enabled = true;
  spec.obs.flight_recorder.capacity = 64;
  spec.obs.flight_recorder.confidence_threshold = 0.95;
  spec.obs.provenance = true;
  const ScenarioSpec reparsed = parse_scenario_spec(to_json(spec));
  EXPECT_EQ(reparsed, spec);
  EXPECT_TRUE(spec.validate().empty());

  const ScenarioConfig cfg = spec.to_config();
  EXPECT_EQ(cfg.obs.log_level, obs::LogLevel::kWarn);
  EXPECT_DOUBLE_EQ(cfg.obs.log_rate_limit_per_s, 10.0);
  EXPECT_EQ(cfg.obs.log_rate_limit_burst, 4u);
  EXPECT_TRUE(cfg.obs.flight_recorder);
  EXPECT_EQ(cfg.obs.flight_capacity, 64u);
  EXPECT_DOUBLE_EQ(cfg.obs.flight_confidence_threshold, 0.95);
  EXPECT_TRUE(cfg.obs.provenance);

  // Unset keeps the inert defaults.
  const ScenarioConfig plain = parse_scenario_spec("{}").to_config();
  EXPECT_EQ(plain.obs.log_level, obs::LogLevel::kInfo);
  EXPECT_FALSE(plain.obs.flight_recorder);
  EXPECT_FALSE(plain.obs.provenance);
}

TEST(ScenarioSpecTest, ObsUnknownKeyNamesItsPath) {
  try {
    (void)parse_scenario_spec(R"({"obs": {"loglevel": "info"}})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.obs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("loglevel"), std::string::npos);
  }
  try {
    (void)parse_scenario_spec(
        R"({"obs": {"flight_recorder": {"cap": 64}}})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.obs.flight_recorder"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cap"), std::string::npos);
  }
}

TEST(ScenarioSpecTest, ObsUnknownLogLevelIsPathNamed) {
  ScenarioSpec spec;
  spec.obs.log_level = "verbose";
  const auto errors = spec.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("spec.obs.log_level"), std::string::npos);
  EXPECT_NE(errors.front().find("verbose"), std::string::npos);
  EXPECT_THROW((void)spec.to_config(), std::invalid_argument);
}

TEST(ScenarioSpecTest, ObsOutOfRangeValuesArePathNamed) {
  ScenarioSpec spec;
  spec.obs.log_rate_limit_per_s = -1.0;
  spec.obs.log_rate_limit_burst = 0;
  spec.obs.flight_recorder.capacity = 0;
  spec.obs.flight_recorder.confidence_threshold = 1.5;
  const auto errors = spec.validate();
  ASSERT_EQ(errors.size(), 4u);
  const char* expected[] = {
      "spec.obs.log_rate_limit_per_s",
      "spec.obs.log_rate_limit_burst",
      "spec.obs.flight_recorder.capacity",
      "spec.obs.flight_recorder.confidence_threshold",
  };
  for (const char* path : expected) {
    bool found = false;
    for (const auto& e : errors) {
      if (e.find(path) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << "no error names " << path;
  }
}

TEST(ScenarioSpecTest, TelemetryBlockRoundTripsAndLowers) {
  ScenarioSpec spec;
  spec.telemetry.backend = "histogram";
  spec.telemetry.ring_capacity = 256;
  spec.telemetry.histogram.buckets = 48;
  spec.telemetry.histogram.tail_latency_ms = 12.5;
  spec.telemetry.histogram.trigger_enter = 0.25;
  const ScenarioSpec reparsed = parse_scenario_spec(to_json(spec));
  EXPECT_EQ(reparsed, spec);

  const ScenarioConfig cfg = spec.to_config();
  EXPECT_EQ(cfg.mars.pipeline.backend.kind,
            telemetry::BackendKind::kHistogram);
  EXPECT_EQ(cfg.mars.pipeline.ring_capacity, 256u);
  EXPECT_EQ(cfg.mars.pipeline.backend.histogram.buckets, 48u);
  EXPECT_EQ(cfg.mars.pipeline.backend.histogram.tail_latency,
            12'500 * sim::kMicrosecond);
  EXPECT_DOUBLE_EQ(cfg.mars.pipeline.backend.histogram.trigger_enter, 0.25);
  EXPECT_TRUE(spec.validate().empty());

  // Unset keeps the paper's postcard rings.
  EXPECT_EQ(parse_scenario_spec("{}").to_config().mars.pipeline.backend.kind,
            telemetry::BackendKind::kPostcard);
}

TEST(ScenarioSpecTest, TelemetryPathIdRoundTripsAndLowers) {
  ScenarioSpec spec;
  spec.telemetry.path_id.hash = "crc32";
  spec.telemetry.path_id.width_bits = 24;
  const ScenarioSpec reparsed = parse_scenario_spec(to_json(spec));
  EXPECT_EQ(reparsed, spec);

  const ScenarioConfig cfg = spec.to_config();
  EXPECT_EQ(cfg.mars.pipeline.path_id.hash, telemetry::HashKind::kCrc32);
  EXPECT_EQ(cfg.mars.pipeline.path_id.width_bits, 24u);
  EXPECT_TRUE(spec.validate().empty());

  // Unset keeps the paper default (crc16 / 16 bits).
  const ScenarioConfig plain = parse_scenario_spec("{}").to_config();
  EXPECT_EQ(plain.mars.pipeline.path_id.hash, telemetry::HashKind::kCrc16);
  EXPECT_EQ(plain.mars.pipeline.path_id.width_bits, 16u);
}

TEST(ScenarioSpecTest, TelemetryPathIdUnknownHashIsPathNamed) {
  ScenarioSpec spec;
  spec.telemetry.path_id.hash = "crc64";
  const auto errors = spec.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("spec.telemetry.path_id.hash"),
            std::string::npos);
  EXPECT_NE(errors.front().find("crc16, crc32"), std::string::npos);
  EXPECT_THROW((void)spec.to_config(), std::invalid_argument);
}

TEST(ScenarioSpecTest, TelemetryPathIdWidthOutOfRangeIsRejected) {
  for (const std::uint32_t width : {0u, 33u}) {
    ScenarioSpec spec;
    spec.telemetry.path_id.width_bits = width;
    const auto errors = spec.validate();
    ASSERT_FALSE(errors.empty()) << "width " << width;
    EXPECT_NE(errors.front().find("spec.telemetry.path_id.width_bits"),
              std::string::npos);
  }
}

TEST(ScenarioSpecTest, TelemetryPathIdUnknownKeyNamesItsPath) {
  try {
    (void)parse_scenario_spec(
        R"({"telemetry": {"path_id": {"width": 16}}})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.telemetry.path_id"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("width"), std::string::npos);
  }
}

TEST(ScenarioSpecTest, TelemetryIntMdFieldsLower) {
  ScenarioSpec spec;
  spec.telemetry.backend = "int-md";
  spec.telemetry.int_md.sample_every = 4;
  spec.telemetry.int_md.max_hops = 6;
  const ScenarioConfig cfg = spec.to_config();
  EXPECT_EQ(cfg.mars.pipeline.backend.kind, telemetry::BackendKind::kIntMd);
  EXPECT_EQ(cfg.mars.pipeline.backend.int_md.sample_every, 4u);
  EXPECT_EQ(cfg.mars.pipeline.backend.int_md.max_hops, 6u);
  EXPECT_TRUE(spec.validate().empty());
}

TEST(ScenarioSpecTest, TelemetryUnknownBackendIsPathNamedWithSuggestion) {
  ScenarioSpec spec;
  spec.telemetry.backend = "histgram";
  const auto errors = spec.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("spec.telemetry.backend"),
            std::string::npos);
  EXPECT_NE(errors.front().find("did you mean 'histogram'"),
            std::string::npos);
  EXPECT_THROW((void)spec.to_config(), std::invalid_argument);
}

TEST(ScenarioSpecTest, TelemetryUnknownKeyNamesItsPath) {
  try {
    (void)parse_scenario_spec(
        R"({"telemetry": {"histogram": {"bucketz": 10}}})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.telemetry.histogram"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bucketz"), std::string::npos);
  }
}

TEST(ScenarioSpecTest, TelemetryOutOfRangeValuesArePathNamed) {
  ScenarioSpec spec;
  spec.telemetry.ring_capacity = 0;
  spec.telemetry.int_md.sample_every = 0;
  spec.telemetry.histogram.buckets = 4;        // below the [8, 4096] floor
  spec.telemetry.histogram.sub_bucket_bits = 12;
  spec.telemetry.histogram.tail_latency_ms = -1.0;
  const auto errors = spec.validate();
  const char* expected[] = {
      "telemetry.ring_capacity",
      "telemetry.int_md.sample_every",
      "telemetry.histogram.buckets",
      "telemetry.histogram.sub_bucket_bits",
      "telemetry.histogram.tail_latency_ms",
  };
  EXPECT_GE(errors.size(), std::size(expected));
  for (const char* path : expected) {
    bool found = false;
    for (const auto& e : errors) {
      if (e.find(path) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << "no error names " << path;
  }
}

TEST(ScenarioSpecTest, TelemetryTriggerBandMustBeOrdered) {
  ScenarioSpec spec;
  spec.telemetry.histogram.trigger_enter = 0.05;
  spec.telemetry.histogram.trigger_exit = 0.2;  // exit above enter: no band
  const auto errors = spec.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("trigger_exit"), std::string::npos);
}

TEST(ScenarioSpecTest, GrayFaultBlockRoundTripsAndLowers) {
  ScenarioSpec spec;
  spec.faults.emplace_back();
  spec.faults.back().kind = "flap";
  spec.faults.back().at_s = 2.0;
  spec.faults.back().gray.mean_up_ms = 90.0;
  spec.faults.back().gray.mean_down_ms = 45.0;
  spec.faults.back().gray.fanout = 3;
  spec.rca.accumulator.enabled = true;
  spec.rca.accumulator.half_life_s = 1.5;
  EXPECT_EQ(parse_scenario_spec(to_json(spec)), spec);
  EXPECT_TRUE(spec.validate().empty());
  const ScenarioConfig cfg = spec.to_config();
  ASSERT_EQ(cfg.faults.size(), 1u);
  EXPECT_EQ(cfg.faults.events.front().kind, faults::FaultKind::kLinkFlap);
  EXPECT_EQ(cfg.faults.events.front().gray.flap_mean_up_ms, 90.0);
  EXPECT_EQ(cfg.faults.events.front().gray.flap_fanout, 3);
  EXPECT_TRUE(cfg.mars.rca.accumulator.enabled);
  EXPECT_EQ(cfg.mars.rca.accumulator.half_life,
            static_cast<sim::Time>(1.5 * sim::kSecond));
}

TEST(ScenarioSpecTest, GrayUnknownKeyNamesItsPath) {
  try {
    (void)parse_scenario_spec(
        R"({"faults": [{"kind": "flap", "gray": {"mean_up": 50.0}}]})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.faults[0].gray"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("mean_up"), std::string::npos);
  }
}

TEST(ScenarioSpecTest, GrayOutOfRangeParametersArePathNamed) {
  // Out-of-range flap dwell, loss probability, and gate threshold are
  // each rejected with the event named in the error.
  ScenarioSpec flap;
  flap.faults.emplace_back();
  flap.faults.back().kind = "flap";
  flap.faults.back().gray.mean_down_ms = -10.0;
  auto errors = flap.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("mean_down_ms"), std::string::npos)
      << errors.front();

  ScenarioSpec loss;
  loss.faults.emplace_back();
  loss.faults.back().kind = "asymloss";
  loss.faults.back().gray.loss_fwd = 1.2;
  errors = loss.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("loss_fwd"), std::string::npos);

  ScenarioSpec gate;
  gate.faults.emplace_back();
  gate.faults.back().kind = "gateddelay";
  gate.faults.back().gray.gate_depth = 1;
  errors = gate.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("gate_depth"), std::string::npos);

  // A gray block on a clean kind is an error naming the offending param.
  ScenarioSpec clean;
  clean.faults.emplace_back();
  clean.faults.back().kind = "drop";
  clean.faults.back().gray.drain_us_per_pkt = 200.0;
  errors = clean.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("gray"), std::string::npos);
}

TEST(ScenarioSpecTest, RcaAccumulatorOutOfRangeIsRejected) {
  ScenarioSpec spec;
  spec.rca.accumulator.half_life_s = 0.0;
  auto errors = spec.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("half_life"), std::string::npos)
      << errors.front();

  ScenarioSpec windows;
  windows.rca.accumulator.max_windows = 0;
  errors = windows.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("max_windows"), std::string::npos);
}

TEST(ScenarioSpecTest, RcaUnknownKeyNamesItsPath) {
  try {
    (void)parse_scenario_spec(R"({"rca": {"accum": {"enabled": true}}})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.rca"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("accum"), std::string::npos);
  }
}

TEST(ScenarioSpecTest, ShardedRunsRequirePostcardBackend) {
  ScenarioSpec spec;
  spec.sim.shards = 2;
  spec.systems = std::vector<std::string>{"mars"};
  spec.telemetry.backend = "histogram";
  const auto errors = spec.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("postcard"), std::string::npos)
      << errors.front();
}

}  // namespace
}  // namespace mars
