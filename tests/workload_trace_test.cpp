#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/fat_tree.hpp"
#include "workload/traffic_gen.hpp"

namespace mars::workload {
namespace {

using namespace mars::sim::literals;

TEST(FlowTraceTest, SortIsStableByTime) {
  FlowTrace trace;
  trace.add({30, {1, 2}, 7, 100});
  trace.add({10, {3, 4}, 8, 200});
  trace.add({10, {5, 6}, 9, 300});
  trace.sort();
  EXPECT_EQ(trace.events()[0].flow_hash, 8u);
  EXPECT_EQ(trace.events()[1].flow_hash, 9u);  // equal times keep add order
  EXPECT_EQ(trace.events()[2].flow_hash, 7u);
}

TEST(FlowTraceTest, CsvRoundTrip) {
  FlowTrace trace;
  trace.add({1'000'000, {0, 7}, 0xDEADBEEF, 1500});
  trace.add({2'500'000, {3, 1}, 42, 64});
  std::stringstream buffer;
  trace.write_csv(buffer);

  FlowTrace parsed;
  ASSERT_TRUE(parsed.read_csv(buffer));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.events()[0].at, 1'000'000);
  EXPECT_EQ(parsed.events()[0].flow, (net::FlowId{0, 7}));
  EXPECT_EQ(parsed.events()[0].flow_hash, 0xDEADBEEFu);
  EXPECT_EQ(parsed.events()[1].size_bytes, 64u);
}

TEST(FlowTraceTest, MalformedCsvRejected) {
  std::stringstream bad("1000,2,3,4\n");  // missing a field
  FlowTrace trace;
  EXPECT_FALSE(trace.read_csv(bad));
  EXPECT_TRUE(trace.empty());
}

TEST(FlowTraceTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in("# header\n\n100,1,2,3,400\n");
  FlowTrace trace;
  ASSERT_TRUE(trace.read_csv(in));
  EXPECT_EQ(trace.size(), 1u);
}

struct ReplayFixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
};

TEST(FlowTraceTest, ReplayInjectsAtRecordedTimes) {
  ReplayFixture f;
  FlowTrace trace;
  trace.add({5_ms, {f.ft.edge[0], f.ft.edge[1]}, 1, 500});
  trace.add({9_ms, {f.ft.edge[2], f.ft.edge[3]}, 2, 600});
  EXPECT_EQ(trace.replay(f.net), 0u);
  f.sim.run();
  EXPECT_EQ(f.net.stats().injected, 2u);
  EXPECT_EQ(f.net.stats().delivered, 2u);
}

TEST(FlowTraceTest, RecordThenReplayReproducesWorkload) {
  // Capture a generated workload, replay it on a fresh network, and
  // expect identical injection counts and byte totals.
  std::uint64_t recorded_count = 0;
  FlowTrace trace;
  {
    ReplayFixture f;
    TraceRecorder recorder;
    f.net.add_observer(recorder);
    TrafficGenerator gen(f.net, 17);
    BackgroundConfig cfg;
    cfg.flows = 8;
    gen.add_background(cfg, f.ft.edge, 4);
    gen.start();
    f.sim.run(1 * sim::kSecond);
    recorded_count = f.net.stats().injected;
    trace = recorder.take();
  }
  ASSERT_EQ(trace.size(), recorded_count);

  ReplayFixture replayed;
  EXPECT_EQ(trace.replay(replayed.net), 0u);
  replayed.sim.run(1 * sim::kSecond);
  EXPECT_EQ(replayed.net.stats().injected, recorded_count);
}

TEST(IncastTest, ManySourcesOneSinkSynchronized) {
  ReplayFixture f;
  IncastConfig cfg;
  cfg.sink = f.ft.edge[0];
  cfg.sources = {f.ft.edge[1], f.ft.edge[2], f.ft.edge[3], f.ft.edge[4]};
  cfg.packets_per_source = 50;
  cfg.start = 10_ms;
  const auto trace = make_incast(cfg, 3);
  EXPECT_EQ(trace.size(), 4u * 50u);
  for (const auto& e : trace.events()) {
    EXPECT_EQ(e.flow.sink, cfg.sink);
    EXPECT_GE(e.at, cfg.start);
  }
  trace.replay(f.net);
  f.sim.run();
  EXPECT_EQ(f.net.stats().injected, 200u);
}

TEST(IncastTest, SinkExcludedFromSources) {
  IncastConfig cfg;
  cfg.sink = 5;
  cfg.sources = {5, 6};
  cfg.packets_per_source = 3;
  const auto trace = make_incast(cfg, 1);
  EXPECT_EQ(trace.size(), 3u);  // only source 6 contributes
}

TEST(IncastTest, DeterministicInSeed) {
  IncastConfig cfg;
  cfg.sink = 0;
  cfg.sources = {1, 2, 3};
  const auto a = make_incast(cfg, 9);
  const auto b = make_incast(cfg, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].flow_hash, b.events()[i].flow_hash);
  }
}

}  // namespace
}  // namespace mars::workload
