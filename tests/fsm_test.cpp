#include "fsm/miner.hpp"

#include <gtest/gtest.h>

#include <map>

#include "fsm/brute_force.hpp"
#include "util/rng.hpp"

namespace mars::fsm {
namespace {

SequenceDatabase paper_example() {
  // §4.4.2: four <s3,s2,s4> and two <s6,s2,s7>, max len 2, min rel
  // support 50%.
  SequenceDatabase db;
  db.add({3, 2, 4}, 4);
  db.add({6, 2, 7}, 2);
  return db;
}

MiningParams paper_params() {
  MiningParams p;
  p.min_support_rel = 0.5;
  p.max_length = 2;
  p.contiguous = true;
  return p;
}

std::map<Sequence, std::uint64_t> as_map(const std::vector<Pattern>& v) {
  std::map<Sequence, std::uint64_t> m;
  for (const auto& p : v) m[p.items] = p.support;
  return m;
}

class MinerParamTest : public ::testing::TestWithParam<MinerKind> {};

TEST_P(MinerParamTest, ReproducesPaperExample) {
  const auto miner = make_miner(GetParam());
  const auto result = miner->mine(paper_example(), paper_params());
  const auto m = as_map(result);
  // Expected (paper §4.4.2): <s2>:6, <s2,s4>:4, <s3>:4, <s3,s2>:4, <s4>:4.
  ASSERT_EQ(m.size(), 5u) << miner->name();
  EXPECT_EQ(m.at({2}), 6u);
  EXPECT_EQ(m.at({2, 4}), 4u);
  EXPECT_EQ(m.at({3}), 4u);
  EXPECT_EQ(m.at({3, 2}), 4u);
  EXPECT_EQ(m.at({4}), 4u);
  // <s6> etc. pruned (support 2 < 3); <s3,s4> absent (not contiguous).
  EXPECT_EQ(m.count({6}), 0u);
  EXPECT_EQ(m.count({3, 4}), 0u);
}

TEST_P(MinerParamTest, EmptyDatabaseYieldsNothing) {
  const auto miner = make_miner(GetParam());
  SequenceDatabase db;
  EXPECT_TRUE(miner->mine(db, paper_params()).empty());
}

TEST_P(MinerParamTest, MaxLengthOneGivesOnlyItems) {
  const auto miner = make_miner(GetParam());
  MiningParams p = paper_params();
  p.max_length = 1;
  for (const auto& pat : miner->mine(paper_example(), p)) {
    EXPECT_EQ(pat.items.size(), 1u);
  }
}

TEST_P(MinerParamTest, SupportIsAntimonotone) {
  const auto miner = make_miner(GetParam());
  MiningParams p;
  p.min_support_abs = 1;
  p.max_length = 3;
  p.contiguous = true;
  SequenceDatabase db;
  util::Rng rng(42);
  for (int s = 0; s < 30; ++s) {
    Sequence seq;
    for (int i = 0; i < 6; ++i) {
      seq.push_back(static_cast<Item>(rng.below(5)));
    }
    db.add(std::move(seq), 1 + rng.below(3));
  }
  auto result = miner->mine(db, p);
  const auto m = as_map(result);
  for (const auto& [items, sup] : m) {
    if (items.size() < 2) continue;
    const Sequence prefix(items.begin(), items.end() - 1);
    const Sequence suffix(items.begin() + 1, items.end());
    ASSERT_TRUE(m.count(prefix));
    ASSERT_TRUE(m.count(suffix));
    EXPECT_LE(sup, m.at(prefix));
    EXPECT_LE(sup, m.at(suffix));
  }
}

struct RandomCase {
  MinerKind kind;
  bool contiguous;
  std::size_t max_length;
  std::uint64_t seed;
};

class MinerCrossValidationTest
    : public ::testing::TestWithParam<std::tuple<MinerKind, bool, int>> {};

TEST_P(MinerCrossValidationTest, AgreesWithBruteForceOnRandomDatabases) {
  const auto& [kind, contiguous, max_len] = GetParam();
  const auto miner = make_miner(kind);
  const BruteForce reference;

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed * 977 + 13);
    SequenceDatabase db;
    const int sequences = 5 + static_cast<int>(rng.below(25));
    for (int s = 0; s < sequences; ++s) {
      Sequence seq;
      const int len = 1 + static_cast<int>(rng.below(8));
      for (int i = 0; i < len; ++i) {
        seq.push_back(static_cast<Item>(rng.below(6)));
      }
      db.add(std::move(seq), 1 + rng.below(4));
    }
    MiningParams p;
    p.min_support_abs = 1 + rng.below(db.total() / 2 + 1);
    p.max_length = static_cast<std::size_t>(max_len);
    p.contiguous = contiguous;

    auto got = miner->mine(db, p);
    auto expected = reference.mine(db, p);
    sort_patterns(got);
    sort_patterns(expected);
    ASSERT_EQ(got.size(), expected.size())
        << miner->name() << " seed=" << seed
        << " contiguous=" << contiguous << " min_sup=" << p.min_support_abs;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].items, expected[i].items) << miner->name();
      EXPECT_EQ(got[i].support, expected[i].support)
          << miner->name() << " pattern " << to_string(expected[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMiners, MinerCrossValidationTest,
    ::testing::Combine(
        ::testing::Values(MinerKind::kPrefixSpan, MinerKind::kGsp,
                          MinerKind::kSpade, MinerKind::kSpam,
                          MinerKind::kLapin, MinerKind::kCmSpade,
                          MinerKind::kCmSpam),
        ::testing::Bool(),        // contiguous / gapped
        ::testing::Values(2, 3)), // max pattern length
    [](const auto& info) {
      std::string name{miner_name(std::get<0>(info.param))};
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + (std::get<1>(info.param) ? "_contig" : "_gapped") +
             "_len" + std::to_string(std::get<2>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(AllMiners, MinerParamTest,
                         ::testing::ValuesIn(all_miner_kinds()),
                         [](const auto& info) {
                           std::string name{miner_name(info.param)};
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

class LongSequenceTest : public ::testing::TestWithParam<MinerKind> {};

// Regression: the SPAM family's one-word bitmap layout used to throw
// std::invalid_argument on any sequence longer than 64 positions, aborting
// the diagnosis mid-flight. Multi-word bitmaps must mine such databases
// and still agree with brute force.
TEST_P(LongSequenceTest, HandlesSequencesBeyond64Positions) {
  const auto miner = make_miner(GetParam());
  const BruteForce reference;
  util::Rng rng(271828);
  SequenceDatabase db;
  // A few >64-hop walks (long enough to need two or three bitmap words),
  // plus short paths so the frequent frontier is non-trivial.
  for (const std::size_t len : {70u, 65u, 97u, 130u}) {
    Sequence seq;
    for (std::size_t i = 0; i < len; ++i) {
      seq.push_back(static_cast<Item>(rng.below(5)));
    }
    db.add(std::move(seq), 1 + rng.below(3));
  }
  db.add({1, 2, 3}, 4);
  db.add({0, 2, 4}, 2);

  for (const bool contiguous : {true, false}) {
    MiningParams p;
    p.min_support_abs = 3;
    p.max_length = contiguous ? 3 : 2;  // gapped blow-up guard
    p.contiguous = contiguous;
    std::vector<Pattern> got, expected;
    ASSERT_NO_THROW(got = miner->mine(db, p)) << miner->name();
    expected = reference.mine(db, p);
    sort_patterns(got);
    sort_patterns(expected);
    ASSERT_EQ(got.size(), expected.size())
        << miner->name() << " contiguous=" << contiguous;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].items, expected[i].items) << miner->name();
      EXPECT_EQ(got[i].support, expected[i].support) << miner->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMiners, LongSequenceTest,
                         ::testing::ValuesIn(all_miner_kinds()),
                         [](const auto& info) {
                           std::string name{miner_name(info.param)};
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(MinerRegistryTest, NamesAndKinds) {
  EXPECT_EQ(all_miner_kinds().size(), 7u);
  for (const auto kind : all_miner_kinds()) {
    const auto miner = make_miner(kind);
    ASSERT_NE(miner, nullptr);
    EXPECT_EQ(miner->name(), miner_name(kind));
  }
}

TEST(SequenceTest, ContainsPatternSemantics) {
  const Sequence seq{1, 2, 3, 4};
  EXPECT_TRUE(contains_pattern(seq, Sequence{2, 3}, true));
  EXPECT_FALSE(contains_pattern(seq, Sequence{2, 4}, true));
  EXPECT_TRUE(contains_pattern(seq, Sequence{2, 4}, false));
  EXPECT_TRUE(contains_pattern(seq, Sequence{}, true));
  EXPECT_FALSE(contains_pattern(seq, Sequence{1, 2, 3, 4, 5}, false));
}

TEST(SequenceTest, RelativeSupportRoundsUp) {
  MiningParams p;
  p.min_support_rel = 0.5;
  EXPECT_EQ(p.effective_min_support(6), 3u);
  EXPECT_EQ(p.effective_min_support(7), 4u);  // ceil(3.5)
  p.min_support_rel = 0.0;
  p.min_support_abs = 0;
  EXPECT_EQ(p.effective_min_support(10), 1u);  // never below 1
}

}  // namespace
}  // namespace mars::fsm
