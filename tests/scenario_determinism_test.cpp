// Fixed-seed determinism contract for the simulator hot path.
//
// The event queue orders events by (time, schedule sequence), so a fixed
// seed must reproduce a scenario bit-identically: same number of events
// executed, same packet conservation totals, and the same Table-1
// localization ranks for every system. The fingerprints below were
// captured before the allocation-free hot-path rewrite (inline event
// closures, generation-stamped cancellation, pooled packets) and pin the
// rewrite — and any future optimization — to the exact same executions.
// If an intentional behavior change lands (new RNG draws, different event
// counts), re-capture these with the harness in bench/run_sim_hotpath.sh's
// sibling note in DESIGN.md ("Simulator hot path").

#include "mars/scenario.hpp"
#include "mars/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <sstream>
#include <string>

namespace mars {
namespace {

struct Fingerprint {
  faults::FaultKind kind;
  std::uint64_t seed;
  std::uint64_t events;
  std::uint64_t injected;
  std::uint64_t delivered;
  std::uint64_t dropped;
  std::optional<std::size_t> mars_rank;
  std::optional<std::size_t> spidermon_rank;
  std::optional<std::size_t> intsight_rank;
  std::optional<std::size_t> syndb_rank;
};

class ScenarioDeterminismTest : public ::testing::TestWithParam<Fingerprint> {
};

TEST_P(ScenarioDeterminismTest, MatchesGoldenFingerprint) {
  const Fingerprint& golden = GetParam();
  auto cfg = default_scenario(golden.kind, golden.seed);
  cfg.duration = 4 * sim::kSecond;
  const ScenarioResult r = run_scenario(cfg);

  EXPECT_EQ(r.events_executed, golden.events);
  EXPECT_EQ(r.net_stats.injected, golden.injected);
  EXPECT_EQ(r.net_stats.delivered, golden.delivered);
  EXPECT_EQ(r.net_stats.dropped, golden.dropped);
  EXPECT_EQ(r.outcome("mars").rank, golden.mars_rank);
  EXPECT_EQ(r.outcome("spidermon").rank, golden.spidermon_rank);
  EXPECT_EQ(r.outcome("intsight").rank, golden.intsight_rank);
  EXPECT_EQ(r.outcome("syndb").rank, golden.syndb_rank);
}

INSTANTIATE_TEST_SUITE_P(
    GoldenFingerprints, ScenarioDeterminismTest,
    ::testing::Values(
        Fingerprint{faults::FaultKind::kProcessRateDecrease, 7, 303897,
                    40676, 40012, 0, std::nullopt, 1, 3, 1},
        Fingerprint{faults::FaultKind::kProcessRateDecrease, 21, 325843,
                    39917, 39197, 0, std::nullopt, 1, 4, 1},
        Fingerprint{faults::FaultKind::kDrop, 7, 304784, 40676, 40123, 530,
                    2, std::nullopt, std::nullopt, 1},
        Fingerprint{faults::FaultKind::kDrop, 21, 327619, 39917, 39468, 422,
                    1, std::nullopt, 9, 1}),
    [](const ::testing::TestParamInfo<Fingerprint>& info) {
      return std::string(faults::to_string(info.param.kind) ==
                                 std::string("process-rate-decrease")
                             ? "ProcessRateDecrease"
                             : "Drop") +
             "Seed" + std::to_string(info.param.seed);
    });

// The declarative path must be the same experiment: a minimal JSON spec
// (fault kind + seed + duration, everything else defaulted) reproduces a
// golden fingerprint event-for-event and rank-for-rank.
TEST(ScenarioDeterminismTest, SpecDrivenRunMatchesGoldenFingerprint) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "name": "golden-rate-7",
    "topology": {"name": "fat-tree"},
    "seed": 7,
    "duration_s": 4.0,
    "faults": [{"kind": "rate", "at_s": 3.0}]
  })");
  const ScenarioResult r = run_scenario(spec.to_config());
  EXPECT_EQ(r.events_executed, 303897u);
  EXPECT_EQ(r.net_stats.injected, 40676u);
  EXPECT_EQ(r.net_stats.delivered, 40012u);
  EXPECT_EQ(r.net_stats.dropped, 0u);
  EXPECT_EQ(r.outcome("mars").rank, std::nullopt);
  EXPECT_EQ(r.outcome("spidermon").rank, std::optional<std::size_t>(1));
  EXPECT_EQ(r.outcome("intsight").rank, std::optional<std::size_t>(3));
  EXPECT_EQ(r.outcome("syndb").rank, std::optional<std::size_t>(1));
}

// ---------------------------------------------------------------------------
// Sharded engine (sim.shards >= 1): its own golden universe — notification
// delivery becomes an explicit control-latency hop, so the fingerprints
// differ from the legacy ones above — with one extra invariant the legacy
// engine never had to prove: a fixed seed must produce a byte-identical
// diagnosis at EVERY shard count. Event keys (sim/lane.hpp), not window
// placement, carry that guarantee; these tests pin it.

ScenarioConfig sharded_config(faults::FaultKind kind, std::uint64_t seed,
                              int shards) {
  auto cfg = default_scenario(kind, seed);
  cfg.duration = 4 * sim::kSecond;
  cfg.systems = {"mars"};  // validate_scenario: sharded runs are mars-only
  cfg.sim.shards = shards;
  return cfg;
}

/// Serialize everything an operator would act on — stats, ranks, and the
/// full ranked culprit list with scores — so "same diagnosis" is a single
/// byte-level string comparison.
std::string serialize_diagnosis(const ScenarioResult& r) {
  std::ostringstream out;
  out << "events=" << r.events_executed << " injected=" << r.net_stats.injected
      << " delivered=" << r.net_stats.delivered
      << " dropped=" << r.net_stats.dropped
      << " unroutable=" << r.net_stats.unroutable
      << " packets=" << r.packets_injected << "\n";
  for (const auto& outcome : r.systems) {
    out << outcome.system << " rank=";
    if (outcome.rank) {
      out << *outcome.rank;
    } else {
      out << "null";
    }
    out << " triggered=" << outcome.triggered
        << " telemetry_bytes=" << outcome.telemetry_bytes
        << " diagnosis_bytes=" << outcome.diagnosis_bytes << "\n";
    for (const auto& culprit : outcome.culprits) {
      out << "  " << culprit.describe() << "\n";
    }
  }
  return out.str();
}

struct ShardedFingerprint {
  faults::FaultKind kind;
  std::uint64_t seed;
  std::uint64_t events;
  std::uint64_t injected;
  std::uint64_t delivered;
  std::uint64_t dropped;
  std::optional<std::size_t> mars_rank;
};

class ShardedScenarioDeterminismTest
    : public ::testing::TestWithParam<ShardedFingerprint> {};

TEST_P(ShardedScenarioDeterminismTest, ByteIdenticalAtEveryShardCount) {
  const ShardedFingerprint& golden = GetParam();

  // Shard count 1 is the identity reference: same engine, no parallelism.
  const ScenarioResult reference =
      run_scenario(sharded_config(golden.kind, golden.seed, 1));
  EXPECT_EQ(reference.events_executed, golden.events);
  EXPECT_EQ(reference.net_stats.injected, golden.injected);
  EXPECT_EQ(reference.net_stats.delivered, golden.delivered);
  EXPECT_EQ(reference.net_stats.dropped, golden.dropped);
  EXPECT_EQ(reference.outcome("mars").rank, golden.mars_rank);

  const std::string reference_bytes = serialize_diagnosis(reference);
  for (const int shards : {2, 4, 8}) {
    const ScenarioResult r =
        run_scenario(sharded_config(golden.kind, golden.seed, shards));
    EXPECT_EQ(serialize_diagnosis(r), reference_bytes)
        << "diagnosis diverged at " << shards << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardedGoldenFingerprints, ShardedScenarioDeterminismTest,
    ::testing::Values(
        ShardedFingerprint{faults::FaultKind::kProcessRateDecrease, 7,
                           303511, 40650, 39965, 0, std::nullopt},
        ShardedFingerprint{faults::FaultKind::kDrop, 21, 328546, 39996,
                           39531, 427, 1}),
    [](const ::testing::TestParamInfo<ShardedFingerprint>& info) {
      return std::string(info.param.kind ==
                                 faults::FaultKind::kProcessRateDecrease
                             ? "ProcessRateDecrease"
                             : "Drop") +
             "Seed" + std::to_string(info.param.seed);
    });

// Randomized cross-shard-traffic differential: random seeds, flow counts,
// rates, and fault kinds on a small fat-tree, sharded run vs the 1-shard
// reference. The trial parameters are drawn from a FIXED meta-seed so the
// test is itself reproducible; what varies is coverage of the cross-shard
// interleavings, not the verdict.
TEST(ShardedScenarioDeterminismTest, RandomizedTrafficMatchesOneShardRun) {
  std::mt19937_64 meta(0xD1FFu);
  const faults::FaultKind kinds[] = {
      faults::FaultKind::kProcessRateDecrease, faults::FaultKind::kDrop,
      faults::FaultKind::kMicroBurst, faults::FaultKind::kDelay};
  for (int trial = 0; trial < 4; ++trial) {
    const auto kind = kinds[trial % 4];
    const std::uint64_t seed = meta() % 10'000;
    auto make = [&](int shards) {
      auto cfg = sharded_config(kind, seed, shards);
      cfg.background.flows = 12 + static_cast<int>(seed % 13);
      cfg.background.pps = 120.0 + static_cast<double>(seed % 160);
      return cfg;
    };
    const ScenarioResult reference = run_scenario(make(1));
    const int shards = 2 + static_cast<int>(meta() % 7);  // 2..8
    const ScenarioResult r = run_scenario(make(shards));
    EXPECT_EQ(serialize_diagnosis(r), serialize_diagnosis(reference))
        << "trial " << trial << ": kind " << static_cast<int>(kind)
        << " seed " << seed << " diverged at " << shards << " shards";
  }
}

// The spec-driven path lowers a "sim" block onto the same engine: a JSON
// spec with {"shards": 4} reproduces the sharded golden fingerprint.
TEST(ShardedScenarioDeterminismTest, SpecDrivenShardedRunMatchesGolden) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "name": "sharded-golden-rate-7",
    "topology": {"name": "fat-tree"},
    "seed": 7,
    "duration_s": 4.0,
    "systems": ["mars"],
    "sim": {"shards": 4},
    "faults": [{"kind": "rate", "at_s": 3.0}]
  })");
  const ScenarioResult r = run_scenario(spec.to_config());
  EXPECT_EQ(r.events_executed, 303511u);
  EXPECT_EQ(r.net_stats.injected, 40650u);
  EXPECT_EQ(r.net_stats.delivered, 39965u);
  EXPECT_EQ(r.net_stats.dropped, 0u);
  EXPECT_EQ(r.outcome("mars").rank, std::nullopt);
}

}  // namespace
}  // namespace mars
