// Fixed-seed determinism contract for the simulator hot path.
//
// The event queue orders events by (time, schedule sequence), so a fixed
// seed must reproduce a scenario bit-identically: same number of events
// executed, same packet conservation totals, and the same Table-1
// localization ranks for every system. The fingerprints below were
// captured before the allocation-free hot-path rewrite (inline event
// closures, generation-stamped cancellation, pooled packets) and pin the
// rewrite — and any future optimization — to the exact same executions.
// If an intentional behavior change lands (new RNG draws, different event
// counts), re-capture these with the harness in bench/run_sim_hotpath.sh's
// sibling note in DESIGN.md ("Simulator hot path").

#include "mars/scenario.hpp"
#include "mars/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

namespace mars {
namespace {

struct Fingerprint {
  faults::FaultKind kind;
  std::uint64_t seed;
  std::uint64_t events;
  std::uint64_t injected;
  std::uint64_t delivered;
  std::uint64_t dropped;
  std::optional<std::size_t> mars_rank;
  std::optional<std::size_t> spidermon_rank;
  std::optional<std::size_t> intsight_rank;
  std::optional<std::size_t> syndb_rank;
};

class ScenarioDeterminismTest : public ::testing::TestWithParam<Fingerprint> {
};

TEST_P(ScenarioDeterminismTest, MatchesGoldenFingerprint) {
  const Fingerprint& golden = GetParam();
  auto cfg = default_scenario(golden.kind, golden.seed);
  cfg.duration = 4 * sim::kSecond;
  const ScenarioResult r = run_scenario(cfg);

  EXPECT_EQ(r.events_executed, golden.events);
  EXPECT_EQ(r.net_stats.injected, golden.injected);
  EXPECT_EQ(r.net_stats.delivered, golden.delivered);
  EXPECT_EQ(r.net_stats.dropped, golden.dropped);
  EXPECT_EQ(r.outcome("mars").rank, golden.mars_rank);
  EXPECT_EQ(r.outcome("spidermon").rank, golden.spidermon_rank);
  EXPECT_EQ(r.outcome("intsight").rank, golden.intsight_rank);
  EXPECT_EQ(r.outcome("syndb").rank, golden.syndb_rank);
}

INSTANTIATE_TEST_SUITE_P(
    GoldenFingerprints, ScenarioDeterminismTest,
    ::testing::Values(
        Fingerprint{faults::FaultKind::kProcessRateDecrease, 7, 303897,
                    40676, 40012, 0, std::nullopt, 1, 3, 1},
        Fingerprint{faults::FaultKind::kProcessRateDecrease, 21, 325843,
                    39917, 39197, 0, std::nullopt, 1, 4, 1},
        Fingerprint{faults::FaultKind::kDrop, 7, 304784, 40676, 40123, 530,
                    2, std::nullopt, std::nullopt, 1},
        Fingerprint{faults::FaultKind::kDrop, 21, 327619, 39917, 39468, 422,
                    1, std::nullopt, 9, 1}),
    [](const ::testing::TestParamInfo<Fingerprint>& info) {
      return std::string(faults::to_string(info.param.kind) ==
                                 std::string("process-rate-decrease")
                             ? "ProcessRateDecrease"
                             : "Drop") +
             "Seed" + std::to_string(info.param.seed);
    });

// The declarative path must be the same experiment: a minimal JSON spec
// (fault kind + seed + duration, everything else defaulted) reproduces a
// golden fingerprint event-for-event and rank-for-rank.
TEST(ScenarioDeterminismTest, SpecDrivenRunMatchesGoldenFingerprint) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "name": "golden-rate-7",
    "topology": {"name": "fat-tree"},
    "seed": 7,
    "duration_s": 4.0,
    "faults": [{"kind": "rate", "at_s": 3.0}]
  })");
  const ScenarioResult r = run_scenario(spec.to_config());
  EXPECT_EQ(r.events_executed, 303897u);
  EXPECT_EQ(r.net_stats.injected, 40676u);
  EXPECT_EQ(r.net_stats.delivered, 40012u);
  EXPECT_EQ(r.net_stats.dropped, 0u);
  EXPECT_EQ(r.outcome("mars").rank, std::nullopt);
  EXPECT_EQ(r.outcome("spidermon").rank, std::optional<std::size_t>(1));
  EXPECT_EQ(r.outcome("intsight").rank, std::optional<std::size_t>(3));
  EXPECT_EQ(r.outcome("syndb").rank, std::optional<std::size_t>(1));
}

}  // namespace
}  // namespace mars
