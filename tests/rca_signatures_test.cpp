#include "rca/signatures.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mars::rca {
namespace {

using namespace mars::sim::literals;

constexpr net::FlowId kFlow{1, 5};
constexpr sim::Time kEpoch = 100 * sim::kMillisecond;

telemetry::RtRecord record(sim::Time at, std::uint32_t src_count,
                           std::uint32_t qdepth) {
  telemetry::RtRecord rec;
  rec.flow = kFlow;
  rec.sink_timestamp = at;
  rec.src_last_epoch_count = src_count;
  rec.total_queue_depth = qdepth;
  return rec;
}

TEST(FlowFeaturesTest, SplitsBaselineAndProblemAtBoundary) {
  std::vector<telemetry::RtRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(record(i * kEpoch, 20, 1));  // 200 pps baseline
  }
  for (int i = 10; i < 15; ++i) {
    records.push_back(record(i * kEpoch, 150, 12));  // burst + queue
  }
  const auto f =
      extract_flow_features(records, kFlow, 10 * kEpoch, kEpoch);
  ASSERT_TRUE(f.has_baseline);
  ASSERT_TRUE(f.has_problem);
  EXPECT_NEAR(f.baseline_pps, 200.0, 1.0);
  EXPECT_NEAR(f.problem_pps, 1500.0, 10.0);
  EXPECT_NEAR(f.baseline_queue, 1.0, 0.1);
  EXPECT_NEAR(f.problem_queue, 12.0, 0.1);
  EXPECT_TRUE(f.pps_spiked({}));
  EXPECT_TRUE(f.queue_congested({}));
  EXPECT_FALSE(f.pps_stable({}));
}

TEST(FlowFeaturesTest, StablePpsWithQueueGrowthIsProcessRateShape) {
  std::vector<telemetry::RtRecord> records;
  for (int i = 0; i < 10; ++i) records.push_back(record(i * kEpoch, 20, 1));
  for (int i = 10; i < 15; ++i) {
    records.push_back(record(i * kEpoch, 21, 40));  // inflow stable
  }
  const auto f =
      extract_flow_features(records, kFlow, 10 * kEpoch, kEpoch);
  EXPECT_FALSE(f.pps_spiked({}));
  EXPECT_TRUE(f.pps_stable({}));
  EXPECT_TRUE(f.queue_congested({}));
}

TEST(FlowFeaturesTest, OneAmbientSpikeDoesNotFlipCongestion) {
  std::vector<telemetry::RtRecord> records;
  for (int i = 0; i < 10; ++i) records.push_back(record(i * kEpoch, 20, 0));
  // Problem window: mostly quiet, one spike.
  records.push_back(record(10 * kEpoch, 20, 0));
  records.push_back(record(11 * kEpoch, 20, 30));  // ambient outlier
  records.push_back(record(12 * kEpoch, 20, 0));
  records.push_back(record(13 * kEpoch, 20, 1));
  records.push_back(record(14 * kEpoch, 20, 0));
  const auto f =
      extract_flow_features(records, kFlow, 10 * kEpoch, kEpoch);
  EXPECT_FALSE(f.queue_congested({}));
}

TEST(FlowFeaturesTest, MissingWindowsReportNoEvidence) {
  const std::vector<telemetry::RtRecord> empty;
  const auto f = extract_flow_features(empty, kFlow, 0, kEpoch);
  EXPECT_FALSE(f.has_baseline);
  EXPECT_FALSE(f.has_problem);
  EXPECT_FALSE(f.pps_spiked({}));
  EXPECT_TRUE(f.pps_stable({}));  // no evidence of change
  EXPECT_FALSE(f.queue_congested({}));
}

// ---- ECMP verdict ----

telemetry::RtRecord path_record(sim::Time at, std::uint32_t path_a_pkts,
                                std::uint32_t path_b_pkts) {
  telemetry::RtRecord rec;
  rec.flow = kFlow;
  rec.sink_timestamp = at;
  rec.path_count_n = 2;
  rec.path_counts[0] = {0xA, path_a_pkts};
  rec.path_counts[1] = {0xB, path_b_pkts};
  return rec;
}

struct EcmpFixture {
  // Two three-switch paths diverging at switch 1.
  net::SwitchPath path_a{1, 2, 5};
  net::SwitchPath path_b{1, 3, 5};
  std::vector<std::pair<std::uint32_t, const net::SwitchPath*>> lookup{
      {0xA, &path_a}, {0xB, &path_b}};
};

TEST(EcmpVerdictTest, DetectsSplitThatBecameUneven) {
  EcmpFixture f;
  const std::vector<PathShare> baseline{{0xA, 100}, {0xB, 100}};
  const std::vector<PathShare> problem{{0xA, 20}, {0xB, 260}};
  const auto verdict =
      detect_ecmp_imbalance(baseline, problem, f.lookup, {}, 1.0, 1.0);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->chooser, 1u);
  EXPECT_GE(verdict->ratio, 10.0);
}

TEST(EcmpVerdictTest, AlwaysSkewedSplitIsNotTheFault) {
  EcmpFixture f;
  // Hash skew: 4:1 in both windows.
  const std::vector<PathShare> baseline{{0xA, 400}, {0xB, 100}};
  const std::vector<PathShare> problem{{0xA, 400}, {0xB, 100}};
  EXPECT_FALSE(detect_ecmp_imbalance(baseline, problem, f.lookup, {}, 1.0,
                                     1.0)
                   .has_value());
}

TEST(EcmpVerdictTest, CollapsedBranchWithoutGrowthIsNotRebalancing) {
  EcmpFixture f;
  // Path A stalls (process-rate fault downstream); B carries the same
  // load as before: share shifted, but no traffic MOVED to B.
  const std::vector<PathShare> baseline{{0xA, 100}, {0xB, 100}};
  const std::vector<PathShare> problem{{0xA, 5}, {0xB, 100}};
  EXPECT_FALSE(detect_ecmp_imbalance(baseline, problem, f.lookup, {}, 1.0,
                                     1.0)
                   .has_value());
}

TEST(EcmpVerdictTest, SinglePathFlowGivesNoVerdict) {
  EcmpFixture f;
  const std::vector<PathShare> baseline{{0xA, 100}};
  const std::vector<PathShare> problem{{0xA, 100}};
  EXPECT_FALSE(detect_ecmp_imbalance(baseline, problem, f.lookup, {}, 1.0,
                                     1.0)
                   .has_value());
}

TEST(EcmpVerdictTest, BranchSwitchCountsAsGrowth) {
  EcmpFixture f;
  // The flow's packets moved wholesale from A to B (weights flipped).
  const std::vector<PathShare> baseline{{0xA, 100}};
  const std::vector<PathShare> problem{{0xB, 110}};
  const auto verdict =
      detect_ecmp_imbalance(baseline, problem, f.lookup, {}, 1.0, 1.0);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->chooser, 1u);
}

TEST(PathSharesTest, WindowsAndCompletePerPathCounts) {
  std::vector<telemetry::RtRecord> records;
  records.push_back(path_record(0, 10, 10));
  records.push_back(path_record(1_s, 5, 30));
  const auto early = path_shares(records, kFlow, 0, 500_ms);
  ASSERT_EQ(early.size(), 2u);
  EXPECT_EQ(early[0].packets, 10u);
  const auto late = path_shares(records, kFlow, 500_ms,
                                std::numeric_limits<sim::Time>::max());
  ASSERT_EQ(late.size(), 2u);
  EXPECT_EQ(late[0].packets, 5u);
  EXPECT_EQ(late[1].packets, 30u);
}

}  // namespace
}  // namespace mars::rca
