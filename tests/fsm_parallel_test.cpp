// The parallel mining engine's contract: for every miner and every thread
// count, mine_with_stats() returns the SAME pattern sequence — bit-
// identical, before any sort_patterns() canonicalization — and the same
// thread-count-independent stats as the sequential run. Suite names
// contain "Parallel" so the CI TSan job picks this binary up.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "fsm/brute_force.hpp"
#include "fsm/miner.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace mars::fsm {
namespace {

SequenceDatabase random_database(std::uint64_t seed, std::size_t max_len,
                                 Item alphabet) {
  util::Rng rng(seed);
  SequenceDatabase db;
  const int sequences = 8 + static_cast<int>(rng.below(30));
  for (int s = 0; s < sequences; ++s) {
    Sequence seq;
    const std::size_t len = 1 + rng.below(max_len);
    for (std::size_t i = 0; i < len; ++i) {
      seq.push_back(static_cast<Item>(rng.below(alphabet)));
    }
    db.add(std::move(seq), 1 + rng.below(5));
  }
  return db;
}

std::map<Sequence, std::uint64_t> as_map(const std::vector<Pattern>& v) {
  std::map<Sequence, std::uint64_t> m;
  for (const auto& p : v) m[p.items] = p.support;
  return m;
}

class ParallelEngineTest : public ::testing::TestWithParam<MinerKind> {};

TEST_P(ParallelEngineTest, ParallelOutputBitIdenticalToSequential) {
  const auto miner = make_miner(GetParam());
  for (const bool contiguous : {true, false}) {
    const auto db = random_database(7 + contiguous, 10, 8);
    MiningParams p;
    p.min_support_abs = 2;
    p.max_length = 3;
    p.contiguous = contiguous;

    p.threads = 1;
    const auto sequential = miner->mine_with_stats(db, p);
    for (const std::uint32_t threads : {2u, 4u, 8u}) {
      p.threads = threads;
      const auto parallel = miner->mine_with_stats(db, p);
      // Bit-identical emission ORDER, not just the same set: per-root
      // buffers are concatenated in root order.
      ASSERT_EQ(parallel.patterns.size(), sequential.patterns.size())
          << miner->name() << " threads=" << threads;
      for (std::size_t i = 0; i < parallel.patterns.size(); ++i) {
        EXPECT_EQ(parallel.patterns[i].items, sequential.patterns[i].items)
            << miner->name() << " threads=" << threads << " index=" << i;
        EXPECT_EQ(parallel.patterns[i].support,
                  sequential.patterns[i].support)
            << miner->name() << " threads=" << threads;
      }
      // Cost stats are defined thread-count-independently.
      EXPECT_EQ(parallel.stats.patterns, sequential.stats.patterns);
      EXPECT_EQ(parallel.stats.nodes_expanded,
                sequential.stats.nodes_expanded)
          << miner->name() << " threads=" << threads;
      EXPECT_EQ(parallel.stats.peak_bytes, sequential.stats.peak_bytes)
          << miner->name() << " threads=" << threads;
    }
  }
}

TEST_P(ParallelEngineTest, RandomizedDifferentialAgainstBruteForce) {
  const auto miner = make_miner(GetParam());
  const BruteForce reference;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    for (const bool contiguous : {true, false}) {
      const auto db = random_database(seed * 131 + 7, 9, 7);
      MiningParams p;
      util::Rng rng(seed);
      p.min_support_abs = 1 + rng.below(db.total() / 3 + 1);
      p.max_length = 2 + rng.below(2);
      p.contiguous = contiguous;

      auto expected = reference.mine(db, p);
      sort_patterns(expected);
      const auto expected_map = as_map(expected);
      for (const std::uint32_t threads : {1u, 4u}) {
        p.threads = threads;
        auto got = miner->mine_with_stats(db, p).patterns;
        sort_patterns(got);
        ASSERT_EQ(as_map(got), expected_map)
            << miner->name() << " seed=" << seed
            << " contiguous=" << contiguous << " threads=" << threads;
      }
    }
  }
}

TEST_P(ParallelEngineTest, SharedExternalPoolAcrossCalls) {
  // The analyzer's usage shape: one pool, many mine calls against it.
  const auto miner = make_miner(GetParam());
  parallel::ThreadPool pool(4);
  MiningParams p;
  p.min_support_abs = 2;
  p.max_length = 3;
  p.contiguous = true;
  p.threads = 4;
  const auto db = random_database(99, 12, 9);
  p.threads = 1;
  const auto baseline = miner->mine_with_stats(db, p);
  p.threads = 4;
  for (int call = 0; call < 3; ++call) {
    const auto res = miner->mine_with_stats(db, p, &pool);
    ASSERT_EQ(res.patterns.size(), baseline.patterns.size());
    EXPECT_EQ(as_map(res.patterns), as_map(baseline.patterns));
    EXPECT_LE(res.stats.threads_used, 4u);
  }
}

TEST_P(ParallelEngineTest, ConcurrentMineCallsOnOneMinerObject) {
  // mine_with_stats is const and keeps no mutable state (the old
  // last_memory_bytes_ member was a data race under exactly this usage).
  const auto miner = make_miner(GetParam());
  const auto db = random_database(5, 10, 8);
  MiningParams p;
  p.min_support_abs = 2;
  p.max_length = 3;
  p.contiguous = true;
  const auto expected = miner->mine_with_stats(db, p);

  std::vector<MineResult> results(4);
  {
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (auto& slot : results) {
      threads.emplace_back(
          [&, out = &slot] { *out = miner->mine_with_stats(db, p); });
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& res : results) {
    ASSERT_EQ(res.patterns.size(), expected.patterns.size());
    EXPECT_EQ(as_map(res.patterns), as_map(expected.patterns));
    EXPECT_EQ(res.stats.patterns, expected.stats.patterns);
    EXPECT_EQ(res.stats.peak_bytes, expected.stats.peak_bytes);
  }
}

TEST_P(ParallelEngineTest, StatsAreSane) {
  const auto miner = make_miner(GetParam());
  const auto db = random_database(17, 8, 6);
  MiningParams p;
  p.min_support_abs = 2;
  p.max_length = 3;
  p.contiguous = true;
  const auto res = miner->mine_with_stats(db, p);
  EXPECT_EQ(res.stats.patterns, res.patterns.size());
  // Every emitted pattern had its support evaluated somewhere.
  EXPECT_GE(res.stats.nodes_expanded, res.stats.patterns);
  EXPECT_GT(res.stats.peak_bytes, 0u);
  EXPECT_GE(res.stats.wall_seconds, 0.0);
  EXPECT_EQ(res.stats.threads_used, 1u);  // threads defaults to 1

  MiningParams p8 = p;
  p8.threads = 8;
  const auto par = miner->mine_with_stats(db, p8);
  EXPECT_GE(par.stats.threads_used, 1u);
  EXPECT_LE(par.stats.threads_used, 8u);
}

INSTANTIATE_TEST_SUITE_P(AllMiners, ParallelEngineTest,
                         ::testing::ValuesIn(all_miner_kinds()),
                         [](const auto& info) {
                           std::string name{miner_name(info.param)};
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ParallelEngineEdgeTest, ZeroAndOneRootDatabases) {
  for (const auto kind : all_miner_kinds()) {
    const auto miner = make_miner(kind);
    MiningParams p;
    p.min_support_abs = 1;
    p.max_length = 4;
    p.contiguous = true;
    p.threads = 4;

    SequenceDatabase empty;
    EXPECT_TRUE(miner->mine_with_stats(empty, p).patterns.empty());

    SequenceDatabase single;  // one item -> one root, runs inline
    single.add({3, 3, 3}, 2);
    const auto res = miner->mine_with_stats(single, p);
    EXPECT_FALSE(res.patterns.empty()) << miner->name();
    EXPECT_EQ(res.stats.threads_used, 1u) << miner->name();
  }
}

}  // namespace
}  // namespace mars::fsm
