// Unit tests for the RootCauseAnalyzer on hand-constructed diagnosis
// sessions: cause assignment per signature, drop-vs-latency dispatch from
// the notification mix, the drop pass's deficit weighting, merge rules,
// and port-level attribution.

#include "rca/analyzer.hpp"

#include <gtest/gtest.h>

#include "net/fat_tree.hpp"
#include "net/routing.hpp"

namespace mars::rca {
namespace {

using namespace mars::sim::literals;

constexpr sim::Time kEpoch = 100 * sim::kMillisecond;

struct Fixture {
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::RoutingTable routing{ft.topology};
  control::PathRegistry registry{ft.topology, routing, {}};
  RootCauseAnalyzer analyzer{registry, {}, &ft.topology};

  /// The registered path + id for a (src,dst) edge pair's first route.
  std::pair<std::uint32_t, const net::SwitchPath*> first_path(
      net::SwitchId src, net::SwitchId dst) const {
    for (const auto& p : registry.paths()) {
      if (p.switches.front() == src && p.switches.back() == dst) {
        return {p.path_id, &p.switches};
      }
    }
    return {0, nullptr};
  }

  /// One telemetry record on a registered path.
  telemetry::RtRecord record(std::uint32_t path_id, net::FlowId flow,
                             sim::Time at, sim::Time latency,
                             std::uint32_t qdepth, std::uint32_t src_count,
                             std::uint32_t sink_count) const {
    telemetry::RtRecord rec;
    rec.flow = flow;
    rec.path_id = path_id;
    rec.sink_timestamp = at;
    rec.source_timestamp = at - latency;
    rec.latency = latency;
    rec.total_queue_depth = qdepth;
    rec.src_last_epoch_count = src_count;
    rec.sink_last_epoch_count = sink_count;
    rec.flow_epoch_packets = sink_count;
    rec.path_count_n = 1;
    rec.path_counts[0] = {path_id, sink_count};
    return rec;
  }
};

control::DiagnosisData session(dataplane::Notification::Kind kind,
                               sim::Time trigger_at) {
  control::DiagnosisData data;
  data.trigger.kind = kind;
  data.trigger.when = trigger_at;
  data.notifications.push_back(data.trigger);
  data.collected_at = trigger_at + 500_ms;
  return data;
}

TEST(AnalyzerTest, EmptySessionYieldsNoCulprits) {
  Fixture f;
  const auto data =
      session(dataplane::Notification::Kind::kHighLatency, 3 * sim::kSecond);
  EXPECT_TRUE(f.analyzer.analyze(data).empty());
}

TEST(AnalyzerTest, ProcessRateShapeYieldsPortCulpritOnFaultyLink) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  const auto [path_id, path] = f.first_path(flow.source, flow.sink);
  ASSERT_NE(path, nullptr);
  const net::FlowId other{f.ft.edge[2], f.ft.edge[3]};
  const auto [other_id, other_path] = f.first_path(other.source, other.sink);
  ASSERT_NE(other_path, nullptr);

  auto data =
      session(dataplane::Notification::Kind::kHighLatency, 3 * sim::kSecond);
  data.thresholds[flow] = 5_ms;
  data.thresholds[other] = 5_ms;
  // Baseline: healthy records for both flows.
  for (int e = 0; e < 25; ++e) {
    data.records.push_back(
        f.record(path_id, flow, e * kEpoch, 2_ms, 1, 20, 20));
    data.records.push_back(
        f.record(other_id, other, e * kEpoch, 2_ms, 1, 20, 20));
  }
  // Problem: the flow's latency and queue blow up, inflow stays ~20/epoch.
  for (int e = 30; e < 35; ++e) {
    data.records.push_back(
        f.record(path_id, flow, e * kEpoch, 300_ms, 60, 21, 20));
    data.records.push_back(
        f.record(other_id, other, e * kEpoch, 2_ms, 1, 20, 20));
  }
  const auto culprits = f.analyzer.analyze(data);
  ASSERT_FALSE(culprits.empty());
  // Top culprits: process-rate on the flow's path, never micro-burst.
  EXPECT_EQ(culprits.front().cause, CauseKind::kProcessRateDecrease);
  bool on_path = false;
  for (const auto sw : culprits.front().location) {
    on_path |= std::find(path->begin(), path->end(), sw) != path->end();
  }
  EXPECT_TRUE(on_path);
  for (const auto& c : culprits) {
    EXPECT_NE(c.cause, CauseKind::kMicroBurst);
  }
}

TEST(AnalyzerTest, SourceCountSpikeYieldsMicroBurstFlowCulprit) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[4]};
  const auto [path_id, path] = f.first_path(flow.source, flow.sink);
  ASSERT_NE(path, nullptr);

  auto data =
      session(dataplane::Notification::Kind::kHighLatency, 3 * sim::kSecond);
  data.thresholds[flow] = 5_ms;
  for (int e = 0; e < 25; ++e) {
    data.records.push_back(
        f.record(path_id, flow, e * kEpoch, 2_ms, 1, 20, 20));
  }
  // Problem: inflow 10x and latency up (the flow bursts).
  for (int e = 30; e < 35; ++e) {
    data.records.push_back(
        f.record(path_id, flow, e * kEpoch, 120_ms, 40, 200, 190));
  }
  const auto culprits = f.analyzer.analyze(data);
  ASSERT_FALSE(culprits.empty());
  EXPECT_EQ(culprits.front().cause, CauseKind::kMicroBurst);
  EXPECT_EQ(culprits.front().level, CulpritLevel::kFlow);
  EXPECT_EQ(culprits.front().flow, flow);
}

TEST(AnalyzerTest, LatencyWithoutQueueOrSpikeIsDelay) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  const auto [path_id, path] = f.first_path(flow.source, flow.sink);
  auto data =
      session(dataplane::Notification::Kind::kHighLatency, 3 * sim::kSecond);
  data.thresholds[flow] = 5_ms;
  for (int e = 0; e < 25; ++e) {
    data.records.push_back(
        f.record(path_id, flow, e * kEpoch, 2_ms, 0, 20, 20));
  }
  for (int e = 30; e < 35; ++e) {
    data.records.push_back(
        f.record(path_id, flow, e * kEpoch, 80_ms, 0, 20, 20));
  }
  const auto culprits = f.analyzer.analyze(data);
  ASSERT_FALSE(culprits.empty());
  EXPECT_EQ(culprits.front().cause, CauseKind::kDelay);
}

TEST(AnalyzerTest, DropOnlySessionRunsDeficitWeightedDropPass) {
  Fixture f;
  const net::FlowId lossy{f.ft.edge[0], f.ft.edge[1]};
  const net::FlowId healthy{f.ft.edge[2], f.ft.edge[3]};
  const auto [lossy_id, lossy_path] = f.first_path(lossy.source, lossy.sink);
  const auto [ok_id, ok_path] = f.first_path(healthy.source, healthy.sink);
  ASSERT_NE(lossy_path, nullptr);
  ASSERT_NE(ok_path, nullptr);

  auto data = session(dataplane::Notification::Kind::kDrop, 3 * sim::kSecond);
  data.thresholds[lossy] = 5_ms;
  data.thresholds[healthy] = 5_ms;
  for (int e = 25; e < 30; ++e) {  // baseline inside analysis window
    data.records.push_back(
        f.record(lossy_id, lossy, e * kEpoch, 2_ms, 0, 20, 20));
    data.records.push_back(
        f.record(ok_id, healthy, e * kEpoch, 2_ms, 0, 20, 20));
  }
  for (int e = 30; e < 35; ++e) {  // half the lossy flow's packets vanish
    data.records.push_back(
        f.record(lossy_id, lossy, e * kEpoch, 2_ms, 0, 20, 9));
    data.records.push_back(
        f.record(ok_id, healthy, e * kEpoch, 2_ms, 0, 20, 20));
  }
  const auto culprits = f.analyzer.analyze(data);
  ASSERT_FALSE(culprits.empty());
  EXPECT_EQ(culprits.front().cause, CauseKind::kDrop);
  bool on_lossy_path = false;
  for (const auto sw : culprits.front().location) {
    on_lossy_path |=
        std::find(lossy_path->begin(), lossy_path->end(), sw) !=
        lossy_path->end();
  }
  EXPECT_TRUE(on_lossy_path);
}

TEST(AnalyzerTest, PortLevelCulpritsNamePortsFromTopology) {
  Fixture f;
  const net::FlowId flow{f.ft.edge[0], f.ft.edge[1]};
  const auto [path_id, path] = f.first_path(flow.source, flow.sink);
  auto data =
      session(dataplane::Notification::Kind::kHighLatency, 3 * sim::kSecond);
  data.thresholds[flow] = 5_ms;
  for (int e = 0; e < 25; ++e) {
    data.records.push_back(
        f.record(path_id, flow, e * kEpoch, 2_ms, 1, 20, 20));
  }
  for (int e = 30; e < 35; ++e) {
    data.records.push_back(
        f.record(path_id, flow, e * kEpoch, 300_ms, 60, 21, 20));
  }
  const auto culprits = f.analyzer.analyze(data);
  bool saw_port_level = false;
  for (const auto& c : culprits) {
    if (c.level != CulpritLevel::kPort) continue;
    saw_port_level = true;
    ASSERT_EQ(c.location.size(), 1u);
    EXPECT_NE(c.port, net::kHostPort);
    EXPECT_LT(c.port, f.ft.topology.port_count(c.location.front()));
  }
  EXPECT_TRUE(saw_port_level);
}

TEST(AnalyzerTest, MaxCulpritsBoundsTheList) {
  Fixture f;
  RcaConfig cfg;
  cfg.max_culprits = 3;
  RootCauseAnalyzer analyzer(f.registry, cfg, &f.ft.topology);
  auto data =
      session(dataplane::Notification::Kind::kHighLatency, 3 * sim::kSecond);
  // Anomalies on many flows at once.
  for (std::size_t e1 = 0; e1 < f.ft.edge.size(); ++e1) {
    const net::FlowId flow{f.ft.edge[e1],
                           f.ft.edge[(e1 + 3) % f.ft.edge.size()]};
    const auto [id, path] = f.first_path(flow.source, flow.sink);
    if (path == nullptr) continue;
    data.thresholds[flow] = 5_ms;
    for (int e = 28; e < 35; ++e) {
      data.records.push_back(
          f.record(id, flow, e * kEpoch, 100_ms, 20, 20, 20));
    }
  }
  EXPECT_LE(analyzer.analyze(data).size(), 3u);
}

}  // namespace
}  // namespace mars::rca
