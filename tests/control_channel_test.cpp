#include "control/channel.hpp"

#include <gtest/gtest.h>

#include "control/path_registry.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mars::control {
namespace {

using namespace mars::sim::literals;

// A network with real traffic so ring tables carry genuine records.
struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree({.k = 4});
  net::Network net{sim, ft.topology};
  PathRegistry registry{ft.topology, net.routing(), {}};
  dataplane::MarsPipeline pipeline;
  std::vector<dataplane::Notification> delivered;

  Fixture()
      : pipeline(ft.topology.switch_count(), {},
                 [](const dataplane::Notification&) {}) {
    pipeline.set_control_mat(registry.mat());
    net.add_observer(pipeline);
  }

  void run_traffic(int packets = 300) {
    const net::FlowId flow{ft.edge[0], ft.edge[1]};
    for (int i = 0; i < packets; ++i) {
      sim.schedule_in(5_ms * i, [this, flow] { net.inject(flow, 3, 500); });
    }
    sim.run(packets * 5_ms + 1_s);
  }

  ControlChannel make_channel(ChannelConfig cfg) {
    ControlChannel channel(sim, pipeline, cfg);
    channel.set_deliver([this](const dataplane::Notification& n) {
      delivered.push_back(n);
    });
    return channel;
  }

  static dataplane::Notification notification() {
    dataplane::Notification n;
    n.kind = dataplane::Notification::Kind::kHighLatency;
    return n;
  }
};

TEST(ControlChannelTest, PerfectChannelIsTransparent) {
  Fixture f;
  f.run_traffic();
  auto channel = f.make_channel({});
  ASSERT_TRUE(channel.config().perfect());

  for (int i = 0; i < 50; ++i) channel.offer(Fixture::notification());
  EXPECT_EQ(f.delivered.size(), 50u);

  const auto direct = f.pipeline.ring_snapshot(f.ft.edge[1]);
  const auto read = channel.read_ring(f.ft.edge[1]);
  ASSERT_TRUE(read.ok);
  ASSERT_FALSE(direct.empty());
  ASSERT_EQ(read.records.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(read.records[i].latency, direct[i].latency);
    EXPECT_EQ(read.records[i].flow, direct[i].flow);
  }
  // A perfect channel never schedules events: everything above ran with
  // the simulator idle.
  const auto events_before = f.sim.events_executed();
  f.sim.run(f.sim.now() + 1_s);
  EXPECT_EQ(f.sim.events_executed(), events_before);

  const ChannelStats& s = channel.stats();
  EXPECT_EQ(s.notifications_dropped, 0u);
  EXPECT_EQ(s.notifications_delayed, 0u);
  EXPECT_EQ(s.reads_failed, 0u);
  EXPECT_EQ(s.records_lost, 0u);
  EXPECT_EQ(s.records_corrupted, 0u);
}

TEST(ControlChannelTest, NotificationLossDropsTheConfiguredFraction) {
  Fixture f;
  ChannelConfig cfg;
  cfg.notification_loss = 0.3;
  cfg.seed = 42;
  auto channel = f.make_channel(cfg);
  for (int i = 0; i < 2000; ++i) channel.offer(Fixture::notification());
  const double dropped =
      static_cast<double>(channel.stats().notifications_dropped) / 2000.0;
  EXPECT_NEAR(dropped, 0.3, 0.05);
  EXPECT_EQ(f.delivered.size(), 2000u - channel.stats().notifications_dropped);
}

TEST(ControlChannelTest, DelayedNotificationsArriveLater) {
  Fixture f;
  ChannelConfig cfg;
  cfg.notification_delay_prob = 1.0;
  cfg.notification_delay_min = 10_ms;
  cfg.notification_delay_max = 20_ms;
  cfg.seed = 7;
  auto channel = f.make_channel(cfg);
  channel.offer(Fixture::notification());
  EXPECT_TRUE(f.delivered.empty());  // in flight, not dropped
  f.sim.run(1_s);
  EXPECT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(channel.stats().notifications_delayed, 1u);
}

TEST(ControlChannelTest, ReadFailureReturnsNotOk) {
  Fixture f;
  f.run_traffic();
  ChannelConfig cfg;
  cfg.read_failure = 1.0;
  auto channel = f.make_channel(cfg);
  const auto read = channel.read_ring(f.ft.edge[1]);
  EXPECT_FALSE(read.ok);
  EXPECT_TRUE(read.records.empty());
  EXPECT_EQ(channel.stats().reads_failed, 1u);
}

TEST(ControlChannelTest, RecordLossTruncatesTheSnapshot) {
  Fixture f;
  f.run_traffic();
  ChannelConfig cfg;
  cfg.record_loss = 0.5;
  cfg.seed = 9;
  auto channel = f.make_channel(cfg);
  const auto direct = f.pipeline.ring_snapshot(f.ft.edge[1]);
  ASSERT_GT(direct.size(), 10u);
  const auto read = channel.read_ring(f.ft.edge[1]);
  ASSERT_TRUE(read.ok);
  EXPECT_LT(read.records.size(), direct.size());
  EXPECT_EQ(read.records.size() + channel.stats().records_lost,
            direct.size());
}

TEST(ControlChannelTest, GenuineRecordsAreAlwaysPlausible) {
  Fixture f;
  f.run_traffic();
  const auto records = f.pipeline.ring_snapshot(f.ft.edge[1]);
  ASSERT_FALSE(records.empty());
  for (const auto& rec : records) {
    EXPECT_TRUE(plausible_record(rec, f.sim.now()));
  }
}

TEST(ControlChannelTest, SomeCorruptionIsCaughtByPlausibility) {
  Fixture f;
  f.run_traffic();
  ChannelConfig cfg;
  cfg.record_corruption = 1.0;
  cfg.seed = 11;
  auto channel = f.make_channel(cfg);
  const auto read = channel.read_ring(f.ft.edge[1]);
  ASSERT_TRUE(read.ok);
  ASSERT_GT(channel.stats().records_corrupted, 10u);
  std::size_t implausible = 0;
  for (const auto& rec : read.records) {
    if (!plausible_record(rec, f.sim.now())) ++implausible;
  }
  // 3 of the 5 corruption modes violate internal consistency; with every
  // record corrupted, a healthy share must be detectable (the silent modes
  // are the documented residual risk, so not all are).
  EXPECT_GT(implausible, read.records.size() / 4);
  EXPECT_LT(implausible, read.records.size());
}

TEST(ControlChannelTest, ScheduledDegradationRaisesAndRestoresTheDial) {
  Fixture f;
  ChannelConfig cfg;
  cfg.notification_loss = 0.1;
  auto channel = f.make_channel(cfg);
  channel.schedule_degradation(ControlChannel::Dial::kNotificationLoss, 0.9,
                               1_s, 2_s);
  EXPECT_EQ(channel.stats().scheduled_faults, 1u);
  f.sim.run(1_s + 1_ms);
  EXPECT_DOUBLE_EQ(channel.config().notification_loss, 0.9);
  f.sim.run(3_s + 1_ms);
  EXPECT_DOUBLE_EQ(channel.config().notification_loss, 0.1);
}

TEST(ControlChannelTest, DegradationWindowNeverLowersAStrongerDial) {
  Fixture f;
  ChannelConfig cfg;
  cfg.read_failure = 0.8;
  auto channel = f.make_channel(cfg);
  channel.schedule_degradation(ControlChannel::Dial::kReadFailure, 0.3, 1_s,
                               1_s);
  f.sim.run(1_s + 1_ms);
  EXPECT_DOUBLE_EQ(channel.config().read_failure, 0.8);  // max() kept it
  f.sim.run(3_s);
  EXPECT_DOUBLE_EQ(channel.config().read_failure, 0.8);
}

TEST(ControlChannelTest, SameSeedSameDamage) {
  Fixture f1, f2;
  f1.run_traffic();
  f2.run_traffic();
  ChannelConfig cfg;
  cfg.record_loss = 0.3;
  cfg.record_corruption = 0.2;
  cfg.seed = 1234;
  auto c1 = f1.make_channel(cfg);
  auto c2 = f2.make_channel(cfg);
  const auto r1 = c1.read_ring(f1.ft.edge[1]);
  const auto r2 = c2.read_ring(f2.ft.edge[1]);
  ASSERT_EQ(r1.records.size(), r2.records.size());
  for (std::size_t i = 0; i < r1.records.size(); ++i) {
    EXPECT_EQ(r1.records[i].latency, r2.records[i].latency);
    EXPECT_EQ(r1.records[i].source_timestamp, r2.records[i].source_timestamp);
  }
}

}  // namespace
}  // namespace mars::control
