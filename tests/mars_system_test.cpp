// Tests for the MarsSystem facade: wiring, diagnosis selection, the
// cross-session merge/refinement rules, and overhead roll-up.

#include "mars/mars.hpp"

#include <gtest/gtest.h>

#include "net/fat_tree.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic_gen.hpp"

namespace mars {
namespace {

using namespace mars::sim::literals;

struct Fixture {
  sim::Simulator sim;
  net::FatTree ft = net::build_fat_tree(
      {.k = 4, .edge_agg_gbps = 0.007, .agg_core_gbps = 0.010});
  net::Network net{sim, ft.topology};
  MarsSystem mars{net, tuned_config()};

  static MarsConfig tuned_config() {
    MarsConfig cfg;
    cfg.controller.reservoir.warmup = 12;
    cfg.controller.reservoir.relative_margin = 0.3;
    return cfg;
  }

  Fixture() {
    for (net::SwitchId sw = 0; sw < net.switch_count(); ++sw) {
      net.node(sw).set_queue_capacity(4096);
    }
  }
};

TEST(MarsSystemTest, WiresRegistryPipelineControllerAnalyzer) {
  Fixture f;
  EXPECT_TRUE(f.mars.registry().conflict_free());
  EXPECT_EQ(f.mars.registry().path_count(), 208u);  // K=4 ordered pairs
  EXPECT_TRUE(f.mars.diagnoses().empty());
  const auto oh = f.mars.overheads();
  EXPECT_EQ(oh.telemetry_bytes, 0u);
  EXPECT_EQ(oh.diagnosis_bytes, 0u);
}

TEST(MarsSystemTest, HealthyTrafficProducesNoDiagnosis) {
  Fixture f;
  f.mars.start();
  workload::TrafficGenerator traffic(f.net, 3);
  workload::BackgroundConfig cfg;
  cfg.flows = 16;
  traffic.add_background(cfg, f.ft.edge, 4);
  traffic.start();
  f.sim.run(4_s);
  EXPECT_TRUE(f.mars.diagnoses().empty());
  EXPECT_TRUE(f.mars.culprits_for(0).empty());
  // Telemetry rode along even though nothing went wrong.
  EXPECT_GT(f.mars.overheads().telemetry_bytes, 0u);
}

TEST(MarsSystemTest, FaultTriggersDiagnosisAndOverheadRollup) {
  Fixture f;
  f.mars.start();
  workload::TrafficGenerator traffic(f.net, 3);
  workload::BackgroundConfig cfg;
  cfg.flows = 24;
  traffic.add_background(cfg, f.ft.edge, 4);
  traffic.start();
  // Throttle a loaded port at 3s.
  const auto& spec = traffic.flows().front();
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(spec.flow.source, spec.flow.sink,
                                          spec.flow_hash, out));
  f.sim.schedule_at(3_s, [&f, &spec, out] {
    f.net.node(spec.flow.source).set_max_pps(out, 60.0);
  });
  f.sim.schedule_at(4_s,
                    [&f, &spec] { f.net.node(spec.flow.source).clear_faults(); });
  f.sim.run(6_s);

  ASSERT_FALSE(f.mars.diagnoses().empty());
  const auto culprits = f.mars.culprits_for(3_s);
  ASSERT_FALSE(culprits.empty());
  // Scores descend and the list is bounded.
  for (std::size_t i = 1; i < culprits.size(); ++i) {
    EXPECT_GE(culprits[i - 1].score, culprits[i].score);
  }
  EXPECT_LE(culprits.size(), 20u);
  const auto oh = f.mars.overheads();
  EXPECT_GT(oh.diagnosis_bytes, 0u);
}

TEST(MarsSystemTest, CulpritsForIgnoresPreFaultSessions) {
  Fixture f;
  // Two synthetic diagnoses cannot be pushed from outside; instead check
  // the fallback contract: with no post-fault session, the latest one is
  // used, and with none at all the list is empty.
  EXPECT_TRUE(f.mars.culprits_for(10_s).empty());
}

TEST(CrossSessionFoldTest, DropFoldsIntoSameLocationLatencyCause) {
  // Unit-level check of the refinement rule via the public description:
  // build two fake sessions by running the private path indirectly is not
  // possible, so this validates the rule's observable effect in a real
  // run: after a process-rate fault, no Drop culprit shares (location,
  // port) with a higher-ranked latency-signature culprit.
  Fixture f;
  f.mars.start();
  workload::TrafficGenerator traffic(f.net, 7);
  workload::BackgroundConfig cfg;
  cfg.flows = 24;
  traffic.add_background(cfg, f.ft.edge, 4);
  traffic.start();
  const auto& spec = traffic.flows()[2];
  net::PortId out = 0;
  ASSERT_TRUE(f.net.routing().select_port(spec.flow.source, spec.flow.sink,
                                          spec.flow_hash, out));
  f.sim.schedule_at(3_s, [&f, &spec, out] {
    f.net.node(spec.flow.source).set_max_pps(out, 60.0);
  });
  f.sim.schedule_at(4_s,
                    [&f, &spec] { f.net.node(spec.flow.source).clear_faults(); });
  f.sim.run(6_s);

  const auto culprits = f.mars.culprits_for(3_s);
  for (const auto& drop : culprits) {
    if (drop.cause != rca::CauseKind::kDrop) continue;
    for (const auto& other : culprits) {
      if (&other == &drop || other.cause == rca::CauseKind::kDrop) continue;
      const bool same_place =
          other.location == drop.location && other.port == drop.port;
      EXPECT_FALSE(same_place)
          << "unfolded drop duplicate at " << drop.describe();
    }
  }
}

}  // namespace
}  // namespace mars
