# Empty dependencies file for bench_pathid_memory.
# This may be replaced when dependencies are built.
