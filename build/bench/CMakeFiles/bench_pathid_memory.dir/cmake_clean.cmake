file(REMOVE_RECURSE
  "CMakeFiles/bench_pathid_memory.dir/bench_pathid_memory.cpp.o"
  "CMakeFiles/bench_pathid_memory.dir/bench_pathid_memory.cpp.o.d"
  "bench_pathid_memory"
  "bench_pathid_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pathid_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
