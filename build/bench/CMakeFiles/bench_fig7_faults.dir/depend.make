# Empty dependencies file for bench_fig7_faults.
# This may be replaced when dependencies are built.
