# Empty dependencies file for bench_fig8_detection.
# This may be replaced when dependencies are built.
