# Empty dependencies file for bench_ablation_sbfl.
# This may be replaced when dependencies are built.
