file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sbfl.dir/bench_ablation_sbfl.cpp.o"
  "CMakeFiles/bench_ablation_sbfl.dir/bench_ablation_sbfl.cpp.o.d"
  "bench_ablation_sbfl"
  "bench_ablation_sbfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sbfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
