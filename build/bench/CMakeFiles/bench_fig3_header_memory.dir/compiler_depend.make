# Empty compiler generated dependencies file for bench_fig3_header_memory.
# This may be replaced when dependencies are built.
