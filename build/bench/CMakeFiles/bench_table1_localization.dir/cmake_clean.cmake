file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_localization.dir/bench_table1_localization.cpp.o"
  "CMakeFiles/bench_table1_localization.dir/bench_table1_localization.cpp.o.d"
  "bench_table1_localization"
  "bench_table1_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
