# Empty dependencies file for bench_table1_localization.
# This may be replaced when dependencies are built.
