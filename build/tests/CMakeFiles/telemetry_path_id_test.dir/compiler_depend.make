# Empty compiler generated dependencies file for telemetry_path_id_test.
# This may be replaced when dependencies are built.
