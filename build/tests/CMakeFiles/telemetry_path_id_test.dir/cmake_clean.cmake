file(REMOVE_RECURSE
  "CMakeFiles/telemetry_path_id_test.dir/telemetry_path_id_test.cpp.o"
  "CMakeFiles/telemetry_path_id_test.dir/telemetry_path_id_test.cpp.o.d"
  "telemetry_path_id_test"
  "telemetry_path_id_test.pdb"
  "telemetry_path_id_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_path_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
