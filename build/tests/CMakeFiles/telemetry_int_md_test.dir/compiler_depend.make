# Empty compiler generated dependencies file for telemetry_int_md_test.
# This may be replaced when dependencies are built.
