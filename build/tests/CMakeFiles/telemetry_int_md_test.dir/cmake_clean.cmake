file(REMOVE_RECURSE
  "CMakeFiles/telemetry_int_md_test.dir/telemetry_int_md_test.cpp.o"
  "CMakeFiles/telemetry_int_md_test.dir/telemetry_int_md_test.cpp.o.d"
  "telemetry_int_md_test"
  "telemetry_int_md_test.pdb"
  "telemetry_int_md_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_int_md_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
