# Empty compiler generated dependencies file for detect_reservoir_test.
# This may be replaced when dependencies are built.
