file(REMOVE_RECURSE
  "CMakeFiles/detect_reservoir_test.dir/detect_reservoir_test.cpp.o"
  "CMakeFiles/detect_reservoir_test.dir/detect_reservoir_test.cpp.o.d"
  "detect_reservoir_test"
  "detect_reservoir_test.pdb"
  "detect_reservoir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_reservoir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
