file(REMOVE_RECURSE
  "CMakeFiles/telemetry_tables_test.dir/telemetry_tables_test.cpp.o"
  "CMakeFiles/telemetry_tables_test.dir/telemetry_tables_test.cpp.o.d"
  "telemetry_tables_test"
  "telemetry_tables_test.pdb"
  "telemetry_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
