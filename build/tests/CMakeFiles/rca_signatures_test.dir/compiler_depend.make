# Empty compiler generated dependencies file for rca_signatures_test.
# This may be replaced when dependencies are built.
