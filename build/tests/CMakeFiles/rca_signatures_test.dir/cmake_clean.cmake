file(REMOVE_RECURSE
  "CMakeFiles/rca_signatures_test.dir/rca_signatures_test.cpp.o"
  "CMakeFiles/rca_signatures_test.dir/rca_signatures_test.cpp.o.d"
  "rca_signatures_test"
  "rca_signatures_test.pdb"
  "rca_signatures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rca_signatures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
