file(REMOVE_RECURSE
  "CMakeFiles/net_leaf_spine_test.dir/net_leaf_spine_test.cpp.o"
  "CMakeFiles/net_leaf_spine_test.dir/net_leaf_spine_test.cpp.o.d"
  "net_leaf_spine_test"
  "net_leaf_spine_test.pdb"
  "net_leaf_spine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_leaf_spine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
