# Empty compiler generated dependencies file for net_leaf_spine_test.
# This may be replaced when dependencies are built.
