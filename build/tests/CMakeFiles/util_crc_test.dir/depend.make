# Empty dependencies file for util_crc_test.
# This may be replaced when dependencies are built.
