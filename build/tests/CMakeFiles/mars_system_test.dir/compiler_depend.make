# Empty compiler generated dependencies file for mars_system_test.
# This may be replaced when dependencies are built.
