file(REMOVE_RECURSE
  "CMakeFiles/mars_system_test.dir/mars_system_test.cpp.o"
  "CMakeFiles/mars_system_test.dir/mars_system_test.cpp.o.d"
  "mars_system_test"
  "mars_system_test.pdb"
  "mars_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
