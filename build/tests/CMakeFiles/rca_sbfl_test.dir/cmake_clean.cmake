file(REMOVE_RECURSE
  "CMakeFiles/rca_sbfl_test.dir/rca_sbfl_test.cpp.o"
  "CMakeFiles/rca_sbfl_test.dir/rca_sbfl_test.cpp.o.d"
  "rca_sbfl_test"
  "rca_sbfl_test.pdb"
  "rca_sbfl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rca_sbfl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
