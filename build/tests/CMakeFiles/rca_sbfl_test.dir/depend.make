# Empty dependencies file for rca_sbfl_test.
# This may be replaced when dependencies are built.
