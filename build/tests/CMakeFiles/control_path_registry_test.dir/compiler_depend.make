# Empty compiler generated dependencies file for control_path_registry_test.
# This may be replaced when dependencies are built.
