file(REMOVE_RECURSE
  "CMakeFiles/control_path_registry_test.dir/control_path_registry_test.cpp.o"
  "CMakeFiles/control_path_registry_test.dir/control_path_registry_test.cpp.o.d"
  "control_path_registry_test"
  "control_path_registry_test.pdb"
  "control_path_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_path_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
