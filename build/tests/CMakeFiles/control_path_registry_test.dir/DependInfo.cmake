
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/control_path_registry_test.cpp" "tests/CMakeFiles/control_path_registry_test.dir/control_path_registry_test.cpp.o" "gcc" "tests/CMakeFiles/control_path_registry_test.dir/control_path_registry_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mars_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
