file(REMOVE_RECURSE
  "CMakeFiles/rca_analyzer_test.dir/rca_analyzer_test.cpp.o"
  "CMakeFiles/rca_analyzer_test.dir/rca_analyzer_test.cpp.o.d"
  "rca_analyzer_test"
  "rca_analyzer_test.pdb"
  "rca_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rca_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
