# Empty dependencies file for rca_analyzer_test.
# This may be replaced when dependencies are built.
