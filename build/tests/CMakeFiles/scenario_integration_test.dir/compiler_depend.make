# Empty compiler generated dependencies file for scenario_integration_test.
# This may be replaced when dependencies are built.
