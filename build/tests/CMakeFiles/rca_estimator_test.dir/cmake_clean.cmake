file(REMOVE_RECURSE
  "CMakeFiles/rca_estimator_test.dir/rca_estimator_test.cpp.o"
  "CMakeFiles/rca_estimator_test.dir/rca_estimator_test.cpp.o.d"
  "rca_estimator_test"
  "rca_estimator_test.pdb"
  "rca_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rca_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
