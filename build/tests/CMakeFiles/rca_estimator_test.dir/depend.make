# Empty dependencies file for rca_estimator_test.
# This may be replaced when dependencies are built.
