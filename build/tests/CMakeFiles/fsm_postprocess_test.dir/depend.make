# Empty dependencies file for fsm_postprocess_test.
# This may be replaced when dependencies are built.
