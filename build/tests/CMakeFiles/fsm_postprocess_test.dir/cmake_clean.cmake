file(REMOVE_RECURSE
  "CMakeFiles/fsm_postprocess_test.dir/fsm_postprocess_test.cpp.o"
  "CMakeFiles/fsm_postprocess_test.dir/fsm_postprocess_test.cpp.o.d"
  "fsm_postprocess_test"
  "fsm_postprocess_test.pdb"
  "fsm_postprocess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_postprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
