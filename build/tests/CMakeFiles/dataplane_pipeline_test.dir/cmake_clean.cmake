file(REMOVE_RECURSE
  "CMakeFiles/dataplane_pipeline_test.dir/dataplane_pipeline_test.cpp.o"
  "CMakeFiles/dataplane_pipeline_test.dir/dataplane_pipeline_test.cpp.o.d"
  "dataplane_pipeline_test"
  "dataplane_pipeline_test.pdb"
  "dataplane_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataplane_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
