# Empty compiler generated dependencies file for dataplane_pipeline_test.
# This may be replaced when dependencies are built.
