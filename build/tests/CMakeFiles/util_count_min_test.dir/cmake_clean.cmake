file(REMOVE_RECURSE
  "CMakeFiles/util_count_min_test.dir/util_count_min_test.cpp.o"
  "CMakeFiles/util_count_min_test.dir/util_count_min_test.cpp.o.d"
  "util_count_min_test"
  "util_count_min_test.pdb"
  "util_count_min_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_count_min_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
