# Empty dependencies file for util_count_min_test.
# This may be replaced when dependencies are built.
