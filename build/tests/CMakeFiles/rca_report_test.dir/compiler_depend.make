# Empty compiler generated dependencies file for rca_report_test.
# This may be replaced when dependencies are built.
