file(REMOVE_RECURSE
  "CMakeFiles/rca_report_test.dir/rca_report_test.cpp.o"
  "CMakeFiles/rca_report_test.dir/rca_report_test.cpp.o.d"
  "rca_report_test"
  "rca_report_test.pdb"
  "rca_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rca_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
