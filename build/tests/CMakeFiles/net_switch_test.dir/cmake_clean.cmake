file(REMOVE_RECURSE
  "CMakeFiles/net_switch_test.dir/net_switch_test.cpp.o"
  "CMakeFiles/net_switch_test.dir/net_switch_test.cpp.o.d"
  "net_switch_test"
  "net_switch_test.pdb"
  "net_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
