file(REMOVE_RECURSE
  "CMakeFiles/control_controller_test.dir/control_controller_test.cpp.o"
  "CMakeFiles/control_controller_test.dir/control_controller_test.cpp.o.d"
  "control_controller_test"
  "control_controller_test.pdb"
  "control_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
