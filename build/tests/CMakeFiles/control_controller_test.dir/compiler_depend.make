# Empty compiler generated dependencies file for control_controller_test.
# This may be replaced when dependencies are built.
