file(REMOVE_RECURSE
  "libmars_metrics.a"
)
