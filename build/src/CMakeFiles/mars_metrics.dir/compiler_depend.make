# Empty compiler generated dependencies file for mars_metrics.
# This may be replaced when dependencies are built.
