file(REMOVE_RECURSE
  "CMakeFiles/mars_metrics.dir/metrics/ranking.cpp.o"
  "CMakeFiles/mars_metrics.dir/metrics/ranking.cpp.o.d"
  "libmars_metrics.a"
  "libmars_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
