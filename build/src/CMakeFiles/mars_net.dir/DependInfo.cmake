
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fat_tree.cpp" "src/CMakeFiles/mars_net.dir/net/fat_tree.cpp.o" "gcc" "src/CMakeFiles/mars_net.dir/net/fat_tree.cpp.o.d"
  "/root/repo/src/net/leaf_spine.cpp" "src/CMakeFiles/mars_net.dir/net/leaf_spine.cpp.o" "gcc" "src/CMakeFiles/mars_net.dir/net/leaf_spine.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/mars_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/mars_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/CMakeFiles/mars_net.dir/net/routing.cpp.o" "gcc" "src/CMakeFiles/mars_net.dir/net/routing.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/CMakeFiles/mars_net.dir/net/switch.cpp.o" "gcc" "src/CMakeFiles/mars_net.dir/net/switch.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/mars_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/mars_net.dir/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mars_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
