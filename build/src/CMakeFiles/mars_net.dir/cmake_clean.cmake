file(REMOVE_RECURSE
  "CMakeFiles/mars_net.dir/net/fat_tree.cpp.o"
  "CMakeFiles/mars_net.dir/net/fat_tree.cpp.o.d"
  "CMakeFiles/mars_net.dir/net/leaf_spine.cpp.o"
  "CMakeFiles/mars_net.dir/net/leaf_spine.cpp.o.d"
  "CMakeFiles/mars_net.dir/net/network.cpp.o"
  "CMakeFiles/mars_net.dir/net/network.cpp.o.d"
  "CMakeFiles/mars_net.dir/net/routing.cpp.o"
  "CMakeFiles/mars_net.dir/net/routing.cpp.o.d"
  "CMakeFiles/mars_net.dir/net/switch.cpp.o"
  "CMakeFiles/mars_net.dir/net/switch.cpp.o.d"
  "CMakeFiles/mars_net.dir/net/topology.cpp.o"
  "CMakeFiles/mars_net.dir/net/topology.cpp.o.d"
  "libmars_net.a"
  "libmars_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
