# Empty compiler generated dependencies file for mars_net.
# This may be replaced when dependencies are built.
