file(REMOVE_RECURSE
  "libmars_net.a"
)
