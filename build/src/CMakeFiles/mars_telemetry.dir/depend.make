# Empty dependencies file for mars_telemetry.
# This may be replaced when dependencies are built.
