file(REMOVE_RECURSE
  "libmars_telemetry.a"
)
