
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/int_md.cpp" "src/CMakeFiles/mars_telemetry.dir/telemetry/int_md.cpp.o" "gcc" "src/CMakeFiles/mars_telemetry.dir/telemetry/int_md.cpp.o.d"
  "/root/repo/src/telemetry/path_id.cpp" "src/CMakeFiles/mars_telemetry.dir/telemetry/path_id.cpp.o" "gcc" "src/CMakeFiles/mars_telemetry.dir/telemetry/path_id.cpp.o.d"
  "/root/repo/src/telemetry/tables.cpp" "src/CMakeFiles/mars_telemetry.dir/telemetry/tables.cpp.o" "gcc" "src/CMakeFiles/mars_telemetry.dir/telemetry/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mars_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
