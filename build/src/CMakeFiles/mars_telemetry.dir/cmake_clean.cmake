file(REMOVE_RECURSE
  "CMakeFiles/mars_telemetry.dir/telemetry/int_md.cpp.o"
  "CMakeFiles/mars_telemetry.dir/telemetry/int_md.cpp.o.d"
  "CMakeFiles/mars_telemetry.dir/telemetry/path_id.cpp.o"
  "CMakeFiles/mars_telemetry.dir/telemetry/path_id.cpp.o.d"
  "CMakeFiles/mars_telemetry.dir/telemetry/tables.cpp.o"
  "CMakeFiles/mars_telemetry.dir/telemetry/tables.cpp.o.d"
  "libmars_telemetry.a"
  "libmars_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
