# Empty compiler generated dependencies file for mars_util.
# This may be replaced when dependencies are built.
