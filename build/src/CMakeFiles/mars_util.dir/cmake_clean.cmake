file(REMOVE_RECURSE
  "CMakeFiles/mars_util.dir/util/crc.cpp.o"
  "CMakeFiles/mars_util.dir/util/crc.cpp.o.d"
  "CMakeFiles/mars_util.dir/util/histogram.cpp.o"
  "CMakeFiles/mars_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/mars_util.dir/util/stats.cpp.o"
  "CMakeFiles/mars_util.dir/util/stats.cpp.o.d"
  "libmars_util.a"
  "libmars_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
