file(REMOVE_RECURSE
  "CMakeFiles/mars_fsm.dir/fsm/brute_force.cpp.o"
  "CMakeFiles/mars_fsm.dir/fsm/brute_force.cpp.o.d"
  "CMakeFiles/mars_fsm.dir/fsm/gsp.cpp.o"
  "CMakeFiles/mars_fsm.dir/fsm/gsp.cpp.o.d"
  "CMakeFiles/mars_fsm.dir/fsm/miner.cpp.o"
  "CMakeFiles/mars_fsm.dir/fsm/miner.cpp.o.d"
  "CMakeFiles/mars_fsm.dir/fsm/postprocess.cpp.o"
  "CMakeFiles/mars_fsm.dir/fsm/postprocess.cpp.o.d"
  "CMakeFiles/mars_fsm.dir/fsm/prefixspan.cpp.o"
  "CMakeFiles/mars_fsm.dir/fsm/prefixspan.cpp.o.d"
  "CMakeFiles/mars_fsm.dir/fsm/sequence.cpp.o"
  "CMakeFiles/mars_fsm.dir/fsm/sequence.cpp.o.d"
  "CMakeFiles/mars_fsm.dir/fsm/spade.cpp.o"
  "CMakeFiles/mars_fsm.dir/fsm/spade.cpp.o.d"
  "CMakeFiles/mars_fsm.dir/fsm/spam.cpp.o"
  "CMakeFiles/mars_fsm.dir/fsm/spam.cpp.o.d"
  "libmars_fsm.a"
  "libmars_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
