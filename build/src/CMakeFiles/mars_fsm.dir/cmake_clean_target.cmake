file(REMOVE_RECURSE
  "libmars_fsm.a"
)
