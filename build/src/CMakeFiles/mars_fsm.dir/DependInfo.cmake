
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/brute_force.cpp" "src/CMakeFiles/mars_fsm.dir/fsm/brute_force.cpp.o" "gcc" "src/CMakeFiles/mars_fsm.dir/fsm/brute_force.cpp.o.d"
  "/root/repo/src/fsm/gsp.cpp" "src/CMakeFiles/mars_fsm.dir/fsm/gsp.cpp.o" "gcc" "src/CMakeFiles/mars_fsm.dir/fsm/gsp.cpp.o.d"
  "/root/repo/src/fsm/miner.cpp" "src/CMakeFiles/mars_fsm.dir/fsm/miner.cpp.o" "gcc" "src/CMakeFiles/mars_fsm.dir/fsm/miner.cpp.o.d"
  "/root/repo/src/fsm/postprocess.cpp" "src/CMakeFiles/mars_fsm.dir/fsm/postprocess.cpp.o" "gcc" "src/CMakeFiles/mars_fsm.dir/fsm/postprocess.cpp.o.d"
  "/root/repo/src/fsm/prefixspan.cpp" "src/CMakeFiles/mars_fsm.dir/fsm/prefixspan.cpp.o" "gcc" "src/CMakeFiles/mars_fsm.dir/fsm/prefixspan.cpp.o.d"
  "/root/repo/src/fsm/sequence.cpp" "src/CMakeFiles/mars_fsm.dir/fsm/sequence.cpp.o" "gcc" "src/CMakeFiles/mars_fsm.dir/fsm/sequence.cpp.o.d"
  "/root/repo/src/fsm/spade.cpp" "src/CMakeFiles/mars_fsm.dir/fsm/spade.cpp.o" "gcc" "src/CMakeFiles/mars_fsm.dir/fsm/spade.cpp.o.d"
  "/root/repo/src/fsm/spam.cpp" "src/CMakeFiles/mars_fsm.dir/fsm/spam.cpp.o" "gcc" "src/CMakeFiles/mars_fsm.dir/fsm/spam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mars_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
