# Empty dependencies file for mars_fsm.
# This may be replaced when dependencies are built.
