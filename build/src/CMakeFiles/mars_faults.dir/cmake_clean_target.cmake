file(REMOVE_RECURSE
  "libmars_faults.a"
)
