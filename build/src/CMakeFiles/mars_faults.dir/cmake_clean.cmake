file(REMOVE_RECURSE
  "CMakeFiles/mars_faults.dir/faults/injector.cpp.o"
  "CMakeFiles/mars_faults.dir/faults/injector.cpp.o.d"
  "libmars_faults.a"
  "libmars_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
