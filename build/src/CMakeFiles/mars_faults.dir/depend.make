# Empty dependencies file for mars_faults.
# This may be replaced when dependencies are built.
