# Empty compiler generated dependencies file for mars_rca.
# This may be replaced when dependencies are built.
