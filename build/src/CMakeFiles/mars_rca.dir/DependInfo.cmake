
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rca/analyzer.cpp" "src/CMakeFiles/mars_rca.dir/rca/analyzer.cpp.o" "gcc" "src/CMakeFiles/mars_rca.dir/rca/analyzer.cpp.o.d"
  "/root/repo/src/rca/report.cpp" "src/CMakeFiles/mars_rca.dir/rca/report.cpp.o" "gcc" "src/CMakeFiles/mars_rca.dir/rca/report.cpp.o.d"
  "/root/repo/src/rca/sbfl.cpp" "src/CMakeFiles/mars_rca.dir/rca/sbfl.cpp.o" "gcc" "src/CMakeFiles/mars_rca.dir/rca/sbfl.cpp.o.d"
  "/root/repo/src/rca/signatures.cpp" "src/CMakeFiles/mars_rca.dir/rca/signatures.cpp.o" "gcc" "src/CMakeFiles/mars_rca.dir/rca/signatures.cpp.o.d"
  "/root/repo/src/rca/traffic_estimator.cpp" "src/CMakeFiles/mars_rca.dir/rca/traffic_estimator.cpp.o" "gcc" "src/CMakeFiles/mars_rca.dir/rca/traffic_estimator.cpp.o.d"
  "/root/repo/src/rca/types.cpp" "src/CMakeFiles/mars_rca.dir/rca/types.cpp.o" "gcc" "src/CMakeFiles/mars_rca.dir/rca/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mars_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
