file(REMOVE_RECURSE
  "CMakeFiles/mars_rca.dir/rca/analyzer.cpp.o"
  "CMakeFiles/mars_rca.dir/rca/analyzer.cpp.o.d"
  "CMakeFiles/mars_rca.dir/rca/report.cpp.o"
  "CMakeFiles/mars_rca.dir/rca/report.cpp.o.d"
  "CMakeFiles/mars_rca.dir/rca/sbfl.cpp.o"
  "CMakeFiles/mars_rca.dir/rca/sbfl.cpp.o.d"
  "CMakeFiles/mars_rca.dir/rca/signatures.cpp.o"
  "CMakeFiles/mars_rca.dir/rca/signatures.cpp.o.d"
  "CMakeFiles/mars_rca.dir/rca/traffic_estimator.cpp.o"
  "CMakeFiles/mars_rca.dir/rca/traffic_estimator.cpp.o.d"
  "CMakeFiles/mars_rca.dir/rca/types.cpp.o"
  "CMakeFiles/mars_rca.dir/rca/types.cpp.o.d"
  "libmars_rca.a"
  "libmars_rca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_rca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
