file(REMOVE_RECURSE
  "libmars_rca.a"
)
