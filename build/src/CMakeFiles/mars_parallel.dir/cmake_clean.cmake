file(REMOVE_RECURSE
  "CMakeFiles/mars_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/mars_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libmars_parallel.a"
  "libmars_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
