# Empty compiler generated dependencies file for mars_parallel.
# This may be replaced when dependencies are built.
