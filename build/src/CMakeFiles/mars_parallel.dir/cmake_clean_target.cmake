file(REMOVE_RECURSE
  "libmars_parallel.a"
)
