file(REMOVE_RECURSE
  "CMakeFiles/mars_detect.dir/detect/reservoir.cpp.o"
  "CMakeFiles/mars_detect.dir/detect/reservoir.cpp.o.d"
  "libmars_detect.a"
  "libmars_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
