# Empty compiler generated dependencies file for mars_detect.
# This may be replaced when dependencies are built.
