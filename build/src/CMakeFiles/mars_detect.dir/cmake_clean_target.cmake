file(REMOVE_RECURSE
  "libmars_detect.a"
)
