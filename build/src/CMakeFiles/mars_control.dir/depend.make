# Empty dependencies file for mars_control.
# This may be replaced when dependencies are built.
