file(REMOVE_RECURSE
  "libmars_control.a"
)
