file(REMOVE_RECURSE
  "CMakeFiles/mars_control.dir/control/controller.cpp.o"
  "CMakeFiles/mars_control.dir/control/controller.cpp.o.d"
  "CMakeFiles/mars_control.dir/control/path_registry.cpp.o"
  "CMakeFiles/mars_control.dir/control/path_registry.cpp.o.d"
  "libmars_control.a"
  "libmars_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
