file(REMOVE_RECURSE
  "libmars_system.a"
)
