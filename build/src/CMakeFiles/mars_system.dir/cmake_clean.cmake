file(REMOVE_RECURSE
  "CMakeFiles/mars_system.dir/mars/mars.cpp.o"
  "CMakeFiles/mars_system.dir/mars/mars.cpp.o.d"
  "CMakeFiles/mars_system.dir/mars/scenario.cpp.o"
  "CMakeFiles/mars_system.dir/mars/scenario.cpp.o.d"
  "libmars_system.a"
  "libmars_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
