# Empty dependencies file for mars_system.
# This may be replaced when dependencies are built.
