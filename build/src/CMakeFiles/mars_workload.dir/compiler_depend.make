# Empty compiler generated dependencies file for mars_workload.
# This may be replaced when dependencies are built.
