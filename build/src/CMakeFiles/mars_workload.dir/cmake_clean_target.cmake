file(REMOVE_RECURSE
  "libmars_workload.a"
)
