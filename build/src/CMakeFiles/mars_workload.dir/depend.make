# Empty dependencies file for mars_workload.
# This may be replaced when dependencies are built.
