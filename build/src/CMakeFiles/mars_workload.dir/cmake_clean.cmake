file(REMOVE_RECURSE
  "CMakeFiles/mars_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/mars_workload.dir/workload/trace.cpp.o.d"
  "CMakeFiles/mars_workload.dir/workload/traffic_gen.cpp.o"
  "CMakeFiles/mars_workload.dir/workload/traffic_gen.cpp.o.d"
  "libmars_workload.a"
  "libmars_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
