file(REMOVE_RECURSE
  "CMakeFiles/mars_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/mars_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/mars_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/mars_sim.dir/sim/simulator.cpp.o.d"
  "libmars_sim.a"
  "libmars_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
