# Empty compiler generated dependencies file for mars_sim.
# This may be replaced when dependencies are built.
