# Empty compiler generated dependencies file for mars_baselines.
# This may be replaced when dependencies are built.
