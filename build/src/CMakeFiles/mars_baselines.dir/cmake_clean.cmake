file(REMOVE_RECURSE
  "CMakeFiles/mars_baselines.dir/baselines/intsight.cpp.o"
  "CMakeFiles/mars_baselines.dir/baselines/intsight.cpp.o.d"
  "CMakeFiles/mars_baselines.dir/baselines/spidermon.cpp.o"
  "CMakeFiles/mars_baselines.dir/baselines/spidermon.cpp.o.d"
  "CMakeFiles/mars_baselines.dir/baselines/syndb.cpp.o"
  "CMakeFiles/mars_baselines.dir/baselines/syndb.cpp.o.d"
  "libmars_baselines.a"
  "libmars_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
