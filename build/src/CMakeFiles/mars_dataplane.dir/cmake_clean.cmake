file(REMOVE_RECURSE
  "CMakeFiles/mars_dataplane.dir/dataplane/mars_pipeline.cpp.o"
  "CMakeFiles/mars_dataplane.dir/dataplane/mars_pipeline.cpp.o.d"
  "libmars_dataplane.a"
  "libmars_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
