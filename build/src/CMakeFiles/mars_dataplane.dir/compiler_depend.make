# Empty compiler generated dependencies file for mars_dataplane.
# This may be replaced when dependencies are built.
