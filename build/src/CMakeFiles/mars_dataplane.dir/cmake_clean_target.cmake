file(REMOVE_RECURSE
  "libmars_dataplane.a"
)
