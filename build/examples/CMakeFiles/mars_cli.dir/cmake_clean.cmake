file(REMOVE_RECURSE
  "CMakeFiles/mars_cli.dir/mars_cli.cpp.o"
  "CMakeFiles/mars_cli.dir/mars_cli.cpp.o.d"
  "mars_cli"
  "mars_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mars_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
