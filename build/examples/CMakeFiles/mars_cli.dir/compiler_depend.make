# Empty compiler generated dependencies file for mars_cli.
# This may be replaced when dependencies are built.
