file(REMOVE_RECURSE
  "CMakeFiles/diagnosis_dump.dir/diagnosis_dump.cpp.o"
  "CMakeFiles/diagnosis_dump.dir/diagnosis_dump.cpp.o.d"
  "diagnosis_dump"
  "diagnosis_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnosis_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
