
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/diagnosis_dump.cpp" "examples/CMakeFiles/diagnosis_dump.dir/diagnosis_dump.cpp.o" "gcc" "examples/CMakeFiles/diagnosis_dump.dir/diagnosis_dump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mars_system.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_rca.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mars_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
