# Empty dependencies file for diagnosis_dump.
# This may be replaced when dependencies are built.
