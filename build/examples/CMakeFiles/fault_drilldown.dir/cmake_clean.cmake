file(REMOVE_RECURSE
  "CMakeFiles/fault_drilldown.dir/fault_drilldown.cpp.o"
  "CMakeFiles/fault_drilldown.dir/fault_drilldown.cpp.o.d"
  "fault_drilldown"
  "fault_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
