# Empty compiler generated dependencies file for fault_drilldown.
# This may be replaced when dependencies are built.
