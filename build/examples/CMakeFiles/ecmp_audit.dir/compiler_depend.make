# Empty compiler generated dependencies file for ecmp_audit.
# This may be replaced when dependencies are built.
