file(REMOVE_RECURSE
  "CMakeFiles/ecmp_audit.dir/ecmp_audit.cpp.o"
  "CMakeFiles/ecmp_audit.dir/ecmp_audit.cpp.o.d"
  "ecmp_audit"
  "ecmp_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecmp_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
