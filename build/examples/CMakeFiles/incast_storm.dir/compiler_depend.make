# Empty compiler generated dependencies file for incast_storm.
# This may be replaced when dependencies are built.
