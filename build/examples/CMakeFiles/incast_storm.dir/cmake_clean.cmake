file(REMOVE_RECURSE
  "CMakeFiles/incast_storm.dir/incast_storm.cpp.o"
  "CMakeFiles/incast_storm.dir/incast_storm.cpp.o.d"
  "incast_storm"
  "incast_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
