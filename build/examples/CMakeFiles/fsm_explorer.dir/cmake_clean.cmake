file(REMOVE_RECURSE
  "CMakeFiles/fsm_explorer.dir/fsm_explorer.cpp.o"
  "CMakeFiles/fsm_explorer.dir/fsm_explorer.cpp.o.d"
  "fsm_explorer"
  "fsm_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
