# Empty compiler generated dependencies file for fsm_explorer.
# This may be replaced when dependencies are built.
