// Fig. 8 — anomaly-detection precision/recall/F1 across detectors:
// static thresholds (low/high), the reservoir without the penalty factor,
// and full MARS (reservoir + penalty). The paper reports ~0.96 recall /
// 0.97 precision / 0.97 F1 for the dynamic threshold; the ablation loses
// recall without α because anomaly bursts inflate the threshold.
//
// Extra ablation columns: the literal Algorithm 1 penalty variant and the
// σ-vs-MAD scale estimator (see detect/reservoir.hpp for why MAD).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "detect/reservoir.hpp"
#include "metrics/classification.hpp"
#include "util/rng.hpp"

namespace {

using namespace mars;

struct Sample {
  double latency_us;
  bool anomaly;
};

/// A long labelled latency stream: diurnal base + jitter + recurring
/// anomaly bursts of varying magnitude and length.
std::vector<Sample> make_stream(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> stream;
  const int n = 20'000;
  int burst_left = 0;
  double burst_scale = 1.0;
  for (int i = 0; i < n; ++i) {
    const double phase = static_cast<double>(i) / 4000.0;
    const double base =
        1000.0 + 500.0 * std::sin(phase * 2.0 * std::numbers::pi);
    if (burst_left == 0 && rng.chance(0.002)) {
      burst_left = static_cast<int>(10 + rng.below(200));
      burst_scale = rng.uniform(2.2, 5.0);
    }
    Sample s;
    if (burst_left > 0) {
      --burst_left;
      s.latency_us = base * burst_scale * rng.uniform(0.9, 1.1);
      s.anomaly = true;
    } else {
      s.latency_us = base * rng.uniform(0.88, 1.18);
      s.anomaly = false;
    }
    stream.push_back(s);
  }
  return stream;
}

metrics::BinaryCounts run_static(const std::vector<Sample>& stream,
                                 double threshold) {
  metrics::BinaryCounts counts;
  const detect::StaticThresholdDetector detector(threshold);
  for (const auto& s : stream) {
    counts.add(detector.input(s.latency_us), s.anomaly);
  }
  return counts;
}

metrics::BinaryCounts run_reservoir(const std::vector<Sample>& stream,
                                    detect::PenaltyMode penalty,
                                    detect::ScaleEstimator scale) {
  detect::ReservoirConfig cfg;
  // Small enough to track the diurnal baseline, large enough for a stable
  // median.
  cfg.volume = 96;
  cfg.warmup = 64;
  cfg.relative_margin = 0.3;
  cfg.penalty = penalty;
  cfg.scale = scale;
  detect::Reservoir reservoir(cfg, 99);
  metrics::BinaryCounts counts;
  std::size_t i = 0;
  for (const auto& s : stream) {
    const bool flagged = reservoir.input(s.latency_us);
    if (++i > cfg.warmup) counts.add(flagged, s.anomaly);
  }
  return counts;
}

void print_row(const char* name, const metrics::BinaryCounts& c) {
  std::printf("  %-26s | %9.3f | %6.3f | %6.3f\n", name, c.precision(),
              c.recall(), c.f1());
}

void BM_ReservoirThroughput(benchmark::State& state) {
  const auto stream = make_stream(5);
  for (auto _ : state) {
    detect::Reservoir reservoir({.volume = 256});
    for (const auto& s : stream) {
      benchmark::DoNotOptimize(reservoir.input(s.latency_us));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ReservoirThroughput);

}  // namespace

int main(int argc, char** argv) {
  const auto stream = make_stream(5);
  std::printf("== Fig. 8: anomaly-detection quality by detector ==\n");
  std::printf("(paper: dynamic threshold reaches 0.97 precision / 0.96 "
              "recall / 0.97 F1; static thresholds trade one for the "
              "other; no-penalty reservoirs lose recall)\n");
  std::printf("  detector                   | precision | recall | F1\n");
  print_row("static low (1.6ms)", run_static(stream, 1600));
  print_row("static high (3.5ms)", run_static(stream, 3500));
  // The paper's ablation uses θ = m + Cσ: without the penalty factor,
  // admitted outliers inflate σ and recall collapses.
  print_row("no penalty, sigma (ablation)",
            run_reservoir(stream, detect::PenaltyMode::kNone,
                          detect::ScaleEstimator::kStdDev));
  print_row("penalty, sigma (paper MARS)",
            run_reservoir(stream, detect::PenaltyMode::kConsecutiveOutliers,
                          detect::ScaleEstimator::kStdDev));
  print_row("Alg.1-as-printed, sigma",
            run_reservoir(stream, detect::PenaltyMode::kAsPrinted,
                          detect::ScaleEstimator::kStdDev));
  // Our refinement: MAD is robust even without the penalty; together they
  // are near-perfect on this stream.
  print_row("no penalty, MAD",
            run_reservoir(stream, detect::PenaltyMode::kNone,
                          detect::ScaleEstimator::kMad));
  print_row("MARS here (penalty + MAD)",
            run_reservoir(stream, detect::PenaltyMode::kConsecutiveOutliers,
                          detect::ScaleEstimator::kMad));
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
