// Fig. 8 — anomaly-detection precision/recall/F1 across detectors:
// static thresholds (low/high), the reservoir without the penalty factor,
// and full MARS (reservoir + penalty). The paper reports ~0.96 recall /
// 0.97 precision / 0.97 F1 for the dynamic threshold; the ablation loses
// recall without α because anomaly bursts inflate the threshold.
//
// Extra ablation columns: the literal Algorithm 1 penalty variant and the
// σ-vs-MAD scale estimator (see detect/reservoir.hpp for why MAD).
//
// Confusion counts accumulate on a MetricsRegistry ({detector}.tp/.fp/
// .fn/.tn counters) and PRF is computed from one snapshot at the end; the
// stream's latency distribution is recorded into a log-linear histogram
// whose quantiles are printed alongside.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <numbers>
#include <string>
#include <vector>

#include "detect/reservoir.hpp"
#include "metrics/classification.hpp"
#include "obs/registry.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace mars;

struct Sample {
  double latency_us;
  bool anomaly;
};

/// A long labelled latency stream: diurnal base + jitter + recurring
/// anomaly bursts of varying magnitude and length.
std::vector<Sample> make_stream(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sample> stream;
  const int n = 20'000;
  int burst_left = 0;
  double burst_scale = 1.0;
  for (int i = 0; i < n; ++i) {
    const double phase = static_cast<double>(i) / 4000.0;
    const double base =
        1000.0 + 500.0 * std::sin(phase * 2.0 * std::numbers::pi);
    if (burst_left == 0 && rng.chance(0.002)) {
      burst_left = static_cast<int>(10 + rng.below(200));
      burst_scale = rng.uniform(2.2, 5.0);
    }
    Sample s;
    if (burst_left > 0) {
      --burst_left;
      s.latency_us = base * burst_scale * rng.uniform(0.9, 1.1);
      s.anomaly = true;
    } else {
      s.latency_us = base * rng.uniform(0.88, 1.18);
      s.anomaly = false;
    }
    stream.push_back(s);
  }
  return stream;
}

/// Per-detector confusion counters on the shared registry.
struct ConfusionCells {
  obs::Counter* tp;
  obs::Counter* fp;
  obs::Counter* tn;
  obs::Counter* fn;

  ConfusionCells(obs::MetricsRegistry& registry, const std::string& name)
      : tp(&registry.counter(name + ".tp")),
        fp(&registry.counter(name + ".fp")),
        tn(&registry.counter(name + ".tn")),
        fn(&registry.counter(name + ".fn")) {}

  void add(bool predicted, bool actual) {
    if (predicted && actual) tp->inc();
    if (predicted && !actual) fp->inc();
    if (!predicted && !actual) tn->inc();
    if (!predicted && actual) fn->inc();
  }
};

void run_static(const std::vector<Sample>& stream, double threshold,
                obs::MetricsRegistry& registry, const std::string& name) {
  ConfusionCells cells(registry, name);
  const detect::StaticThresholdDetector detector(threshold);
  for (const auto& s : stream) {
    cells.add(detector.input(s.latency_us), s.anomaly);
  }
}

void run_reservoir(const std::vector<Sample>& stream,
                   detect::PenaltyMode penalty, detect::ScaleEstimator scale,
                   obs::MetricsRegistry& registry, const std::string& name) {
  detect::ReservoirConfig cfg;
  // Small enough to track the diurnal baseline, large enough for a stable
  // median.
  cfg.volume = 96;
  cfg.warmup = 64;
  cfg.relative_margin = 0.3;
  cfg.penalty = penalty;
  cfg.scale = scale;
  detect::Reservoir reservoir(cfg, 99);
  ConfusionCells cells(registry, name);
  std::size_t i = 0;
  for (const auto& s : stream) {
    const bool flagged = reservoir.input(s.latency_us);
    if (++i > cfg.warmup) cells.add(flagged, s.anomaly);
  }
}

void print_row(const obs::MetricsSnapshot& snap, const char* label,
               const std::string& name) {
  metrics::BinaryCounts c;
  c.tp = snap.counter_or(name + ".tp", 0);
  c.fp = snap.counter_or(name + ".fp", 0);
  c.tn = snap.counter_or(name + ".tn", 0);
  c.fn = snap.counter_or(name + ".fn", 0);
  std::printf("  %-26s | %9.3f | %6.3f | %6.3f\n", label, c.precision(),
              c.recall(), c.f1());
}

void BM_ReservoirThroughput(benchmark::State& state) {
  const auto stream = make_stream(5);
  for (auto _ : state) {
    detect::Reservoir reservoir({.volume = 256});
    for (const auto& s : stream) {
      benchmark::DoNotOptimize(reservoir.input(s.latency_us));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ReservoirThroughput);

}  // namespace

int main(int argc, char** argv) {
  const auto stream = make_stream(5);

  obs::MetricsRegistry registry;
  obs::LogHistogram& latency_hist = registry.histogram("stream.latency_us");
  for (const auto& s : stream) {
    latency_hist.record(static_cast<std::uint64_t>(s.latency_us));
  }

  run_static(stream, 1600, registry, "static_low");
  run_static(stream, 3500, registry, "static_high");
  // The paper's ablation uses θ = m + Cσ: without the penalty factor,
  // admitted outliers inflate σ and recall collapses.
  run_reservoir(stream, detect::PenaltyMode::kNone,
                detect::ScaleEstimator::kStdDev, registry, "nopen_sigma");
  run_reservoir(stream, detect::PenaltyMode::kConsecutiveOutliers,
                detect::ScaleEstimator::kStdDev, registry, "pen_sigma");
  run_reservoir(stream, detect::PenaltyMode::kAsPrinted,
                detect::ScaleEstimator::kStdDev, registry, "asprinted_sigma");
  // Our refinement: MAD is robust even without the penalty; together they
  // are near-perfect on this stream.
  run_reservoir(stream, detect::PenaltyMode::kNone,
                detect::ScaleEstimator::kMad, registry, "nopen_mad");
  run_reservoir(stream, detect::PenaltyMode::kConsecutiveOutliers,
                detect::ScaleEstimator::kMad, registry, "pen_mad");

  const auto snap = registry.snapshot();

  std::printf("== Fig. 8: anomaly-detection quality by detector ==\n");
  std::printf("(paper: dynamic threshold reaches 0.97 precision / 0.96 "
              "recall / 0.97 F1; static thresholds trade one for the "
              "other; no-penalty reservoirs lose recall)\n");
  std::printf("  stream latency (us): p50=%llu p90=%llu p99=%llu max=%llu\n",
              static_cast<unsigned long long>(latency_hist.quantile(0.5)),
              static_cast<unsigned long long>(latency_hist.quantile(0.9)),
              static_cast<unsigned long long>(latency_hist.quantile(0.99)),
              static_cast<unsigned long long>(latency_hist.max()));
  std::printf("  detector                   | precision | recall | F1\n");
  print_row(snap, "static low (1.6ms)", "static_low");
  print_row(snap, "static high (3.5ms)", "static_high");
  print_row(snap, "no penalty, sigma (ablation)", "nopen_sigma");
  print_row(snap, "penalty, sigma (paper MARS)", "pen_sigma");
  print_row(snap, "Alg.1-as-printed, sigma", "asprinted_sigma");
  print_row(snap, "no penalty, MAD", "nopen_mad");
  print_row(snap, "MARS here (penalty + MAD)", "pen_mad");
  std::printf("\n");

  // Pool the confusion matrices over independently seeded streams (run in
  // parallel) so the ranking is not an artifact of one burst pattern.
  constexpr std::size_t kStreams = 6;
  parallel::ThreadPool pool;
  const auto snapshots = parallel::parallel_map(
      pool, kStreams, [](std::size_t i) -> obs::MetricsSnapshot {
        const auto s = make_stream(5 + 11 * i);
        obs::MetricsRegistry reg;
        run_static(s, 1600, reg, "static_low");
        run_static(s, 3500, reg, "static_high");
        run_reservoir(s, detect::PenaltyMode::kNone,
                      detect::ScaleEstimator::kStdDev, reg, "nopen_sigma");
        run_reservoir(s, detect::PenaltyMode::kConsecutiveOutliers,
                      detect::ScaleEstimator::kStdDev, reg, "pen_sigma");
        run_reservoir(s, detect::PenaltyMode::kNone,
                      detect::ScaleEstimator::kMad, reg, "nopen_mad");
        run_reservoir(s, detect::PenaltyMode::kConsecutiveOutliers,
                      detect::ScaleEstimator::kMad, reg, "pen_mad");
        return reg.snapshot();
      });
  std::printf("  pooled over %zu seeded streams:\n", kStreams);
  std::printf("  detector                   | precision | recall | F1\n");
  const struct {
    const char* label;
    const char* name;
  } rows[] = {{"static low (1.6ms)", "static_low"},
              {"static high (3.5ms)", "static_high"},
              {"no penalty, sigma", "nopen_sigma"},
              {"penalty, sigma (paper MARS)", "pen_sigma"},
              {"no penalty, MAD", "nopen_mad"},
              {"MARS here (penalty + MAD)", "pen_mad"}};
  for (const auto& row : rows) {
    metrics::BinaryCounts c;
    for (const auto& stream_snap : snapshots) {
      c.tp += stream_snap.counter_or(std::string(row.name) + ".tp", 0);
      c.fp += stream_snap.counter_or(std::string(row.name) + ".fp", 0);
      c.tn += stream_snap.counter_or(std::string(row.name) + ".tn", 0);
      c.fn += stream_snap.counter_or(std::string(row.name) + ".fn", 0);
    }
    std::printf("  %-26s | %9.3f | %6.3f | %6.3f\n", row.label,
                c.precision(), c.recall(), c.f1());
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
