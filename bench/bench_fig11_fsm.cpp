// Fig. 11 — FSM algorithm comparison on MARS-style abnormal sets.
//
// The paper benchmarks PrefixSpan, LAPIN, GSP, SPADE, SPAM, CM-SPADE and
// CM-SPAM on the path databases produced by its fault scenarios, with max
// pattern length 2 (MARS's switches + links) and unrestricted, reporting
// runtime and memory. PrefixSpan wins there; the shape to check here is
// the same ordering and the benefit of the max-length cap.
//
// A second section, Fig11Scaling/*, mines one large abnormal set (fat-tree
// paths plus long random walks, up to ~96 hops to exercise the multi-word
// bitmaps) under 1/2/4/8 engine threads — the parallel-speedup numbers
// recorded in BENCH_fsm_mining.json come from these benchmarks.

#include <benchmark/benchmark.h>

#include "fsm/miner.hpp"
#include "net/fat_tree.hpp"
#include "net/routing.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace mars;

/// An abnormal-set-like database: fat-tree paths with traffic-estimation
/// weights, biased so paths through a "faulty" switch dominate — the shape
/// the RCA hands to the miners.
fsm::SequenceDatabase make_path_database(int k, std::size_t weight_scale,
                                         std::uint64_t seed) {
  const auto ft = net::build_fat_tree({.k = k});
  const net::RoutingTable routing(ft.topology);
  const auto paths = routing.enumerate_edge_paths();
  util::Rng rng(seed);
  const net::SwitchId faulty =
      ft.agg[rng.below(ft.agg.size())];
  fsm::SequenceDatabase db;
  for (const auto& path : paths) {
    const bool through_fault =
        std::find(path.begin(), path.end(), faulty) != path.end();
    // Estimated packets per path: faulty paths are heavily represented.
    const std::uint64_t weight =
        (through_fault ? 20 : 1) * (1 + rng.below(weight_scale));
    db.add(fsm::Sequence(path.begin(), path.end()), weight);
  }
  return db;
}

/// The scaling workload: the k=8 database above plus long random walks
/// over the switch id space (up to ~96 hops), so root-level DFS tasks are
/// fat enough to amortise fan-out and the SPAM family runs multi-word.
fsm::SequenceDatabase make_scaling_database(std::uint64_t seed) {
  fsm::SequenceDatabase db = make_path_database(8, 4, seed);
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (int w = 0; w < 400; ++w) {
    const std::size_t len = 24 + rng.below(73);  // 24..96 hops
    fsm::Sequence walk;
    walk.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      walk.push_back(static_cast<fsm::Item>(rng.below(80)));
    }
    db.add(std::move(walk), 1 + rng.below(4));
  }
  return db;
}

void run_miner(benchmark::State& state, fsm::MinerKind kind,
               std::size_t max_length) {
  const auto db = make_path_database(8, 4, 42);
  const auto miner = fsm::make_miner(kind);
  fsm::MiningParams params;
  params.min_support_rel = 0.1;
  params.max_length = max_length;
  params.contiguous = true;

  fsm::MiningStats stats;
  for (auto _ : state) {
    auto result = miner->mine_with_stats(db, params);
    stats = result.stats;
    benchmark::DoNotOptimize(result);
  }
  state.counters["patterns"] = static_cast<double>(stats.patterns);
  state.counters["mem_bytes"] = static_cast<double>(stats.peak_bytes);
  state.counters["nodes"] = static_cast<double>(stats.nodes_expanded);
  state.counters["sequences"] = static_cast<double>(db.sequence_kinds());
}

void run_scaling(benchmark::State& state, fsm::MinerKind kind,
                 std::uint32_t threads) {
  const auto db = make_scaling_database(42);
  const auto miner = fsm::make_miner(kind);
  fsm::MiningParams params;
  params.min_support_rel = 0.05;
  params.max_length = 4;
  params.contiguous = true;
  params.threads = threads;

  // One pool for the whole benchmark, as the analyzer would hold one; a
  // per-iteration pool would bill thread start-up to the miner.
  parallel::ThreadPool pool(threads);
  fsm::MiningStats stats;
  for (auto _ : state) {
    auto result = miner->mine_with_stats(db, params, &pool);
    stats = result.stats;
    benchmark::DoNotOptimize(result);
  }
  state.counters["patterns"] = static_cast<double>(stats.patterns);
  state.counters["mem_bytes"] = static_cast<double>(stats.peak_bytes);
  state.counters["nodes"] = static_cast<double>(stats.nodes_expanded);
  state.counters["threads"] = static_cast<double>(stats.threads_used);
}

void register_all() {
  for (const auto kind : fsm::all_miner_kinds()) {
    for (const std::size_t max_len : {std::size_t{2}, std::size_t{16}}) {
      const std::string name =
          std::string("Fig11/") + std::string(fsm::miner_name(kind)) +
          (max_len == 2 ? "/maxlen2" : "/unbounded");
      benchmark::RegisterBenchmark(
          name.c_str(), [kind, max_len](benchmark::State& state) {
            run_miner(state, kind, max_len);
          });
    }
  }
  for (const auto kind :
       {fsm::MinerKind::kPrefixSpan, fsm::MinerKind::kSpam,
        fsm::MinerKind::kCmSpade}) {
    for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
      const std::string name = std::string("Fig11Scaling/") +
                               std::string(fsm::miner_name(kind)) +
                               "/threads" + std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(), [kind, threads](benchmark::State& state) {
            run_scaling(state, kind, threads);
          });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
