// Fig. 11 — FSM algorithm comparison on MARS-style abnormal sets.
//
// The paper benchmarks PrefixSpan, LAPIN, GSP, SPADE, SPAM, CM-SPADE and
// CM-SPAM on the path databases produced by its fault scenarios, with max
// pattern length 2 (MARS's switches + links) and unrestricted, reporting
// runtime and memory. PrefixSpan wins there; the shape to check here is
// the same ordering and the benefit of the max-length cap.

#include <benchmark/benchmark.h>

#include "fsm/miner.hpp"
#include "net/fat_tree.hpp"
#include "net/routing.hpp"
#include "util/rng.hpp"

namespace {

using namespace mars;

/// An abnormal-set-like database: fat-tree paths with traffic-estimation
/// weights, biased so paths through a "faulty" switch dominate — the shape
/// the RCA hands to the miners.
fsm::SequenceDatabase make_path_database(int k, std::size_t weight_scale,
                                         std::uint64_t seed) {
  const auto ft = net::build_fat_tree({.k = k});
  const net::RoutingTable routing(ft.topology);
  const auto paths = routing.enumerate_edge_paths();
  util::Rng rng(seed);
  const net::SwitchId faulty =
      ft.agg[rng.below(ft.agg.size())];
  fsm::SequenceDatabase db;
  for (const auto& path : paths) {
    const bool through_fault =
        std::find(path.begin(), path.end(), faulty) != path.end();
    // Estimated packets per path: faulty paths are heavily represented.
    const std::uint64_t weight =
        (through_fault ? 20 : 1) * (1 + rng.below(weight_scale));
    db.add(fsm::Sequence(path.begin(), path.end()), weight);
  }
  return db;
}

void run_miner(benchmark::State& state, fsm::MinerKind kind,
               std::size_t max_length) {
  const auto db = make_path_database(8, 4, 42);
  const auto miner = fsm::make_miner(kind);
  fsm::MiningParams params;
  params.min_support_rel = 0.1;
  params.max_length = max_length;
  params.contiguous = true;

  std::size_t patterns = 0;
  std::size_t memory = 0;
  for (auto _ : state) {
    auto result = miner->mine(db, params);
    patterns = result.size();
    memory = miner->last_memory_bytes();
    benchmark::DoNotOptimize(result);
  }
  state.counters["patterns"] = static_cast<double>(patterns);
  state.counters["mem_bytes"] = static_cast<double>(memory);
  state.counters["sequences"] = static_cast<double>(db.sequence_kinds());
}

void register_all() {
  for (const auto kind : fsm::all_miner_kinds()) {
    for (const std::size_t max_len : {std::size_t{2}, std::size_t{16}}) {
      const std::string name =
          std::string("Fig11/") + std::string(fsm::miner_name(kind)) +
          (max_len == 2 ? "/maxlen2" : "/unbounded");
      benchmark::RegisterBenchmark(
          name.c_str(), [kind, max_len](benchmark::State& state) {
            run_miner(state, kind, max_len);
          });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
