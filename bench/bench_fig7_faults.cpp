// Fig. 7 — what the injected faults look like from the network:
//   (a) a micro-burst drives a transient latency spike;
//   (b) an ECMP imbalance splits the throughput of the two uplinks of the
//       skewed switch and raises the loaded branch's latency.
// We run the scenario substrate MARS-free and print the raw time series.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "faults/injector.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/traffic_gen.hpp"

namespace {

using namespace mars;
using namespace mars::sim::literals;

struct Substrate {
  sim::Simulator simulator;
  net::FatTree ft = net::build_fat_tree(
      {.k = 4, .edge_agg_gbps = 0.007, .agg_core_gbps = 0.010});
  net::Network network{simulator, ft.topology};
  workload::TrafficGenerator traffic{network, 3};

  Substrate() {
    for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
      network.node(sw).set_queue_capacity(4096);
    }
    workload::BackgroundConfig cfg;
    cfg.flows = 40;
    cfg.pps = 250;
    traffic.add_background(cfg, ft.edge, 4);
  }
};

void fig7a() {
  std::printf("== Fig. 7(a): latency under a micro-burst (fault at 2.0s, "
              "1s long, >2000 pps) ==\n");
  Substrate s;
  std::map<int, std::vector<double>> latency;  // per-100ms bucket
  s.network.set_delivery_callback([&](const net::Packet& p, sim::Time t) {
    latency[static_cast<int>(t / 100_ms)].push_back(
        sim::to_millis(t - p.created));
  });
  faults::FaultInjector injector(s.network, s.traffic, 0xFA17);
  s.traffic.start();
  injector.inject(faults::FaultKind::kMicroBurst, 2_s);
  s.simulator.run(4_s);

  std::printf("  t(s) | p50 latency ms | p99 latency ms\n");
  for (const auto& [bucket, values] : latency) {
    if (bucket % 2) continue;  // print every 200ms
    std::printf("  %4.1f | %14.2f | %14.2f\n", bucket / 10.0,
                util::quantile(values, 0.5), util::quantile(values, 0.99));
  }
}

void fig7b() {
  std::printf("\n== Fig. 7(b): ECMP imbalance at one edge switch (weights "
              "1:1 -> 1:9 at 2.0s for 1s) ==\n");
  Substrate s;
  const net::SwitchId chooser = s.ft.edge[0];

  // Per-bucket p99 latency of flows SOURCED at the chooser.
  std::map<int, std::vector<double>> latency;
  s.network.set_delivery_callback([&](const net::Packet& p, sim::Time t) {
    if (p.flow.source != chooser) return;
    latency[static_cast<int>(t / 100_ms)].push_back(
        sim::to_millis(t - p.created));
  });

  // Sample the chooser's two uplink counters every 100ms.
  struct Snapshot {
    std::uint64_t port0 = 0, port1 = 0;
  };
  std::map<int, Snapshot> tx;
  for (int bucket = 0; bucket <= 40; ++bucket) {
    s.simulator.schedule_at(bucket * 100_ms, [&, bucket] {
      tx[bucket] = {s.network.node(chooser).counters(0).tx_packets,
                    s.network.node(chooser).counters(1).tx_packets};
    });
  }

  // Apply and lift the skew directly (deterministic chooser).
  s.simulator.schedule_at(2_s, [&] {
    for (net::SwitchId dst = 0; dst < s.network.switch_count(); ++dst) {
      auto& group = s.network.routing().mutable_group(chooser, dst);
      if (group.members.size() == 2) group.members[1].weight = 9;
    }
  });
  s.simulator.schedule_at(3_s, [&] {
    for (net::SwitchId dst = 0; dst < s.network.switch_count(); ++dst) {
      for (auto& m : s.network.routing().mutable_group(chooser, dst).members) {
        m.weight = 1;
      }
    }
  });

  s.traffic.start();
  s.simulator.run(4_s);

  std::printf("  t(s) | uplink0 pps | uplink1 pps | p99 latency ms (flows "
              "from the chooser)\n");
  for (int bucket = 2; bucket <= 40; bucket += 2) {
    if (!tx.count(bucket) || !tx.count(bucket - 2)) continue;
    const double pps0 =
        static_cast<double>(tx[bucket].port0 - tx[bucket - 2].port0) / 0.2;
    const double pps1 =
        static_cast<double>(tx[bucket].port1 - tx[bucket - 2].port1) / 0.2;
    const auto& lat = latency[bucket - 1];
    std::printf("  %4.1f | %11.0f | %11.0f | %10.2f\n", bucket / 10.0, pps0,
                pps1, util::quantile(lat, 0.99));
  }
}

void BM_FaultScenarioRun(benchmark::State& state) {
  for (auto _ : state) {
    Substrate s;
    faults::FaultInjector injector(s.network, s.traffic, 0xFA17);
    s.traffic.start();
    injector.inject(faults::FaultKind::kMicroBurst, 2_s);
    s.simulator.run(4_s);
    benchmark::DoNotOptimize(s.network.stats().delivered);
  }
}
BENCHMARK(BM_FaultScenarioRun)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  fig7a();
  fig7b();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
