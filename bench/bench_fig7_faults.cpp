// Fig. 7 — what the injected faults look like from the network:
//   (a) a micro-burst drives a transient latency spike;
//   (b) an ECMP imbalance splits the throughput of the two uplinks of the
//       skewed switch and raises the loaded branch's latency.
// We run the scenario substrate MARS-free and print the raw time series.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "obs/net_scrape.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/traffic_gen.hpp"

namespace {

using namespace mars;
using namespace mars::sim::literals;

struct Substrate {
  sim::Simulator simulator;
  net::FatTree ft = net::build_fat_tree(
      {.k = 4, .edge_agg_gbps = 0.007, .agg_core_gbps = 0.010});
  net::Network network{simulator, ft.topology};
  workload::TrafficGenerator traffic{network, 3};

  Substrate() {
    for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
      network.node(sw).set_queue_capacity(4096);
    }
    workload::BackgroundConfig cfg;
    cfg.flows = 40;
    cfg.pps = 250;
    traffic.add_background(cfg, ft.edge, 4);
  }
};

void fig7a() {
  std::printf("== Fig. 7(a): latency under a micro-burst (fault at 2.0s, "
              "1s long, >2000 pps) ==\n");
  Substrate s;
  std::map<int, std::vector<double>> latency;  // per-100ms bucket
  s.network.set_delivery_callback([&](const net::Packet& p, sim::Time t) {
    latency[static_cast<int>(t / 100_ms)].push_back(
        sim::to_millis(t - p.created));
  });
  faults::FaultInjector injector(s.network, s.traffic, 0xFA17);
  s.traffic.start();
  injector.inject(faults::FaultKind::kMicroBurst, 2_s);
  s.simulator.run(4_s);

  std::printf("  t(s) | p50 latency ms | p99 latency ms\n");
  for (const auto& [bucket, values] : latency) {
    if (bucket % 2) continue;  // print every 200ms
    std::printf("  %4.1f | %14.2f | %14.2f\n", bucket / 10.0,
                util::quantile(values, 0.5), util::quantile(values, 0.99));
  }
}

void fig7b() {
  std::printf("\n== Fig. 7(b): ECMP imbalance at one edge switch (weights "
              "1:1 -> 1:9 at 2.0s for 1s) ==\n");
  Substrate s;
  const net::SwitchId chooser = s.ft.edge[0];

  // Per-bucket p99 latency of flows SOURCED at the chooser.
  std::map<int, std::vector<double>> latency;
  s.network.set_delivery_callback([&](const net::Packet& p, sim::Time t) {
    if (p.flow.source != chooser) return;
    latency[static_cast<int>(t / 100_ms)].push_back(
        sim::to_millis(t - p.created));
  });

  // Sample the chooser's uplink tx counters every 100ms via the
  // observability layer: scrape_network exports them as lazy gauges and
  // the epoch-aligned Sampler turns them into a joined time series.
  obs::MetricsRegistry registry;
  obs::scrape_network(s.network, registry,
                      {.per_port = true, .link_utilization = false,
                       .totals = false});
  obs::SeriesStore series;
  obs::Sampler sampler(s.simulator, registry, series,
                       {.period = 100_ms, .until = 4_s});
  sampler.start();

  // Apply and lift the skew through the injector's fault schedule: a
  // pinned-target ECMP event with a 1:9 ratio (imbalance range collapsed
  // to 9) reproduces the hand-rolled weight rewrite deterministically.
  faults::InjectorConfig icfg;
  icfg.imbalance_min = 9;
  icfg.imbalance_max = 9;
  faults::FaultInjector injector(s.network, s.traffic, 0xFA17, icfg);
  faults::FaultEvent skew;
  skew.kind = faults::FaultKind::kEcmpImbalance;
  skew.at = 2_s;
  skew.duration = 1_s;
  skew.target_switch = chooser;
  faults::FaultSchedule schedule;
  schedule.add(skew);
  injector.apply(schedule);

  s.traffic.start();
  s.simulator.run(4_s);
  registry.remove_gauges();

  const std::string sw_prefix = "net.sw" + std::to_string(chooser) + ".";
  const std::vector<double>* tx0 = series.column(sw_prefix + "p0.tx_packets");
  const std::vector<double>* tx1 = series.column(sw_prefix + "p1.tx_packets");

  std::printf("  t(s) | uplink0 pps | uplink1 pps | p99 latency ms (flows "
              "from the chooser)\n");
  for (std::size_t bucket = 2; bucket <= 40; bucket += 2) {
    if (tx0 == nullptr || tx1 == nullptr || bucket >= tx0->size()) continue;
    const double pps0 = ((*tx0)[bucket] - (*tx0)[bucket - 2]) / 0.2;
    const double pps1 = ((*tx1)[bucket] - (*tx1)[bucket - 2]) / 0.2;
    const auto& lat = latency[static_cast<int>(bucket) - 1];
    std::printf("  %4.1f | %11.0f | %11.0f | %10.2f\n",
                static_cast<double>(bucket) / 10.0, pps0, pps1,
                util::quantile(lat, 0.99));
  }
}

void BM_FaultScenarioRun(benchmark::State& state) {
  for (auto _ : state) {
    Substrate s;
    faults::FaultInjector injector(s.network, s.traffic, 0xFA17);
    s.traffic.start();
    injector.inject(faults::FaultKind::kMicroBurst, 2_s);
    s.simulator.run(4_s);
    benchmark::DoNotOptimize(s.network.stats().delivered);
  }
}
BENCHMARK(BM_FaultScenarioRun)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  fig7a();
  fig7b();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
