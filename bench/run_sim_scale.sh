#!/usr/bin/env bash
# Re-measure the sharded-simulation scale curves and refresh the `current`
# section of BENCH_sim_scale.json. The `reference_scaling_8core` section is
# the recorded multi-core run (see the file's `method` note) and is
# preserved across refreshes so the speedup claims stay anchored: on a
# single-core container the multi-shard rows are flat-to-slower by
# construction — the window barrier buys nothing without cores to spend.
#
# Usage: bench/run_sim_scale.sh [output.json]
#   BUILD_DIR overrides the build directory (default: <repo>/build).
#   SCALE_FLOWS / SCALE_DURATION_MS shrink the run (CI smoke uses tiny
#   values; recorded curves use the defaults: 100k flows, 300 ms).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-$repo_root/build}
out=${1:-$repo_root/BENCH_sim_scale.json}
bench_bin=$build_dir/bench/bench_sim_scale
flows=${SCALE_FLOWS:-100000}
duration_ms=${SCALE_DURATION_MS:-300}

if [[ ! -x $bench_bin ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir --target bench_sim_scale)" >&2
  exit 1
fi

raw16=$(mktemp) raw32=$(mktemp)
trap 'rm -f "$raw16" "$raw32"' EXIT

"$bench_bin" --k 16 --flows "$flows" --pps 50 --duration-ms "$duration_ms" \
  --propagation-us 10 --shards 1,2,4,8 --out "$raw16"
"$bench_bin" --k 32 --flows "$flows" --pps 50 --duration-ms "$duration_ms" \
  --propagation-us 10 --shards 1,2,4,8 --out "$raw32"

python3 - "$raw16" "$raw32" "$out" "$repo_root/BENCH_sim_scale.json" <<'EOF'
import json
import sys

raw16, raw32, out_path, committed_path = sys.argv[1:5]

def profile(p):
    # Per-shard PDES profiler summary (see sim::ShardStats): window-end
    # attribution, cross-shard mailbox volume, per-shard occupancy.
    prof = p['profile']
    return {
        'window_caps': prof['window_caps'],
        'mailbox': {
            'drains': prof['mailbox']['drains'],
            'total_mail': prof['mailbox']['total_mail'],
            'max_batch': prof['mailbox']['max_batch'],
        },
        'shards': [
            {
                'busy_windows': s['busy_windows'],
                'busy_fraction': round(s['busy_fraction'], 4),
                'window_events': s['window_events'],
                'max_window_events': s['max_window_events'],
            }
            for s in prof['shards']
        ],
    }

def curve(path):
    doc = json.load(open(path))
    points = []
    base = doc['points'][0]['wall_ms']
    for p in doc['points']:
        points.append({
            'shards': p['shards'],
            'wall_ms': round(p['wall_ms'], 1),
            'events': p['events'],
            'events_per_sec': round(p['events_per_sec']),
            'windows': p['windows'],
            'lookahead_stalls': p['lookahead_stalls'],
            'speedup_vs_1_shard': round(base / p['wall_ms'], 2),
            'profile': profile(p),
        })
    return {'config': doc['config'], 'points': points}

# Merge into the output file if it exists; otherwise seed a new file from
# the committed record so the reference section carries over.
try:
    doc = json.load(open(out_path))
except FileNotFoundError:
    try:
        doc = json.load(open(committed_path))
    except FileNotFoundError:
        doc = {'benchmark': 'bench_sim_scale'}
doc['current'] = {'k16': curve(raw16), 'k32': curve(raw32)}

json.dump(doc, open(out_path, 'w'), indent=2)
print(f"wrote {out_path}")
EOF
