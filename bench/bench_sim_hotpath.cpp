// Hot-path throughput of the discrete-event substrate (events/sec and
// packets/sec) on a leaf-spine scenario, plus a steady-state heap
// allocation counter. Every MARS experiment replays millions of packets
// through this loop, so these numbers bound experiment scale.
//
// Run `bench/run_sim_hotpath.sh` to emit BENCH_sim_hotpath.json; the
// committed file tracks the trajectory across PRs (baseline vs current).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/leaf_spine.hpp"
#include "net/network.hpp"
#include "obs/net_scrape.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/traffic_gen.hpp"

// ---- Global allocation counter ------------------------------------------
// Replacing operator new binary-wide lets the benchmarks report heap
// allocations per simulated event. The interesting number is the
// steady-state delta (after warm-up), not the absolute count.

static std::atomic<std::uint64_t> g_alloc_count{0};

static std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace mars;

// ---- Raw event-queue churn ----------------------------------------------
// schedule + pop with small closures at pseudo-random times: the pattern
// every Switch/Network callback follows.

void BM_EventQueue_SchedulePop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(0x5EED);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < batch; ++i) {
      const auto t = static_cast<sim::Time>(rng.below(1'000'000));
      q.schedule(t, [&sink, i] { sink += i; });
    }
    while (!q.empty()) q.pop().second();
  }
  benchmark::DoNotOptimize(sink);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch),
      benchmark::Counter::kIsRate);
}

// Timer pattern: schedule then cancel most events before they fire — the
// path that exercised the tombstone sets in the old queue.
void BM_EventQueue_ScheduleCancel(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(0xCA4CE1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<std::uint64_t> ids;
    ids.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const auto t = static_cast<sim::Time>(rng.below(1'000'000));
      ids.push_back(q.schedule(t, [&sink, i] { sink += i; }));
    }
    // Cancel 7 of every 8 (timeouts that never fire), run the rest.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i % 8 != 0) q.cancel(ids[i]);
    }
    while (!q.empty()) q.pop().second();
  }
  benchmark::DoNotOptimize(sink);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch),
      benchmark::Counter::kIsRate);
}

// ---- Leaf-spine packet replay -------------------------------------------
// The end-to-end hot path: traffic generator -> inject -> switch service
// -> link forward -> deliver, measured in steady state after pools and
// arenas are warm.

void BM_LeafSpine_HotPath(benchmark::State& state) {
  sim::Simulator sim;
  auto fabric = net::build_leaf_spine(
      {.leaves = 8, .spines = 4, .leaf_spine_gbps = 10.0});
  net::Network network(sim, fabric.topology);

  workload::TrafficGenerator traffic(network, 42);
  workload::BackgroundConfig bg;
  bg.flows = 64;
  bg.pps = 50'000.0;  // keep ports busy: the queue, not the idle gaps
  traffic.add_background(bg, fabric.leaf, /*pods=*/1);
  traffic.start();

  // Warm-up: let queues, pools, and arenas reach steady state.
  sim.run(5 * sim::kMillisecond);

  const std::uint64_t events0 = sim.events_executed();
  const std::uint64_t packets0 = traffic.packets_injected();
  const std::uint64_t allocs0 = alloc_count();

  for (auto _ : state) {
    sim.run(sim.now() + sim::kMillisecond);
  }

  const auto events = static_cast<double>(sim.events_executed() - events0);
  const auto packets =
      static_cast<double>(traffic.packets_injected() - packets0);
  const auto allocs = static_cast<double>(alloc_count() - allocs0);
  state.counters["events_per_sec"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
  state.counters["packets_per_sec"] =
      benchmark::Counter(packets, benchmark::Counter::kIsRate);
  state.counters["allocs_per_event"] = events > 0 ? allocs / events : 0.0;
  state.counters["allocs_per_packet"] = packets > 0 ? allocs / packets : 0.0;
}

// Same replay with the observability layer compiled in and constructed but
// with nothing attached: a registry full of lazy gauges over every port
// counter (never sampled) and an idle SpanTracer. The "zero-overhead when
// disabled" guarantee means events_per_sec here must stay within a few
// percent of BM_LeafSpine_HotPath; bench/run_sim_hotpath.sh records the
// pairwise ratio as instrumented_unattached_ratio.
void BM_LeafSpine_HotPath_Instrumented(benchmark::State& state) {
  sim::Simulator sim;
  auto fabric = net::build_leaf_spine(
      {.leaves = 8, .spines = 4, .leaf_spine_gbps = 10.0});
  net::Network network(sim, fabric.topology);

  obs::MetricsRegistry registry;
  obs::scrape_network(network, registry);  // lazy gauges, never read
  obs::SpanTracer tracer;                  // constructed, never written
  benchmark::DoNotOptimize(&tracer);

  workload::TrafficGenerator traffic(network, 42);
  workload::BackgroundConfig bg;
  bg.flows = 64;
  bg.pps = 50'000.0;
  traffic.add_background(bg, fabric.leaf, /*pods=*/1);
  traffic.start();

  sim.run(5 * sim::kMillisecond);

  const std::uint64_t events0 = sim.events_executed();
  const std::uint64_t packets0 = traffic.packets_injected();
  const std::uint64_t allocs0 = alloc_count();

  for (auto _ : state) {
    sim.run(sim.now() + sim::kMillisecond);
  }

  const auto events = static_cast<double>(sim.events_executed() - events0);
  const auto packets =
      static_cast<double>(traffic.packets_injected() - packets0);
  const auto allocs = static_cast<double>(alloc_count() - allocs0);
  state.counters["events_per_sec"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
  state.counters["packets_per_sec"] =
      benchmark::Counter(packets, benchmark::Counter::kIsRate);
  state.counters["allocs_per_event"] = events > 0 ? allocs / events : 0.0;
  state.counters["allocs_per_packet"] = packets > 0 ? allocs / packets : 0.0;
  state.counters["gauges_registered"] =
      static_cast<double>(registry.gauge_count());
  registry.remove_gauges();
}

}  // namespace

BENCHMARK(BM_EventQueue_SchedulePop)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_EventQueue_ScheduleCancel)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_LeafSpine_HotPath)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LeafSpine_HotPath_Instrumented)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
