// Fig. 10 — switch resource usage and Ring Table scaling.
//
// On the Tofino, MARS consumes fixed shares of PHV, hash bits, TCAM and
// action data (pipeline resources, independent of history depth) plus
// SRAM that scales with the Ring Table size. We model the fixed shares
// with the prototype's reported footprint and compute the SRAM curve
// exactly from RtRecord's layout; the shape to verify is linear SRAM
// growth while everything else stays flat.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "telemetry/tables.hpp"
#include "util/rng.hpp"

namespace {

using namespace mars;

// Tofino pipeline shares of the MARS P4 program (fractions of the chip,
// from the prototype's compilation report; constant in RT size).
constexpr double kPhvShare = 0.12;
constexpr double kHashBitsShare = 0.09;
constexpr double kTcamShare = 0.04;
constexpr double kActionDataShare = 0.06;
// Tofino-class SRAM available to one pipeline for register storage.
constexpr double kSramBudgetBytes = 12.0 * 1024 * 1024;

void BM_RingTableInsert(benchmark::State& state) {
  telemetry::RingTable rt(static_cast<std::size_t>(state.range(0)));
  telemetry::RtRecord rec;
  util::Rng rng(1);
  for (auto _ : state) {
    rec.latency = static_cast<sim::Time>(rng.below(1'000'000));
    rt.insert(rec);
    benchmark::DoNotOptimize(rt.size());
  }
  state.counters["sram_bytes"] = static_cast<double>(rt.memory_bytes());
}
BENCHMARK(BM_RingTableInsert)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_RingTableSnapshot(benchmark::State& state) {
  telemetry::RingTable rt(static_cast<std::size_t>(state.range(0)));
  for (int i = 0; i < state.range(0); ++i) rt.insert({});
  for (auto _ : state) {
    auto snap = rt.snapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_RingTableSnapshot)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Fig. 10: switch resource usage vs Ring Table size ==\n");
  std::printf(
      "  RT size | PHV%% | HashBits%% | TCAM%% | ActionData%% | SRAM bytes "
      "| SRAM%% of budget\n");
  for (const std::size_t size : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    const telemetry::RingTable rt(size);
    const double sram = static_cast<double>(rt.memory_bytes());
    std::printf("  %7zu | %4.1f | %9.1f | %5.1f | %11.1f | %10.0f | %6.2f%%\n",
                size, 100 * kPhvShare, 100 * kHashBitsShare, 100 * kTcamShare,
                100 * kActionDataShare, sram,
                100.0 * sram / kSramBudgetBytes);
  }
  std::printf("(pipeline shares are constant; only SRAM scales with RT "
              "size — MARS \"fits in the Tofino pipeline comfortably\")\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
