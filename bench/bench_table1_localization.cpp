// Table 1 — the headline result: Recall@k and Exam Score for MARS,
// SpiderMon, IntSight and SyNDB across the five fault causes.
//
// Each cell aggregates independent fault-injection trials (seeded, run in
// parallel). SyNDB is expert-aided exactly as in the paper (it is told
// the fault class to query for — the gray cells). SpiderMon and IntSight
// print "-" for causes they never trigger on (delay/drop).
//
// Expected shape: MARS leads or ties everywhere without expert help;
// SpiderMon/IntSight blank on delay+drop; SyNDB near-perfect but paid for
// in Fig. 9 bandwidth. Set MARS_TRIALS to change the per-cause trial
// count (default 12).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mars/scenario.hpp"
#include "metrics/ranking.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace mars;

int trials_per_cause() {
  if (const char* env = std::getenv("MARS_TRIALS")) {
    return std::max(1, std::atoi(env));
  }
  return 12;
}

std::vector<ScenarioResult> run_trials(faults::FaultKind fault, int trials,
                                       parallel::ThreadPool& pool) {
  std::vector<ScenarioResult> results(static_cast<std::size_t>(trials));
  parallel::parallel_for(pool, 0, results.size(), [&](std::size_t i) {
    results[i] = run_scenario(default_scenario(fault, 1000 + 37 * i));
  });
  return results;
}

struct SystemStats {
  metrics::LocalizationStats stats;
  int triggered = 0;
};

struct CauseRow {
  SystemStats mars, spidermon, intsight, syndb;
  int trials = 0;

  void add(const ScenarioResult& r) {
    if (!r.fault_injected) return;
    ++trials;
    mars.stats.add(r.mars.rank);
    mars.triggered += r.mars.triggered;
    spidermon.stats.add(r.spidermon.rank);
    spidermon.triggered += r.spidermon.triggered;
    intsight.stats.add(r.intsight.rank);
    intsight.triggered += r.intsight.triggered;
    syndb.stats.add(r.syndb.rank);
    syndb.triggered += r.syndb.triggered;
  }
};

void print_cell(const SystemStats& s, bool can_blank) {
  if (can_blank && s.triggered == 0) {
    std::printf("   -    -    -    -    -   |");
    return;
  }
  std::printf(" %3.0f  %3.0f  %3.0f  %3.0f  %4.1f |",
              100 * s.stats.recall_at(1), 100 * s.stats.recall_at(2),
              100 * s.stats.recall_at(3), 100 * s.stats.recall_at(5),
              s.stats.exam_score());
}

void print_row(const char* label, const CauseRow& row) {
  std::printf("  %-13s |", label);
  print_cell(row.mars, false);
  print_cell(row.spidermon, true);
  print_cell(row.intsight, true);
  print_cell(row.syndb, false);
  std::printf("\n");
}

void BM_SingleTrial(benchmark::State& state) {
  for (auto _ : state) {
    auto result = run_scenario(
        default_scenario(faults::FaultKind::kMicroBurst, 4242));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SingleTrial)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_per_cause();
  parallel::ThreadPool pool;
  std::printf("== Table 1: R@1/R@2/R@3/R@5 (%%) and Exam Score, %d trials "
              "per cause ==\n",
              trials);
  std::printf("(columns per system: R@1  R@2  R@3  R@5  Exam; SyNDB is "
              "expert-aided; '-' = never triggered)\n");
  std::printf("  cause         |          MARS           |        "
              "SpiderMon        |        IntSight         |         "
              "SyNDB*          |\n");

  const faults::FaultKind causes[] = {
      faults::FaultKind::kMicroBurst, faults::FaultKind::kEcmpImbalance,
      faults::FaultKind::kProcessRateDecrease, faults::FaultKind::kDelay,
      faults::FaultKind::kDrop};
  CauseRow overall;
  for (const auto cause : causes) {
    const auto results = run_trials(cause, trials, pool);
    CauseRow row;
    for (const auto& r : results) {
      row.add(r);
      overall.add(r);
    }
    print_row(faults::to_string(cause), row);
  }
  print_row("overall", overall);
  std::printf("  (paper overall: MARS 83/95/97/99/0.3, SpiderMon "
              "44/52/54/55/4.1, IntSight 21/32/40/55/5.0, SyNDB* "
              "79/90/95/99/0.5)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
