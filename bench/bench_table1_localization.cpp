// Table 1 — the headline result: Recall@k and Exam Score for MARS,
// SpiderMon, IntSight and SyNDB across the five fault causes.
//
// Each cell aggregates independent fault-injection trials dispatched
// through the sweep driver (seeded, run in parallel). SyNDB is
// expert-aided exactly as in the paper (it is told the fault class to
// query for — the gray cells). SpiderMon and IntSight print "-" for
// causes they never trigger on (delay/drop).
//
// Expected shape: MARS leads or ties everywhere without expert help;
// SpiderMon/IntSight blank on delay+drop; SyNDB near-perfect but paid for
// in Fig. 9 bandwidth. Set MARS_TRIALS to change the per-cause trial
// count (default 12).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mars/scenario.hpp"
#include "mars/sweep.hpp"
#include "metrics/ranking.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace mars;

constexpr const char* kSystems[] = {"mars", "spidermon", "intsight",
                                    "syndb"};

int trials_per_cause() {
  if (const char* env = std::getenv("MARS_TRIALS")) {
    return std::max(1, std::atoi(env));
  }
  return 12;
}

SweepResult run_trials(faults::FaultKind fault, int trials,
                       parallel::ThreadPool& pool) {
  std::vector<SweepPoint> points;
  points.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    SweepPoint point;
    point.config =
        default_scenario(fault, 1000 + 37 * static_cast<std::uint64_t>(i));
    point.label = std::string(faults::short_name(fault)) +
                  "/seed=" + std::to_string(point.config.seed);
    points.push_back(std::move(point));
  }
  return run_sweep(pool, points);
}

struct SystemStats {
  metrics::LocalizationStats stats;
  int triggered = 0;
};

struct CauseRow {
  SystemStats systems[std::size(kSystems)];
  int trials = 0;

  void add(const ScenarioResult& r) {
    if (!r.fault_injected) return;
    ++trials;
    for (std::size_t s = 0; s < std::size(kSystems); ++s) {
      const SystemOutcome& outcome = r.outcome(kSystems[s]);
      systems[s].stats.add(outcome.rank);
      systems[s].triggered += outcome.triggered;
    }
  }
};

void print_cell(const SystemStats& s, bool can_blank) {
  if (can_blank && s.triggered == 0) {
    std::printf("   -    -    -    -    -   |");
    return;
  }
  std::printf(" %3.0f  %3.0f  %3.0f  %3.0f  %4.1f |",
              100 * s.stats.recall_at(1), 100 * s.stats.recall_at(2),
              100 * s.stats.recall_at(3), 100 * s.stats.recall_at(5),
              s.stats.exam_score());
}

void print_row(const char* label, const CauseRow& row) {
  std::printf("  %-13s |", label);
  print_cell(row.systems[0], false);
  print_cell(row.systems[1], true);
  print_cell(row.systems[2], true);
  print_cell(row.systems[3], false);
  std::printf("\n");
}

void BM_SingleTrial(benchmark::State& state) {
  for (auto _ : state) {
    auto result = run_scenario(
        default_scenario(faults::FaultKind::kMicroBurst, 4242));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SingleTrial)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_per_cause();
  parallel::ThreadPool pool;
  std::printf("== Table 1: R@1/R@2/R@3/R@5 (%%) and Exam Score, %d trials "
              "per cause ==\n",
              trials);
  std::printf("(columns per system: R@1  R@2  R@3  R@5  Exam; SyNDB is "
              "expert-aided; '-' = never triggered)\n");
  std::printf("  cause         |          MARS           |        "
              "SpiderMon        |        IntSight         |         "
              "SyNDB*          |\n");

  const faults::FaultKind causes[] = {
      faults::FaultKind::kMicroBurst, faults::FaultKind::kEcmpImbalance,
      faults::FaultKind::kProcessRateDecrease, faults::FaultKind::kDelay,
      faults::FaultKind::kDrop};
  CauseRow overall;
  for (const auto cause : causes) {
    const auto sweep = run_trials(cause, trials, pool);
    CauseRow row;
    for (const auto& trial : sweep.trials) {
      row.add(trial.result);
      overall.add(trial.result);
    }
    print_row(faults::to_string(cause), row);
  }
  print_row("overall", overall);
  std::printf("  (paper overall: MARS 83/95/97/99/0.3, SpiderMon "
              "44/52/54/55/4.1, IntSight 21/32/40/55/5.0, SyNDB* "
              "79/90/95/99/0.5)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
