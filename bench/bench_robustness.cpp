// Robustness curve — how MARS localization degrades as the control
// channel gets lossy, and how it holds up against gray failures.
//
// Section 1 sweeps notification-loss / ring-read-failure levels on the
// paper-default rate-decrease scenario (MARS only) and prints
// Recall@1/@3, Exam Score, the fraction of trials that still produced a
// ranked culprit list, and the mean diagnosis confidence.
//
// Section 2 sweeps the gray-failure family (flap, slowdrain, asymloss,
// gateddelay) with the multi-epoch evidence accumulator off (plain
// single-window SBFL) and on, per seed, and records Recall@1/@3 for
// both plus confidence vs manifestation ratio. The accumulated ranking
// should beat or match single-window on the intermittent kinds, and
// reported confidence should rise with manifestation — an operator can
// read "low confidence" as "this fault was barely present". The gray
// table is written to BENCH_robustness_gray.json (pass --gray-out FILE
// to redirect); bench/check_bench_regress.sh gates the flapping
// accumulated Recall@3 against the committed record.
//
// Expected shape: graceful degradation — Recall falls monotonically
// with channel loss (never a cliff), confidence tracks the damage, and
// even at 40% notification loss + 20% read failure the controller keeps
// emitting ranked diagnoses instead of going dark. Set MARS_TRIALS to
// change the per-level/per-kind trial count (default 10; the committed
// gray record uses 20).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "mars/scenario.hpp"
#include "mars/sweep.hpp"
#include "metrics/ranking.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace mars;

struct ChaosLevel {
  const char* label;
  double notification_loss;
  double read_failure;
  double record_loss;
  double record_corruption;
};

// Jointly escalating damage: each level is strictly worse than the last.
constexpr ChaosLevel kLevels[] = {
    {"perfect", 0.00, 0.00, 0.00, 0.00},
    {"mild", 0.10, 0.05, 0.02, 0.01},
    {"paper-accept", 0.20, 0.10, 0.05, 0.02},
    {"severe", 0.40, 0.20, 0.10, 0.05},
};

int trials_per_level() {
  if (const char* env = std::getenv("MARS_TRIALS")) {
    return std::max(1, std::atoi(env));
  }
  return 10;
}

struct LevelRow {
  metrics::LocalizationStats stats;
  int trials = 0;
  int ranked = 0;
  double confidence_sum = 0.0;
  int confidence_n = 0;

  void add(const ScenarioResult& r) {
    if (!r.fault_injected) return;
    ++trials;
    const SystemOutcome& outcome = r.outcome("mars");
    stats.add(outcome.rank);
    ranked += !outcome.culprits.empty();
    if (outcome.confidence) {
      confidence_sum += *outcome.confidence;
      ++confidence_n;
    }
  }
};

LevelRow run_level(const ChaosLevel& level, int trials,
                   parallel::ThreadPool& pool) {
  std::vector<SweepPoint> points;
  points.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    SweepPoint point;
    point.config = default_scenario(faults::FaultKind::kProcessRateDecrease,
                                    2000 + 37 * static_cast<std::uint64_t>(i));
    point.config.systems = {"mars"};
    point.config.mars.channel.notification_loss = level.notification_loss;
    point.config.mars.channel.read_failure = level.read_failure;
    point.config.mars.channel.record_loss = level.record_loss;
    point.config.mars.channel.record_corruption = level.record_corruption;
    point.label = std::string(level.label) +
                  "/seed=" + std::to_string(point.config.seed);
    points.push_back(std::move(point));
  }
  const SweepResult sweep = run_sweep(pool, points);
  LevelRow row;
  for (const auto& trial : sweep.trials) row.add(trial.result);
  return row;
}

// ---- Section 2: gray failures ------------------------------------------

struct GrayKind {
  const char* label;       ///< spec short name, used in the JSON record
  faults::FaultKind kind;
};

constexpr GrayKind kGrayKinds[] = {
    {"flap", faults::FaultKind::kLinkFlap},
    {"slowdrain", faults::FaultKind::kSlowDrain},
    {"asymloss", faults::FaultKind::kAsymmetricLoss},
    {"gateddelay", faults::FaultKind::kLoadGatedDelay},
};

/// The three gray-failure grading arms, index-aligned with the sweep's
/// point order. `kSingle` is true single-window SBFL (the newest
/// post-fault session's ranking — what the accumulator actually
/// replaces); `kMerged` is MarsSystem's default cross-session union-merge
/// (best raw score per suspect — itself a multi-window strategy, kept as
/// a second reference point); `kAccum` is the multi-epoch accumulator.
enum GrayArm { kSingle = 0, kMerged = 1, kAccum = 2, kArmCount = 3 };

constexpr const char* kArmLabels[kArmCount] = {"single", "merged", "accum"};

struct GrayRow {
  const GrayKind* kind = nullptr;
  metrics::LocalizationStats single;  ///< newest-session-only SBFL
  metrics::LocalizationStats merged;  ///< cross-session union-merge
  metrics::LocalizationStats accum;   ///< multi-epoch accumulator
  int trials = 0;
  double manifestation_sum = 0.0;
  /// (manifestation ratio, reported confidence) per accumulator-on trial.
  std::vector<std::pair<double, double>> conf_vs_ratio;
};

ScenarioConfig gray_trial_config(const GrayKind& kind, std::uint64_t seed,
                                 GrayArm arm) {
  // Longer trial + longer fault window than the channel sweep: the
  // accumulator needs several diagnosis epochs during the fault to have
  // anything to accumulate, and intermittent kinds need room to flap.
  auto cfg = default_scenario(kind.kind, seed);
  cfg.duration = 7 * sim::kSecond;
  cfg.faults.events.front().duration = 3 * sim::kSecond;
  cfg.systems = {"mars"};
  // The paper-default 500 ms suppression + 500 ms collection fold leave a
  // 3 s fault only ~3 diagnosis epochs — an intermittent culprit seen
  // once can't be told from ambient noise seen once. Re-diagnosing more
  // often is the point of intermittency hardening; both graded modes get
  // the same cadence so the single-vs-accumulated comparison stays fair.
  cfg.mars.controller.response_window = 200 * sim::kMillisecond;
  cfg.mars.controller.collection_delay = 200 * sim::kMillisecond;
  cfg.mars.rca.single_window = arm == kSingle;
  cfg.mars.rca.accumulator.enabled = arm == kAccum;
  return cfg;
}

GrayRow run_gray_kind(const GrayKind& kind, int trials,
                      parallel::ThreadPool& pool) {
  std::vector<SweepPoint> points;
  points.reserve(static_cast<std::size_t>(trials) * kArmCount);
  for (int arm = 0; arm < kArmCount; ++arm) {
    for (int i = 0; i < trials; ++i) {
      SweepPoint point;
      point.config = gray_trial_config(
          kind, 2000 + 37 * static_cast<std::uint64_t>(i),
          static_cast<GrayArm>(arm));
      point.label = std::string(kind.label) + "/" + kArmLabels[arm] +
                    "/seed=" + std::to_string(point.config.seed);
      points.push_back(std::move(point));
    }
  }
  const SweepResult sweep = run_sweep(pool, points);
  GrayRow row;
  row.kind = &kind;
  // Trials are index-aligned with the input points: `trials` entries per
  // arm, in kArmLabels order.
  for (std::size_t t = 0; t < sweep.trials.size(); ++t) {
    const ScenarioResult& r = sweep.trials[t].result;
    if (!r.fault_injected || r.truths.empty()) continue;
    const SystemOutcome& outcome = r.outcome("mars");
    const GrayArm arm =
        static_cast<GrayArm>(t / static_cast<std::size_t>(trials));
    if (std::getenv("MARS_GRAY_DEBUG") != nullptr) {
      std::fprintf(stderr, "gray-debug %s rank=%s truth=[%s]\n",
                   sweep.trials[t].label.c_str(),
                   outcome.rank ? std::to_string(*outcome.rank).c_str() : "-",
                   r.truths.front().describe().c_str());
      for (std::size_t c = 0; c < outcome.culprits.size() && c < 8; ++c) {
        std::fprintf(stderr, "gray-debug %s   #%zu %s\n",
                     sweep.trials[t].label.c_str(), c + 1,
                     outcome.culprits[c].describe().c_str());
      }
    }
    if (arm == kSingle) {
      row.single.add(outcome.rank);
      continue;
    }
    if (arm == kMerged) {
      row.merged.add(outcome.rank);
      continue;
    }
    ++row.trials;
    row.accum.add(outcome.rank);
    const double ratio = r.truths.front().manifestation_ratio;
    row.manifestation_sum += ratio;
    if (outcome.confidence) {
      row.conf_vs_ratio.emplace_back(ratio, *outcome.confidence);
    }
  }
  return row;
}

/// Mean confidence in manifestation-ratio buckets; monotone means an
/// operator can trust low confidence to signal a barely-present fault.
struct RatioBucket {
  const char* label;
  double lo, hi;
  double ratio_sum = 0.0, conf_sum = 0.0;
  int n = 0;
};

void write_gray_json(const std::string& path,
                     const std::vector<GrayRow>& rows,
                     const std::vector<RatioBucket>& buckets, int trials) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"trials\": " << trials << ",\n  \"kinds\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GrayRow& row = rows[i];
    const double mean_ratio =
        row.trials ? row.manifestation_sum / row.trials : 0.0;
    out << "    {\"kind\": \"" << row.kind->label << "\""
        << ", \"graded\": " << row.trials
        << ", \"recall1_single\": " << row.single.recall_at(1)
        << ", \"recall3_single\": " << row.single.recall_at(3)
        << ", \"recall1_merged\": " << row.merged.recall_at(1)
        << ", \"recall3_merged\": " << row.merged.recall_at(3)
        << ", \"recall1_accum\": " << row.accum.recall_at(1)
        << ", \"recall3_accum\": " << row.accum.recall_at(3)
        << ", \"mean_manifestation\": " << mean_ratio << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"confidence_by_manifestation\": [\n";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const RatioBucket& b = buckets[i];
    out << "    {\"bucket\": \"" << b.label << "\", \"n\": " << b.n
        << ", \"mean_ratio\": " << (b.n ? b.ratio_sum / b.n : 0.0)
        << ", \"mean_confidence\": " << (b.n ? b.conf_sum / b.n : 0.0)
        << "}" << (i + 1 < buckets.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "wrote gray-robustness record to %s\n", path.c_str());
}

void BM_ChaosTrial(benchmark::State& state) {
  ScenarioConfig cfg =
      default_scenario(faults::FaultKind::kProcessRateDecrease, 4242);
  cfg.systems = {"mars"};
  cfg.mars.channel.notification_loss = 0.2;
  cfg.mars.channel.read_failure = 0.1;
  for (auto _ : state) {
    auto result = run_scenario(cfg);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ChaosTrial)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::string gray_out = "BENCH_robustness_gray.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gray-out") == 0 && i + 1 < argc) {
      gray_out = argv[i + 1];
      // Hide the flag pair from google-benchmark's parser.
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  const int trials = trials_per_level();
  parallel::ThreadPool pool;
  std::printf("== Robustness: MARS localization vs control-channel loss, "
              "%d trials per level ==\n",
              trials);
  std::printf("  level         notif  read   |  R@1  R@3  Exam | ranked  "
              "mean-conf\n");

  std::vector<double> recall1;
  for (const auto& level : kLevels) {
    const LevelRow row = run_level(level, trials, pool);
    const double ranked_pct =
        row.trials ? 100.0 * row.ranked / row.trials : 0.0;
    const double mean_conf =
        row.confidence_n ? row.confidence_sum / row.confidence_n : 0.0;
    std::printf("  %-13s %4.0f%%  %4.0f%%  |  %3.0f  %3.0f  %4.1f |  %4.0f%%  "
                "   %.2f\n",
                level.label, 100 * level.notification_loss,
                100 * level.read_failure, 100 * row.stats.recall_at(1),
                100 * row.stats.recall_at(3), row.stats.exam_score(),
                ranked_pct, mean_conf);
    recall1.push_back(row.stats.recall_at(1));
  }
  if (recall1.front() + 1e-9 < recall1.back()) {
    std::printf("  WARNING: Recall@1 at the severe level exceeds the perfect "
                "level — degradation is not monotone\n");
  }
  std::printf("  (expected: graceful degradation — recall falls with loss, "
              "confidence tracks it, ranked stays high)\n\n");

  std::printf("== Gray failures: single-window SBFL vs multi-epoch "
              "accumulation, %d trials per kind ==\n",
              trials);
  std::printf("  kind        | single R@1 R@3 | merged R@1 R@3 | "
              "accum R@1 R@3 | mean-manif\n");
  std::vector<GrayRow> gray_rows;
  std::vector<RatioBucket> buckets = {
      {"barely", 0.0, 0.4},
      {"partial", 0.4, 0.8},
      {"mostly", 0.8, 1.01},
  };
  for (const auto& kind : kGrayKinds) {
    GrayRow row = run_gray_kind(kind, trials, pool);
    const double mean_ratio =
        row.trials ? row.manifestation_sum / row.trials : 0.0;
    std::printf("  %-11s |   %3.0f  %3.0f     |   %3.0f  %3.0f      |  "
                "%3.0f  %3.0f     |   %.2f\n",
                kind.label, 100 * row.single.recall_at(1),
                100 * row.single.recall_at(3), 100 * row.merged.recall_at(1),
                100 * row.merged.recall_at(3), 100 * row.accum.recall_at(1),
                100 * row.accum.recall_at(3), mean_ratio);
    for (const auto& [ratio, conf] : row.conf_vs_ratio) {
      for (auto& bucket : buckets) {
        if (ratio >= bucket.lo && ratio < bucket.hi) {
          bucket.ratio_sum += ratio;
          bucket.conf_sum += conf;
          ++bucket.n;
        }
      }
    }
    gray_rows.push_back(std::move(row));
  }
  std::printf("  confidence vs manifestation:");
  double prev_conf = -1.0;
  bool monotone = true;
  for (const auto& bucket : buckets) {
    const double mean_conf = bucket.n ? bucket.conf_sum / bucket.n : 0.0;
    std::printf("  %s(n=%d)=%.2f", bucket.label, bucket.n, mean_conf);
    if (bucket.n) {
      if (mean_conf + 1e-9 < prev_conf) monotone = false;
      prev_conf = mean_conf;
    }
  }
  std::printf("\n");
  if (!monotone) {
    std::printf("  WARNING: reported confidence is not monotone in "
                "manifestation ratio\n");
  }
  std::printf("  (expected: accumulation >= single-window on flap and "
              "slowdrain, confidence rises with manifestation)\n\n");
  write_gray_json(gray_out, gray_rows, buckets, trials);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
