// Robustness curve — how MARS localization degrades as the control
// channel gets lossy. Sweeps notification-loss / ring-read-failure
// levels on the paper-default rate-decrease scenario (MARS only) and
// prints Recall@1/@3, Exam Score, the fraction of trials that still
// produced a ranked culprit list, and the mean diagnosis confidence.
//
// Expected shape: graceful degradation — Recall falls monotonically
// with channel loss (never a cliff), confidence tracks the damage, and
// even at 40% notification loss + 20% read failure the controller keeps
// emitting ranked diagnoses instead of going dark. Set MARS_TRIALS to
// change the per-level trial count (default 10).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mars/scenario.hpp"
#include "mars/sweep.hpp"
#include "metrics/ranking.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace mars;

struct ChaosLevel {
  const char* label;
  double notification_loss;
  double read_failure;
  double record_loss;
  double record_corruption;
};

// Jointly escalating damage: each level is strictly worse than the last.
constexpr ChaosLevel kLevels[] = {
    {"perfect", 0.00, 0.00, 0.00, 0.00},
    {"mild", 0.10, 0.05, 0.02, 0.01},
    {"paper-accept", 0.20, 0.10, 0.05, 0.02},
    {"severe", 0.40, 0.20, 0.10, 0.05},
};

int trials_per_level() {
  if (const char* env = std::getenv("MARS_TRIALS")) {
    return std::max(1, std::atoi(env));
  }
  return 10;
}

struct LevelRow {
  metrics::LocalizationStats stats;
  int trials = 0;
  int ranked = 0;
  double confidence_sum = 0.0;
  int confidence_n = 0;

  void add(const ScenarioResult& r) {
    if (!r.fault_injected) return;
    ++trials;
    const SystemOutcome& outcome = r.outcome("mars");
    stats.add(outcome.rank);
    ranked += !outcome.culprits.empty();
    if (outcome.confidence) {
      confidence_sum += *outcome.confidence;
      ++confidence_n;
    }
  }
};

LevelRow run_level(const ChaosLevel& level, int trials,
                   parallel::ThreadPool& pool) {
  std::vector<SweepPoint> points;
  points.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    SweepPoint point;
    point.config = default_scenario(faults::FaultKind::kProcessRateDecrease,
                                    2000 + 37 * static_cast<std::uint64_t>(i));
    point.config.systems = {"mars"};
    point.config.mars.channel.notification_loss = level.notification_loss;
    point.config.mars.channel.read_failure = level.read_failure;
    point.config.mars.channel.record_loss = level.record_loss;
    point.config.mars.channel.record_corruption = level.record_corruption;
    point.label = std::string(level.label) +
                  "/seed=" + std::to_string(point.config.seed);
    points.push_back(std::move(point));
  }
  const SweepResult sweep = run_sweep(pool, points);
  LevelRow row;
  for (const auto& trial : sweep.trials) row.add(trial.result);
  return row;
}

void BM_ChaosTrial(benchmark::State& state) {
  ScenarioConfig cfg =
      default_scenario(faults::FaultKind::kProcessRateDecrease, 4242);
  cfg.systems = {"mars"};
  cfg.mars.channel.notification_loss = 0.2;
  cfg.mars.channel.read_failure = 0.1;
  for (auto _ : state) {
    auto result = run_scenario(cfg);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ChaosTrial)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_per_level();
  parallel::ThreadPool pool;
  std::printf("== Robustness: MARS localization vs control-channel loss, "
              "%d trials per level ==\n",
              trials);
  std::printf("  level         notif  read   |  R@1  R@3  Exam | ranked  "
              "mean-conf\n");

  std::vector<double> recall1;
  for (const auto& level : kLevels) {
    const LevelRow row = run_level(level, trials, pool);
    const double ranked_pct =
        row.trials ? 100.0 * row.ranked / row.trials : 0.0;
    const double mean_conf =
        row.confidence_n ? row.confidence_sum / row.confidence_n : 0.0;
    std::printf("  %-13s %4.0f%%  %4.0f%%  |  %3.0f  %3.0f  %4.1f |  %4.0f%%  "
                "   %.2f\n",
                level.label, 100 * level.notification_loss,
                100 * level.read_failure, 100 * row.stats.recall_at(1),
                100 * row.stats.recall_at(3), row.stats.exam_score(),
                ranked_pct, mean_conf);
    recall1.push_back(row.stats.recall_at(1));
  }
  if (recall1.front() + 1e-9 < recall1.back()) {
    std::printf("  WARNING: Recall@1 at the severe level exceeds the perfect "
                "level — degradation is not monotone\n");
  }
  std::printf("  (expected: graceful degradation — recall falls with loss, "
              "confidence tracks it, ranked stays high)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
