#!/usr/bin/env bash
# Re-measure the Fig. 11 FSM miners and refresh the `current` section of
# BENCH_fsm_mining.json. The `baseline` section is the recorded seed-engine
# measurement (see the file's `method` note) and the `reference_scaling_8core`
# section is the recorded multi-core scaling run; both are preserved across
# refreshes so the speedups stay anchored. Parallel wall-clock speedup only
# shows on a multi-core host — on a single-core container the Fig11Scaling
# rows stay flat by construction.
#
# Usage: bench/run_fsm_mining.sh [output.json]
#   BUILD_DIR overrides the build directory (default: <repo>/build).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-$repo_root/build}
out=${1:-$repo_root/BENCH_fsm_mining.json}
bench_bin=$build_dir/bench/bench_fig11_fsm

if [[ ! -x $bench_bin ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir --target bench_fig11_fsm)" >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

"$bench_bin" --benchmark_min_time=0.3 \
  --benchmark_out="$raw" --benchmark_out_format=json

python3 - "$raw" "$out" "$repo_root/BENCH_fsm_mining.json" <<'EOF'
import json
import sys

raw_path, out_path, committed_path = sys.argv[1], sys.argv[2], sys.argv[3]
raw = json.load(open(raw_path))

fig11, scaling = {}, {}
for b in raw['benchmarks']:
    entry = {'wall_ms': round(b['real_time'] / 1e6, 3)}
    for key in ('patterns', 'mem_bytes', 'nodes', 'threads'):
        if key in b:
            entry[key] = int(b[key])
    (scaling if b['name'].startswith('Fig11Scaling/') else fig11)[b['name']] = entry

# Merge into the output file if it exists; otherwise seed a new file from
# the committed record so baseline + reference sections carry over.
try:
    doc = json.load(open(out_path))
except FileNotFoundError:
    try:
        doc = json.load(open(committed_path))
    except FileNotFoundError:
        doc = {'benchmark': 'bench_fig11_fsm'}
doc.pop('current', None)
doc.pop('speedups_vs_baseline_wall', None)

doc['current'] = {'fig11': fig11, 'scaling': scaling}
base = doc.get('baseline', {}).get('results', {})
speedups = {}
for name, entry in fig11.items():
    if name in base and entry['wall_ms'] > 0:
        speedups[name] = round(base[name]['wall_ms'] / entry['wall_ms'], 2)
if speedups:
    doc['speedups_vs_baseline_wall'] = speedups

json.dump(doc, open(out_path, 'w'), indent=2)
print(f"wrote {out_path}")
EOF
