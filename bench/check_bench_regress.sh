#!/usr/bin/env bash
# Guard the zero-overhead-when-disabled contract: the recorded pairwise
# ratio of BM_LeafSpine_HotPath_Instrumented to BM_LeafSpine_HotPath (an
# idle MetricsRegistry + SpanTracer constructed but never attached) must
# not regress more than 5% below the PR-2 reference of 0.976.
#
# Usage: bench/check_bench_regress.sh [report.json]
#   Defaults to the committed BENCH_sim_hotpath.json. Pass a freshly
#   refreshed report (bench/run_sim_hotpath.sh out.json) to gate a new
#   measurement instead of the committed record.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
report=${1:-$repo_root/BENCH_sim_hotpath.json}

if [[ ! -f $report ]]; then
  echo "error: $report not found" >&2
  exit 1
fi

python3 - "$report" <<'EOF'
import json
import sys

REFERENCE_RATIO = 0.976   # recorded when instrumentation landed (PR 2)
MAX_REGRESSION = 0.05     # fail past 5% below the reference

report_path = sys.argv[1]
doc = json.load(open(report_path))

ratio = doc.get("instrumented_unattached_ratio")
if ratio is None:
    sys.exit(f"error: {report_path} has no instrumented_unattached_ratio")

floor = REFERENCE_RATIO * (1.0 - MAX_REGRESSION)
verdict = "ok" if ratio >= floor else "REGRESSION"
print(f"instrumented/plain ratio {ratio:.3f} "
      f"(reference {REFERENCE_RATIO:.3f}, floor {floor:.3f}): {verdict}")
if ratio < floor:
    sys.exit(
        f"error: instrumented hot-path ratio {ratio:.3f} regressed more "
        f"than {MAX_REGRESSION:.0%} below the {REFERENCE_RATIO:.3f} "
        "reference — instrumentation is leaking onto the packet hot path")
EOF
