#!/usr/bin/env bash
# Three recorded-benchmark gates:
#
# 1. Zero-overhead-when-disabled: the recorded pairwise ratio of
#    BM_LeafSpine_HotPath_Instrumented to BM_LeafSpine_HotPath (an idle
#    MetricsRegistry + SpanTracer constructed but never attached) must not
#    regress more than 5% below the PR-2 reference of 0.976.
# 2. Telemetry frontier ordering: the histogram backend's raison d'être is
#    undercutting postcard's in-band bytes per packet; a frontier report
#    where it doesn't means the digest wire accounting regressed.
# 3. Gray-failure accumulation: the evidence accumulator exists to keep
#    flapping links localized; its Recall@3 on flap must stay at least at
#    the single-window number and above an absolute floor.
# 4. PathID audit: the collision grid is deterministic, so every count in
#    a fresh report must exactly match the committed reference — any drift
#    means enumeration order, the hash, or the separation pass changed
#    behaviour. The recorded reference_8core construction run must show
#    the parallel K=16 build beating the sequential one; a fresh report's
#    timing is gated only when it actually ran multi-threaded.
#
# Usage: bench/check_bench_regress.sh [report.json] [frontier.json] [gray.json] [pathid.json]
#   Defaults to the committed BENCH_sim_hotpath.json,
#   BENCH_telemetry_frontier.json, BENCH_robustness_gray.json and
#   BENCH_pathid_audit.json. Pass freshly refreshed reports
#   (bench/run_sim_hotpath.sh out.json; bench_fig9_bandwidth
#   --frontier-out out.json; MARS_TRIALS=20 bench_robustness --gray-out
#   out.json; bench/run_pathid_audit.sh out.json) to gate new
#   measurements instead of the committed records.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
report=${1:-$repo_root/BENCH_sim_hotpath.json}
frontier=${2:-$repo_root/BENCH_telemetry_frontier.json}
gray=${3:-$repo_root/BENCH_robustness_gray.json}
pathid=${4:-$repo_root/BENCH_pathid_audit.json}

if [[ ! -f $report ]]; then
  echo "error: $report not found" >&2
  exit 1
fi
if [[ ! -f $frontier ]]; then
  echo "error: $frontier not found" >&2
  exit 1
fi
if [[ ! -f $gray ]]; then
  echo "error: $gray not found" >&2
  exit 1
fi
if [[ ! -f $pathid ]]; then
  echo "error: $pathid not found" >&2
  exit 1
fi

python3 - "$report" <<'EOF'
import json
import sys

REFERENCE_RATIO = 0.976   # recorded when instrumentation landed (PR 2)
MAX_REGRESSION = 0.05     # fail past 5% below the reference

report_path = sys.argv[1]
doc = json.load(open(report_path))

ratio = doc.get("instrumented_unattached_ratio")
if ratio is None:
    sys.exit(f"error: {report_path} has no instrumented_unattached_ratio")

floor = REFERENCE_RATIO * (1.0 - MAX_REGRESSION)
verdict = "ok" if ratio >= floor else "REGRESSION"
print(f"instrumented/plain ratio {ratio:.3f} "
      f"(reference {REFERENCE_RATIO:.3f}, floor {floor:.3f}): {verdict}")
if ratio < floor:
    sys.exit(
        f"error: instrumented hot-path ratio {ratio:.3f} regressed more "
        f"than {MAX_REGRESSION:.0%} below the {REFERENCE_RATIO:.3f} "
        "reference — instrumentation is leaking onto the packet hot path")
EOF

python3 - "$frontier" <<'EOF'
import json
import sys

frontier_path = sys.argv[1]
doc = json.load(open(frontier_path))

per_backend = {
    p["backend"]: p for p in doc.get("points", [])
    if p.get("system") == "mars" and "backend" in p
}
missing = {"postcard", "int-md", "histogram"} - per_backend.keys()
if missing:
    sys.exit(f"error: {frontier_path} missing mars points for {missing}")

hist = per_backend["histogram"]["inband_bytes_per_packet"]
post = per_backend["postcard"]["inband_bytes_per_packet"]
verdict = "ok" if hist < post else "REGRESSION"
print(f"histogram in-band {hist:.2f} B/pkt vs postcard {post:.2f}: {verdict}")
if hist >= post:
    sys.exit(
        f"error: histogram backend spends {hist:.2f} in-band bytes/packet, "
        f"not below postcard's {post:.2f} — the compact-marker accounting "
        "regressed and the backend no longer earns its accuracy cost")
EOF

python3 - "$gray" <<'EOF'
import json
import sys

FLAP_RECALL3_FLOOR = 0.90  # recorded 1.00 at 20 trials; allow seed noise

gray_path = sys.argv[1]
doc = json.load(open(gray_path))

kinds = {k["kind"]: k for k in doc.get("kinds", [])}
flap = kinds.get("flap")
if flap is None:
    sys.exit(f"error: {gray_path} has no flap record")

accum = flap["recall3_accum"]
single = flap["recall3_single"]
ok = accum >= FLAP_RECALL3_FLOOR and accum >= single
verdict = "ok" if ok else "REGRESSION"
print(f"flap Recall@3 accumulated {accum:.2f} vs single-window {single:.2f} "
      f"(floor {FLAP_RECALL3_FLOOR:.2f}): {verdict}")
if accum < FLAP_RECALL3_FLOOR:
    sys.exit(
        f"error: flap Recall@3 with accumulation is {accum:.2f}, below the "
        f"{FLAP_RECALL3_FLOOR:.2f} floor — the evidence accumulator no "
        "longer keeps flapping links localized")
if accum < single:
    sys.exit(
        f"error: accumulation ({accum:.2f}) ranks flapping links WORSE than "
        f"single-window SBFL ({single:.2f}) — accumulated evidence is being "
        "outvoted by ambient noise")
EOF

python3 - "$pathid" "$repo_root/BENCH_pathid_audit.json" <<'EOF'
import json
import sys

pathid_path, committed_path = sys.argv[1:3]
doc = json.load(open(pathid_path))
committed = json.load(open(committed_path))

reference = committed.get("reference_8core")
current = doc.get("current")
if reference is None or current is None:
    sys.exit(f"error: {pathid_path} is missing the reference_8core/current "
             "sections (regenerate with bench/run_pathid_audit.sh)")

# The collision census is deterministic by construction: the parallel
# build replays the sequential insertion order, so counts never depend on
# host, thread count, or timing. Exact-match every row.
EXACT = ("paths", "id_space", "initial_collisions", "residual_collisions",
         "mat_entries", "rounds", "pigeonhole_infeasible", "conflict_free")
ref_grid = {(r["k"], r["hash"], r["width_bits"]): r
            for r in reference["grid"]}
drift = []
for row in current["grid"]:
    key = (row["k"], row["hash"], row["width_bits"])
    ref = ref_grid.get(key)
    if ref is None:
        drift.append(f"unexpected grid row {key}")
        continue
    for field in EXACT:
        if row[field] != ref[field]:
            drift.append(f"K={key[0]} {key[1]}/{key[2]}b {field}: "
                         f"{row[field]} != recorded {ref[field]}")
verdict = "ok" if not drift else "REGRESSION"
print(f"pathid collision grid: {len(current['grid'])} rows exact-matched "
      f"against reference: {verdict}")
if drift:
    sys.exit("error: PathID collision grid drifted from the committed "
             "record — the audit pass is no longer deterministic or the "
             "hash/separation behaviour changed:\n  " + "\n  ".join(drift))

# Construction speedup: the acceptance record lives in reference_8core.
ref_con = reference["construction"]
seq, par = ref_con["sequential_seconds"], ref_con["parallel_seconds"]
verdict = "ok" if par < seq else "REGRESSION"
print(f"pathid K={ref_con['k']} reference build: parallel {par:.3f}s "
      f"({ref_con['parallel_threads']} threads) vs sequential {seq:.3f}s: "
      f"{verdict}")
if par >= seq:
    sys.exit(
        f"error: recorded reference parallel build ({par:.3f}s) is not "
        f"faster than sequential ({seq:.3f}s) — the parallel registry "
        "construction lost its reason to exist")

# A fresh report's timing only means something when it ran with cores to
# spend; single-core refreshes degenerate to the sequential build.
cur_con = current["construction"]
if cur_con["parallel_threads"] >= 2:
    seq, par = cur_con["sequential_seconds"], cur_con["parallel_seconds"]
    if par >= seq * 1.10:  # 10% tolerance for small fabrics / noisy hosts
        sys.exit(
            f"error: fresh parallel build ({par:.3f}s on "
            f"{cur_con['parallel_threads']} threads) is slower than "
            f"sequential ({seq:.3f}s) — parallel construction regressed")
    print(f"pathid K={cur_con['k']} fresh build: parallel {par:.3f}s vs "
          f"sequential {seq:.3f}s: ok")
else:
    print(f"pathid K={cur_con['k']} fresh build: single-core host, timing "
          "gate skipped (counts were still exact-matched)")

hit = cur_con["cache_hit_seconds"]
cold = cur_con["cache_cold_seconds"]
if hit * 100 > max(cold, 1e-3):
    sys.exit(
        f"error: registry cache hit ({hit * 1e6:.0f} us) is within 100x of "
        f"the cold build ({cold:.3f}s) — the cache is rebuilding instead "
        "of sharing")
print(f"pathid registry cache: hit {hit * 1e6:.0f} us vs cold build "
      f"{cold:.3f}s: ok")
EOF
