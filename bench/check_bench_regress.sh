#!/usr/bin/env bash
# Three recorded-benchmark gates:
#
# 1. Zero-overhead-when-disabled: the recorded pairwise ratio of
#    BM_LeafSpine_HotPath_Instrumented to BM_LeafSpine_HotPath (an idle
#    MetricsRegistry + SpanTracer constructed but never attached) must not
#    regress more than 5% below the PR-2 reference of 0.976.
# 2. Telemetry frontier ordering: the histogram backend's raison d'être is
#    undercutting postcard's in-band bytes per packet; a frontier report
#    where it doesn't means the digest wire accounting regressed.
# 3. Gray-failure accumulation: the evidence accumulator exists to keep
#    flapping links localized; its Recall@3 on flap must stay at least at
#    the single-window number and above an absolute floor.
#
# Usage: bench/check_bench_regress.sh [report.json] [frontier.json] [gray.json]
#   Defaults to the committed BENCH_sim_hotpath.json,
#   BENCH_telemetry_frontier.json and BENCH_robustness_gray.json. Pass
#   freshly refreshed reports (bench/run_sim_hotpath.sh out.json;
#   bench_fig9_bandwidth --frontier-out out.json; MARS_TRIALS=20
#   bench_robustness --gray-out out.json) to gate new measurements
#   instead of the committed records.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
report=${1:-$repo_root/BENCH_sim_hotpath.json}
frontier=${2:-$repo_root/BENCH_telemetry_frontier.json}
gray=${3:-$repo_root/BENCH_robustness_gray.json}

if [[ ! -f $report ]]; then
  echo "error: $report not found" >&2
  exit 1
fi
if [[ ! -f $frontier ]]; then
  echo "error: $frontier not found" >&2
  exit 1
fi
if [[ ! -f $gray ]]; then
  echo "error: $gray not found" >&2
  exit 1
fi

python3 - "$report" <<'EOF'
import json
import sys

REFERENCE_RATIO = 0.976   # recorded when instrumentation landed (PR 2)
MAX_REGRESSION = 0.05     # fail past 5% below the reference

report_path = sys.argv[1]
doc = json.load(open(report_path))

ratio = doc.get("instrumented_unattached_ratio")
if ratio is None:
    sys.exit(f"error: {report_path} has no instrumented_unattached_ratio")

floor = REFERENCE_RATIO * (1.0 - MAX_REGRESSION)
verdict = "ok" if ratio >= floor else "REGRESSION"
print(f"instrumented/plain ratio {ratio:.3f} "
      f"(reference {REFERENCE_RATIO:.3f}, floor {floor:.3f}): {verdict}")
if ratio < floor:
    sys.exit(
        f"error: instrumented hot-path ratio {ratio:.3f} regressed more "
        f"than {MAX_REGRESSION:.0%} below the {REFERENCE_RATIO:.3f} "
        "reference — instrumentation is leaking onto the packet hot path")
EOF

python3 - "$frontier" <<'EOF'
import json
import sys

frontier_path = sys.argv[1]
doc = json.load(open(frontier_path))

per_backend = {
    p["backend"]: p for p in doc.get("points", [])
    if p.get("system") == "mars" and "backend" in p
}
missing = {"postcard", "int-md", "histogram"} - per_backend.keys()
if missing:
    sys.exit(f"error: {frontier_path} missing mars points for {missing}")

hist = per_backend["histogram"]["inband_bytes_per_packet"]
post = per_backend["postcard"]["inband_bytes_per_packet"]
verdict = "ok" if hist < post else "REGRESSION"
print(f"histogram in-band {hist:.2f} B/pkt vs postcard {post:.2f}: {verdict}")
if hist >= post:
    sys.exit(
        f"error: histogram backend spends {hist:.2f} in-band bytes/packet, "
        f"not below postcard's {post:.2f} — the compact-marker accounting "
        "regressed and the backend no longer earns its accuracy cost")
EOF

python3 - "$gray" <<'EOF'
import json
import sys

FLAP_RECALL3_FLOOR = 0.90  # recorded 1.00 at 20 trials; allow seed noise

gray_path = sys.argv[1]
doc = json.load(open(gray_path))

kinds = {k["kind"]: k for k in doc.get("kinds", [])}
flap = kinds.get("flap")
if flap is None:
    sys.exit(f"error: {gray_path} has no flap record")

accum = flap["recall3_accum"]
single = flap["recall3_single"]
ok = accum >= FLAP_RECALL3_FLOOR and accum >= single
verdict = "ok" if ok else "REGRESSION"
print(f"flap Recall@3 accumulated {accum:.2f} vs single-window {single:.2f} "
      f"(floor {FLAP_RECALL3_FLOOR:.2f}): {verdict}")
if accum < FLAP_RECALL3_FLOOR:
    sys.exit(
        f"error: flap Recall@3 with accumulation is {accum:.2f}, below the "
        f"{FLAP_RECALL3_FLOOR:.2f} floor — the evidence accumulator no "
        "longer keeps flapping links localized")
if accum < single:
    sys.exit(
        f"error: accumulation ({accum:.2f}) ranks flapping links WORSE than "
        f"single-window SBFL ({single:.2f}) — accumulated evidence is being "
        "outvoted by ambient noise")
EOF
