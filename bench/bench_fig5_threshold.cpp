// Fig. 5 — dynamic vs static thresholds under a diurnally varying load.
//
// A latency stream follows the day's traffic curve; a genuine anomaly
// spike is injected near the daily peak. A static threshold either fires
// all through the peak (set low) or misses the spike (set high); the
// reservoir's dynamic threshold tracks the curve and catches only the
// spike. We print the time series of signal + both thresholds, and the
// resulting alarm counts.
//
// The dynamic-threshold series is collected by the observability Sampler:
// the reservoir's threshold is a registered gauge, latency points feed the
// reservoir as simulator events offset half a tick, and the epoch-aligned
// sampler reads the gauge once per simulated minute — sample k therefore
// sees the threshold after inputs 0..k-1, exactly the "threshold before
// this point" the figure plots.

#include <benchmark/benchmark.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "detect/reservoir.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace mars;

struct Point {
  double t_hours;
  double latency_us;
  bool anomaly;  // ground truth
};

/// One synthetic "day" of per-epoch latencies: a diurnal base curve with
/// jitter and one true anomaly burst at hour 14.
std::vector<Point> make_day(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Point> day;
  for (int step = 0; step < 24 * 60; ++step) {  // one point per minute
    const double hours = step / 60.0;
    const double diurnal =
        1000.0 + 600.0 * std::sin((hours - 8.0) / 24.0 * 2.0 *
                                  std::numbers::pi);
    double latency = diurnal * rng.uniform(0.9, 1.15);
    bool anomaly = false;
    if (hours >= 14.0 && hours < 14.2) {  // 12-minute incident
      latency = diurnal * rng.uniform(2.5, 4.0);
      anomaly = true;
    }
    day.push_back(Point{hours, latency, anomaly});
  }
  return day;
}

struct Outcome {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
};

template <typename ThresholdFn>
Outcome evaluate(const std::vector<Point>& day, ThresholdFn&& threshold_at) {
  Outcome out;
  for (const auto& p : day) {
    const bool flagged = p.latency_us > threshold_at(p);
    if (flagged && p.anomaly) ++out.true_positives;
    if (flagged && !p.anomaly) ++out.false_positives;
    if (!flagged && p.anomaly) ++out.false_negatives;
  }
  return out;
}

void BM_ReservoirDayStream(benchmark::State& state) {
  const auto day = make_day(3);
  for (auto _ : state) {
    detect::Reservoir reservoir({.volume = 64, .warmup = 30});
    for (const auto& p : day) {
      benchmark::DoNotOptimize(reservoir.input(p.latency_us));
    }
  }
}
BENCHMARK(BM_ReservoirDayStream);

}  // namespace

int main(int argc, char** argv) {
  const auto day = make_day(3);

  // Static thresholds an operator might pick: low (peak-sensitive) and
  // high (spike-insensitive).
  const double static_low = 1500.0, static_high = 3200.0;

  // Dynamic threshold: reservoir updated online. The volume sets the
  // adaptation time constant; it must be well under the diurnal period or
  // the threshold lags the curve.
  detect::ReservoirConfig rcfg;
  rcfg.volume = 64;
  rcfg.warmup = 30;
  rcfg.relative_margin = 0.3;
  detect::Reservoir reservoir(rcfg);

  // One simulated minute per point. Inputs land at k+0.5 min; the sampler
  // ticks on whole minutes, so sample k reads the threshold that was in
  // force when point k arrived.
  sim::Simulator simulator;
  const sim::Time minute = 60 * sim::kSecond;
  for (std::size_t k = 0; k < day.size(); ++k) {
    simulator.schedule_at(
        static_cast<sim::Time>(k) * minute + minute / 2,
        [&reservoir, latency = day[k].latency_us] {
          reservoir.input(latency);
        });
  }
  obs::MetricsRegistry registry;
  registry.gauge("reservoir.threshold",
                 [&reservoir] { return reservoir.threshold(); });
  registry.gauge("reservoir.fill", [&reservoir, &rcfg] {
    return static_cast<double>(reservoir.size()) /
           static_cast<double>(rcfg.volume);
  });
  obs::SeriesStore series;
  obs::Sampler sampler(
      simulator, registry, series,
      {.period = minute,
       .until = static_cast<sim::Time>(day.size() - 1) * minute});
  sampler.start();
  simulator.run(static_cast<sim::Time>(day.size()) * minute);
  registry.remove_gauges();

  const std::vector<double>& dynamic_thresholds =
      *series.column("reservoir.threshold");

  std::printf("== Fig. 5: thresholds across one diurnal day ==\n");
  std::printf("  hour | load latency | static-low | static-high | dynamic\n");
  for (std::size_t i = 0; i < day.size(); i += 90) {  // every 1.5h
    std::printf("  %4.1f | %12.0f | %10.0f | %11.0f | %7.0f\n",
                day[i].t_hours, day[i].latency_us, static_low, static_high,
                dynamic_thresholds[i]);
  }

  std::size_t idx = 0;
  const auto low = evaluate(day, [&](const Point&) { return static_low; });
  const auto high = evaluate(day, [&](const Point&) { return static_high; });
  idx = 0;
  const auto dyn = evaluate(
      day, [&](const Point&) { return dynamic_thresholds[idx++]; });
  std::printf("\n  detector     | TP | FP  | FN\n");
  std::printf("  static-low   | %2d | %3d | %2d   (false alarms at peak)\n",
              low.true_positives, low.false_positives, low.false_negatives);
  std::printf("  static-high  | %2d | %3d | %2d   (misses the spike)\n",
              high.true_positives, high.false_positives,
              high.false_negatives);
  std::printf("  dynamic      | %2d | %3d | %2d\n\n", dyn.true_positives,
              dyn.false_positives, dyn.false_negatives);

  // One day can flatter a detector: replay the trio over independently
  // seeded days in parallel and pool the confusion counts. The dynamic
  // threshold here is read straight off the online reservoir (the value
  // in force when each point arrives), no sampler needed.
  constexpr std::size_t kDays = 8;
  parallel::ThreadPool pool;
  const auto day_outcomes = parallel::parallel_map(
      pool, kDays, [&](std::size_t d) -> std::array<Outcome, 3> {
        const auto one_day = make_day(3 + d);
        detect::Reservoir day_reservoir(rcfg);
        Outcome dyn_day;
        for (const auto& p : one_day) {
          const bool flagged = day_reservoir.input(p.latency_us);
          if (flagged && p.anomaly) ++dyn_day.true_positives;
          if (flagged && !p.anomaly) ++dyn_day.false_positives;
          if (!flagged && p.anomaly) ++dyn_day.false_negatives;
        }
        return {evaluate(one_day, [&](const Point&) { return static_low; }),
                evaluate(one_day, [&](const Point&) { return static_high; }),
                dyn_day};
      });
  std::array<Outcome, 3> pooled{};
  for (const auto& outcomes : day_outcomes) {
    for (std::size_t i = 0; i < pooled.size(); ++i) {
      pooled[i].true_positives += outcomes[i].true_positives;
      pooled[i].false_positives += outcomes[i].false_positives;
      pooled[i].false_negatives += outcomes[i].false_negatives;
    }
  }
  std::printf("  pooled over %zu seeded days:\n", kDays);
  std::printf("  detector     |  TP |  FP  |  FN\n");
  const char* labels[3] = {"static-low", "static-high", "dynamic"};
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    std::printf("  %-12s | %3d | %4d | %3d\n", labels[i],
                pooled[i].true_positives, pooled[i].false_positives,
                pooled[i].false_negatives);
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
