#!/usr/bin/env bash
# Re-measure the PathID collision audit and refresh the `current` section
# of BENCH_pathid_audit.json. The `reference_8core` section is the
# recorded multi-core run (see the file's `method` note) and is preserved
# across refreshes so the construction-speedup claim stays anchored: on a
# single-core container the parallel build degenerates to the sequential
# one (parallel_threads records what actually ran). The collision grid is
# deterministic and must be identical on every host — the regression gate
# exact-matches it.
#
# Usage: bench/run_pathid_audit.sh [output.json]
#   BUILD_DIR overrides the build directory (default: <repo>/build).
#   AUDIT_K picks the construction-timing fabric (default 16; CI smoke
#   uses 8 to stay under a second).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-$repo_root/build}
out=${1:-$repo_root/BENCH_pathid_audit.json}
bench_bin=$build_dir/bench/bench_pathid_memory
audit_k=${AUDIT_K:-16}

if [[ ! -x $bench_bin ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir --target bench_pathid_memory)" >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

"$bench_bin" --audit-out "$raw" --audit-k "$audit_k" \
  --benchmark_filter=PathRegistryBuild/4 --benchmark_min_time=0.01

python3 - "$raw" "$out" "$repo_root/BENCH_pathid_audit.json" <<'EOF'
import json
import sys

raw_path, out_path, committed_path = sys.argv[1:4]

raw = json.load(open(raw_path))

# Merge into the output file if it exists; otherwise seed a new file from
# the committed record so the reference section carries over.
try:
    doc = json.load(open(out_path))
except FileNotFoundError:
    try:
        doc = json.load(open(committed_path))
    except FileNotFoundError:
        doc = {'benchmark': 'bench_pathid_audit'}
doc['current'] = {'grid': raw['grid'], 'construction': raw['construction']}

json.dump(doc, open(out_path, 'w'), indent=2)
print(f"wrote {out_path}")
EOF
