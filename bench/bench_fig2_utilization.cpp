// Fig. 2 — CDF of link utilization, core layer vs edge layer.
//
// The motivation for edge-only telemetry storage: core links run hotter
// than edge links, so pushing the storage burden to edge switches relieves
// the busiest part of the fabric. We run the background workload (inter-
// pod-heavy, as in data-center traffic studies) and print the utilization
// CDFs per layer — the core curve should sit to the right.
//
// Collection goes through the observability layer: scrape_network
// registers one lazy utilization gauge per link direction, classified
// edge/core by name prefix, and a virtual-time Sampler scrapes them into
// an epoch-aligned series. The CDF reads the final row.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "obs/net_scrape.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/traffic_gen.hpp"

namespace {

using namespace mars;
using namespace mars::sim::literals;

struct UtilSample {
  std::vector<double> edge;  // edge<->agg directions
  std::vector<double> core;  // agg<->core directions
};

UtilSample measure(double inter_pod_fraction, sim::Time duration,
                   std::uint64_t seed) {
  sim::Simulator simulator;
  // Production fabrics oversubscribe the core (Benson et al. observe the
  // consequence: core links run hotter). 2:1 here.
  auto ft = net::build_fat_tree({.k = 4, .edge_agg_gbps = 0.008,
                                 .agg_core_gbps = 0.004});
  net::Network network(simulator, ft.topology);
  workload::TrafficGenerator traffic(network, seed);
  workload::BackgroundConfig cfg;
  cfg.flows = 40;
  cfg.pps = 250.0;
  cfg.inter_pod_fraction = inter_pod_fraction;
  traffic.add_background(cfg, ft.edge, 4);

  obs::MetricsRegistry registry;
  obs::scrape_network(network, registry,
                      {.per_port = false, .link_utilization = true,
                       .totals = false});
  obs::SeriesStore series;
  obs::Sampler sampler(simulator, registry, series,
                       {.period = 500 * sim::kMillisecond,
                        .until = duration});
  sampler.start();

  traffic.start();
  simulator.run(duration);
  sampler.sample_now();  // final off-grid scrape at end-of-run
  registry.remove_gauges();

  // The gauge name carries the Fig. 2 layer classification:
  //   net.link.{edge|core}.{up}-{down}.util
  UtilSample sample;
  for (const std::string& name : series.names()) {
    const double value = series.last(name, 0.0);
    if (name.rfind("net.link.edge.", 0) == 0) {
      sample.edge.push_back(value);
    } else if (name.rfind("net.link.core.", 0) == 0) {
      sample.core.push_back(value);
    }
  }
  return sample;
}

void print_cdf(const char* label, std::vector<double> values) {
  std::printf("  %-11s", label);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    std::printf("  p%-3.0f=%5.3f", q * 100, util::quantile(values, q));
  }
  std::printf("  mean=%5.3f\n", util::mean(values));
}

void BM_UtilizationRun(benchmark::State& state) {
  for (auto _ : state) {
    auto sample = measure(0.7, 2_s, 99);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_UtilizationRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Fig. 2: link utilization CDF, edge vs core layer ==\n");
  std::printf("(inter-pod-heavy traffic concentrates on the core; the core "
              "CDF should sit right of the edge CDF)\n");
  for (const double frac : {0.5, 0.7, 0.9}) {
    std::printf(" inter-pod fraction %.1f:\n", frac);
    auto sample = measure(frac, 10_s, 7);
    print_cdf("edge links", sample.edge);
    print_cdf("core links", sample.core);
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
