// Fig. 3 — header size for path recording, and switch memory of the
// path-encoding schemes.
//
// Left plot: INT-MD embeds per-hop metadata so the header grows with the
// path; IntSight and MARS carry a fixed-width id. Right plot: IntSight
// pays MAT entries for every path at every hop; MARS pays only for hash
// conflicts.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "control/path_registry.hpp"
#include "net/fat_tree.hpp"
#include "net/packet.hpp"

namespace {

using namespace mars;

// Header models (bytes on the wire).
constexpr std::uint32_t kIntMdPerHopBytes = 8;  // INT-MD metadata per hop
constexpr std::uint32_t kIntMdShimBytes = 12;   // INT shim + header
constexpr std::uint32_t kIntSightHeaderBytes = 33;  // fixed (paper §5.5)

std::uint32_t mars_header_bytes(bool telemetry_packet) {
  // 1B PathID field on every packet; 11B INT header on sampled packets.
  return telemetry_packet ? 1 + net::IntHeader::kWireBytes : 1;
}

void BM_HeaderEncode(benchmark::State& state) {
  // Microbenchmark of the per-hop PathID update itself.
  const telemetry::PathIdConfig cfg{};
  std::uint32_t id = 0;
  for (auto _ : state) {
    id = telemetry::update_path_id(cfg, id, 7, 1, 2, 0);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_HeaderEncode);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Fig. 3 (left): INT header bytes vs path length ==\n");
  std::printf("  hops | INT-MD | IntSight | MARS(telemetry) | MARS(naive)\n");
  for (int hops = 1; hops <= 10; ++hops) {
    std::printf("  %4d | %6u | %8u | %15u | %11u\n", hops,
                kIntMdShimBytes + kIntMdPerHopBytes * hops,
                kIntSightHeaderBytes, mars_header_bytes(true),
                mars_header_bytes(false));
  }

  std::printf("\n== Fig. 3 (right): switch memory of path encodings ==\n");
  std::printf("  K | IntSight MAT bytes | MARS MAT bytes\n");
  for (const int k : {4, 6, 8}) {
    const auto ft = net::build_fat_tree({.k = k});
    const net::RoutingTable routing(ft.topology);
    const control::PathRegistry registry(ft.topology, routing, {});
    std::printf("  %d | %18zu | %14zu\n", k,
                registry.intsight_memory_bytes(),
                registry.mars_memory_bytes());
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
