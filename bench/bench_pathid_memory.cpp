// §5.5 "Switch Memory Usage for PathID" — MAT entries and bytes for the
// PathID scheme (MARS: entries only on hash conflicts) versus IntSight
// (one entry per hop of every path).
//
// Paper numbers for K=4: IntSight 512 entries x ~7B; MARS 48 entries x
// ~10B with CRC16/CRC32, a ~43.6% memory saving. We reproduce the shape:
// MARS needs entries only where hashes collide, so M_IS > M_MS always,
// and the gap widens with topology size.
//
// --audit-out FILE additionally runs the collision-rate-vs-K grid and the
// sequential-vs-parallel construction timing, and writes them as JSON for
// bench/run_pathid_audit.sh to merge into BENCH_pathid_audit.json.
// --audit-k N picks the construction-timing fabric (default 16; the CI
// smoke uses 8 to stay under a second). Both flags are consumed before
// google-benchmark sees argv.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>

#include "control/path_registry.hpp"
#include "control/path_registry_cache.hpp"
#include "net/fat_tree.hpp"

namespace {

using namespace mars;

void report(int k, telemetry::HashKind hash, std::uint32_t width) {
  const auto ft = net::build_fat_tree({.k = k});
  const net::RoutingTable routing(ft.topology);
  const control::PathRegistry registry(ft.topology, routing,
                                       {hash, width});
  const double mars_bytes = static_cast<double>(registry.mars_memory_bytes());
  const double intsight_bytes =
      static_cast<double>(registry.intsight_memory_bytes());
  const double saving =
      intsight_bytes > 0 ? 100.0 * (1.0 - mars_bytes / intsight_bytes) : 0.0;
  std::printf(
      "  K=%d %-6s width=%2u | paths %4zu | MARS MAT %4zu entries (%6.0f B) "
      "| IntSight %5zu entries (%7.0f B) | saving %5.1f%% | conflict-free "
      "%s\n",
      k, hash == telemetry::HashKind::kCrc16 ? "CRC16" : "CRC32", width,
      registry.path_count(), registry.mat_entry_count(), mars_bytes,
      registry.intsight_memory_bytes() /
          control::PathRegistry::kIntSightMatEntryBytes,
      intsight_bytes, saving, registry.conflict_free() ? "yes" : "NO");
}

// One collision-census row: how does the initial collision count (before
// any MAT separation) and the MAT cost scale with fabric size and PathID
// width? Deterministic on every host — the regression gate exact-matches
// these numbers against the committed record.
void audit_grid_row(std::FILE* out, int k, telemetry::HashKind hash,
                    std::uint32_t width, bool last) {
  const auto ft = net::build_fat_tree({.k = k});
  const net::RoutingTable routing(ft.topology);
  const control::PathRegistry reg(ft.topology, routing, {hash, width});
  const control::PathAuditReport& a = reg.audit();
  std::fprintf(
      out,
      "    {\"k\": %d, \"hash\": \"%s\", \"width_bits\": %u, "
      "\"paths\": %zu, \"id_space\": %zu, \"initial_collisions\": %zu, "
      "\"collision_rate\": %.6f, \"residual_collisions\": %zu, "
      "\"mat_entries\": %zu, \"rounds\": %d, "
      "\"pigeonhole_infeasible\": %s, \"conflict_free\": %s}%s\n",
      k, telemetry::hash_name(hash), width, a.path_count, a.id_space,
      a.initial_collisions,
      a.path_count > 0
          ? static_cast<double>(a.initial_collisions) /
                static_cast<double>(a.path_count)
          : 0.0,
      a.residual_collisions, a.mat_entries, a.rounds,
      a.pigeonhole_infeasible ? "true" : "false",
      a.conflict_free ? "true" : "false", last ? "" : ",");
}

// Sequential-vs-parallel construction timing plus the cache round-trip.
// The speedup claim lives in the committed record's reference_8core
// section; on single-core hosts the parallel row degenerates to the
// sequential one (build_threads records how many threads actually ran, so
// the gate knows when the comparison is meaningful).
void audit_construction(std::FILE* out, int k) {
  const telemetry::PathIdConfig cfg{telemetry::HashKind::kCrc32, 32};
  const auto ft = net::build_fat_tree({.k = k});
  const net::RoutingTable routing(ft.topology);

  const control::PathRegistry seq(ft.topology, routing, cfg, 1);
  const control::PathRegistry par(ft.topology, routing, cfg, 0);

  auto& cache = control::PathRegistryCache::instance();
  cache.clear();
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto cold = cache.get_or_build(ft.topology, routing, cfg, 0);
  const auto t1 = clock::now();
  const auto hit = cache.get_or_build(ft.topology, routing, cfg, 0);
  const auto t2 = clock::now();
  const double cold_s = std::chrono::duration<double>(t1 - t0).count();
  const double hit_s = std::chrono::duration<double>(t2 - t1).count();
  if (cold.get() != hit.get()) {
    std::fprintf(stderr, "error: cache returned a different registry\n");
    std::exit(1);
  }
  cache.clear();

  const control::PathAuditReport& a = seq.audit();
  std::fprintf(
      out,
      "  \"construction\": {\"k\": %d, \"hash\": \"%s\", "
      "\"width_bits\": %u, \"paths\": %zu, \"hops\": %zu, "
      "\"initial_collisions\": %zu, \"mat_entries\": %zu, "
      "\"conflict_free\": %s,\n"
      "    \"sequential_seconds\": %.4f,\n"
      "    \"parallel_seconds\": %.4f, \"parallel_threads\": %zu,\n"
      "    \"cache_cold_seconds\": %.4f, \"cache_hit_seconds\": %.6f}\n",
      k, telemetry::hash_name(cfg.hash), cfg.width_bits, a.path_count,
      a.hop_count, a.initial_collisions, a.mat_entries,
      a.conflict_free ? "true" : "false", a.build_seconds,
      par.audit().build_seconds, par.audit().build_threads, cold_s, hit_s);

  if (seq.mat() != par.mat() ||
      a.initial_collisions != par.audit().initial_collisions) {
    std::fprintf(stderr,
                 "error: parallel build diverged from sequential build\n");
    std::exit(1);
  }
}

void write_audit(const std::string& path, int construction_k) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"grid\": [\n");
  const int ks[] = {4, 6, 8};
  const std::uint32_t widths[] = {10, 12, 14, 16};
  for (std::size_t i = 0; i < std::size(ks); ++i) {
    for (std::size_t w = 0; w < std::size(widths); ++w) {
      const bool last =
          i + 1 == std::size(ks) && w + 1 == std::size(widths);
      audit_grid_row(out, ks[i], telemetry::HashKind::kCrc16, widths[w],
                     last);
    }
  }
  std::fprintf(out, "  ],\n");
  audit_construction(out, construction_k);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote PathID audit report to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Consume our flags before google-benchmark parses the rest.
  std::string audit_out;
  int audit_k = 16;
  for (int i = 1; i < argc;) {
    const bool is_out = std::strcmp(argv[i], "--audit-out") == 0;
    const bool is_k = std::strcmp(argv[i], "--audit-k") == 0;
    if ((is_out || is_k) && i + 1 < argc) {
      if (is_out) audit_out = argv[i + 1];
      if (is_k) audit_k = std::atoi(argv[i + 1]);
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
    } else {
      ++i;
    }
  }

  std::printf("== §5.5 PathID switch-memory comparison ==\n");
  std::printf("(paper, K=4: IntSight 512 entries/3584B vs MARS 48 "
              "entries/480B -> 43.6%% saving with their entry census)\n");
  for (const int k : {4, 6, 8}) {
    report(k, telemetry::HashKind::kCrc16, 16);
  }
  report(4, telemetry::HashKind::kCrc32, 32);
  report(4, telemetry::HashKind::kCrc16, 12);
  report(4, telemetry::HashKind::kCrc16, 10);
  std::printf("\n");

  if (!audit_out.empty()) write_audit(audit_out, audit_k);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

namespace {

void BM_PathRegistryBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto ft = net::build_fat_tree({.k = k});
  const net::RoutingTable routing(ft.topology);
  for (auto _ : state) {
    control::PathRegistry registry(ft.topology, routing, {});
    benchmark::DoNotOptimize(registry.mat_entry_count());
  }
  const control::PathRegistry registry(ft.topology, routing, {});
  state.counters["paths"] = static_cast<double>(registry.path_count());
  state.counters["mat_entries"] =
      static_cast<double>(registry.mat_entry_count());
}
BENCHMARK(BM_PathRegistryBuild)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
