// §5.5 "Switch Memory Usage for PathID" — MAT entries and bytes for the
// PathID scheme (MARS: entries only on hash conflicts) versus IntSight
// (one entry per hop of every path).
//
// Paper numbers for K=4: IntSight 512 entries x ~7B; MARS 48 entries x
// ~10B with CRC16/CRC32, a ~43.6% memory saving. We reproduce the shape:
// MARS needs entries only where hashes collide, so M_IS > M_MS always,
// and the gap widens with topology size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "control/path_registry.hpp"
#include "net/fat_tree.hpp"

namespace {

using namespace mars;

void report(int k, telemetry::HashKind hash, std::uint32_t width) {
  const auto ft = net::build_fat_tree({.k = k});
  const net::RoutingTable routing(ft.topology);
  const control::PathRegistry registry(ft.topology, routing,
                                       {hash, width});
  const double mars_bytes = static_cast<double>(registry.mars_memory_bytes());
  const double intsight_bytes =
      static_cast<double>(registry.intsight_memory_bytes());
  const double saving =
      intsight_bytes > 0 ? 100.0 * (1.0 - mars_bytes / intsight_bytes) : 0.0;
  std::printf(
      "  K=%d %-6s width=%2u | paths %4zu | MARS MAT %4zu entries (%6.0f B) "
      "| IntSight %5zu entries (%7.0f B) | saving %5.1f%% | conflict-free "
      "%s\n",
      k, hash == telemetry::HashKind::kCrc16 ? "CRC16" : "CRC32", width,
      registry.path_count(), registry.mat_entry_count(), mars_bytes,
      registry.intsight_memory_bytes() /
          control::PathRegistry::kIntSightMatEntryBytes,
      intsight_bytes, saving, registry.conflict_free() ? "yes" : "NO");
}

void BM_PathRegistryBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto ft = net::build_fat_tree({.k = k});
  const net::RoutingTable routing(ft.topology);
  for (auto _ : state) {
    control::PathRegistry registry(ft.topology, routing, {});
    benchmark::DoNotOptimize(registry.mat_entry_count());
  }
  const control::PathRegistry registry(ft.topology, routing, {});
  state.counters["paths"] = static_cast<double>(registry.path_count());
  state.counters["mat_entries"] =
      static_cast<double>(registry.mat_entry_count());
}
BENCHMARK(BM_PathRegistryBuild)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== §5.5 PathID switch-memory comparison ==\n");
  std::printf("(paper, K=4: IntSight 512 entries/3584B vs MARS 48 "
              "entries/480B -> 43.6%% saving with their entry census)\n");
  for (const int k : {4, 6, 8}) {
    report(k, telemetry::HashKind::kCrc16, 16);
  }
  report(4, telemetry::HashKind::kCrc32, 32);
  report(4, telemetry::HashKind::kCrc16, 12);
  report(4, telemetry::HashKind::kCrc16, 10);
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
