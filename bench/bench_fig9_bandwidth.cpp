// Fig. 9 extended — the bandwidth-vs-localization-accuracy frontier.
//
// The original Fig. 9 compared the four systems' byte overheads at one
// operating point. With pluggable telemetry backends the interesting
// question becomes a frontier: for each operating point (MARS under
// postcard / int-md / histogram export, plus the three baselines), how
// many in-band bytes per delivered packet does it spend, and what
// Recall@1 / Recall@3 does that buy across the Table-1 fault suite?
//
// Expected shape: int-md pays the most in band (per-hop metadata stack)
// for hop-exact evidence; postcard is the paper's operating point;
// histogram undercuts postcard's in-band AND report-plane bytes at an
// accuracy cost (quantized latency, no queue depths); SyNDB buys its
// near-perfect recall with enormous diagnosis traffic.
//
// Output: a text table plus BENCH_telemetry_frontier.json (pass
// --frontier-out FILE to redirect). MARS_TRIALS sets the per-cause trial
// count (default 6; CI smoke uses 1).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "mars/scenario.hpp"
#include "mars/sweep.hpp"
#include "metrics/ranking.hpp"
#include "obs/json_writer.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/backend.hpp"

namespace {

using namespace mars;

constexpr faults::FaultKind kCauses[] = {
    faults::FaultKind::kMicroBurst, faults::FaultKind::kEcmpImbalance,
    faults::FaultKind::kProcessRateDecrease, faults::FaultKind::kDelay,
    faults::FaultKind::kDrop};

int trials_per_cause() {
  if (const char* env = std::getenv("MARS_TRIALS")) {
    return std::max(1, std::atoi(env));
  }
  return 6;
}

/// One point on the frontier: a system (MARS under one backend, or a
/// baseline) aggregated over the full fault suite.
struct FrontierPoint {
  std::string system;
  std::string backend;  ///< empty for baselines
  metrics::LocalizationStats stats;
  std::uint64_t telemetry_bytes = 0;
  std::uint64_t diagnosis_bytes = 0;
  std::uint64_t delivered = 0;
  int trials = 0;

  [[nodiscard]] double inband_bytes_per_packet() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(telemetry_bytes) /
                                static_cast<double>(delivered);
  }
};

std::vector<SweepPoint> suite_points(const std::vector<std::string>& systems,
                                     telemetry::BackendKind backend,
                                     int trials) {
  std::vector<SweepPoint> points;
  for (const auto cause : kCauses) {
    for (int i = 0; i < trials; ++i) {
      SweepPoint point;
      point.config =
          default_scenario(cause, 1000 + 37 * static_cast<std::uint64_t>(i));
      point.config.systems = systems;
      point.config.mars.pipeline.backend.kind = backend;
      point.label = std::string(faults::short_name(cause)) +
                    "/seed=" + std::to_string(point.config.seed);
      points.push_back(std::move(point));
    }
  }
  return points;
}

void fold_trials(const SweepResult& sweep, const std::string& system,
                 FrontierPoint& point) {
  for (const auto& trial : sweep.trials) {
    if (!trial.result.fault_injected) continue;
    const SystemOutcome& outcome = trial.result.outcome(system);
    point.stats.add(outcome.rank);
    point.telemetry_bytes += outcome.telemetry_bytes;
    point.diagnosis_bytes += outcome.diagnosis_bytes;
    point.delivered += trial.result.net_stats.delivered;
    ++point.trials;
  }
}

void print_point(const FrontierPoint& p) {
  const std::string label =
      p.backend.empty() ? p.system : p.system + "/" + p.backend;
  std::printf("  %-15s | %7.2f | %12.1f | %12.1f | %3.0f  %3.0f | %4d\n",
              label.c_str(), p.inband_bytes_per_packet(),
              static_cast<double>(p.telemetry_bytes) / 1e3,
              static_cast<double>(p.diagnosis_bytes) / 1e3,
              100 * p.stats.recall_at(1), 100 * p.stats.recall_at(3),
              p.trials);
}

void write_frontier_json(const std::string& path,
                         const std::vector<FrontierPoint>& points,
                         int trials) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  obs::JsonWriter w(out, 2);
  w.begin_object();
  w.member("bench", "telemetry_frontier");
  w.member("trials_per_cause", std::int64_t{trials});
  w.key("causes").begin_array();
  for (const auto cause : kCauses) w.value(faults::to_string(cause));
  w.end_array();
  w.key("points").begin_array();
  for (const auto& p : points) {
    w.begin_object();
    w.member("system", p.system);
    if (!p.backend.empty()) w.member("backend", p.backend);
    w.member("inband_bytes_per_packet", p.inband_bytes_per_packet());
    w.member("telemetry_bytes", p.telemetry_bytes);
    w.member("diagnosis_bytes", p.diagnosis_bytes);
    w.member("recall_at_1", p.stats.recall_at(1));
    w.member("recall_at_3", p.stats.recall_at(3));
    w.member("exam_score", p.stats.exam_score());
    w.member("trials", std::int64_t{p.trials});
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  std::fprintf(stderr, "wrote %zu frontier points to %s\n", points.size(),
               path.c_str());
}

void BM_ScenarioWithAllSystems(benchmark::State& state) {
  for (auto _ : state) {
    auto result = run_scenario(
        default_scenario(faults::FaultKind::kProcessRateDecrease, 5));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ScenarioWithAllSystems)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::string frontier_out = "BENCH_telemetry_frontier.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frontier-out") == 0 && i + 1 < argc) {
      frontier_out = argv[i + 1];
      // Hide the flag pair from google-benchmark's parser.
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }

  const int trials = trials_per_cause();
  parallel::ThreadPool pool;
  std::vector<FrontierPoint> points;

  // MARS once per telemetry backend: same fault suite, same seeds — only
  // the export mode moves, which is exactly the frontier's x axis.
  for (const auto kind :
       {telemetry::BackendKind::kPostcard, telemetry::BackendKind::kIntMd,
        telemetry::BackendKind::kHistogram}) {
    const auto sweep =
        run_sweep(pool, suite_points({"mars"}, kind, trials));
    FrontierPoint point;
    point.system = "mars";
    point.backend = telemetry::to_string(kind);
    fold_trials(sweep, "mars", point);
    points.push_back(std::move(point));
  }

  // The baselines are backend-independent: one sweep covers all three.
  {
    const auto sweep = run_sweep(
        pool, suite_points({"spidermon", "intsight", "syndb"},
                           telemetry::BackendKind::kPostcard, trials));
    for (const char* system : {"spidermon", "intsight", "syndb"}) {
      FrontierPoint point;
      point.system = system;
      fold_trials(sweep, system, point);
      points.push_back(std::move(point));
    }
  }

  std::printf("== Telemetry frontier: in-band bytes vs localization "
              "accuracy (%d trials/cause) ==\n",
              trials);
  std::printf("  point           | B/pkt   | telemetry KB | diagnosis KB | "
              "R@1  R@3 | trials\n");
  for (const auto& point : points) print_point(point);
  write_frontier_json(frontier_out, points, trials);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
