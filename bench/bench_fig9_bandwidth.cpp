// Fig. 9 — network bandwidth overhead of the four systems, split into
// telemetry (in-band header bytes crossing links) and diagnosis (bytes
// moved from the data plane to the control plane).
//
// Expected shape (paper): SyNDB has zero telemetry but enormous diagnosis
// traffic; IntSight's 33B header dominates telemetry; SpiderMon is light
// in-band but collects from ALL switches on demand; MARS is lightest
// overall and smallest in diagnosis (edge-only collection).
//
// Every system's byte counters are read from the scenario's observability
// registry (mars.* gauges from MarsSystem, {system}.* from each
// baseline's register_metrics) — one snapshot feeds the whole table.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "mars/scenario.hpp"
#include "mars/sweep.hpp"

namespace {

using namespace mars;

struct Row {
  const char* name;
  const char* prefix;
};

void print_rows(const char* label, const obs::MetricsSnapshot& snap,
                std::uint64_t app_bytes) {
  constexpr Row kRows[4] = {
      {"MARS", "mars."},
      {"SpiderMon", "spidermon."},
      {"IntSight", "intsight."},
      {"SyNDB", "syndb."},
  };
  std::printf(" %s (application bytes on wire: %.1f MB)\n", label,
              static_cast<double>(app_bytes) / 1e6);
  std::printf("  system    | telemetry KB | diagnosis KB | total KB | "
              "%% of app traffic\n");
  for (const auto& row : kRows) {
    const std::string prefix = row.prefix;
    const double telemetry = snap.gauge_or(prefix + "telemetry_bytes", 0.0);
    const double diagnosis = snap.gauge_or(prefix + "diagnosis_bytes", 0.0);
    const double total = telemetry + diagnosis;
    std::printf("  %-9s | %12.1f | %12.1f | %8.1f | %6.3f%%\n", row.name,
                telemetry / 1e3, diagnosis / 1e3, total / 1e3,
                100.0 * total / static_cast<double>(app_bytes));
  }
}

void BM_ScenarioWithAllSystems(benchmark::State& state) {
  for (auto _ : state) {
    auto result = run_scenario(
        default_scenario(faults::FaultKind::kProcessRateDecrease, 5));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ScenarioWithAllSystems)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Fig. 9: bandwidth overhead per system ==\n");
  std::vector<SweepPoint> points;
  for (const auto fault : {faults::FaultKind::kProcessRateDecrease,
                           faults::FaultKind::kMicroBurst}) {
    SweepPoint point;
    point.config = default_scenario(fault, 7);
    point.label = faults::to_string(fault);
    points.push_back(std::move(point));
  }
  SweepOptions options;
  options.collect_observability = true;
  const auto sweep = run_sweep(points, options);
  for (const auto& trial : sweep.trials) {
    // Approximate application bytes: delivered packets x mean wire size.
    const std::uint64_t app_bytes =
        trial.result.net_stats.delivered * 590ull;
    print_rows(trial.label.c_str(), trial.observability->snapshot,
               app_bytes);
    std::printf("\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
