// Sharded-simulation scale benchmark: events/sec vs shard count.
//
// Drives the conservative-lookahead engine (sim/sharded.hpp) directly —
// topology, partition, Network, background traffic — with no telemetry
// system deployed, so the measurement isolates the event loop itself:
// shard queues, the window barrier, cross-shard mailboxes. One data point
// is a multi-second simulation, so this is a plain flag-driven driver
// (like bench/run_sim_scale.sh expects), not a google-benchmark binary.
//
// The determinism invariant rides along for free: every shard count must
// execute the exact same number of events and inject the same number of
// packets as the 1-shard reference, or the binary exits nonzero.
//
// Usage:
//   bench_sim_scale [--k N] [--flows N] [--pps X] [--duration-ms N]
//                   [--propagation-us X] [--shards CSV] [--seed N]
//                   [--out FILE]
//
// Output: one JSON object with the machine's shard-count curve.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/partition.hpp"
#include "net/topology_registry.hpp"
#include "obs/json_writer.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/sharded.hpp"
#include "sim/time.hpp"
#include "workload/traffic_gen.hpp"

namespace {

struct Options {
  int k = 16;
  int flows = 100'000;
  double pps = 50.0;
  int duration_ms = 300;
  double propagation_us = 10.0;
  std::vector<int> shards = {1, 2, 4, 8};
  std::uint64_t seed = 16;
  std::string out;
};

struct Point {
  int shards = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t injected = 0;
  mars::sim::ShardSyncStats sync;
  std::vector<mars::sim::ShardStats> shard_stats;
  mars::net::Network::MailboxStats mailbox;
};

std::vector<int> parse_csv_ints(const char* s) {
  std::vector<int> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    out.push_back(static_cast<int>(std::strtol(p, &end, 10)));
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_sim_scale [--k N] [--flows N] [--pps X] "
               "[--duration-ms N]\n"
               "  [--propagation-us X] [--shards CSV] [--seed N] "
               "[--out FILE]\n");
  std::exit(2);
}

Point run_point(const Options& opt, int shards) {
  using mars::sim::Time;
  mars::net::TopologySpec spec;
  spec.name = "fat-tree";
  spec.k = opt.k;
  spec.edge_gbps = 10.0;
  spec.core_gbps = 40.0;
  spec.propagation =
      static_cast<Time>(opt.propagation_us * mars::sim::kMicrosecond);
  mars::net::BuiltFabric fabric =
      mars::net::TopologyRegistry::instance().build(spec);
  const mars::net::Partition partition =
      mars::net::partition_topology(fabric.topology, shards);

  mars::sim::ShardedConfig config;
  config.shards = shards;
  config.control_latency = 1 * mars::sim::kMillisecond;
  config.lookahead = config.control_latency;
  if (!partition.boundary_links.empty()) {
    config.lookahead =
        std::min(config.lookahead, partition.min_boundary_propagation);
  }

  mars::parallel::ThreadPool pool(static_cast<std::size_t>(shards));
  mars::sim::ShardedSimulator ssim(pool, config);
  mars::net::Network network(ssim, fabric.topology, partition);
  for (mars::net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    network.node(sw).set_queue_capacity(4096);
  }

  mars::workload::TrafficGenerator traffic(network, opt.seed);
  mars::workload::BackgroundConfig background;
  background.flows = opt.flows;
  background.pps = opt.pps;
  traffic.add_background(background, fabric.edge, fabric.pods);
  traffic.start();

  const Time until =
      static_cast<Time>(opt.duration_ms) * mars::sim::kMillisecond;
  const auto start = std::chrono::steady_clock::now();
  ssim.run(until);
  const auto stop = std::chrono::steady_clock::now();

  Point p;
  p.shards = shards;
  p.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  p.events = ssim.events_executed();
  p.injected = traffic.packets_injected();
  p.sync = ssim.sync_stats();
  p.shard_stats.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < ssim.shard_count(); ++i) {
    p.shard_stats.push_back(ssim.shard_stats(i));
  }
  p.mailbox = network.mailbox_stats();
  return p;
}

void write_report(std::ostream& out, const Options& opt,
                  const std::vector<Point>& points) {
  mars::obs::JsonWriter w(out);
  w.begin_object();
  w.member("benchmark", "bench_sim_scale");
  w.key("config").begin_object();
  w.member("topology", "fat-tree");
  w.member("k", std::int64_t{opt.k});
  w.member("flows", std::int64_t{opt.flows});
  w.member("pps", opt.pps);
  w.member("duration_ms", std::int64_t{opt.duration_ms});
  w.member("propagation_us", opt.propagation_us);
  w.member("seed", opt.seed);
  w.end_object();
  w.key("points").begin_array();
  for (const Point& p : points) {
    w.begin_object();
    w.member("shards", std::int64_t{p.shards});
    w.member("wall_ms", p.wall_ms);
    w.member("events", p.events);
    w.member("events_per_sec",
             p.wall_ms > 0 ? 1e3 * static_cast<double>(p.events) / p.wall_ms
                           : 0.0);
    w.member("injected", p.injected);
    w.member("windows", p.sync.windows);
    w.member("global_rounds", p.sync.global_rounds);
    w.member("lookahead_stalls", p.sync.lookahead_stalls);
    if (p.shards != points.front().shards && points.front().wall_ms > 0) {
      w.member("speedup_vs_first",
               points.front().wall_ms / std::max(p.wall_ms, 1e-9));
    }
    // PDES profiler: window-end attribution, mailbox volume, and per-shard
    // occupancy (see sim::ShardStats). Every window end is attributed to
    // exactly one cap, so the three counters sum to "windows".
    w.key("profile").begin_object();
    w.key("window_caps").begin_object();
    w.member("lookahead_stall", p.sync.lookahead_stalls);
    w.member("global_event", p.sync.windows_capped_by_global);
    w.member("end_of_run", p.sync.windows_to_end);
    w.end_object();
    w.key("mailbox").begin_object();
    w.member("drains", p.mailbox.drains);
    w.member("total_mail", p.mailbox.total_mail);
    w.member("max_batch", p.mailbox.max_batch);
    w.key("batch_hist").begin_array();
    for (const std::uint64_t n : p.mailbox.batch_hist) w.value(n);
    w.end_array();
    w.end_object();
    w.key("shards").begin_array();
    for (const mars::sim::ShardStats& s : p.shard_stats) {
      w.begin_object();
      w.member("windows", s.windows);
      w.member("busy_windows", s.busy_windows);
      w.member("busy_fraction", s.busy_fraction());
      w.member("window_events", s.window_events);
      w.member("max_window_events", s.max_window_events);
      w.key("window_event_hist").begin_array();
      for (const std::uint64_t n : s.window_event_hist) w.value(n);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--k") {
      opt.k = std::atoi(next());
    } else if (arg == "--flows") {
      opt.flows = std::atoi(next());
    } else if (arg == "--pps") {
      opt.pps = std::atof(next());
    } else if (arg == "--duration-ms") {
      opt.duration_ms = std::atoi(next());
    } else if (arg == "--propagation-us") {
      opt.propagation_us = std::atof(next());
    } else if (arg == "--shards") {
      opt.shards = parse_csv_ints(next());
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      opt.out = next();
    } else {
      usage();
    }
  }
  if (opt.k < 4 || opt.flows < 1 || opt.duration_ms < 1 ||
      opt.shards.empty()) {
    usage();
  }

  std::vector<Point> points;
  points.reserve(opt.shards.size());
  for (const int shards : opt.shards) {
    std::fprintf(stderr, "bench_sim_scale: k=%d flows=%d shards=%d ... ",
                 opt.k, opt.flows, shards);
    points.push_back(run_point(opt, shards));
    const Point& p = points.back();
    std::fprintf(stderr, "%.0f ms, %llu events (%.2f M events/s)\n",
                 p.wall_ms, static_cast<unsigned long long>(p.events),
                 p.wall_ms > 0
                     ? static_cast<double>(p.events) / p.wall_ms / 1e3
                     : 0.0);
    // Determinism gate: every shard count replays the 1-shard execution.
    if (p.events != points.front().events ||
        p.injected != points.front().injected) {
      std::fprintf(stderr,
                   "bench_sim_scale: DETERMINISM VIOLATION at %d shards "
                   "(events %llu vs %llu, injected %llu vs %llu)\n",
                   shards, static_cast<unsigned long long>(p.events),
                   static_cast<unsigned long long>(points.front().events),
                   static_cast<unsigned long long>(p.injected),
                   static_cast<unsigned long long>(points.front().injected));
      return 1;
    }
  }

  if (opt.out.empty()) {
    write_report(std::cout, opt, points);
  } else {
    std::ofstream file(opt.out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    write_report(file, opt, points);
  }
  return 0;
}
