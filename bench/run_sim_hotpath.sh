#!/usr/bin/env bash
# Re-measure the simulator hot path and refresh the `current` section of
# BENCH_sim_hotpath.json. The `baseline` section is the recorded
# pre-optimization measurement (see the file's `method` note) and is
# preserved across runs so the speedup stays anchored to the same point.
#
# Usage: bench/run_sim_hotpath.sh [output.json]
#   BUILD_DIR overrides the build directory (default: <repo>/build).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-$repo_root/build}
out=${1:-$repo_root/BENCH_sim_hotpath.json}
bench_bin=$build_dir/bench/bench_sim_hotpath

if [[ ! -x $bench_bin ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir --target bench_sim_hotpath)" >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

"$bench_bin" --benchmark_min_time=1 \
  --benchmark_out="$raw" --benchmark_out_format=json

python3 - "$raw" "$out" "$repo_root/BENCH_sim_hotpath.json" <<'EOF'
import json
import sys

raw_path, out_path, committed_path = sys.argv[1], sys.argv[2], sys.argv[3]
raw = json.load(open(raw_path))

results = {}
for b in raw['benchmarks']:
    entry = {'events_per_sec': round(b['events_per_sec'], 1)}
    for key in ('packets_per_sec', 'allocs_per_event', 'allocs_per_packet'):
        if key in b:
            entry[key] = round(b[key], 9)
    results[b['name']] = entry

# The instrumented-but-unattached variant is tracked separately: its only
# job is the pairwise ratio against the plain hot path from the SAME run
# (the zero-overhead-when-disabled guarantee, bound: >= 0.97).
instrumented = results.pop('BM_LeafSpine_HotPath_Instrumented', None)

# Merge into the output file if it exists; otherwise seed a new file from
# the committed record so the baseline (and thus the speedup) carries over.
try:
    doc = json.load(open(out_path))
except FileNotFoundError:
    try:
        doc = json.load(open(committed_path))
        doc.pop('current', None)
        doc.pop('speedup_leaf_spine_events_per_sec', None)
    except FileNotFoundError:
        doc = {'benchmark': 'bench_sim_hotpath'}

doc.setdefault('current', {})['results'] = results
base = doc.get('baseline', {}).get('results', {}).get('BM_LeafSpine_HotPath')
cur = results.get('BM_LeafSpine_HotPath')
if base and cur:
    doc['speedup_leaf_spine_events_per_sec'] = round(
        cur['events_per_sec'] / base['events_per_sec'], 3)
if instrumented and cur:
    doc['instrumented'] = {
        'description': 'BM_LeafSpine_HotPath_Instrumented: same replay with '
                       'a MetricsRegistry of lazy port gauges (never read) '
                       'and an idle SpanTracer constructed but unattached',
        'results': {'BM_LeafSpine_HotPath_Instrumented': instrumented},
    }
    doc['instrumented_unattached_ratio'] = round(
        instrumented['events_per_sec'] / cur['events_per_sec'], 3)

json.dump(doc, open(out_path, 'w'), indent=2)
print(f"wrote {out_path}")
EOF
