// Ablation — SBFL formula choice (DESIGN.md ablation #5).
//
// MARS scores culprit patterns with the relative risk (Eq. 1). The
// software-debugging literature offers alternatives (Tarantula, Ochiai,
// Jaccard, DStar2); this bench re-runs MARS-only localization trials
// with each formula and reports R@k/Exam side by side. Trials per cell
// via MARS_TRIALS (default 6).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "mars/scenario.hpp"
#include "mars/sweep.hpp"
#include "metrics/ranking.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace mars;

int trials_per_cell() {
  if (const char* env = std::getenv("MARS_TRIALS")) {
    return std::max(1, std::atoi(env));
  }
  return 6;
}

void BM_SingleMarsOnlyTrial(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = default_scenario(faults::FaultKind::kDrop, 77);
    cfg.systems = {"mars"};
    auto result = run_scenario(cfg);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SingleMarsOnlyTrial)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_per_cell();
  parallel::ThreadPool pool;
  const rca::SbflFormula formulas[] = {
      rca::SbflFormula::kRelativeRisk, rca::SbflFormula::kTarantula,
      rca::SbflFormula::kOchiai, rca::SbflFormula::kJaccard,
      rca::SbflFormula::kDstar2};
  const faults::FaultKind causes[] = {
      faults::FaultKind::kMicroBurst, faults::FaultKind::kProcessRateDecrease,
      faults::FaultKind::kDelay, faults::FaultKind::kDrop};

  std::printf("== SBFL formula ablation: MARS R@1/R@3/Exam per formula, %d "
              "trials x %zu causes ==\n",
              trials, std::size(causes));
  std::printf("  formula       |  R@1 |  R@3 | Exam\n");
  for (const auto formula : formulas) {
    std::vector<SweepPoint> points;
    points.reserve(static_cast<std::size_t>(trials) * std::size(causes));
    for (std::size_t i = 0; i < points.capacity(); ++i) {
      const auto cause = causes[i % std::size(causes)];
      const std::uint64_t seed = 2000 + 53 * (i / std::size(causes));
      SweepPoint point;
      point.config = default_scenario(cause, seed);
      point.config.systems = {"mars"};
      point.config.mars.rca.formula = formula;
      point.label = std::string(rca::to_string(formula)) + "/" +
                    faults::short_name(cause) + "/seed=" +
                    std::to_string(seed);
      points.push_back(std::move(point));
    }
    const auto sweep = run_sweep(pool, points);
    metrics::LocalizationStats stats;
    for (const auto& trial : sweep.trials) {
      stats.add(trial.result.fault_injected
                    ? trial.result.outcome("mars").rank
                    : std::nullopt);
    }
    std::printf("  %-13s | %4.0f | %4.0f | %4.1f\n",
                rca::to_string(formula), 100 * stats.recall_at(1),
                100 * stats.recall_at(3), stats.exam_score());
  }
  std::printf("(the paper's relative risk should lead or tie; Tarantula/"
              "Ochiai rank dense patterns similarly, DStar2 overweights "
              "high-coverage patterns)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
