// fault_drilldown — run one fault-injection trial and print everything an
// operator (or a developer tuning MARS) wants to see: the injected ground
// truth, each system's ranked culprit list, detection events, and overhead
// accounting.
//
// Usage: fault_drilldown [fault] [seed]
//   fault: microburst | ecmp | rate | delay | drop   (default: rate)

#include <cstdio>
#include <cstring>
#include <string>

#include "mars/scenario.hpp"

namespace {

mars::faults::FaultKind parse_fault(const char* arg) {
  const auto kind = mars::faults::kind_from_name(arg);
  if (!kind) {
    std::fprintf(stderr, "unknown fault '%s' (known: %s)\n", arg,
                 mars::faults::known_kind_names());
    std::exit(2);
  }
  return *kind;
}

void print_outcome(const mars::SystemOutcome& outcome) {
  std::printf("\n=== %s ===\n", outcome.system.c_str());
  std::printf("  triggered: %s\n", outcome.triggered ? "yes" : "no");
  std::printf("  telemetry bytes: %llu, diagnosis bytes: %llu\n",
              static_cast<unsigned long long>(outcome.telemetry_bytes),
              static_cast<unsigned long long>(outcome.diagnosis_bytes));
  if (outcome.rank) {
    std::printf("  ground-truth rank: %zu\n", *outcome.rank);
  } else {
    std::printf("  ground-truth rank: NOT FOUND\n");
  }
  const std::size_t n = std::min<std::size_t>(outcome.culprits.size(), 8);
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  %2zu. %s\n", i + 1, outcome.culprits[i].describe().c_str());
  }
  if (outcome.culprits.empty()) std::printf("  (empty culprit list)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto fault =
      argc > 1 ? parse_fault(argv[1])
               : mars::faults::FaultKind::kProcessRateDecrease;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 11;

  auto cfg = mars::default_scenario(fault, seed);
  const auto result = mars::run_scenario(cfg);

  std::printf("MARS fault drill-down\n");
  std::printf("  seed: %llu\n", static_cast<unsigned long long>(seed));
  if (!result.fault_injected) {
    std::printf("  fault injection FAILED (no viable target)\n");
    return 1;
  }
  for (const auto& truth : result.truths) {
    std::printf("  injected: %s at t=%.2fs for %.2fs\n",
                truth.describe().c_str(), mars::sim::to_seconds(truth.start),
                mars::sim::to_seconds(truth.duration));
  }
  std::printf("  packets injected: %llu, delivered: %llu, dropped: %llu\n",
              static_cast<unsigned long long>(result.net_stats.injected),
              static_cast<unsigned long long>(result.net_stats.delivered),
              static_cast<unsigned long long>(result.net_stats.dropped));

  for (const auto& outcome : result.systems) print_outcome(outcome);
  return 0;
}
