// quickstart — the smallest complete MARS deployment.
//
// Builds a K=4 fat-tree, attaches the MARS data plane + control plane,
// runs background traffic, throttles one switch port mid-run, and prints
// the ranked culprit list MARS hands the operator.
//
//   $ quickstart
//
// Walk through the comments top to bottom; every step is the public API.

#include <cstdio>

#include "faults/injector.hpp"
#include "mars/mars.hpp"
#include "rca/report.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic_gen.hpp"

int main() {
  using namespace mars;
  using namespace mars::sim::literals;

  // 1. A discrete-event simulator drives everything.
  sim::Simulator simulator;

  // 2. Build the network substrate: a K=4 fat-tree of BMv2-scale switches
  //    (8 Mbps links ~ a software switch's forwarding budget).
  auto ft = net::build_fat_tree(
      {.k = 4, .edge_agg_gbps = 0.007, .agg_core_gbps = 0.010});
  net::Network network(simulator, ft.topology);
  for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    network.node(sw).set_queue_capacity(4096);
  }

  // 3. Deploy MARS: pipeline on every switch, PathID registry, control
  //    plane with per-flow reservoirs, RCA engine. One call wires it all.
  //    The reservoir knobs match this workload's noise floor (see
  //    default_scenario() for the rationale).
  MarsConfig mars_config;
  mars_config.controller.reservoir.relative_margin = 0.3;
  mars_config.controller.response_window = 500 * sim::kMillisecond;
  MarsSystem mars_system(network, mars_config);
  mars_system.start();

  // 4. Background traffic: 40 flows at ~250 pps between edge switches.
  workload::TrafficGenerator traffic(network, /*seed=*/7);
  workload::BackgroundConfig background;
  background.flows = 40;
  background.pps = 250.0;
  traffic.add_background(background, ft.edge, /*pods=*/4);
  traffic.start();

  // 5. Break something at t=3s: one port's processing rate collapses
  //    below 100 pps for one second (paper §5.2).
  faults::FaultInjector injector(network, traffic, /*seed=*/99);
  const auto truth = injector.inject(
      faults::FaultKind::kProcessRateDecrease, 3_s);

  // 6. Run six simulated seconds (a second of tail lets evidence stuck
  //    behind the throttled port flush and refine the diagnosis).
  simulator.run(6_s);

  // 7. Read the diagnosis.
  std::printf("injected : %s\n",
              truth ? truth->describe().c_str() : "(nothing)");
  std::printf("packets  : %llu delivered, %llu dropped\n",
              static_cast<unsigned long long>(network.stats().delivered),
              static_cast<unsigned long long>(network.stats().dropped));
  const auto culprits = mars_system.culprits_for(3_s);
  if (culprits.empty()) {
    std::printf("MARS saw nothing anomalous.\n");
    return 0;
  }
  std::printf("MARS culprit list:\n");
  for (std::size_t i = 0; i < culprits.size() && i < 5; ++i) {
    std::printf("  %zu. %s\n", i + 1, culprits[i].describe().c_str());
  }
  const auto oh = mars_system.overheads();
  std::printf("overhead : %llu telemetry bytes, %llu diagnosis bytes\n",
              static_cast<unsigned long long>(oh.telemetry_bytes),
              static_cast<unsigned long long>(oh.diagnosis_bytes));

  // 8. The same diagnosis as the operator-facing incident report.
  if (!mars_system.diagnoses().empty()) {
    const auto& last = mars_system.diagnoses().back();
    std::printf("\n%s",
                rca::render_report(last.session, culprits, {}, &last.mining)
                    .c_str());
  }
  return 0;
}
