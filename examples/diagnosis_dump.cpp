// diagnosis_dump — run one trial MARS-only and dump the diagnosis
// session's Ring Table records plus the per-flow features the signature
// matcher computes. A developer's microscope into §4.4.

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>

#include "faults/schedule.hpp"
#include "mars/scenario.hpp"
#include "net/topology_registry.hpp"
#include "rca/signatures.hpp"
#include "sim/simulator.hpp"

namespace {

mars::faults::FaultKind parse_fault(const char* arg) {
  const auto kind = mars::faults::kind_from_name(arg);
  if (!kind) {
    std::fprintf(stderr, "unknown fault '%s' (known: %s)\n", arg,
                 mars::faults::known_kind_names());
    std::exit(2);
  }
  return *kind;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mars;
  const auto fault = argc > 1 ? parse_fault(argv[1])
                              : faults::FaultKind::kMicroBurst;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 23;

  auto cfg = default_scenario(fault, seed);
  const sim::Time fault_at = cfg.first_fault_at();

  sim::Simulator simulator;
  auto fabric = net::TopologyRegistry::instance().build(cfg.topology);
  net::Network network(simulator, fabric.topology);
  for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    network.node(sw).set_queue_capacity(cfg.queue_capacity);
  }
  MarsSystem mars_system(network, cfg.mars);
  workload::TrafficGenerator traffic(network, cfg.seed);
  traffic.add_background(cfg.background, fabric.edge, fabric.pods);
  faults::FaultInjector injector(network, traffic, cfg.seed ^ 0xFA17,
                                 cfg.injector);
  mars_system.start();
  traffic.start();
  const auto truths = injector.apply(cfg.faults);
  const auto truth = truths.empty() ? std::nullopt : truths.front();
  simulator.run(cfg.duration);

  if (!truth || mars_system.diagnoses().empty()) {
    std::printf("no fault or no diagnosis\n");
    return 1;
  }
  std::printf("truth: %s\n", truth->describe().c_str());
  const auto& poh = mars_system.pipeline().overheads();
  std::printf(
      "pipeline: %llu latency + %llu drop notifications, %llu suppressed\n",
      static_cast<unsigned long long>(poh.latency_notifications),
      static_cast<unsigned long long>(poh.drop_notifications),
      static_cast<unsigned long long>(poh.window_suppressed));
  std::printf("diagnoses: %zu\n", mars_system.diagnoses().size());
  // Pick the same session culprits_for() grades: first trigger >= fault.
  const Diagnosis* chosen = nullptr;
  for (const auto& d : mars_system.diagnoses()) {
    if (d.session.trigger.when >= fault_at) {
      chosen = &d;
      break;
    }
  }
  if (chosen == nullptr) chosen = &mars_system.diagnoses().back();
  const auto& diag = *chosen;
  const auto& d = diag.session;
  std::printf("trigger kind=%d at t=%.3f, collected at %.3f, records=%zu\n",
              static_cast<int>(d.trigger.kind), sim::to_seconds(d.trigger.when),
              sim::to_seconds(d.collected_at), d.records.size());
  for (const auto& n : d.notifications) {
    std::printf("  notification kind=%d from s%u flow=%s t=%.3f\n",
                static_cast<int>(n.kind), n.reporter,
                net::to_string(n.flow).c_str(), sim::to_seconds(n.when));
  }

  const sim::Time problem_start = d.trigger.when - 100 * sim::kMillisecond;
  // Per-flow feature summary.
  std::map<net::FlowId, int> flows;
  for (const auto& rec : d.records) flows[rec.flow]++;
  for (const auto& [flow, n] : flows) {
    const auto f = rca::extract_flow_features(d.records, flow, problem_start,
                                              100 * sim::kMillisecond);
    std::printf(
        "flow %s: recs=%d base_pps=%.0f prob_pps=%.0f base_q=%.1f "
        "prob_q=%.1f%s\n",
        net::to_string(flow).c_str(), n, f.baseline_pps, f.problem_pps,
        f.baseline_queue, f.problem_queue,
        f.pps_spiked({}) ? "  << SPIKED" : "");
  }
  std::printf("\nrecords near the trigger for interesting flows:\n");
  for (const auto& rec : d.records) {
    if (rec.sink_timestamp < problem_start - 300 * sim::kMillisecond) {
      continue;
    }
    std::printf(
        "  t=%.3f flow=%s path=%u lat=%.2fms q=%u src_cnt=%u sink_cnt=%u "
        "flow_pkts=%u gap=%u\n",
        sim::to_seconds(rec.sink_timestamp),
        net::to_string(rec.flow).c_str(), rec.path_id,
        sim::to_millis(rec.latency), rec.total_queue_depth,
        rec.src_last_epoch_count, rec.sink_last_epoch_count,
        rec.flow_epoch_packets, rec.epoch_gap);
  }
  // Manual classification summary: how many recent records are abnormal?
  int abnormal = 0, normal = 0, unknown_path = 0, no_threshold = 0;
  for (const auto& rec : d.records) {
    if (rec.sink_timestamp < d.trigger.when - 800 * sim::kMillisecond) {
      continue;
    }
    if (!d.thresholds.count(rec.flow)) ++no_threshold;
    if (mars_system.registry().lookup(rec.path_id) == nullptr) {
      ++unknown_path;
    }
    if (d.is_abnormal(rec)) {
      ++abnormal;
    } else {
      ++normal;
    }
  }
  std::printf(
      "\nrecent records: %d abnormal, %d normal, %d without threshold, "
      "%d with unknown path\n",
      abnormal, normal, no_threshold, unknown_path);

  std::printf("\nculprits (this session):\n");
  for (std::size_t i = 0; i < diag.culprits.size() && i < 10; ++i) {
    std::printf("  %zu. %s\n", i + 1, diag.culprits[i].describe().c_str());
  }
  std::printf("\nculprits (merged across sessions, as graded):\n");
  const auto merged = mars_system.culprits_for(fault_at);
  for (std::size_t i = 0; i < merged.size() && i < 10; ++i) {
    std::printf("  %zu. %s\n", i + 1, merged[i].describe().c_str());
  }
  return 0;
}
