// incast_storm — the classic datacenter stressor on the MARS substrate:
// many edge switches fire synchronized bursts at one sink.
//
// This example doubles as a limitations demo (paper §5.6): incast flows
// are often NEW flows (no reservoir history, default 10s threshold), and
// the storm's own queue delays its telemetry, so the evidence surfaces
// one collection late. MARS still triggers and localizes the congested
// region; whether the top entries are labelled micro-burst depends on
// how much of the storm rode on flows with warmed thresholds. The final
// line reports which happened on this run.
//
//   $ incast_storm [sources] [seed]

#include <cstdio>
#include <cstdlib>

#include "mars/mars.hpp"
#include "net/fat_tree.hpp"
#include "rca/report.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"
#include "workload/traffic_gen.hpp"

int main(int argc, char** argv) {
  using namespace mars;
  using namespace mars::sim::literals;

  const int sources =
      argc > 1 ? std::clamp(std::atoi(argv[1]), 1, 7) : 5;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 23;

  sim::Simulator simulator;
  auto ft = net::build_fat_tree(
      {.k = 4, .edge_agg_gbps = 0.007, .agg_core_gbps = 0.010});
  net::Network network(simulator, ft.topology);
  for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    network.node(sw).set_queue_capacity(4096);
  }

  MarsConfig mars_config;
  mars_config.controller.reservoir.relative_margin = 0.3;
  MarsSystem mars(network, mars_config);
  mars.start();

  // Steady background so the reservoirs have a baseline to defend.
  workload::TrafficGenerator traffic(network, seed);
  workload::BackgroundConfig background;
  background.flows = 32;
  background.pps = 200.0;
  traffic.add_background(background, ft.edge, 4);
  traffic.start();

  // The storm: `sources` edges all burst into edge[0] at t=3s.
  workload::IncastConfig incast;
  incast.sink = ft.edge[0];
  for (int i = 1; i <= sources; ++i) {
    incast.sources.push_back(ft.edge[static_cast<std::size_t>(i)]);
  }
  incast.packets_per_source = 1200;
  incast.size_bytes = 900;
  incast.start = 3_s;
  incast.spacing = 800_us;  // ~1250 pps per source, sustained ~1s
  const auto storm = workload::make_incast(incast, seed);
  storm.replay(network);

  simulator.run(6_s);

  std::printf("incast: %d sources x %d packets into s%u at t=3s\n", sources,
              incast.packets_per_source, incast.sink);
  std::printf("network: %llu delivered, %llu dropped\n",
              static_cast<unsigned long long>(network.stats().delivered),
              static_cast<unsigned long long>(network.stats().dropped));

  const auto culprits = mars.culprits_for(3_s);
  if (mars.diagnoses().empty()) {
    std::printf("MARS never triggered (storm too mild for this fabric)\n");
    return 0;
  }
  std::printf("\n%s", rca::render_report(mars.diagnoses().back().session,
                                         culprits, {},
                                         &mars.diagnoses().back().mining)
                          .c_str());

  // How much of the list names the storm? Count flow-level bursts into
  // the sink anywhere in the list, and storm-region locations in the top
  // five (the sink, its aggs, or a storm source).
  int burst_entries = 0, region_hits = 0;
  for (std::size_t i = 0; i < culprits.size(); ++i) {
    const auto& c = culprits[i];
    if (c.cause == rca::CauseKind::kMicroBurst &&
        c.flow.sink == incast.sink) {
      ++burst_entries;
    }
    if (i < 5) {
      for (const auto sw : c.location) {
        const bool in_region =
            sw == incast.sink ||
            std::find(incast.sources.begin(), incast.sources.end(), sw) !=
                incast.sources.end() ||
            network.topology().port_towards(sw, incast.sink).has_value();
        if (in_region) {
          ++region_hits;
          break;
        }
      }
    }
  }
  std::printf("flow-level burst entries naming s%u: %d\n", incast.sink,
              burst_entries);
  std::printf("top-5 entries inside the storm region: %d\n", region_hits);
  if (burst_entries == 0) {
    std::printf("(cold-start flows: the storm rode on FlowIDs without "
                "reservoir history — the paper's §5.6 limitation)\n");
  }
  return 0;
}
