// ecmp_audit — a domain-specific tool built on the MARS library: sweep
// ECMP imbalance ratios on one switch and report, per ratio, how the
// network reacts (path concentration, p99 latency) and whether MARS
// localizes the chooser. The paper's Fig. 7(b) scenario, turned into an
// operator's capacity-planning audit.
//
//   $ ecmp_audit [seed]

#include <cstdio>
#include <cstdlib>

#include "mars/scenario.hpp"
#include "metrics/ranking.hpp"

int main(int argc, char** argv) {
  using namespace mars;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 101;

  std::printf("== ECMP imbalance audit (seed %llu) ==\n",
              static_cast<unsigned long long>(seed));
  std::printf("  ratio | injected at | MARS verdict (top culprit)          "
              "| truth rank\n");
  for (const int ratio : {2, 4, 6, 8, 10}) {
    auto cfg = default_scenario(faults::FaultKind::kEcmpImbalance, seed);
    cfg.injector.imbalance_min = ratio;
    cfg.injector.imbalance_max = ratio;
    cfg.systems = {"mars"};
    const auto result = run_scenario(cfg);
    if (!result.fault_injected) {
      std::printf("  1:%-3d | (injection found no target)\n", ratio);
      continue;
    }
    const auto& mars_outcome = result.outcome("mars");
    const char* top = mars_outcome.culprits.empty()
                          ? "(no diagnosis)"
                          : nullptr;
    std::string top_str;
    if (!top) {
      top_str = mars_outcome.culprits.front().describe();
      if (top_str.size() > 52) top_str.resize(52);
      top = top_str.c_str();
    }
    std::printf("  1:%-3d | s%-10u | %-52s | %s\n", ratio,
                result.truth().switch_id, top,
                mars_outcome.rank ? std::to_string(*mars_outcome.rank).c_str()
                                  : "-");
  }
  std::printf(
      "\n(an audit, not a victory lap: low ratios leave the loaded branch "
      "under capacity and are invisible; near the capacity knee the "
      "congestion is real but the ECMP-vs-process-rate label flips with "
      "the evidence — EXPERIMENTS.md discusses why ECMP is this "
      "reproduction's hardest scenario)\n");
  return 0;
}
