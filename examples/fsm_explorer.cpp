// fsm_explorer — play with the frequent-sequence miners on the paper's
// worked example (§4.4.2) and on synthetic path databases, comparing the
// seven algorithms' outputs, runtimes and memory.
//
//   $ fsm_explorer            # paper example + a fat-tree database sweep

#include <cstdio>

#include "fsm/brute_force.hpp"
#include "fsm/miner.hpp"
#include "net/fat_tree.hpp"
#include "net/routing.hpp"
#include "rca/sbfl.hpp"
#include "util/rng.hpp"

namespace {

using namespace mars;

void explore_paper_example() {
  std::printf("== Paper §4.4.2 worked example ==\n");
  std::printf("database: 4 x <s3,s2,s4>, 2 x <s6,s2,s7>; min support 50%%, "
              "max length 2\n");
  fsm::SequenceDatabase db;
  db.add({3, 2, 4}, 4);
  db.add({6, 2, 7}, 2);
  fsm::MiningParams params;
  params.min_support_rel = 0.5;
  params.max_length = 2;
  params.contiguous = true;

  const auto miner = fsm::make_miner(fsm::MinerKind::kPrefixSpan);
  auto patterns = miner->mine(db, params);
  fsm::sort_patterns(patterns);
  std::printf("frequent patterns:");
  for (const auto& p : patterns) {
    std::printf(" %s", fsm::to_string(p).c_str());
  }
  std::printf("\n(expected: <s2>:6 <s3>:4 <s4>:4 <s2,s4>:4 <s3,s2>:4)\n\n");
}

void compare_miners() {
  std::printf("== Miner comparison on a K=8 fat-tree abnormal set ==\n");
  const auto ft = net::build_fat_tree({.k = 8});
  const net::RoutingTable routing(ft.topology);
  util::Rng rng(11);
  fsm::SequenceDatabase db;
  for (const auto& path : routing.enumerate_edge_paths()) {
    db.add(fsm::Sequence(path.begin(), path.end()), 1 + rng.below(8));
  }
  fsm::MiningParams params;
  params.min_support_rel = 0.05;
  params.max_length = 2;
  params.contiguous = true;

  std::printf("  %-11s | patterns | time (ms) | memory (KB) | nodes\n",
              "miner");
  for (const auto kind : fsm::all_miner_kinds()) {
    const auto miner = fsm::make_miner(kind);
    const auto result = miner->mine_with_stats(db, params);
    std::printf("  %-11s | %8zu | %9.2f | %11.1f | %zu\n",
                std::string(miner->name()).c_str(), result.stats.patterns,
                result.stats.wall_seconds * 1e3,
                static_cast<double>(result.stats.peak_bytes) / 1024.0,
                result.stats.nodes_expanded);
  }
  std::printf("\n");
}

void score_example() {
  std::printf("== SBFL scoring of the worked example ==\n");
  fsm::SequenceDatabase abnormal, normal;
  abnormal.add({3, 2, 4}, 4);
  abnormal.add({6, 2, 7}, 2);
  normal.add({3, 5, 4}, 10);  // healthy traffic avoids s2
  normal.add({6, 5, 7}, 10);

  fsm::MiningParams params;
  params.min_support_rel = 0.5;
  params.max_length = 2;
  const auto patterns =
      fsm::make_miner(fsm::MinerKind::kPrefixSpan)->mine(abnormal, params);
  const auto scored = rca::score_patterns(
      patterns, abnormal, normal, true, rca::SbflFormula::kRelativeRisk);
  for (const auto& sp : scored) {
    std::printf("  %-10s relative-risk=%.2f (pf=%llu ps=%llu nf=%llu "
                "ns=%llu)\n",
                fsm::to_string(sp.pattern).c_str(), sp.score,
                static_cast<unsigned long long>(sp.counts.n_pf),
                static_cast<unsigned long long>(sp.counts.n_ps),
                static_cast<unsigned long long>(sp.counts.n_nf),
                static_cast<unsigned long long>(sp.counts.n_ns));
  }
  std::printf("(s2 — the switch all failing paths share and no healthy "
              "path touches — tops the list)\n");
}

}  // namespace

int main() {
  explore_paper_example();
  compare_miners();
  score_example();
  return 0;
}
