// mars_cli — scenario runner with command-line knobs; the operator's
// entry point for one-off experiments without writing C++.
//
//   mars_cli [options]
//     --fault <microburst|ecmp|rate|delay|drop>   (default rate)
//     --seed <n>                                  (default 1)
//     --k <even n>            fat-tree arity      (default 4)
//     --flows <n>             background flows    (scenario default)
//     --pps <x>               per-flow rate       (scenario default)
//     --duration <seconds>    simulated time      (default 5)
//     --fault-at <seconds>    injection time      (default 3)
//     --no-baselines          deploy MARS only
//     --trace-out <file>      dump the workload as CSV
//     --metrics-out <file>    metrics snapshot + sampled series (JSON)
//     --spans-out <file>      Chrome/Perfetto trace-event JSON
//     --json                  machine-readable result summary

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "mars/scenario.hpp"
#include "obs/json_writer.hpp"
#include "workload/trace.hpp"

namespace {

using namespace mars;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--fault F] [--seed N] [--k K] [--flows N] "
               "[--pps X] [--duration S] [--fault-at S] [--no-baselines] "
               "[--trace-out FILE] [--metrics-out FILE] [--spans-out FILE] "
               "[--json]\n",
               argv0);
  std::exit(2);
}

faults::FaultKind parse_fault(const std::string& arg, const char* argv0) {
  using faults::FaultKind;
  if (arg == "microburst") return FaultKind::kMicroBurst;
  if (arg == "ecmp") return FaultKind::kEcmpImbalance;
  if (arg == "rate") return FaultKind::kProcessRateDecrease;
  if (arg == "delay") return FaultKind::kDelay;
  if (arg == "drop") return FaultKind::kDrop;
  std::fprintf(stderr, "unknown fault '%s'\n", arg.c_str());
  usage(argv0);
}

void print_outcome_text(const char* name, const SystemOutcome& outcome) {
  std::printf("%-10s rank=%-4s telemetry=%-9llu diagnosis=%-9llu top=[",
              name,
              outcome.rank ? std::to_string(*outcome.rank).c_str() : "-",
              static_cast<unsigned long long>(outcome.telemetry_bytes),
              static_cast<unsigned long long>(outcome.diagnosis_bytes));
  for (std::size_t i = 0; i < outcome.culprits.size() && i < 3; ++i) {
    if (i) std::printf("; ");
    std::printf("%s", outcome.culprits[i].describe().c_str());
  }
  std::printf("]\n");
}

void write_outcome_json(obs::JsonWriter& w, const char* name,
                        const SystemOutcome& outcome) {
  w.key(name).begin_object();
  if (outcome.rank) {
    w.member("rank", std::uint64_t{*outcome.rank});
  } else {
    w.member_null("rank");
  }
  w.member("triggered", outcome.triggered);
  w.member("telemetry_bytes", outcome.telemetry_bytes);
  w.member("diagnosis_bytes", outcome.diagnosis_bytes);
  w.key("culprits").begin_array();
  for (const auto& c : outcome.culprits) w.value(c.describe());
  w.end_array();
  w.end_object();
}

bool open_out(std::ofstream& out, const std::string& path) {
  out.open(path);
  if (!out) std::fprintf(stderr, "cannot write %s\n", path.c_str());
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  faults::FaultKind fault = faults::FaultKind::kProcessRateDecrease;
  std::uint64_t seed = 1;
  std::optional<int> k, flows;
  std::optional<double> pps, duration_s, fault_at_s;
  bool baselines = true, json = false;
  std::string trace_out, metrics_out, spans_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--fault") {
      fault = parse_fault(next(), argv[0]);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--k") {
      k = std::atoi(next());
    } else if (arg == "--flows") {
      flows = std::atoi(next());
    } else if (arg == "--pps") {
      pps = std::atof(next());
    } else if (arg == "--duration") {
      duration_s = std::atof(next());
    } else if (arg == "--fault-at") {
      fault_at_s = std::atof(next());
    } else if (arg == "--no-baselines") {
      baselines = false;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--spans-out") {
      spans_out = next();
    } else if (arg == "--json") {
      json = true;
    } else {
      usage(argv[0]);
    }
  }

  auto cfg = default_scenario(fault, seed);
  if (k) cfg.fat_tree_k = *k;
  if (flows) cfg.background.flows = *flows;
  if (pps) cfg.background.pps = *pps;
  if (duration_s) {
    cfg.duration = static_cast<sim::Time>(*duration_s * sim::kSecond);
  }
  if (fault_at_s) {
    cfg.fault_at = static_cast<sim::Time>(*fault_at_s * sim::kSecond);
  }
  cfg.with_baselines = baselines;

  Observability obs;
  const bool want_obs = !metrics_out.empty() || !spans_out.empty();
  if (want_obs) cfg.observability = &obs;

  // The trace dump reruns the workload generator standalone so the CSV
  // matches what the scenario injected (same seed, same generator).
  if (!trace_out.empty()) {
    sim::Simulator simulator;
    auto ft = net::build_fat_tree({.k = cfg.fat_tree_k,
                                   .edge_agg_gbps = cfg.edge_link_gbps,
                                   .agg_core_gbps = cfg.core_link_gbps});
    net::Network network(simulator, ft.topology);
    workload::TraceRecorder recorder;
    network.add_observer(recorder);
    workload::TrafficGenerator traffic(network, cfg.seed);
    traffic.add_background(cfg.background, ft.edge, cfg.fat_tree_k);
    traffic.start();
    simulator.run(cfg.duration);
    std::ofstream out;
    if (!open_out(out, trace_out)) return 1;
    recorder.trace().write_csv(out);
    std::fprintf(stderr, "wrote %zu events to %s\n",
                 recorder.trace().size(), trace_out.c_str());
  }

  const auto result = run_scenario(cfg);

  if (!metrics_out.empty()) {
    std::ofstream out;
    if (!open_out(out, metrics_out)) return 1;
    obs::JsonWriter w(out);
    w.begin_object();
    w.key("snapshot");
    obs::MetricsRegistry::write_json(w, obs.snapshot);
    w.key("series");
    obs.series.write_json(w);
    w.end_object();
    out << "\n";
    std::fprintf(stderr, "wrote %zu gauges x %zu samples to %s\n",
                 obs.snapshot.gauges.size(), obs.series.rows(),
                 metrics_out.c_str());
  }
  if (!spans_out.empty()) {
    std::ofstream out;
    if (!open_out(out, spans_out)) return 1;
    obs.tracer.write_chrome_json(out);
    std::fprintf(stderr,
                 "wrote %zu trace events to %s "
                 "(load in ui.perfetto.dev or chrome://tracing)\n",
                 obs.tracer.size(), spans_out.c_str());
  }

  if (!result.fault_injected) {
    std::fprintf(stderr, "fault injection found no viable target\n");
    return 1;
  }

  if (json) {
    obs::JsonWriter w(std::cout);
    w.begin_object();
    w.member("truth", result.truth.describe());
    w.member("injected", result.net_stats.injected);
    w.member("delivered", result.net_stats.delivered);
    w.member("dropped", result.net_stats.dropped);
    w.key("systems").begin_object();
    write_outcome_json(w, "mars", result.mars);
    if (baselines) {
      write_outcome_json(w, "spidermon", result.spidermon);
      write_outcome_json(w, "intsight", result.intsight);
      write_outcome_json(w, "syndb", result.syndb);
    }
    w.end_object();
    w.end_object();
    std::cout << "\n";
    return 0;
  }

  std::printf("truth: %s\n", result.truth.describe().c_str());
  print_outcome_text("MARS", result.mars);
  if (baselines) {
    print_outcome_text("SpiderMon", result.spidermon);
    print_outcome_text("IntSight", result.intsight);
    print_outcome_text("SyNDB*", result.syndb);
  }
  return 0;
}
