// mars_cli — scenario runner with command-line knobs; the operator's
// entry point for one-off experiments without writing C++.
//
//   mars_cli [options]
//     --scenario <file.json>  run a declarative ScenarioSpec (other
//                             flags below override the spec)
//     --fault <microburst|ecmp|rate|delay|drop|flap|slowdrain|asymloss|
//              gateddelay>                        (default rate)
//     --seed <n>                                  (default 1)
//     --topology <name>       fabric from the registry (default fat-tree)
//     --k <even n>            fat-tree arity      (default 4)
//     --leaves <n> --spines <n>  leaf-spine shape
//     --systems <a,b,...>     telemetry systems to deploy (default all)
//     --backend <name>        MARS telemetry-export backend
//                             (postcard|int-md|histogram, default postcard)
//     --flows <n>             background flows    (scenario default)
//     --pps <x>               per-flow rate       (scenario default)
//     --duration <seconds>    simulated time      (default 5)
//     --fault-at <seconds>    injection time      (default 3)
//     --no-baselines          deploy MARS only
//     --list-topologies       print registered topologies and exit
//     --list-systems          print registered telemetry systems and exit
//     --list-backends         print telemetry-export backends and exit
//     --trace-out <file>      dump the workload as CSV
//     --metrics-out <file>    metrics snapshot + sampled series (JSON)
//     --spans-out <file>      Chrome/Perfetto trace-event JSON
//     --log-out <file>        structured event log (NDJSON, one event/line)
//     --log-level <level>     log admission floor: debug|info|warn|error
//     --provenance-out <file> diagnosis provenance DAG (JSON)
//     --flight-out <file>     flight-recorder dumps (JSON; arms the
//                             recorder)
//     --path-id-hash <name>   PathID hash generator (crc16|crc32)
//     --path-id-bits <n>      PathID width carried in the header, [1, 32]
//     --path-audit            build the PathID registry for the configured
//                             topology, print the collision audit, and exit
//                             0 if conflict-free / 1 if not (no simulation)
//     --json                  machine-readable result summary
//
// Unknown fault / topology / system names exit nonzero with the list of
// known names; so does an invalid scenario (every validation error is
// printed).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/path_registry_cache.hpp"
#include "mars/scenario.hpp"
#include "mars/scenario_spec.hpp"
#include "mars/system_registry.hpp"
#include "net/routing.hpp"
#include "obs/json_writer.hpp"
#include "telemetry/backend.hpp"
#include "workload/trace.hpp"

namespace {

using namespace mars;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario FILE] [--fault F] [--seed N] "
               "[--topology NAME] [--k K] [--leaves N] [--spines N] "
               "[--systems A,B,...] [--backend NAME] [--flows N] [--pps X] "
               "[--duration S] [--fault-at S] [--no-baselines] "
               "[--list-topologies] [--list-systems] [--list-backends] "
               "[--trace-out FILE] [--metrics-out FILE] "
               "[--spans-out FILE] [--log-out FILE] [--log-level LEVEL] "
               "[--provenance-out FILE] [--flight-out FILE] "
               "[--path-id-hash NAME] [--path-id-bits N] [--path-audit] "
               "[--json]\n",
               argv0);
  std::exit(2);
}

faults::FaultKind parse_fault(const std::string& arg) {
  const auto kind = faults::kind_from_name(arg);
  if (!kind) {
    std::fprintf(stderr, "unknown fault '%s' (known: %s)\n", arg.c_str(),
                 faults::known_kind_names());
    std::exit(2);
  }
  return *kind;
}

telemetry::BackendKind parse_backend(const std::string& arg) {
  const auto kind = telemetry::backend_from_name(arg);
  if (kind) return *kind;
  std::string names;
  for (const auto& name : telemetry::known_backend_names()) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  const std::string hint = telemetry::suggest_backend(arg);
  if (hint.empty()) {
    std::fprintf(stderr, "unknown telemetry backend '%s' (known: %s)\n",
                 arg.c_str(), names.c_str());
  } else {
    std::fprintf(stderr,
                 "unknown telemetry backend '%s' (known: %s); did you mean "
                 "'%s'?\n",
                 arg.c_str(), names.c_str(), hint.c_str());
  }
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::size_t end = comma == std::string::npos ? arg.size() : comma;
    if (end > start) out.push_back(arg.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void print_outcome_text(const SystemOutcome& outcome) {
  char conf[16], pres[16];
  if (outcome.confidence) {
    std::snprintf(conf, sizeof(conf), "%.2f", *outcome.confidence);
  } else {
    std::snprintf(conf, sizeof(conf), "-");
  }
  if (outcome.presence) {
    std::snprintf(pres, sizeof(pres), "%.2f", *outcome.presence);
  } else {
    std::snprintf(pres, sizeof(pres), "-");
  }
  std::printf("%-10s rank=%-4s conf=%-4s presence=%-4s telemetry=%-9llu "
              "diagnosis=%-9llu top=[",
              outcome.system.c_str(),
              outcome.rank ? std::to_string(*outcome.rank).c_str() : "-",
              conf, pres,
              static_cast<unsigned long long>(outcome.telemetry_bytes),
              static_cast<unsigned long long>(outcome.diagnosis_bytes));
  for (std::size_t i = 0; i < outcome.culprits.size() && i < 3; ++i) {
    if (i) std::printf("; ");
    std::printf("%s", outcome.culprits[i].describe().c_str());
  }
  std::printf("]\n");
}

void write_outcome_json(obs::JsonWriter& w, const SystemOutcome& outcome) {
  w.key(outcome.system).begin_object();
  if (outcome.rank) {
    w.member("rank", std::uint64_t{*outcome.rank});
  } else {
    w.member_null("rank");
  }
  w.member("triggered", outcome.triggered);
  if (outcome.confidence) {
    w.member("confidence", *outcome.confidence);
  } else {
    w.member_null("confidence");
  }
  if (outcome.presence) {
    w.member("presence", *outcome.presence);
  } else {
    w.member_null("presence");
  }
  w.member("telemetry_bytes", outcome.telemetry_bytes);
  w.member("diagnosis_bytes", outcome.diagnosis_bytes);
  w.key("culprits").begin_array();
  for (const auto& c : outcome.culprits) w.value(c.describe());
  w.end_array();
  w.end_object();
}

bool open_out(std::ofstream& out, const std::string& path) {
  out.open(path);
  if (!out) std::fprintf(stderr, "cannot write %s\n", path.c_str());
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<faults::FaultKind> fault;
  std::optional<std::uint64_t> seed;
  std::optional<int> k, flows, leaves, spines;
  std::optional<double> pps, duration_s, fault_at_s;
  std::optional<std::string> topology;
  std::optional<std::vector<std::string>> systems;
  std::optional<telemetry::BackendKind> backend;
  std::string scenario_file;
  bool baselines = true, json = false;
  std::string trace_out, metrics_out, spans_out;
  std::string log_out, provenance_out, flight_out;
  std::optional<obs::LogLevel> log_level;
  std::optional<telemetry::HashKind> path_id_hash;
  std::optional<std::uint32_t> path_id_bits;
  bool path_audit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario_file = next();
    } else if (arg == "--fault") {
      fault = parse_fault(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--topology") {
      topology = next();
    } else if (arg == "--k") {
      k = std::atoi(next());
    } else if (arg == "--leaves") {
      leaves = std::atoi(next());
    } else if (arg == "--spines") {
      spines = std::atoi(next());
    } else if (arg == "--systems") {
      systems = split_csv(next());
    } else if (arg == "--backend") {
      backend = parse_backend(next());
    } else if (arg == "--flows") {
      flows = std::atoi(next());
    } else if (arg == "--pps") {
      pps = std::atof(next());
    } else if (arg == "--duration") {
      duration_s = std::atof(next());
    } else if (arg == "--fault-at") {
      fault_at_s = std::atof(next());
    } else if (arg == "--no-baselines") {
      baselines = false;
    } else if (arg == "--list-topologies") {
      for (const auto& name : net::TopologyRegistry::instance().names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--list-systems") {
      for (const auto& name : SystemRegistry::instance().names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--list-backends") {
      for (const auto& name : telemetry::known_backend_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--spans-out") {
      spans_out = next();
    } else if (arg == "--log-out") {
      log_out = next();
    } else if (arg == "--log-level") {
      const std::string name = next();
      log_level = obs::level_from_name(name);
      if (!log_level) {
        std::fprintf(stderr,
                     "unknown log level '%s' (known: debug, info, warn, "
                     "error)\n",
                     name.c_str());
        return 2;
      }
    } else if (arg == "--provenance-out") {
      provenance_out = next();
    } else if (arg == "--flight-out") {
      flight_out = next();
    } else if (arg == "--path-id-hash") {
      const std::string name = next();
      path_id_hash = telemetry::hash_from_name(name);
      if (!path_id_hash) {
        std::fprintf(stderr,
                     "unknown path_id hash '%s' (known: crc16, crc32)\n",
                     name.c_str());
        return 2;
      }
    } else if (arg == "--path-id-bits") {
      path_id_bits = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--path-audit") {
      path_audit = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      usage(argv[0]);
    }
  }

  ScenarioConfig cfg;
  try {
    if (!scenario_file.empty()) {
      cfg = load_scenario_spec(scenario_file).to_config();
    } else {
      cfg = default_scenario(
          fault.value_or(faults::FaultKind::kProcessRateDecrease),
          seed.value_or(1));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  // Flags override the spec (or the defaults).
  if (scenario_file.empty()) {
    // defaults already applied via default_scenario
  } else if (fault || fault_at_s) {
    // Flag-specified fault replaces the spec's whole schedule.
    cfg.faults = faults::FaultSchedule::single(
        fault.value_or(faults::FaultKind::kProcessRateDecrease),
        cfg.first_fault_at());
  }
  if (seed) cfg.seed = *seed;
  if (topology) cfg.topology.name = *topology;
  if (k) cfg.topology.k = *k;
  if (leaves) cfg.topology.leaves = *leaves;
  if (spines) cfg.topology.spines = *spines;
  if (flows) cfg.background.flows = *flows;
  if (pps) cfg.background.pps = *pps;
  if (duration_s) {
    cfg.duration = static_cast<sim::Time>(*duration_s * sim::kSecond);
  }
  if (fault_at_s) {
    for (auto& event : cfg.faults.events) {
      event.at = static_cast<sim::Time>(*fault_at_s * sim::kSecond);
    }
  }
  if (systems) {
    cfg.systems = *systems;
  } else if (!baselines) {
    cfg.systems = {"mars"};
  }
  if (backend) cfg.mars.pipeline.backend.kind = *backend;
  if (path_id_hash) cfg.mars.pipeline.path_id.hash = *path_id_hash;
  if (path_id_bits) cfg.mars.pipeline.path_id.width_bits = *path_id_bits;

  if (log_level) cfg.obs.log_level = *log_level;
  if (!provenance_out.empty()) cfg.obs.provenance = true;
  if (!flight_out.empty()) cfg.obs.flight_recorder = true;

  if (path_audit) {
    // Audit only: build the registry for the configured topology and
    // PathID shape, report, and exit — deliberately before full scenario
    // validation, because auditing a non-conflict-free shape (which
    // validation rejects when MARS is deployed) is the flag's purpose.
    if (const auto errors =
            net::TopologyRegistry::instance().validate(cfg.topology);
        !errors.empty()) {
      for (const auto& error : errors) {
        std::fprintf(stderr, "invalid topology: %s\n", error.c_str());
      }
      return 2;
    }
    const telemetry::PathIdConfig& pid = cfg.mars.pipeline.path_id;
    if (pid.width_bits < 1 || pid.width_bits > 32) {
      std::fprintf(stderr,
                   "telemetry.path_id.width_bits must be in [1, 32] "
                   "(got %u)\n",
                   pid.width_bits);
      return 2;
    }
    const auto fabric = net::TopologyRegistry::instance().build(cfg.topology);
    const net::RoutingTable routing(fabric.topology);
    const auto registry = control::PathRegistryCache::instance().get_or_build(
        fabric.topology, routing, pid, /*threads=*/0);
    const control::PathAuditReport& a = registry->audit();
    if (json) {
      obs::JsonWriter w(std::cout);
      w.begin_object();
      w.member("topology", cfg.topology.name);
      w.member("hash", telemetry::hash_name(a.config.hash));
      w.member("width_bits", std::uint64_t{a.config.width_bits});
      w.member("paths", std::uint64_t{a.path_count});
      w.member("hops", std::uint64_t{a.hop_count});
      w.member("id_space", std::uint64_t{a.id_space});
      w.member("initial_collisions", std::uint64_t{a.initial_collisions});
      w.member("residual_collisions", std::uint64_t{a.residual_collisions});
      w.member("ambiguous_ids", std::uint64_t{a.ambiguous_ids});
      w.member("mat_entries", std::uint64_t{a.mat_entries});
      w.member("mat_overwrites", std::uint64_t{a.mat_overwrites});
      w.member("rounds", std::uint64_t{static_cast<std::uint64_t>(a.rounds)});
      w.member("pigeonhole_infeasible", a.pigeonhole_infeasible);
      w.member("conflict_free", a.conflict_free);
      w.member("mars_memory_bytes", std::uint64_t{a.mars_memory_bytes});
      w.member("intsight_memory_bytes",
               std::uint64_t{a.intsight_memory_bytes});
      w.member("build_threads", std::uint64_t{a.build_threads});
      w.member("build_seconds", a.build_seconds);
      w.end_object();
      std::cout << "\n";
    } else {
      std::printf("topology %s: %zu paths, %zu hops, %s/%u bits "
                  "(id space %zu)\n",
                  cfg.topology.name.c_str(), a.path_count, a.hop_count,
                  telemetry::hash_name(a.config.hash), a.config.width_bits,
                  a.id_space);
      std::printf("collisions: %zu initial -> %zu residual "
                  "(%zu ambiguous ids) in %d rounds%s\n",
                  a.initial_collisions, a.residual_collisions,
                  a.ambiguous_ids, a.rounds,
                  a.pigeonhole_infeasible
                      ? " [pigeonhole: more paths than id values]"
                      : "");
      std::printf("mat: %zu entries (%zu overwrites), %zu bytes "
                  "(IntSight-equivalent %zu bytes)\n",
                  a.mat_entries, a.mat_overwrites, a.mars_memory_bytes,
                  a.intsight_memory_bytes);
      std::printf("build: %.3fs on %zu threads\n", a.build_seconds,
                  a.build_threads);
      std::printf("verdict: %s\n",
                  a.conflict_free ? "conflict-free" : "NOT conflict-free");
    }
    return a.conflict_free ? 0 : 1;
  }

  if (const auto errors = validate_scenario(cfg); !errors.empty()) {
    for (const auto& error : errors) {
      std::fprintf(stderr, "invalid scenario: %s\n", error.c_str());
    }
    return 2;
  }

  Observability obs;
  const bool want_obs = !metrics_out.empty() || !spans_out.empty() ||
                        !log_out.empty() || !provenance_out.empty() ||
                        !flight_out.empty();
  if (want_obs) cfg.observability = &obs;

  // The trace dump reruns the workload generator standalone so the CSV
  // matches what the scenario injected (same seed, same generator).
  if (!trace_out.empty()) {
    sim::Simulator simulator;
    auto fabric = net::TopologyRegistry::instance().build(cfg.topology);
    net::Network network(simulator, fabric.topology);
    workload::TraceRecorder recorder;
    network.add_observer(recorder);
    workload::TrafficGenerator traffic(network, cfg.seed);
    traffic.add_background(cfg.background, fabric.edge, fabric.pods);
    traffic.start();
    simulator.run(cfg.duration);
    std::ofstream out;
    if (!open_out(out, trace_out)) return 1;
    recorder.trace().write_csv(out);
    std::fprintf(stderr, "wrote %zu events to %s\n",
                 recorder.trace().size(), trace_out.c_str());
  }

  ScenarioResult result;
  try {
    result = run_scenario(cfg);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (!metrics_out.empty()) {
    std::ofstream out;
    if (!open_out(out, metrics_out)) return 1;
    obs::JsonWriter w(out);
    w.begin_object();
    w.key("snapshot");
    obs::MetricsRegistry::write_json(w, obs.snapshot);
    w.key("series");
    obs.series.write_json(w);
    w.end_object();
    out << "\n";
    std::fprintf(stderr, "wrote %zu gauges x %zu samples to %s\n",
                 obs.snapshot.gauges.size(), obs.series.rows(),
                 metrics_out.c_str());
  }
  if (!spans_out.empty()) {
    std::ofstream out;
    if (!open_out(out, spans_out)) return 1;
    obs.tracer.write_chrome_json(out);
    std::fprintf(stderr,
                 "wrote %zu trace events to %s "
                 "(load in ui.perfetto.dev or chrome://tracing)\n",
                 obs.tracer.size(), spans_out.c_str());
  }
  if (!log_out.empty()) {
    std::ofstream out;
    if (!open_out(out, log_out)) return 1;
    obs.log.write_ndjson(out);
    std::fprintf(stderr,
                 "wrote %zu log events to %s (%llu below level, %llu rate-"
                 "suppressed)\n",
                 obs.log.events().size(), log_out.c_str(),
                 static_cast<unsigned long long>(obs.log.stats().below_level),
                 static_cast<unsigned long long>(
                     obs.log.stats().rate_suppressed));
  }
  if (!provenance_out.empty()) {
    std::ofstream out;
    if (!open_out(out, provenance_out)) return 1;
    obs.provenance.write_json(out);
    std::fprintf(stderr, "wrote %zu provenance nodes, %zu edges to %s\n",
                 obs.provenance.nodes().size(), obs.provenance.edges().size(),
                 provenance_out.c_str());
  }
  if (!flight_out.empty()) {
    std::ofstream out;
    if (!open_out(out, flight_out)) return 1;
    obs.recorder.write_json(out);
    std::fprintf(stderr, "wrote %zu flight-recorder dumps to %s "
                 "(%llu triggers)\n",
                 obs.recorder.dumps().size(), flight_out.c_str(),
                 static_cast<unsigned long long>(
                     obs.recorder.triggers_total()));
  }

  if (!cfg.faults.empty() && !result.fault_injected) {
    std::fprintf(stderr, "fault injection found no viable target\n");
    return 1;
  }

  if (json) {
    obs::JsonWriter w(std::cout);
    w.begin_object();
    w.key("truths").begin_array();
    for (const auto& truth : result.truths) {
      w.begin_object();
      w.member("describe", truth.describe());
      if (truth.windows_total > 0) {
        w.member("manifestation", truth.manifestation_ratio);
        w.member("windows_active", std::uint64_t{truth.windows_active});
        w.member("windows_total", std::uint64_t{truth.windows_total});
      }
      w.end_object();
    }
    w.end_array();
    w.member("injected", result.net_stats.injected);
    w.member("delivered", result.net_stats.delivered);
    w.member("dropped", result.net_stats.dropped);
    w.member("events_executed", result.events_executed);
    w.key("systems").begin_object();
    for (const auto& outcome : result.systems) {
      write_outcome_json(w, outcome);
    }
    w.end_object();
    w.end_object();
    std::cout << "\n";
    return 0;
  }

  for (const auto& truth : result.truths) {
    std::printf("truth: %s\n", truth.describe().c_str());
  }
  for (const auto& outcome : result.systems) {
    print_outcome_text(outcome);
  }
  return 0;
}
