#pragma once
// A small fixed-size thread pool.
//
// Used by the experiment harness to fan out independent fault-injection
// trials (Table 1 runs hundreds of simulations) and by the vertical FSM
// miners to parallelize candidate joins. Tasks must not block on other
// tasks submitted to the same pool.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mars::parallel {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future yields its result.
  ///
  /// Wake-up contract: each submit() calls cv_.notify_one() exactly once,
  /// after releasing the queue lock. One notify per task is sufficient
  /// because a worker that finishes a task re-checks the queue under the
  /// lock before sleeping again, so a notify can never be "lost" between
  /// a task being enqueued and a worker going idle; notifying outside the
  /// lock avoids waking a worker only to have it block on the mutex.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Block until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace mars::parallel
