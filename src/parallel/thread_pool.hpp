#pragma once
// A small fixed-size thread pool.
//
// Used by the experiment harness to fan out independent fault-injection
// trials (Table 1 runs hundreds of simulations) and by the vertical FSM
// miners to parallelize candidate joins. Tasks must not block on other
// tasks submitted to the same pool.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "parallel/barrier.hpp"

namespace mars::parallel {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future yields its result.
  ///
  /// Wake-up contract: each submit() calls cv_.notify_one() exactly once,
  /// after releasing the queue lock. One notify per task is sufficient
  /// because a worker that finishes a task re-checks the queue under the
  /// lock before sleeping again, so a notify can never be "lost" between
  /// a task being enqueued and a worker going idle; notifying outside the
  /// lock avoids waking a worker only to have it block on the mutex.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Block until every task submitted so far has finished.
  void wait_idle();

  /// Run a barrier-synchronized epoch loop over `lanes` parallel lanes.
  ///
  /// Each epoch e: every lane runs `body(lane, e)` exactly once, then all
  /// parties meet at a spin barrier where `control(e)` runs exclusively
  /// (single-threaded, all lanes quiescent); the loop continues while it
  /// returns true. Unlike per-epoch submit() fan-out, the worker closures
  /// are submitted ONCE — the epoch loop itself runs inside them — so an
  /// epoch costs two barrier crossings and zero task allocations.
  ///
  /// min(size(), lanes) workers plus the calling thread participate; lane
  /// ownership is strided and FIXED across epochs (party p always runs
  /// lanes p, p+parties, ...), so per-lane state never migrates between
  /// threads mid-loop. Everything `control` writes is visible to every
  /// lane of the next epoch (barrier release/acquire), and everything the
  /// lanes wrote in epoch e is visible to `control(e)`.
  ///
  /// The pool must be otherwise idle: the participating workers are
  /// occupied until the loop ends, so tasks submitted concurrently (or a
  /// nested run_epochs on the same pool) would starve. With no workers
  /// (size() == 0) the loop runs inline on the caller.
  template <typename Body, typename Control>
  void run_epochs(std::size_t lanes, Body&& body, Control&& control) {
    if (lanes == 0) return;
    const std::size_t helpers = std::min(size(), lanes);
    if (helpers == 0) {
      for (std::uint64_t e = 0;; ++e) {
        for (std::size_t lane = 0; lane < lanes; ++lane) body(lane, e);
        if (!control(e)) return;
      }
    }
    const std::size_t parties = helpers + 1;  // workers + calling thread
    SpinBarrier barrier(parties);
    std::atomic<bool> running{true};
    auto party_loop = [&](std::size_t party) {
      for (std::uint64_t e = 0;; ++e) {
        for (std::size_t lane = party; lane < lanes; lane += parties) {
          body(lane, e);
        }
        barrier.arrive_and_wait(
            [&] { running.store(control(e), std::memory_order_relaxed); });
        // Ordered by the barrier's generation release/acquire: every party
        // sees the verdict control() just stored.
        if (!running.load(std::memory_order_relaxed)) return;
      }
    };
    std::vector<std::future<void>> parked;
    parked.reserve(helpers);
    for (std::size_t p = 0; p < helpers; ++p) {
      parked.push_back(submit([&party_loop, p] { party_loop(p); }));
    }
    party_loop(helpers);
    for (auto& f : parked) f.get();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace mars::parallel
