#pragma once
// Spin-then-yield barrier for epoch-synchronized workers.
//
// The sharded simulator synchronizes its shard threads every conservative
// window — typically tens of microseconds of work per shard — so the
// barrier itself must cost well under a microsecond. A mutex+condvar
// barrier wakes through the kernel (~10 us per round trip); this one spins
// on a generation counter and falls back to yield() only after a bounded
// burst, so an on-core waiter pays nanoseconds and an oversubscribed one
// still makes progress.
//
// The last arriver runs a completion callback while every other party is
// still blocked, which gives the caller a natural single-threaded section
// per epoch (the sharded simulator plans the next window there). The
// generation release/acquire pair makes everything the completion wrote
// visible to every party that leaves the barrier.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

namespace mars::parallel {

class SpinBarrier {
 public:
  /// `parties` threads must call arrive_and_wait() per generation.
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  [[nodiscard]] std::size_t parties() const { return parties_; }

  /// Block until all parties arrive. The last arriver runs `on_complete`
  /// exclusively (no other party is running) before releasing the rest.
  /// Reusable: parties may immediately re-enter for the next generation —
  /// a party cannot lap the barrier because the completer resets the
  /// arrival count before publishing the new generation, and nobody else
  /// arrives again until they have observed that publication.
  template <typename Fn>
  void arrive_and_wait(Fn&& on_complete) {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    const std::size_t arrived =
        arrived_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (arrived == parties_) {
      on_complete();
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(gen + 1, std::memory_order_release);
      return;
    }
    std::uint32_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (++spins >= kSpinsBeforeYield) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  void arrive_and_wait() {
    arrive_and_wait([] {});
  }

 private:
  /// Spin budget before ceding the core: long enough that same-core waits
  /// (another shard finishing its window) never syscall, short enough that
  /// an oversubscribed host (CI: one core, many parties) is not starved.
  static constexpr std::uint32_t kSpinsBeforeYield = 1u << 12;

  const std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace mars::parallel
