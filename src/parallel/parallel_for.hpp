#pragma once
// Blocking data-parallel helpers built on ThreadPool.

#include <atomic>
#include <cstddef>
#include <exception>
#include <future>
#include <mutex>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace mars::parallel {

/// Run fn(i) for i in [begin, end) across the pool in contiguous chunks.
/// Rethrows the first task exception in the calling thread.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Fn&& fn, std::size_t min_chunk = 1) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(n / std::max<std::size_t>(min_chunk, 1),
                                        pool.size() * 4));
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Map fn over [0, n) and collect the results in order.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace mars::parallel
