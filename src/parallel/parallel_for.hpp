#pragma once
// Blocking data-parallel helpers built on ThreadPool.

#include <atomic>
#include <cstddef>
#include <exception>
#include <future>
#include <mutex>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace mars::parallel {

namespace detail {

/// Split n items into at most max_chunks contiguous chunks of at least
/// min_chunk items each; the remainder is spread one item at a time over
/// the leading chunks. The only chunk ever smaller than min_chunk is a
/// lone chunk covering a range with fewer than min_chunk items in total.
/// (Ceil-division sizing would instead leave a runt last chunk below the
/// floor: n=10, min_chunk=3 would split 4/4/2.)
inline std::vector<std::size_t> chunk_sizes(std::size_t n,
                                            std::size_t min_chunk,
                                            std::size_t max_chunks) {
  std::vector<std::size_t> sizes;
  if (n == 0) return sizes;
  const std::size_t floor = std::max<std::size_t>(min_chunk, 1);
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min(n / floor, std::max<std::size_t>(max_chunks, 1)));
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;  // first `extra` chunks take +1
  sizes.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    sizes.push_back(base + (c < extra ? 1 : 0));
  }
  return sizes;
}

}  // namespace detail

/// Run fn(i) for i in [begin, end) across the pool in contiguous chunks.
/// Rethrows the first task exception in the calling thread.
///
/// min_chunk is a hard floor on chunk size: every spawned chunk covers at
/// least min_chunk indices (see detail::chunk_sizes). Use it to keep
/// per-task overhead amortized when fn is cheap.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Fn&& fn, std::size_t min_chunk = 1) {
  if (begin >= end) return;
  const std::vector<std::size_t> sizes =
      detail::chunk_sizes(end - begin, min_chunk, pool.size() * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(sizes.size());
  std::size_t lo = begin;
  for (const std::size_t size : sizes) {
    const std::size_t hi = lo + size;
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
    lo = hi;
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Map fn over [0, n) and collect the results in order.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace mars::parallel
