#include "faults/schedule.hpp"

namespace mars::faults {

std::vector<std::string> FaultSchedule::validate(sim::Time horizon) const {
  std::vector<std::string> errors;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const std::string where = "fault[" + std::to_string(i) + "] (" +
                              std::string(short_name(e.kind)) + ")";
    if (e.at < 0) {
      errors.push_back(where + ": injection time must be non-negative");
    }
    if (e.at >= horizon) {
      errors.push_back(where + ": injection time " +
                       std::to_string(sim::to_seconds(e.at)) +
                       "s is at or past the scenario duration " +
                       std::to_string(sim::to_seconds(horizon)) + "s");
    }
    if (e.duration < 0) {
      errors.push_back(where + ": duration must be non-negative");
    }
    if (e.target_port && !e.target_switch) {
      errors.push_back(where +
                       ": a pinned port needs a pinned switch as well");
    }
    if (e.target_switch && e.kind == FaultKind::kMicroBurst) {
      errors.push_back(where +
                       ": micro-bursts target flows, not switches; drop "
                       "the pinned switch");
    }
    if ((e.target_switch || e.target_port) && is_telemetry_fault(e.kind)) {
      errors.push_back(where +
                       ": telemetry faults degrade the control channel, "
                       "not a switch; drop the pinned target");
    }
    if (e.gray.any_set() && !is_gray_fault(e.kind)) {
      errors.push_back(where +
                       ": gray parameters only apply to gray kinds "
                       "(flap, slowdrain, asymloss, gateddelay)");
    }
    if (is_gray_fault(e.kind)) {
      const auto& g = e.gray;
      auto wrong_kind = [&](const char* param, FaultKind needs) {
        errors.push_back(where + ": gray." + param + " only applies to " +
                         std::string(short_name(needs)));
      };
      if (e.kind != FaultKind::kLinkFlap) {
        if (g.flap_mean_up_ms) wrong_kind("mean_up_ms", FaultKind::kLinkFlap);
        if (g.flap_mean_down_ms) {
          wrong_kind("mean_down_ms", FaultKind::kLinkFlap);
        }
        if (g.flap_fanout) wrong_kind("fanout", FaultKind::kLinkFlap);
      }
      if (e.kind != FaultKind::kAsymmetricLoss) {
        if (g.loss_fwd) wrong_kind("loss_fwd", FaultKind::kAsymmetricLoss);
        if (g.loss_rev) wrong_kind("loss_rev", FaultKind::kAsymmetricLoss);
      }
      if (e.kind != FaultKind::kSlowDrain && g.drain_us_per_pkt) {
        wrong_kind("drain_us_per_pkt", FaultKind::kSlowDrain);
      }
      if (e.kind != FaultKind::kLoadGatedDelay) {
        if (g.gate_depth) wrong_kind("gate_depth", FaultKind::kLoadGatedDelay);
        if (g.gate_delay_ms) {
          wrong_kind("gate_delay_ms", FaultKind::kLoadGatedDelay);
        }
      }
      if (g.flap_mean_up_ms && *g.flap_mean_up_ms <= 0.0) {
        errors.push_back(where + ": gray.mean_up_ms must be positive");
      }
      if (g.flap_mean_down_ms && *g.flap_mean_down_ms <= 0.0) {
        errors.push_back(where + ": gray.mean_down_ms must be positive");
      }
      if (g.flap_fanout && *g.flap_fanout < 1) {
        errors.push_back(where + ": gray.fanout must be at least 1");
      }
      if (g.loss_fwd && (*g.loss_fwd <= 0.0 || *g.loss_fwd > 1.0)) {
        errors.push_back(where + ": gray.loss_fwd must be in (0, 1]");
      }
      if (g.loss_rev && (*g.loss_rev < 0.0 || *g.loss_rev > 1.0)) {
        errors.push_back(where + ": gray.loss_rev must be in [0, 1]");
      }
      if (g.drain_us_per_pkt && *g.drain_us_per_pkt <= 0.0) {
        errors.push_back(where + ": gray.drain_us_per_pkt must be positive");
      }
      if (g.gate_depth && *g.gate_depth < 2) {
        errors.push_back(where + ": gray.gate_depth must be at least 2");
      }
      if (g.gate_delay_ms && *g.gate_delay_ms <= 0.0) {
        errors.push_back(where + ": gray.gate_delay_ms must be positive");
      }
    }
  }
  return errors;
}

const char* short_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMicroBurst: return "microburst";
    case FaultKind::kEcmpImbalance: return "ecmp";
    case FaultKind::kProcessRateDecrease: return "rate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kNotificationLoss: return "notifloss";
    case FaultKind::kReadOutage: return "readoutage";
    case FaultKind::kLinkFlap: return "flap";
    case FaultKind::kSlowDrain: return "slowdrain";
    case FaultKind::kAsymmetricLoss: return "asymloss";
    case FaultKind::kLoadGatedDelay: return "gateddelay";
  }
  return "?";
}

std::optional<FaultKind> kind_from_name(std::string_view name) {
  if (name == "microburst" || name == "micro-burst") {
    return FaultKind::kMicroBurst;
  }
  if (name == "ecmp" || name == "ecmp-imbalance") {
    return FaultKind::kEcmpImbalance;
  }
  if (name == "rate" || name == "process-rate-decrease") {
    return FaultKind::kProcessRateDecrease;
  }
  if (name == "delay") return FaultKind::kDelay;
  if (name == "drop") return FaultKind::kDrop;
  if (name == "notifloss" || name == "notification-loss") {
    return FaultKind::kNotificationLoss;
  }
  if (name == "readoutage" || name == "read-outage") {
    return FaultKind::kReadOutage;
  }
  if (name == "flap" || name == "link-flap") return FaultKind::kLinkFlap;
  if (name == "slowdrain" || name == "slow-drain") {
    return FaultKind::kSlowDrain;
  }
  if (name == "asymloss" || name == "asymmetric-loss") {
    return FaultKind::kAsymmetricLoss;
  }
  if (name == "gateddelay" || name == "load-gated-delay") {
    return FaultKind::kLoadGatedDelay;
  }
  return std::nullopt;
}

const char* known_kind_names() {
  return "microburst, ecmp, rate, delay, drop, notifloss, readoutage, "
         "flap, slowdrain, asymloss, gateddelay";
}

}  // namespace mars::faults
