#include "faults/schedule.hpp"

namespace mars::faults {

std::vector<std::string> FaultSchedule::validate(sim::Time horizon) const {
  std::vector<std::string> errors;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const std::string where = "fault[" + std::to_string(i) + "] (" +
                              std::string(short_name(e.kind)) + ")";
    if (e.at < 0) {
      errors.push_back(where + ": injection time must be non-negative");
    }
    if (e.at >= horizon) {
      errors.push_back(where + ": injection time " +
                       std::to_string(sim::to_seconds(e.at)) +
                       "s is at or past the scenario duration " +
                       std::to_string(sim::to_seconds(horizon)) + "s");
    }
    if (e.duration < 0) {
      errors.push_back(where + ": duration must be non-negative");
    }
    if (e.target_port && !e.target_switch) {
      errors.push_back(where +
                       ": a pinned port needs a pinned switch as well");
    }
    if (e.target_switch && e.kind == FaultKind::kMicroBurst) {
      errors.push_back(where +
                       ": micro-bursts target flows, not switches; drop "
                       "the pinned switch");
    }
    if ((e.target_switch || e.target_port) && is_telemetry_fault(e.kind)) {
      errors.push_back(where +
                       ": telemetry faults degrade the control channel, "
                       "not a switch; drop the pinned target");
    }
  }
  return errors;
}

const char* short_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMicroBurst: return "microburst";
    case FaultKind::kEcmpImbalance: return "ecmp";
    case FaultKind::kProcessRateDecrease: return "rate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kNotificationLoss: return "notifloss";
    case FaultKind::kReadOutage: return "readoutage";
  }
  return "?";
}

std::optional<FaultKind> kind_from_name(std::string_view name) {
  if (name == "microburst" || name == "micro-burst") {
    return FaultKind::kMicroBurst;
  }
  if (name == "ecmp" || name == "ecmp-imbalance") {
    return FaultKind::kEcmpImbalance;
  }
  if (name == "rate" || name == "process-rate-decrease") {
    return FaultKind::kProcessRateDecrease;
  }
  if (name == "delay") return FaultKind::kDelay;
  if (name == "drop") return FaultKind::kDrop;
  if (name == "notifloss" || name == "notification-loss") {
    return FaultKind::kNotificationLoss;
  }
  if (name == "readoutage" || name == "read-outage") {
    return FaultKind::kReadOutage;
  }
  return std::nullopt;
}

const char* known_kind_names() {
  return "microburst, ecmp, rate, delay, drop, notifloss, readoutage";
}

}  // namespace mars::faults
