#include "faults/injector.hpp"

#include <algorithm>

namespace mars::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMicroBurst: return "micro-burst";
    case FaultKind::kEcmpImbalance: return "ecmp-imbalance";
    case FaultKind::kProcessRateDecrease: return "process-rate-decrease";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
  }
  return "?";
}

std::string GroundTruth::describe() const {
  std::string out = to_string(kind);
  if (kind == FaultKind::kMicroBurst) {
    out += " flow " + net::to_string(flow);
  } else {
    out += " @ s" + std::to_string(switch_id);
    if (kind != FaultKind::kEcmpImbalance) {
      out += " port " + std::to_string(port);
    }
  }
  return out;
}

FaultInjector::FaultInjector(net::Network& network,
                             workload::TrafficGenerator& traffic,
                             std::uint64_t seed, InjectorConfig config)
    : network_(&network), traffic_(&traffic), rng_(seed), config_(config) {}

std::optional<GroundTruth> FaultInjector::inject(FaultKind kind,
                                                 sim::Time at) {
  std::optional<GroundTruth> truth;
  switch (kind) {
    case FaultKind::kMicroBurst:
      truth = inject_micro_burst(at);
      break;
    case FaultKind::kEcmpImbalance:
      truth = inject_ecmp(at);
      break;
    case FaultKind::kProcessRateDecrease:
    case FaultKind::kDelay:
    case FaultKind::kDrop:
      truth = inject_port_fault(kind, at);
      break;
  }
  if (truth) history_.push_back(*truth);
  return truth;
}

std::optional<FaultInjector::LoadedPath>
FaultInjector::random_loaded_path() {
  const auto& flows = traffic_->flows();
  if (flows.empty()) return std::nullopt;
  const auto& spec = flows[rng_.below(flows.size())];
  LoadedPath path;
  path.spec = &spec;
  net::SwitchId at = spec.flow.source;
  // Follow the same deterministic ECMP decisions the flow's packets take.
  for (int guard = 0; guard < 16 && at != spec.flow.sink; ++guard) {
    net::PortId out = 0;
    if (!network_->routing().select_port(at, spec.flow.sink, spec.flow_hash,
                                         out)) {
      return std::nullopt;
    }
    path.hops.push_back(LoadedHop{at, out});
    at = network_->topology().peer(at, out).neighbor;
  }
  if (path.hops.empty()) return std::nullopt;
  return path;
}

std::optional<GroundTruth> FaultInjector::inject_micro_burst(sim::Time at) {
  const auto& flows = traffic_->flows();
  if (flows.empty()) return std::nullopt;
  // Burst between a random pair already present in the traffic matrix so
  // the latency impact lands on active background flows.
  const auto& victim = flows[rng_.below(flows.size())];
  GroundTruth truth;
  truth.kind = FaultKind::kMicroBurst;
  truth.flow = victim.flow;
  truth.start = at;
  truth.duration = config_.duration;
  traffic_->add_burst(victim.flow, config_.burst_pps, at, config_.duration);
  return truth;
}

std::optional<GroundTruth> FaultInjector::inject_ecmp(sim::Time at) {
  // Pick a switch on a loaded path that has a real choice (group >= 2)
  // towards that flow's destination, then skew every group on the switch —
  // the paper rewrites the switch's ECMP strategy wholesale.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto path = random_loaded_path();
    if (!path) return std::nullopt;
    // The chooser is the first hop on a loaded path that has a real
    // alternative towards that flow's destination — the switch whose skew
    // actually redirects live traffic (the paper's s9 in Fig. 6).
    net::SwitchId chooser = net::kInvalidSwitch;
    for (const auto& hop : path->hops) {
      if (network_->routing()
              .group(hop.sw, path->spec->flow.sink)
              .members.size() >= 2) {
        chooser = hop.sw;
        break;
      }
    }
    if (chooser == net::kInvalidSwitch) continue;
    const auto ratio = static_cast<std::uint32_t>(
        rng_.range(config_.imbalance_min, config_.imbalance_max));

    GroundTruth truth;
    truth.kind = FaultKind::kEcmpImbalance;
    truth.switch_id = chooser;
    truth.start = at;
    truth.duration = config_.duration;

    auto& sim = network_->simulator();
    sim.schedule_at(at, [this, chooser, ratio] {
      for (net::SwitchId dst = 0; dst < network_->switch_count(); ++dst) {
        auto& group = network_->routing().mutable_group(chooser, dst);
        if (group.members.size() < 2) continue;
        for (std::size_t m = 0; m < group.members.size(); ++m) {
          group.members[m].weight = (m == 0) ? 1 : ratio;
        }
      }
    });
    sim.schedule_at(at + config_.duration, [this, chooser] {
      for (net::SwitchId dst = 0; dst < network_->switch_count(); ++dst) {
        auto& group = network_->routing().mutable_group(chooser, dst);
        for (auto& member : group.members) member.weight = 1;
      }
    });
    return truth;
  }
  return std::nullopt;
}

std::optional<GroundTruth> FaultInjector::inject_port_fault(FaultKind kind,
                                                            sim::Time at) {
  const auto path = random_loaded_path();
  if (!path) return std::nullopt;
  const auto& hop = path->hops[rng_.below(path->hops.size())];

  GroundTruth truth;
  truth.kind = kind;
  truth.switch_id = hop.sw;
  truth.port = hop.out;
  truth.start = at;
  truth.duration = config_.duration;

  auto& sim = network_->simulator();
  net::Switch& sw = network_->node(hop.sw);
  switch (kind) {
    case FaultKind::kProcessRateDecrease: {
      const double pps =
          rng_.uniform(config_.process_rate_min, config_.process_rate_max);
      sim.schedule_at(at, [&sw, hop, pps] { sw.set_max_pps(hop.out, pps); });
      break;
    }
    case FaultKind::kDelay: {
      const auto delay = static_cast<sim::Time>(rng_.range(
          config_.delay_min, config_.delay_max));
      sim.schedule_at(at,
                      [&sw, hop, delay] { sw.set_extra_delay(hop.out, delay); });
      break;
    }
    case FaultKind::kDrop: {
      const double p =
          rng_.uniform(config_.drop_prob_min, config_.drop_prob_max);
      sim.schedule_at(at,
                      [&sw, hop, p] { sw.set_drop_probability(hop.out, p); });
      break;
    }
    default:
      return std::nullopt;
  }
  sim.schedule_at(at + config_.duration, [&sw] { sw.clear_faults(); });
  return truth;
}

}  // namespace mars::faults
