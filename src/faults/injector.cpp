#include "faults/injector.hpp"

#include <algorithm>
#include <cstdio>

#include "control/channel.hpp"
#include "faults/schedule.hpp"
#include "obs/event_log.hpp"
#include "obs/registry.hpp"

namespace mars::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMicroBurst: return "micro-burst";
    case FaultKind::kEcmpImbalance: return "ecmp-imbalance";
    case FaultKind::kProcessRateDecrease: return "process-rate-decrease";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kNotificationLoss: return "notification-loss";
    case FaultKind::kReadOutage: return "read-outage";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kSlowDrain: return "slow-drain";
    case FaultKind::kAsymmetricLoss: return "asymmetric-loss";
    case FaultKind::kLoadGatedDelay: return "load-gated-delay";
  }
  return "?";
}

std::string GroundTruth::describe() const {
  std::string out = to_string(kind);
  if (is_telemetry_fault(kind)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " severity %.2f", severity);
    out += buf;
  } else if (kind == FaultKind::kMicroBurst) {
    out += " flow " + net::to_string(flow);
  } else {
    out += " @ s" + std::to_string(switch_id);
    if (kind != FaultKind::kEcmpImbalance) {
      out += " port " + std::to_string(port);
    }
    if (is_gray_fault(kind) && windows_total > 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " manifested %u/%u windows",
                    windows_active, windows_total);
      out += buf;
    }
  }
  return out;
}

FaultInjector::FaultInjector(net::Network& network,
                             workload::TrafficGenerator& traffic,
                             std::uint64_t seed, InjectorConfig config)
    : network_(&network), traffic_(&traffic), rng_(seed), config_(config) {}

std::optional<GroundTruth> FaultInjector::inject(FaultKind kind,
                                                 sim::Time at) {
  FaultEvent event;
  event.kind = kind;
  event.at = at;
  return inject(event);
}

std::optional<GroundTruth> FaultInjector::inject(const FaultEvent& event) {
  const sim::Time duration =
      event.duration > 0 ? event.duration : config_.duration;
  std::optional<GroundTruth> truth;
  switch (event.kind) {
    case FaultKind::kMicroBurst:
      truth = inject_micro_burst(event.at, duration);
      break;
    case FaultKind::kEcmpImbalance:
      truth = inject_ecmp(event.at, duration, event.target_switch);
      break;
    case FaultKind::kProcessRateDecrease:
    case FaultKind::kDelay:
    case FaultKind::kDrop:
      truth = inject_port_fault(event.kind, event.at, duration,
                                event.target_switch, event.target_port);
      break;
    case FaultKind::kNotificationLoss:
    case FaultKind::kReadOutage:
      truth = inject_telemetry(event.kind, event.at, duration);
      break;
    case FaultKind::kLinkFlap:
    case FaultKind::kSlowDrain:
    case FaultKind::kAsymmetricLoss:
    case FaultKind::kLoadGatedDelay:
      truth = inject_gray(event.kind, event.at, duration, event.target_switch,
                          event.target_port, event.gray);
      break;
  }
  if (truth) {
    history_.push_back(*truth);
    if (log_ != nullptr) {
      log_->log(obs::LogLevel::kInfo, event.at, "injector", "fault_injected",
                {{"kind", to_string(event.kind)},
                 {"truth", truth->describe()}});
    }
  } else {
    note_skipped(event.kind, event.at);
  }
  return truth;
}

void FaultInjector::set_metrics(obs::MetricsRegistry& registry) {
  skipped_ = &registry.counter("faults.skipped");
}

void FaultInjector::note_skipped(FaultKind kind, sim::Time at) {
  if (skipped_ != nullptr) skipped_->inc();
  if (log_ != nullptr) {
    log_->log(obs::LogLevel::kWarn, at, "injector", "fault_skipped",
              {{"kind", to_string(kind)}});
  }
  std::fprintf(stderr,
               "warning: %s injection at %.3fs found no viable target; "
               "trial runs without this fault\n",
               to_string(kind), sim::to_seconds(at));
}

std::optional<GroundTruth> FaultInjector::inject_telemetry(
    FaultKind kind, sim::Time at, sim::Time duration) {
  if (channel_ == nullptr) return std::nullopt;
  GroundTruth truth;
  truth.kind = kind;
  truth.start = at;
  truth.duration = duration;
  if (kind == FaultKind::kNotificationLoss) {
    truth.severity = rng_.uniform(config_.telemetry_loss_min,
                                  config_.telemetry_loss_max);
    channel_->schedule_degradation(
        control::ControlChannel::Dial::kNotificationLoss, truth.severity, at,
        duration);
  } else {
    truth.severity =
        rng_.uniform(config_.read_outage_min, config_.read_outage_max);
    channel_->schedule_degradation(control::ControlChannel::Dial::kReadFailure,
                                   truth.severity, at, duration);
  }
  return truth;
}

std::vector<std::optional<GroundTruth>> FaultInjector::apply(
    const FaultSchedule& schedule) {
  std::vector<std::optional<GroundTruth>> truths;
  truths.reserve(schedule.events.size());
  for (const FaultEvent& event : schedule.events) {
    truths.push_back(inject(event));
  }
  return truths;
}

std::optional<FaultInjector::LoadedPath>
FaultInjector::random_loaded_path(sim::Time when) {
  const auto& flows = traffic_->flows();
  if (flows.empty()) return std::nullopt;
  // Draw only among flows alive at the injection time, so a late event on
  // a long schedule cannot land on a port whose traffic already finished
  // (a vacuous trial that grades like a miss). When every flow is alive —
  // the default background matrix runs for the whole trial — the draw is
  // bit-identical to the historical unfiltered one.
  std::vector<std::size_t> alive;
  alive.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].start <= when && when < flows[i].stop) alive.push_back(i);
  }
  if (alive.empty()) return std::nullopt;
  const auto& spec = flows[alive[rng_.below(alive.size())]];
  LoadedPath path;
  path.spec = &spec;
  net::SwitchId at = spec.flow.source;
  // Follow the same deterministic ECMP decisions the flow's packets take.
  for (int guard = 0; guard < 16 && at != spec.flow.sink; ++guard) {
    net::PortId out = 0;
    if (!network_->routing().select_port(at, spec.flow.sink, spec.flow_hash,
                                         out)) {
      return std::nullopt;
    }
    path.hops.push_back(LoadedHop{at, out});
    at = network_->topology().peer(at, out).neighbor;
  }
  if (path.hops.empty()) return std::nullopt;
  return path;
}

std::optional<GroundTruth> FaultInjector::inject_micro_burst(
    sim::Time at, sim::Time duration) {
  const auto& flows = traffic_->flows();
  if (flows.empty()) return std::nullopt;
  // Burst between a random pair already present in the traffic matrix so
  // the latency impact lands on active background flows.
  const auto& victim = flows[rng_.below(flows.size())];
  GroundTruth truth;
  truth.kind = FaultKind::kMicroBurst;
  truth.flow = victim.flow;
  truth.start = at;
  truth.duration = duration;
  traffic_->add_burst(victim.flow, config_.burst_pps, at, duration);
  return truth;
}

void FaultInjector::schedule_ecmp_skew(net::SwitchId chooser,
                                       std::uint32_t ratio, sim::Time at,
                                       sim::Time duration) {
  auto& sim = network_->simulator();
  sim.schedule_at(at, [this, chooser, ratio] {
    for (net::SwitchId dst = 0; dst < network_->switch_count(); ++dst) {
      auto& group = network_->routing().mutable_group(chooser, dst);
      if (group.members.size() < 2) continue;
      for (std::size_t m = 0; m < group.members.size(); ++m) {
        group.members[m].weight = (m == 0) ? 1 : ratio;
      }
    }
  });
  sim.schedule_at(at + duration, [this, chooser] {
    for (net::SwitchId dst = 0; dst < network_->switch_count(); ++dst) {
      auto& group = network_->routing().mutable_group(chooser, dst);
      for (auto& member : group.members) member.weight = 1;
    }
  });
}

std::optional<GroundTruth> FaultInjector::inject_ecmp(
    sim::Time at, sim::Time duration, std::optional<net::SwitchId> target) {
  if (target) {
    // Pinned chooser: skew it whether or not a live flow routes through
    // it — the operator asked for this exact switch.
    const auto ratio = static_cast<std::uint32_t>(
        rng_.range(config_.imbalance_min, config_.imbalance_max));
    GroundTruth truth;
    truth.kind = FaultKind::kEcmpImbalance;
    truth.switch_id = *target;
    truth.start = at;
    truth.duration = duration;
    schedule_ecmp_skew(*target, ratio, at, duration);
    return truth;
  }
  // Pick a switch on a loaded path that has a real choice (group >= 2)
  // towards that flow's destination, then skew every group on the switch —
  // the paper rewrites the switch's ECMP strategy wholesale.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto path = random_loaded_path(at);
    if (!path) return std::nullopt;
    // The chooser is the first hop on a loaded path that has a real
    // alternative towards that flow's destination — the switch whose skew
    // actually redirects live traffic (the paper's s9 in Fig. 6).
    net::SwitchId chooser = net::kInvalidSwitch;
    for (const auto& hop : path->hops) {
      if (network_->routing()
              .group(hop.sw, path->spec->flow.sink)
              .members.size() >= 2) {
        chooser = hop.sw;
        break;
      }
    }
    if (chooser == net::kInvalidSwitch) continue;
    const auto ratio = static_cast<std::uint32_t>(
        rng_.range(config_.imbalance_min, config_.imbalance_max));

    GroundTruth truth;
    truth.kind = FaultKind::kEcmpImbalance;
    truth.switch_id = chooser;
    truth.start = at;
    truth.duration = duration;
    schedule_ecmp_skew(chooser, ratio, at, duration);
    return truth;
  }
  return std::nullopt;
}

std::optional<GroundTruth> FaultInjector::inject_port_fault(
    FaultKind kind, sim::Time at, sim::Time duration,
    std::optional<net::SwitchId> target_switch,
    std::optional<net::PortId> target_port) {
  GroundTruth truth;
  truth.kind = kind;
  truth.start = at;
  truth.duration = duration;
  if (target_switch) {
    if (*target_switch >= network_->switch_count()) return std::nullopt;
    const auto ports = network_->topology().port_count(*target_switch);
    truth.switch_id = *target_switch;
    truth.port = target_port ? *target_port : 0;
    if (truth.port >= ports) return std::nullopt;
  } else {
    const auto path = random_loaded_path(at);
    if (!path) return std::nullopt;
    const auto& hop = path->hops[rng_.below(path->hops.size())];
    truth.switch_id = hop.sw;
    truth.port = hop.out;
  }

  auto& sim = network_->simulator();
  net::Switch& sw = network_->node(truth.switch_id);
  const net::PortId port = truth.port;
  switch (kind) {
    case FaultKind::kProcessRateDecrease: {
      const double pps =
          rng_.uniform(config_.process_rate_min, config_.process_rate_max);
      sim.schedule_at(at, [&sw, port, pps] { sw.set_max_pps(port, pps); });
      // Targeted recovery (not clear_faults): with overlapping faults on
      // one switch, recovering this fault must not erase the others.
      sim.schedule_at(at + duration,
                      [&sw, port] { sw.set_max_pps(port, 0.0); });
      break;
    }
    case FaultKind::kDelay: {
      const auto delay = static_cast<sim::Time>(
          rng_.range(config_.delay_min, config_.delay_max));
      sim.schedule_at(at,
                      [&sw, port, delay] { sw.set_extra_delay(port, delay); });
      sim.schedule_at(at + duration,
                      [&sw, port] { sw.set_extra_delay(port, 0); });
      break;
    }
    case FaultKind::kDrop: {
      const double p =
          rng_.uniform(config_.drop_prob_min, config_.drop_prob_max);
      sim.schedule_at(at,
                      [&sw, port, p] { sw.set_drop_probability(port, p); });
      sim.schedule_at(at + duration,
                      [&sw, port] { sw.set_drop_probability(port, 0.0); });
      break;
    }
    default:
      return std::nullopt;
  }
  return truth;
}

std::optional<GroundTruth> FaultInjector::inject_gray(
    FaultKind kind, sim::Time at, sim::Time duration,
    std::optional<net::SwitchId> target_switch,
    std::optional<net::PortId> target_port, const GrayParams& gray) {
  GroundTruth truth;
  truth.kind = kind;
  truth.start = at;
  truth.duration = duration;
  if (target_switch) {
    if (*target_switch >= network_->switch_count()) return std::nullopt;
    const auto ports = network_->topology().port_count(*target_switch);
    truth.switch_id = *target_switch;
    truth.port = target_port ? *target_port : 0;
    if (truth.port >= ports) return std::nullopt;
  } else {
    const auto path = random_loaded_path(at);
    if (!path) return std::nullopt;
    const auto& hop = path->hops[rng_.below(path->hops.size())];
    truth.switch_id = hop.sw;
    truth.port = hop.out;
  }

  auto& sim = network_->simulator();
  net::Switch& sw = network_->node(truth.switch_id);
  const net::PortId port = truth.port;

  GrayWatch watch;
  watch.kind = kind;
  watch.truth_index = history_.size();  // inject() pushes right after us
  watch.ports.emplace_back(truth.switch_id, port);

  switch (kind) {
    case FaultKind::kLinkFlap: {
      const double mean_up =
          gray.flap_mean_up_ms.value_or(config_.flap_mean_up_ms);
      const double mean_down =
          gray.flap_mean_down_ms.value_or(config_.flap_mean_down_ms);
      const auto port_count = network_->topology().port_count(truth.switch_id);
      const int fanout =
          std::clamp(gray.flap_fanout.value_or(config_.flap_fanout), 1,
                     static_cast<int>(port_count));
      // Correlated set: the loaded primary port plus the next ascending
      // port indices of the same switch (a shared-component failure).
      std::vector<net::PortId> flapped;
      for (int i = 0; i < fanout; ++i) {
        flapped.push_back(static_cast<net::PortId>(
            (port + static_cast<net::PortId>(i)) % port_count));
      }
      // The whole Gilbert–Elliott timeline is drawn here, at injection
      // time, from the injector's own stream: transitions are then plain
      // scheduled events, bit-identical at every thread/shard count. The
      // process starts up; entries alternate down, up, down, up, ...
      const sim::Time end = at + duration;
      sim::Time t = at;
      bool down = false;
      while (true) {
        const double mean_ms = down ? mean_down : mean_up;
        t += static_cast<sim::Time>(
            rng_.exponential(1.0 / mean_ms) *
            static_cast<double>(sim::kMillisecond));
        if (t >= end) break;
        down = !down;
        truth.flap_transitions.push_back(t);
      }
      bool to_down = true;
      for (const sim::Time when : truth.flap_transitions) {
        // A flapped-down link drops everything: p = 1 short-circuits the
        // per-packet RNG draw in Switch::enqueue, so flapping perturbs no
        // other stochastic stream.
        const double p = to_down ? 1.0 : 0.0;
        for (const net::PortId fp : flapped) {
          sim.schedule_at(when,
                          [&sw, fp, p] { sw.set_drop_probability(fp, p); });
        }
        to_down = !to_down;
      }
      for (const net::PortId fp : flapped) {
        sim.schedule_at(end,
                        [&sw, fp] { sw.set_drop_probability(fp, 0.0); });
      }
      truth.severity = mean_down / (mean_up + mean_down);  // duty cycle
      watch.ports.clear();
      for (const net::PortId fp : flapped) {
        watch.ports.emplace_back(truth.switch_id, fp);
      }
      break;
    }
    case FaultKind::kSlowDrain: {
      const double us = gray.drain_us_per_pkt
                            ? *gray.drain_us_per_pkt
                            : rng_.uniform(config_.slow_drain_min_us,
                                           config_.slow_drain_max_us);
      const auto per_pkt = static_cast<sim::Time>(
          us * static_cast<double>(sim::kMicrosecond));
      sim.schedule_at(at, [&sw, port, per_pkt] {
        sw.set_slow_drain(port, per_pkt);
      });
      sim.schedule_at(at + duration,
                      [&sw, port] { sw.set_slow_drain(port, 0); });
      truth.severity = us;
      break;
    }
    case FaultKind::kAsymmetricLoss: {
      const double fwd =
          gray.loss_fwd ? *gray.loss_fwd
                        : rng_.uniform(config_.asym_loss_min,
                                       config_.asym_loss_max);
      const double rev = gray.loss_rev.value_or(0.0);
      sim.schedule_at(at, [&sw, port, fwd] {
        sw.set_drop_probability(port, fwd);
      });
      sim.schedule_at(at + duration,
                      [&sw, port] { sw.set_drop_probability(port, 0.0); });
      if (rev > 0.0) {
        // Reverse direction: the peer switch's egress back towards us.
        const auto peer = network_->topology().peer(truth.switch_id, port);
        net::Switch& psw = network_->node(peer.neighbor);
        const net::PortId pp = peer.neighbor_port;
        sim.schedule_at(at, [&psw, pp, rev] {
          psw.set_drop_probability(pp, rev);
        });
        sim.schedule_at(at + duration,
                        [&psw, pp] { psw.set_drop_probability(pp, 0.0); });
        watch.ports.emplace_back(peer.neighbor, pp);
      }
      truth.severity = fwd;
      break;
    }
    case FaultKind::kLoadGatedDelay: {
      const auto delay =
          gray.gate_delay_ms
              ? static_cast<sim::Time>(
                    *gray.gate_delay_ms *
                    static_cast<double>(sim::kMillisecond))
              : static_cast<sim::Time>(
                    rng_.range(config_.delay_min, config_.delay_max));
      const std::uint32_t depth = gray.gate_depth.value_or(config_.gate_depth);
      sim.schedule_at(at, [&sw, port, delay, depth] {
        sw.set_gated_delay(port, delay, depth);
      });
      sim.schedule_at(at + duration,
                      [&sw, port] { sw.set_gated_delay(port, 0, 0); });
      truth.severity = sim::to_seconds(delay);
      break;
    }
    default:
      return std::nullopt;
  }

  watches_.push_back(std::move(watch));
  schedule_probes(watches_.size() - 1, at, duration);
  return truth;
}

std::uint64_t FaultInjector::gray_counter_sum(const GrayWatch& watch) const {
  std::uint64_t sum = 0;
  for (const auto& [sw_id, port] : watch.ports) {
    const net::PortCounters& c = network_->node(sw_id).counters(port);
    switch (watch.kind) {
      case FaultKind::kLinkFlap:
      case FaultKind::kAsymmetricLoss:
        sum += c.fault_drops;
        break;
      case FaultKind::kSlowDrain:
        sum += c.drain_penalties;
        break;
      case FaultKind::kLoadGatedDelay:
        sum += c.gated_delays;
        break;
      default:
        break;
    }
  }
  return sum;
}

void FaultInjector::schedule_probes(std::size_t watch_index, sim::Time at,
                                    sim::Time duration) {
  // Probes run on the control-plane simulator: in sharded mode its events
  // execute between conservative windows with every shard quiescent, so
  // reading PortCounters here is race-free (same contract the fault
  // mutations above rely on).
  auto& sim = network_->simulator();
  sim.schedule_at(at, [this, watch_index] {
    watches_[watch_index].last = gray_counter_sum(watches_[watch_index]);
  });
  const sim::Time window = std::max<sim::Time>(config_.manifestation_window,
                                               1 * sim::kMillisecond);
  for (sim::Time t = at + window; t < at + duration; t += window) {
    sim.schedule_at(t, [this, watch_index] { probe_window(watch_index); });
  }
  sim.schedule_at(at + duration,
                  [this, watch_index] { probe_window(watch_index); });
}

void FaultInjector::probe_window(std::size_t watch_index) {
  GrayWatch& watch = watches_[watch_index];
  const std::uint64_t sum = gray_counter_sum(watch);
  GroundTruth& truth = history_[watch.truth_index];
  ++truth.windows_total;
  if (sum > watch.last) ++truth.windows_active;
  watch.last = sum;
  truth.manifestation_ratio =
      static_cast<double>(truth.windows_active) /
      static_cast<double>(truth.windows_total);
}

}  // namespace mars::faults
