#include "faults/injector.hpp"

#include <algorithm>
#include <cstdio>

#include "control/channel.hpp"
#include "faults/schedule.hpp"
#include "obs/event_log.hpp"
#include "obs/registry.hpp"

namespace mars::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMicroBurst: return "micro-burst";
    case FaultKind::kEcmpImbalance: return "ecmp-imbalance";
    case FaultKind::kProcessRateDecrease: return "process-rate-decrease";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kNotificationLoss: return "notification-loss";
    case FaultKind::kReadOutage: return "read-outage";
  }
  return "?";
}

std::string GroundTruth::describe() const {
  std::string out = to_string(kind);
  if (is_telemetry_fault(kind)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " severity %.2f", severity);
    out += buf;
  } else if (kind == FaultKind::kMicroBurst) {
    out += " flow " + net::to_string(flow);
  } else {
    out += " @ s" + std::to_string(switch_id);
    if (kind != FaultKind::kEcmpImbalance) {
      out += " port " + std::to_string(port);
    }
  }
  return out;
}

FaultInjector::FaultInjector(net::Network& network,
                             workload::TrafficGenerator& traffic,
                             std::uint64_t seed, InjectorConfig config)
    : network_(&network), traffic_(&traffic), rng_(seed), config_(config) {}

std::optional<GroundTruth> FaultInjector::inject(FaultKind kind,
                                                 sim::Time at) {
  FaultEvent event;
  event.kind = kind;
  event.at = at;
  return inject(event);
}

std::optional<GroundTruth> FaultInjector::inject(const FaultEvent& event) {
  const sim::Time duration =
      event.duration > 0 ? event.duration : config_.duration;
  std::optional<GroundTruth> truth;
  switch (event.kind) {
    case FaultKind::kMicroBurst:
      truth = inject_micro_burst(event.at, duration);
      break;
    case FaultKind::kEcmpImbalance:
      truth = inject_ecmp(event.at, duration, event.target_switch);
      break;
    case FaultKind::kProcessRateDecrease:
    case FaultKind::kDelay:
    case FaultKind::kDrop:
      truth = inject_port_fault(event.kind, event.at, duration,
                                event.target_switch, event.target_port);
      break;
    case FaultKind::kNotificationLoss:
    case FaultKind::kReadOutage:
      truth = inject_telemetry(event.kind, event.at, duration);
      break;
  }
  if (truth) {
    history_.push_back(*truth);
    if (log_ != nullptr) {
      log_->log(obs::LogLevel::kInfo, event.at, "injector", "fault_injected",
                {{"kind", to_string(event.kind)},
                 {"truth", truth->describe()}});
    }
  } else {
    note_skipped(event.kind, event.at);
  }
  return truth;
}

void FaultInjector::set_metrics(obs::MetricsRegistry& registry) {
  skipped_ = &registry.counter("faults.skipped");
}

void FaultInjector::note_skipped(FaultKind kind, sim::Time at) {
  if (skipped_ != nullptr) skipped_->inc();
  if (log_ != nullptr) {
    log_->log(obs::LogLevel::kWarn, at, "injector", "fault_skipped",
              {{"kind", to_string(kind)}});
  }
  std::fprintf(stderr,
               "warning: %s injection at %.3fs found no viable target; "
               "trial runs without this fault\n",
               to_string(kind), sim::to_seconds(at));
}

std::optional<GroundTruth> FaultInjector::inject_telemetry(
    FaultKind kind, sim::Time at, sim::Time duration) {
  if (channel_ == nullptr) return std::nullopt;
  GroundTruth truth;
  truth.kind = kind;
  truth.start = at;
  truth.duration = duration;
  if (kind == FaultKind::kNotificationLoss) {
    truth.severity = rng_.uniform(config_.telemetry_loss_min,
                                  config_.telemetry_loss_max);
    channel_->schedule_degradation(
        control::ControlChannel::Dial::kNotificationLoss, truth.severity, at,
        duration);
  } else {
    truth.severity =
        rng_.uniform(config_.read_outage_min, config_.read_outage_max);
    channel_->schedule_degradation(control::ControlChannel::Dial::kReadFailure,
                                   truth.severity, at, duration);
  }
  return truth;
}

std::vector<std::optional<GroundTruth>> FaultInjector::apply(
    const FaultSchedule& schedule) {
  std::vector<std::optional<GroundTruth>> truths;
  truths.reserve(schedule.events.size());
  for (const FaultEvent& event : schedule.events) {
    truths.push_back(inject(event));
  }
  return truths;
}

std::optional<FaultInjector::LoadedPath>
FaultInjector::random_loaded_path() {
  const auto& flows = traffic_->flows();
  if (flows.empty()) return std::nullopt;
  const auto& spec = flows[rng_.below(flows.size())];
  LoadedPath path;
  path.spec = &spec;
  net::SwitchId at = spec.flow.source;
  // Follow the same deterministic ECMP decisions the flow's packets take.
  for (int guard = 0; guard < 16 && at != spec.flow.sink; ++guard) {
    net::PortId out = 0;
    if (!network_->routing().select_port(at, spec.flow.sink, spec.flow_hash,
                                         out)) {
      return std::nullopt;
    }
    path.hops.push_back(LoadedHop{at, out});
    at = network_->topology().peer(at, out).neighbor;
  }
  if (path.hops.empty()) return std::nullopt;
  return path;
}

std::optional<GroundTruth> FaultInjector::inject_micro_burst(
    sim::Time at, sim::Time duration) {
  const auto& flows = traffic_->flows();
  if (flows.empty()) return std::nullopt;
  // Burst between a random pair already present in the traffic matrix so
  // the latency impact lands on active background flows.
  const auto& victim = flows[rng_.below(flows.size())];
  GroundTruth truth;
  truth.kind = FaultKind::kMicroBurst;
  truth.flow = victim.flow;
  truth.start = at;
  truth.duration = duration;
  traffic_->add_burst(victim.flow, config_.burst_pps, at, duration);
  return truth;
}

void FaultInjector::schedule_ecmp_skew(net::SwitchId chooser,
                                       std::uint32_t ratio, sim::Time at,
                                       sim::Time duration) {
  auto& sim = network_->simulator();
  sim.schedule_at(at, [this, chooser, ratio] {
    for (net::SwitchId dst = 0; dst < network_->switch_count(); ++dst) {
      auto& group = network_->routing().mutable_group(chooser, dst);
      if (group.members.size() < 2) continue;
      for (std::size_t m = 0; m < group.members.size(); ++m) {
        group.members[m].weight = (m == 0) ? 1 : ratio;
      }
    }
  });
  sim.schedule_at(at + duration, [this, chooser] {
    for (net::SwitchId dst = 0; dst < network_->switch_count(); ++dst) {
      auto& group = network_->routing().mutable_group(chooser, dst);
      for (auto& member : group.members) member.weight = 1;
    }
  });
}

std::optional<GroundTruth> FaultInjector::inject_ecmp(
    sim::Time at, sim::Time duration, std::optional<net::SwitchId> target) {
  if (target) {
    // Pinned chooser: skew it whether or not a live flow routes through
    // it — the operator asked for this exact switch.
    const auto ratio = static_cast<std::uint32_t>(
        rng_.range(config_.imbalance_min, config_.imbalance_max));
    GroundTruth truth;
    truth.kind = FaultKind::kEcmpImbalance;
    truth.switch_id = *target;
    truth.start = at;
    truth.duration = duration;
    schedule_ecmp_skew(*target, ratio, at, duration);
    return truth;
  }
  // Pick a switch on a loaded path that has a real choice (group >= 2)
  // towards that flow's destination, then skew every group on the switch —
  // the paper rewrites the switch's ECMP strategy wholesale.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto path = random_loaded_path();
    if (!path) return std::nullopt;
    // The chooser is the first hop on a loaded path that has a real
    // alternative towards that flow's destination — the switch whose skew
    // actually redirects live traffic (the paper's s9 in Fig. 6).
    net::SwitchId chooser = net::kInvalidSwitch;
    for (const auto& hop : path->hops) {
      if (network_->routing()
              .group(hop.sw, path->spec->flow.sink)
              .members.size() >= 2) {
        chooser = hop.sw;
        break;
      }
    }
    if (chooser == net::kInvalidSwitch) continue;
    const auto ratio = static_cast<std::uint32_t>(
        rng_.range(config_.imbalance_min, config_.imbalance_max));

    GroundTruth truth;
    truth.kind = FaultKind::kEcmpImbalance;
    truth.switch_id = chooser;
    truth.start = at;
    truth.duration = duration;
    schedule_ecmp_skew(chooser, ratio, at, duration);
    return truth;
  }
  return std::nullopt;
}

std::optional<GroundTruth> FaultInjector::inject_port_fault(
    FaultKind kind, sim::Time at, sim::Time duration,
    std::optional<net::SwitchId> target_switch,
    std::optional<net::PortId> target_port) {
  GroundTruth truth;
  truth.kind = kind;
  truth.start = at;
  truth.duration = duration;
  if (target_switch) {
    if (*target_switch >= network_->switch_count()) return std::nullopt;
    const auto ports = network_->topology().port_count(*target_switch);
    truth.switch_id = *target_switch;
    truth.port = target_port ? *target_port : 0;
    if (truth.port >= ports) return std::nullopt;
  } else {
    const auto path = random_loaded_path();
    if (!path) return std::nullopt;
    const auto& hop = path->hops[rng_.below(path->hops.size())];
    truth.switch_id = hop.sw;
    truth.port = hop.out;
  }

  auto& sim = network_->simulator();
  net::Switch& sw = network_->node(truth.switch_id);
  const net::PortId port = truth.port;
  switch (kind) {
    case FaultKind::kProcessRateDecrease: {
      const double pps =
          rng_.uniform(config_.process_rate_min, config_.process_rate_max);
      sim.schedule_at(at, [&sw, port, pps] { sw.set_max_pps(port, pps); });
      // Targeted recovery (not clear_faults): with overlapping faults on
      // one switch, recovering this fault must not erase the others.
      sim.schedule_at(at + duration,
                      [&sw, port] { sw.set_max_pps(port, 0.0); });
      break;
    }
    case FaultKind::kDelay: {
      const auto delay = static_cast<sim::Time>(
          rng_.range(config_.delay_min, config_.delay_max));
      sim.schedule_at(at,
                      [&sw, port, delay] { sw.set_extra_delay(port, delay); });
      sim.schedule_at(at + duration,
                      [&sw, port] { sw.set_extra_delay(port, 0); });
      break;
    }
    case FaultKind::kDrop: {
      const double p =
          rng_.uniform(config_.drop_prob_min, config_.drop_prob_max);
      sim.schedule_at(at,
                      [&sw, port, p] { sw.set_drop_probability(port, p); });
      sim.schedule_at(at + duration,
                      [&sw, port] { sw.set_drop_probability(port, 0.0); });
      break;
    }
    default:
      return std::nullopt;
  }
  return truth;
}

}  // namespace mars::faults
