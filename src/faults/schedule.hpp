#pragma once
// FaultSchedule: an ordered list of fault events replacing the single
// (fault, fault_at) pair. A schedule expresses multi-fault, concurrent-
// fault, and fault-then-recover scenarios declaratively; a single-entry
// schedule with default target/duration is bit-identical to the legacy
// one-fault path under a fixed seed (the injector draws the same RNG
// sequence for it).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "faults/injector.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace mars::faults {

/// One scheduled injection. Targets are optional: unset means the
/// injector picks a random loaded location (the paper's methodology,
/// deterministic in the trial seed); set pins the fault to a specific
/// switch/port like a targeted chaos experiment.
struct FaultEvent {
  FaultKind kind = FaultKind::kProcessRateDecrease;
  sim::Time at = 0;
  /// 0 = use the injector's default duration; otherwise recovery is
  /// scheduled at `at + duration`.
  sim::Time duration = 0;
  /// Pin the culprit switch (ECMP + port faults). Micro-bursts ignore it.
  std::optional<net::SwitchId> target_switch;
  /// Pin the culprit egress port (port faults only; requires
  /// target_switch).
  std::optional<net::PortId> target_port;
  /// Gray-kind parameter overrides (the spec's per-fault "gray" block).
  /// Setting any field on a non-gray kind is a validation error.
  GrayParams gray;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  [[nodiscard]] static FaultSchedule single(FaultKind kind, sim::Time at,
                                            sim::Time duration = 0) {
    FaultSchedule schedule;
    FaultEvent event;
    event.kind = kind;
    event.at = at;
    event.duration = duration;
    schedule.events.push_back(event);
    return schedule;
  }

  FaultSchedule& add(FaultEvent event) {
    events.push_back(std::move(event));
    return *this;
  }

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t size() const { return events.size(); }

  /// Schedule problems for a trial of length `horizon` (descriptive
  /// sentences; empty means valid). Every event must start inside the
  /// trial, after t=0, with a non-negative duration, and a pinned port
  /// needs a pinned switch.
  [[nodiscard]] std::vector<std::string> validate(sim::Time horizon) const;

  friend bool operator==(const FaultSchedule&,
                         const FaultSchedule&) = default;
};

/// Short spec/CLI names: microburst | ecmp | rate | delay | drop |
/// notifloss | readoutage | flap | slowdrain | asymloss | gateddelay.
[[nodiscard]] const char* short_name(FaultKind kind);
[[nodiscard]] std::optional<FaultKind> kind_from_name(std::string_view name);
/// Comma-separated list of every short name — for error messages.
[[nodiscard]] const char* known_kind_names();

}  // namespace mars::faults
