#pragma once
// Fault injection (paper §5.2) with ground-truth labels for evaluation.
//
// Five network scenarios:
//   micro-burst:            transient >1000 pps flow for ~1 s;
//   ECMP load imbalance:    a random switch's ECMP weights move from 1:1
//                           to 1:r, r ∈ [4, 10];
//   process-rate decrease:  a port's service rate drops below 100 pps;
//   delay:                  a port gains constant extra latency outside
//                           the queue (Chaosblade-style interface fault);
//   drop:                   a port drops packets with fixed probability.
//
// plus two telemetry (chaos) scenarios that degrade the monitoring system
// itself rather than the network — they raise a dial on the attached
// control::ControlChannel for the fault window:
//   notification-loss:      notification packets drop with a drawn
//                           severity;
//   read-outage:            per-switch Ring-Table reads fail with a drawn
//                           severity;
//
// plus the gray-failure family (intermittent / load-dependent / partial
// faults, see DESIGN.md "Gray failures"):
//   link-flap:              a seeded two-state Gilbert–Elliott process
//                           toggles the egress direction of one or more
//                           correlated ports of a switch down (100% loss)
//                           and back up in bursts; the whole transition
//                           timeline is drawn at injection time, so it is
//                           bit-identical at every shard count;
//   slow-drain:             a port's service rate degrades with its
//                           instantaneous queue occupancy — only
//                           manifests under load;
//   asymmetric-loss:        direction-dependent drop probability on one
//                           link (forward >> reverse);
//   load-gated-delay:       extra latency only while the queue is at or
//                           above a depth threshold.
//
// Gray injections additionally schedule per-window manifestation probes
// that read the fault-attributable PortCounters and record, per ground
// truth, the fraction of windows in which the fault actually perturbed
// traffic (GroundTruth::manifestation_ratio) — so grading can tell
// "missed" from "never manifested".
//
// Each network injection targets a location that actually carries traffic
// (picked from the background flows ALIVE at the injection time, so late
// events on long schedules stay non-vacuous), and schedules its own
// removal. Telemetry injections need a channel attached (attach_channel)
// and are skipped — visibly — without one.

#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"
#include "workload/traffic_gen.hpp"

namespace mars::control {
class ControlChannel;
}  // namespace mars::control

namespace mars::obs {
class Counter;
class EventLog;
class MetricsRegistry;
}  // namespace mars::obs

namespace mars::faults {

enum class FaultKind : std::uint8_t {
  kMicroBurst,
  kEcmpImbalance,
  kProcessRateDecrease,
  kDelay,
  kDrop,
  kNotificationLoss,  ///< telemetry: drop controller notifications
  kReadOutage,        ///< telemetry: fail Ring-Table reads
  kLinkFlap,          ///< gray: Gilbert–Elliott bursty up/down on a port set
  kSlowDrain,         ///< gray: service rate degrades with queue occupancy
  kAsymmetricLoss,    ///< gray: direction-dependent drop on one link
  kLoadGatedDelay,    ///< gray: extra latency only above a depth threshold
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// True for the chaos kinds that degrade the telemetry channel instead of
/// the network. Telemetry faults are not localizable culprits: grading
/// never matches them (metrics::culprit_matches returns false).
[[nodiscard]] constexpr bool is_telemetry_fault(FaultKind kind) {
  return kind == FaultKind::kNotificationLoss ||
         kind == FaultKind::kReadOutage;
}

/// True for the intermittent / load-dependent / partial kinds. Gray
/// faults are localizable like the clean network kinds, but additionally
/// record a per-trial manifestation ratio.
[[nodiscard]] constexpr bool is_gray_fault(FaultKind kind) {
  return kind == FaultKind::kLinkFlap || kind == FaultKind::kSlowDrain ||
         kind == FaultKind::kAsymmetricLoss ||
         kind == FaultKind::kLoadGatedDelay;
}

/// Per-event gray-fault parameter overrides (the spec's per-fault "gray"
/// block). Unset fields fall back to the InjectorConfig defaults; any set
/// field on a non-gray kind is a validation error (FaultSchedule::
/// validate names the offending path).
struct GrayParams {
  // link-flap: Gilbert–Elliott mean burst lengths and the number of
  // correlated ports of the target switch that flap together.
  std::optional<double> flap_mean_up_ms;
  std::optional<double> flap_mean_down_ms;
  std::optional<int> flap_fanout;
  // asymmetric-loss: forward / reverse drop probabilities on the link.
  std::optional<double> loss_fwd;
  std::optional<double> loss_rev;
  // slow-drain: extra service microseconds per packet queued behind the
  // head.
  std::optional<double> drain_us_per_pkt;
  // load-gated-delay: arming queue depth and the gated latency.
  std::optional<std::uint32_t> gate_depth;
  std::optional<double> gate_delay_ms;

  [[nodiscard]] bool any_set() const {
    return flap_mean_up_ms || flap_mean_down_ms || flap_fanout || loss_fwd ||
           loss_rev || drain_us_per_pkt || gate_depth || gate_delay_ms;
  }
  friend bool operator==(const GrayParams&, const GrayParams&) = default;
};

/// What was actually injected — the label the localization metrics grade
/// culprit lists against.
struct GroundTruth {
  FaultKind kind = FaultKind::kDelay;
  net::SwitchId switch_id = net::kInvalidSwitch;  ///< culprit switch
  net::PortId port = 0;                           ///< for port faults
  net::FlowId flow{net::kInvalidSwitch, net::kInvalidSwitch};  ///< burst flow
  sim::Time start = 0;
  sim::Time duration = 0;
  /// Telemetry faults: the dial level applied (loss / failure probability
  /// in (0, 1]). Gray faults: the drawn magnitude (flap: expected down
  /// fraction; asym-loss: forward drop probability; slow-drain: µs per
  /// queued packet; gated-delay: delay in seconds).
  double severity = 0.0;

  // ---- gray-fault bookkeeping ----
  /// link-flap only: the drawn Gilbert–Elliott transition timeline,
  /// absolute times alternating down, up, down, up, ... — drawn entirely
  /// at injection time, so identical at every thread/shard count.
  std::vector<sim::Time> flap_transitions;
  /// Manifestation accounting, filled in by the injector's per-window
  /// probes as the simulation runs (gray kinds only; read it after the
  /// run — run_scenario re-reads the injector history into its truths).
  /// windows_total == 0 means "not probed" (clean kinds): the fault is
  /// on for its whole window and manifestation_ratio stays 1.
  std::uint32_t windows_total = 0;
  std::uint32_t windows_active = 0;
  /// Fraction of probe windows in which the fault perturbed traffic.
  double manifestation_ratio = 1.0;

  [[nodiscard]] std::string describe() const;
};

struct InjectorConfig {
  sim::Time duration = 1 * sim::kSecond;
  double burst_pps = 2500.0;          ///< > 1000 pps (paper), above line rate
  int imbalance_min = 4, imbalance_max = 10;  ///< ratio 1:r
  double process_rate_min = 50.0, process_rate_max = 90.0;  ///< < 100 pps
  sim::Time delay_min = 50 * sim::kMillisecond;
  sim::Time delay_max = 200 * sim::kMillisecond;
  double drop_prob_min = 0.3, drop_prob_max = 0.8;
  /// Telemetry-fault severity draws (dial levels on the control channel).
  double telemetry_loss_min = 0.5, telemetry_loss_max = 0.9;
  double read_outage_min = 0.5, read_outage_max = 0.9;
  // ---- gray-failure defaults (per-event GrayParams override these) ----
  /// link-flap: Gilbert–Elliott mean dwell times (exponential draws) and
  /// how many correlated ports of the target switch flap together.
  double flap_mean_up_ms = 120.0;
  double flap_mean_down_ms = 60.0;
  int flap_fanout = 2;
  /// asymmetric-loss: forward drop-probability draw range; reverse
  /// defaults to lossless unless the event's GrayParams say otherwise.
  double asym_loss_min = 0.3, asym_loss_max = 0.8;
  /// slow-drain: per-queued-packet service penalty draw range (µs).
  double slow_drain_min_us = 300.0, slow_drain_max_us = 900.0;
  /// load-gated-delay: queue depth that arms the gate (the delay itself
  /// is drawn from delay_min/delay_max like the clean delay fault). The
  /// default background matrix keeps queues shallow, so the gate must sit
  /// low enough that ordinary bursts cross it intermittently.
  std::uint32_t gate_depth = 3;
  /// Manifestation-probe cadence for gray faults: per window, the probe
  /// reads the fault-attributable PortCounters and records whether the
  /// fault perturbed traffic (GroundTruth::windows_active / _total).
  sim::Time manifestation_window = 100 * sim::kMillisecond;
};

struct FaultEvent;  // faults/schedule.hpp
struct FaultSchedule;

class FaultInjector {
 public:
  FaultInjector(net::Network& network, workload::TrafficGenerator& traffic,
                std::uint64_t seed, InjectorConfig config = {});

  /// Route telemetry faults (notification-loss, read-outage) onto this
  /// control channel. Without one, telemetry injections are skipped (a
  /// visible nullopt: counted and warned about, see set_metrics).
  void attach_channel(control::ControlChannel* channel) {
    channel_ = channel;
  }

  /// Count injections that found no viable target in the registry's
  /// "faults.skipped" counter (a silent nullopt makes a vacuous trial look
  /// like a graded one in sweep aggregates).
  void set_metrics(obs::MetricsRegistry& registry);

  /// Attach a structured event log (nullptr detaches): one event per
  /// successful injection (with its ground truth) and per skip.
  void set_event_log(obs::EventLog* log) { log_ = log; }

  /// Inject `kind` at absolute time `at`; removal is scheduled
  /// automatically. Returns the ground truth, or nullopt if no viable
  /// target exists (e.g. no active flows yet).
  std::optional<GroundTruth> inject(FaultKind kind, sim::Time at);

  /// Scheduled-event form: honours the event's duration override and
  /// pinned target. An event with neither is identical to
  /// inject(kind, at) — same RNG draws, same schedule.
  std::optional<GroundTruth> inject(const FaultEvent& event);

  /// Inject every event of a schedule, in order. Element i is the ground
  /// truth of event i (nullopt where no viable target existed).
  std::vector<std::optional<GroundTruth>> apply(const FaultSchedule& schedule);

  [[nodiscard]] const std::vector<GroundTruth>& injected() const {
    return history_;
  }

 private:
  /// Walk the routing decision chain of one active flow and return its
  /// switch-level path with the egress port at each non-sink hop.
  struct LoadedHop {
    net::SwitchId sw;
    net::PortId out;
  };
  struct LoadedPath {
    const workload::FlowSpec* spec = nullptr;
    std::vector<LoadedHop> hops;
  };
  /// Draw a flow alive at `at` (spec.start <= at < spec.stop) so late
  /// events on long schedules target a port that still carries traffic.
  [[nodiscard]] std::optional<LoadedPath> random_loaded_path(sim::Time at);

  std::optional<GroundTruth> inject_micro_burst(sim::Time at,
                                                sim::Time duration);
  std::optional<GroundTruth> inject_ecmp(sim::Time at, sim::Time duration,
                                         std::optional<net::SwitchId> target);
  std::optional<GroundTruth> inject_port_fault(
      FaultKind kind, sim::Time at, sim::Time duration,
      std::optional<net::SwitchId> target_switch,
      std::optional<net::PortId> target_port);
  std::optional<GroundTruth> inject_telemetry(FaultKind kind, sim::Time at,
                                              sim::Time duration);
  std::optional<GroundTruth> inject_gray(FaultKind kind, sim::Time at,
                                         sim::Time duration,
                                         std::optional<net::SwitchId> target_switch,
                                         std::optional<net::PortId> target_port,
                                         const GrayParams& gray);
  void schedule_ecmp_skew(net::SwitchId chooser, std::uint32_t ratio,
                          sim::Time at, sim::Time duration);
  void note_skipped(FaultKind kind, sim::Time at);

  /// One gray injection's watched counter set: the probe sums the
  /// kind-specific fault-attributable counters over these (switch, port)
  /// pairs each window and compares against the last snapshot.
  struct GrayWatch {
    std::size_t truth_index = 0;  ///< into history_
    FaultKind kind = FaultKind::kLinkFlap;
    std::vector<std::pair<net::SwitchId, net::PortId>> ports;
    std::uint64_t last = 0;  ///< counter sum at the previous probe
  };
  [[nodiscard]] std::uint64_t gray_counter_sum(const GrayWatch& watch) const;
  void schedule_probes(std::size_t watch_index, sim::Time at,
                       sim::Time duration);
  void probe_window(std::size_t watch_index);

  net::Network* network_;
  workload::TrafficGenerator* traffic_;
  util::Rng rng_;
  InjectorConfig config_;
  control::ControlChannel* channel_ = nullptr;
  obs::Counter* skipped_ = nullptr;
  obs::EventLog* log_ = nullptr;
  std::vector<GroundTruth> history_;
  std::vector<GrayWatch> watches_;  ///< stable: indices captured by probes
};

}  // namespace mars::faults
