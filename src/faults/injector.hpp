#pragma once
// Fault injection (paper §5.2) with ground-truth labels for evaluation.
//
// Five network scenarios:
//   micro-burst:            transient >1000 pps flow for ~1 s;
//   ECMP load imbalance:    a random switch's ECMP weights move from 1:1
//                           to 1:r, r ∈ [4, 10];
//   process-rate decrease:  a port's service rate drops below 100 pps;
//   delay:                  a port gains constant extra latency outside
//                           the queue (Chaosblade-style interface fault);
//   drop:                   a port drops packets with fixed probability.
//
// plus two telemetry (chaos) scenarios that degrade the monitoring system
// itself rather than the network — they raise a dial on the attached
// control::ControlChannel for the fault window:
//   notification-loss:      notification packets drop with a drawn
//                           severity;
//   read-outage:            per-switch Ring-Table reads fail with a drawn
//                           severity.
//
// Each network injection targets a location that actually carries traffic
// (picked from the active background flows) so every trial is
// non-vacuous, and schedules its own removal. Telemetry injections need a
// channel attached (attach_channel) and are skipped — visibly — without
// one.

#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"
#include "workload/traffic_gen.hpp"

namespace mars::control {
class ControlChannel;
}  // namespace mars::control

namespace mars::obs {
class Counter;
class EventLog;
class MetricsRegistry;
}  // namespace mars::obs

namespace mars::faults {

enum class FaultKind : std::uint8_t {
  kMicroBurst,
  kEcmpImbalance,
  kProcessRateDecrease,
  kDelay,
  kDrop,
  kNotificationLoss,  ///< telemetry: drop controller notifications
  kReadOutage,        ///< telemetry: fail Ring-Table reads
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// True for the chaos kinds that degrade the telemetry channel instead of
/// the network. Telemetry faults are not localizable culprits: grading
/// never matches them (metrics::culprit_matches returns false).
[[nodiscard]] constexpr bool is_telemetry_fault(FaultKind kind) {
  return kind == FaultKind::kNotificationLoss ||
         kind == FaultKind::kReadOutage;
}

/// What was actually injected — the label the localization metrics grade
/// culprit lists against.
struct GroundTruth {
  FaultKind kind = FaultKind::kDelay;
  net::SwitchId switch_id = net::kInvalidSwitch;  ///< culprit switch
  net::PortId port = 0;                           ///< for port faults
  net::FlowId flow{net::kInvalidSwitch, net::kInvalidSwitch};  ///< burst flow
  sim::Time start = 0;
  sim::Time duration = 0;
  /// Telemetry faults only: the dial level applied (loss / failure
  /// probability in (0, 1]).
  double severity = 0.0;

  [[nodiscard]] std::string describe() const;
};

struct InjectorConfig {
  sim::Time duration = 1 * sim::kSecond;
  double burst_pps = 2500.0;          ///< > 1000 pps (paper), above line rate
  int imbalance_min = 4, imbalance_max = 10;  ///< ratio 1:r
  double process_rate_min = 50.0, process_rate_max = 90.0;  ///< < 100 pps
  sim::Time delay_min = 50 * sim::kMillisecond;
  sim::Time delay_max = 200 * sim::kMillisecond;
  double drop_prob_min = 0.3, drop_prob_max = 0.8;
  /// Telemetry-fault severity draws (dial levels on the control channel).
  double telemetry_loss_min = 0.5, telemetry_loss_max = 0.9;
  double read_outage_min = 0.5, read_outage_max = 0.9;
};

struct FaultEvent;  // faults/schedule.hpp
struct FaultSchedule;

class FaultInjector {
 public:
  FaultInjector(net::Network& network, workload::TrafficGenerator& traffic,
                std::uint64_t seed, InjectorConfig config = {});

  /// Route telemetry faults (notification-loss, read-outage) onto this
  /// control channel. Without one, telemetry injections are skipped (a
  /// visible nullopt: counted and warned about, see set_metrics).
  void attach_channel(control::ControlChannel* channel) {
    channel_ = channel;
  }

  /// Count injections that found no viable target in the registry's
  /// "faults.skipped" counter (a silent nullopt makes a vacuous trial look
  /// like a graded one in sweep aggregates).
  void set_metrics(obs::MetricsRegistry& registry);

  /// Attach a structured event log (nullptr detaches): one event per
  /// successful injection (with its ground truth) and per skip.
  void set_event_log(obs::EventLog* log) { log_ = log; }

  /// Inject `kind` at absolute time `at`; removal is scheduled
  /// automatically. Returns the ground truth, or nullopt if no viable
  /// target exists (e.g. no active flows yet).
  std::optional<GroundTruth> inject(FaultKind kind, sim::Time at);

  /// Scheduled-event form: honours the event's duration override and
  /// pinned target. An event with neither is identical to
  /// inject(kind, at) — same RNG draws, same schedule.
  std::optional<GroundTruth> inject(const FaultEvent& event);

  /// Inject every event of a schedule, in order. Element i is the ground
  /// truth of event i (nullopt where no viable target existed).
  std::vector<std::optional<GroundTruth>> apply(const FaultSchedule& schedule);

  [[nodiscard]] const std::vector<GroundTruth>& injected() const {
    return history_;
  }

 private:
  /// Walk the routing decision chain of one active flow and return its
  /// switch-level path with the egress port at each non-sink hop.
  struct LoadedHop {
    net::SwitchId sw;
    net::PortId out;
  };
  struct LoadedPath {
    const workload::FlowSpec* spec = nullptr;
    std::vector<LoadedHop> hops;
  };
  [[nodiscard]] std::optional<LoadedPath> random_loaded_path();

  std::optional<GroundTruth> inject_micro_burst(sim::Time at,
                                                sim::Time duration);
  std::optional<GroundTruth> inject_ecmp(sim::Time at, sim::Time duration,
                                         std::optional<net::SwitchId> target);
  std::optional<GroundTruth> inject_port_fault(
      FaultKind kind, sim::Time at, sim::Time duration,
      std::optional<net::SwitchId> target_switch,
      std::optional<net::PortId> target_port);
  std::optional<GroundTruth> inject_telemetry(FaultKind kind, sim::Time at,
                                              sim::Time duration);
  void schedule_ecmp_skew(net::SwitchId chooser, std::uint32_t ratio,
                          sim::Time at, sim::Time duration);
  void note_skipped(FaultKind kind, sim::Time at);

  net::Network* network_;
  workload::TrafficGenerator* traffic_;
  util::Rng rng_;
  InjectorConfig config_;
  control::ControlChannel* channel_ = nullptr;
  obs::Counter* skipped_ = nullptr;
  obs::EventLog* log_ = nullptr;
  std::vector<GroundTruth> history_;
};

}  // namespace mars::faults
