#pragma once
// Fault injection (paper §5.2) with ground-truth labels for evaluation.
//
// Five scenarios:
//   micro-burst:            transient >1000 pps flow for ~1 s;
//   ECMP load imbalance:    a random switch's ECMP weights move from 1:1
//                           to 1:r, r ∈ [4, 10];
//   process-rate decrease:  a port's service rate drops below 100 pps;
//   delay:                  a port gains constant extra latency outside
//                           the queue (Chaosblade-style interface fault);
//   drop:                   a port drops packets with fixed probability.
//
// Each injection targets a location that actually carries traffic (picked
// from the active background flows) so every trial is non-vacuous, and
// schedules its own removal.

#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"
#include "workload/traffic_gen.hpp"

namespace mars::faults {

enum class FaultKind : std::uint8_t {
  kMicroBurst,
  kEcmpImbalance,
  kProcessRateDecrease,
  kDelay,
  kDrop,
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// What was actually injected — the label the localization metrics grade
/// culprit lists against.
struct GroundTruth {
  FaultKind kind = FaultKind::kDelay;
  net::SwitchId switch_id = net::kInvalidSwitch;  ///< culprit switch
  net::PortId port = 0;                           ///< for port faults
  net::FlowId flow{net::kInvalidSwitch, net::kInvalidSwitch};  ///< burst flow
  sim::Time start = 0;
  sim::Time duration = 0;

  [[nodiscard]] std::string describe() const;
};

struct InjectorConfig {
  sim::Time duration = 1 * sim::kSecond;
  double burst_pps = 2500.0;          ///< > 1000 pps (paper), above line rate
  int imbalance_min = 4, imbalance_max = 10;  ///< ratio 1:r
  double process_rate_min = 50.0, process_rate_max = 90.0;  ///< < 100 pps
  sim::Time delay_min = 50 * sim::kMillisecond;
  sim::Time delay_max = 200 * sim::kMillisecond;
  double drop_prob_min = 0.3, drop_prob_max = 0.8;
};

struct FaultEvent;  // faults/schedule.hpp
struct FaultSchedule;

class FaultInjector {
 public:
  FaultInjector(net::Network& network, workload::TrafficGenerator& traffic,
                std::uint64_t seed, InjectorConfig config = {});

  /// Inject `kind` at absolute time `at`; removal is scheduled
  /// automatically. Returns the ground truth, or nullopt if no viable
  /// target exists (e.g. no active flows yet).
  std::optional<GroundTruth> inject(FaultKind kind, sim::Time at);

  /// Scheduled-event form: honours the event's duration override and
  /// pinned target. An event with neither is identical to
  /// inject(kind, at) — same RNG draws, same schedule.
  std::optional<GroundTruth> inject(const FaultEvent& event);

  /// Inject every event of a schedule, in order. Element i is the ground
  /// truth of event i (nullopt where no viable target existed).
  std::vector<std::optional<GroundTruth>> apply(const FaultSchedule& schedule);

  [[nodiscard]] const std::vector<GroundTruth>& injected() const {
    return history_;
  }

 private:
  /// Walk the routing decision chain of one active flow and return its
  /// switch-level path with the egress port at each non-sink hop.
  struct LoadedHop {
    net::SwitchId sw;
    net::PortId out;
  };
  struct LoadedPath {
    const workload::FlowSpec* spec = nullptr;
    std::vector<LoadedHop> hops;
  };
  [[nodiscard]] std::optional<LoadedPath> random_loaded_path();

  std::optional<GroundTruth> inject_micro_burst(sim::Time at,
                                                sim::Time duration);
  std::optional<GroundTruth> inject_ecmp(sim::Time at, sim::Time duration,
                                         std::optional<net::SwitchId> target);
  std::optional<GroundTruth> inject_port_fault(
      FaultKind kind, sim::Time at, sim::Time duration,
      std::optional<net::SwitchId> target_switch,
      std::optional<net::PortId> target_port);
  void schedule_ecmp_skew(net::SwitchId chooser, std::uint32_t ratio,
                          sim::Time at, sim::Time duration);

  net::Network* network_;
  workload::TrafficGenerator* traffic_;
  util::Rng rng_;
  InjectorConfig config_;
  std::vector<GroundTruth> history_;
};

}  // namespace mars::faults
