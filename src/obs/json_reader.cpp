#include "obs/json_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace mars::obs {

namespace {

[[noreturn]] void type_error(const JsonValue& v, const char* wanted) {
  throw std::runtime_error(std::string("expected ") + wanted + ", got " +
                           v.kind_name());
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue root = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return root;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonParseError(line, column, message);
  }

  [[nodiscard]] bool done() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!done()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (done() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    if (done()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return parse_string_value();
      case 't': return parse_literal("true", JsonValue::Kind::kBool, true);
      case 'f': return parse_literal("false", JsonValue::Kind::kBool, false);
      case 'n': return parse_literal("null", JsonValue::Kind::kNull, false);
      default: return parse_number();
    }
  }

  JsonValue parse_literal(std::string_view word, JsonValue::Kind kind,
                          bool value) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
    }
    pos_ += word.size();
    JsonValue v;
    v.kind_ = kind;
    v.bool_ = value;
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!done() && peek() == '-') ++pos_;
    while (!done() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '.' || peek() == 'e' || peek() == 'E' ||
                       peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (done()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (done()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("invalid escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (done()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return cp;
  }

  JsonValue parse_string_value() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    v.string_ = parse_string();
    return v;
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (!done() && peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (done()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (!done() && peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      for (const auto& [existing, unused] : v.object_) {
        if (existing == key) fail("duplicate key '" + key + "'");
      }
      skip_whitespace();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (done()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

const char* JsonValue::kind_name() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) type_error(*this, "bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) type_error(*this, "number");
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  const double n = as_number();
  if (n < 0 || n != std::floor(n)) {
    throw std::runtime_error("expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

std::int64_t JsonValue::as_int() const {
  const double n = as_number();
  if (n != std::floor(n)) throw std::runtime_error("expected an integer");
  return static_cast<std::int64_t>(n);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) type_error(*this, "string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) type_error(*this, "array");
  return array_;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  return items().at(index);
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) type_error(*this, "object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace mars::obs
