#pragma once
// Streaming JSON writer shared by every observability exporter and by
// mars_cli's --json output. Handles escaping, nesting, and comma/indent
// bookkeeping so call sites never hand-format JSON (the old mars_cli
// printf approach leaked trailing-comma logic into every caller).
//
// Output is deterministic: keys are written in call order, doubles use a
// shortest-round-trip format, and non-finite doubles become null (JSON has
// no NaN/Inf).

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mars::obs {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(&out), indent_(indent) {}

  // ---- containers ----
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key inside an object; must be followed by a value/container.
  JsonWriter& key(std::string_view k);

  // ---- values ----
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(std::int32_t v) {
    return value(static_cast<std::int64_t>(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& null();

  // ---- key/value conveniences ----
  template <typename T>
  JsonWriter& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }
  JsonWriter& member_null(std::string_view k) {
    key(k);
    return null();
  }

  /// Nesting depth (0 when complete). A finished document has depth() == 0.
  [[nodiscard]] std::size_t depth() const { return stack_.size(); }

  /// JSON-escape `s` (quotes, backslash, control characters). UTF-8 bytes
  /// pass through untouched.
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  struct Frame {
    bool is_array = false;
    bool has_items = false;
    bool expecting_value = false;  ///< object frame: key() was just written
  };

  void prepare_value();  ///< comma/newline/indent before a value or key
  void newline_indent();
  void raw(std::string_view s) { *out_ << s; }

  std::ostream* out_;
  int indent_;
  std::vector<Frame> stack_;
  bool root_written_ = false;
};

}  // namespace mars::obs
