#include "obs/flight_recorder.hpp"

#include <utility>

#include "obs/json_writer.hpp"

namespace mars::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config), ring_(config.capacity > 0 ? config.capacity : 1) {}

void FlightRecorder::configure(FlightRecorderConfig config) {
  config_ = config;
  ring_ = util::RingBuffer<LogEvent>(config.capacity > 0 ? config.capacity
                                                         : 1);
  dumps_.clear();
  triggers_total_ = 0;
  prev_metrics_ = MetricsSnapshot{};
  have_prev_metrics_ = false;
}

void FlightRecorder::record(const LogEvent& event) { ring_.push(event); }

void FlightRecorder::note_metrics(sim::Time at, const MetricsSnapshot& snap) {
  if (have_prev_metrics_) {
    const MetricsSnapshot delta = snap.delta(prev_metrics_);
    LogEvent e;
    e.level = LogLevel::kDebug;
    e.at = at;
    e.component = "metrics";
    e.event = "delta";
    for (const auto& [name, value] : delta.counters) {
      if (value == 0) continue;
      if (e.fields.size() >= kMaxDeltaFields) {
        e.fields.emplace_back("...", "more counters moved");
        break;
      }
      e.fields.emplace_back(name, value);
    }
    if (!e.fields.empty()) ring_.push(std::move(e));
  }
  prev_metrics_ = snap;
  have_prev_metrics_ = true;
}

void FlightRecorder::trigger(std::string reason, sim::Time at) {
  ++triggers_total_;
  if (dumps_.size() >= config_.max_dumps) return;
  Dump dump;
  dump.reason = std::move(reason);
  dump.at = at;
  dump.events = ring_.snapshot();
  dumps_.push_back(std::move(dump));
}

void FlightRecorder::write_json(std::ostream& out, int indent) const {
  JsonWriter w(out, indent);
  w.begin_object();
  w.member("triggers_total", triggers_total_);
  w.key("dumps").begin_array();
  for (const Dump& dump : dumps_) {
    w.begin_object();
    w.member("reason", dump.reason);
    w.member("ts_s", sim::to_seconds(dump.at));
    w.key("events").begin_array();
    for (const LogEvent& event : dump.events) {
      EventLog::write_event(w, event);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace mars::obs
