#include "obs/json_writer.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace mars::obs {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 continuation bytes pass through
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  raw("\n");
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    raw(" ");
  }
}

void JsonWriter::prepare_value() {
  if (stack_.empty()) {
    assert(!root_written_ && "JSON document already complete");
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.expecting_value) {
    // key() already positioned us; the value follows the ": ".
    top.expecting_value = false;
    return;
  }
  assert(top.is_array && "object members need key() first");
  if (top.has_items) raw(",");
  top.has_items = true;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && !stack_.back().is_array &&
         "key() is only valid inside an object");
  Frame& top = stack_.back();
  assert(!top.expecting_value && "key() twice without a value");
  if (top.has_items) raw(",");
  top.has_items = true;
  newline_indent();
  raw("\"");
  raw(escape(k));
  raw(indent_ > 0 ? "\": " : "\":");
  top.expecting_value = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_value();
  raw("{");
  stack_.push_back(Frame{.is_array = false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && !stack_.back().is_array);
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  raw("}");
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_value();
  raw("[");
  stack_.push_back(Frame{.is_array = true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().is_array);
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  raw("]");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prepare_value();
  raw("\"");
  raw(escape(v));
  raw("\"");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  prepare_value();
  char buf[32];
  // %.17g round-trips every double but litters output with noise digits;
  // try the shorter form first and fall back only when it loses precision.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  raw(buf);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prepare_value();
  raw(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_value();
  raw(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_value();
  raw(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  prepare_value();
  raw("null");
  return *this;
}

}  // namespace mars::obs
