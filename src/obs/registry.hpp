#pragma once
// Metrics registry: named counters, lazy gauges, and log-linear histograms
// with snapshot/delta semantics and JSON/CSV export.
//
// Zero-overhead discipline (same rule as the PR-1 "no observers attached"
// fast path): nothing in this registry runs unless something reads it.
//   - Counters are plain 64-bit cells; an increment is one add on a handle
//     the caller already holds. Components that only *might* be observed
//     hold a nullable pointer and guard with one branch.
//   - Gauges are lazy callbacks — registering one costs nothing at runtime;
//     the callback runs only when a snapshot or sampler tick reads it. This
//     is how hot-path state (per-port counters, queue depths) is exported
//     without touching the hot path at all.
//   - Histograms bucket in O(1) with two shifts (HdrHistogram-style
//     log-linear layout), but are only ever updated behind an
//     "is a registry attached" null check at the call site.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mars::obs {

class JsonWriter;

/// Monotonic counter cell. Handles returned by MetricsRegistry::counter()
/// are stable for the registry's lifetime.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Log-linear histogram over unsigned 64-bit values (latencies in ns,
/// queue depths, byte counts). Values in [0, 2*S) get exact unit buckets;
/// above that, each power-of-two octave splits into S linear sub-buckets,
/// so every bucket's relative width is <= 1/S (S = 2^sub_bucket_bits).
/// Bucketing is two shifts + a subtract — cheap enough for in-pipeline use,
/// the P4TG histogram argument.
class LogHistogram {
 public:
  /// `sub_bucket_bits` = log2 of sub-buckets per octave (default 16/octave,
  /// <= 6.25% relative bucket width).
  explicit LogHistogram(std::uint32_t sub_bucket_bits = 4);

  void record(std::uint64_t value);
  void record_n(std::uint64_t value, std::uint64_t n);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Sum of recorded values (means; saturating is the caller's problem).
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return total_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_)
                  : 0.0;
  }

  /// Bucket index a value lands in.
  [[nodiscard]] std::size_t bucket_index(std::uint64_t value) const;
  /// Inclusive lower / exclusive upper value bound of a bucket.
  [[nodiscard]] std::uint64_t bucket_lo(std::size_t index) const;
  [[nodiscard]] std::uint64_t bucket_hi(std::size_t index) const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const {
    return index < counts_.size() ? counts_[index] : 0;
  }
  /// Number of allocated buckets (highest used index + 1).
  [[nodiscard]] std::size_t bucket_len() const { return counts_.size(); }
  [[nodiscard]] std::uint32_t sub_bucket_bits() const {
    return sub_bucket_bits_;
  }

  /// Approximate quantile (upper bound of the bucket holding rank q*total).
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Merge another histogram (must have identical sub_bucket_bits).
  void merge(const LogHistogram& other);

 private:
  std::uint32_t sub_bucket_bits_;
  std::vector<std::uint64_t> counts_;  // grown lazily to the max used index
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Point-in-time view of a registry, detached from the live objects (safe
/// to keep after the instrumented components are gone). Deterministic:
/// entries are sorted by name.
struct MetricsSnapshot {
  struct HistogramView {
    std::uint32_t sub_bucket_bits = 4;
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /// Non-empty buckets as (lower bound, count).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramView>> histograms;

  /// Counters/histogram counts minus `earlier` (names missing from
  /// `earlier` keep their full value); gauges keep the later reading.
  [[nodiscard]] MetricsSnapshot delta(const MetricsSnapshot& earlier) const;

  [[nodiscard]] double gauge_or(std::string_view name, double fallback) const;
  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback) const;
};

class MetricsRegistry {
 public:
  using GaugeFn = std::function<double()>;

  /// Create-or-get. Handles stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  LogHistogram& histogram(const std::string& name,
                          std::uint32_t sub_bucket_bits = 4);
  /// Register (or replace) a lazy gauge. The callback must stay valid
  /// until the gauge is removed or the registry destroyed; callers wiring
  /// gauges to scoped objects must remove_gauges() before teardown.
  void gauge(const std::string& name, GaugeFn read);

  /// Remove every gauge whose name starts with `prefix` ("" removes all).
  /// Returns the number removed. Scenario runners call this after taking a
  /// final snapshot so no gauge outlives the network it reads.
  std::size_t remove_gauges(std::string_view prefix = {});

  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }
  [[nodiscard]] std::size_t histogram_count() const {
    return histograms_.size();
  }
  /// Sorted names of registered gauges (sampler column discovery).
  [[nodiscard]] std::vector<std::string> gauge_names() const;
  /// Read one gauge now (0.0 if missing).
  [[nodiscard]] double read_gauge(const std::string& name) const;
  /// Read every gauge now, name-sorted (the sampler's per-tick scrape;
  /// cheaper than a full snapshot because histograms are not walked).
  [[nodiscard]] std::vector<std::pair<std::string, double>> read_gauges()
      const;

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Exporters (work on snapshots so they stay valid after teardown).
  static void write_json(std::ostream& out, const MetricsSnapshot& snap);
  /// Write the snapshot as one object into an in-progress document (for
  /// callers composing a larger JSON file, e.g. mars_cli --metrics-out).
  static void write_json(JsonWriter& w, const MetricsSnapshot& snap);
  /// CSV rows: kind,name,value (histograms expand to one row per stat).
  static void write_csv(std::ostream& out, const MetricsSnapshot& snap);

 private:
  // std::map keeps iteration (and thus every export) name-ordered and
  // deterministic; unique_ptr keeps handles stable across rehash/inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
  std::map<std::string, GaugeFn> gauges_;
};

}  // namespace mars::obs
