#pragma once
// Streaming JSON *reader* — the parse-side twin of obs::JsonWriter.
//
// Parses a complete JSON document into a small value tree (JsonValue).
// Object members preserve insertion order, numbers are doubles (plus an
// exact-integer fast path for values that fit), and errors carry the
// line/column of the offending byte so ScenarioSpec diagnostics can point
// an operator at the exact place a spec file went wrong.
//
// Scope: strict JSON (RFC 8259) minus \u surrogate-pair validation —
// escapes decode to UTF-8, lone surrogates are passed through as the
// replacement sequence. Depth is bounded to keep hostile inputs from
// recursing the stack away.

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mars::obs {

/// Parse failure: `what()` is "line L, column C: message".
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t line, std::size_t column,
                 const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ", column " +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_, column_;
};

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Member = std::pair<std::string, JsonValue>;

  /// Parse one complete document; trailing non-whitespace is an error.
  /// Throws JsonParseError.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  JsonValue() = default;  // null

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_uint() const;  ///< rejects negatives/frac
  [[nodiscard]] std::int64_t as_int() const;    ///< rejects fractions
  [[nodiscard]] const std::string& as_string() const;

  // ---- arrays ----
  [[nodiscard]] std::size_t size() const { return array_.size(); }
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const JsonValue& at(std::size_t index) const;

  // ---- objects (insertion-ordered) ----
  [[nodiscard]] const std::vector<Member>& members() const;
  /// nullptr when absent (or when this value is not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const {
    return find(key) != nullptr;
  }

  [[nodiscard]] const char* kind_name() const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

}  // namespace mars::obs
