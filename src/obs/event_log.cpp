#include "obs/event_log.hpp"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/json_writer.hpp"

namespace mars::obs {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

std::optional<LogLevel> level_from_name(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

EventLog::EventLog(EventLogConfig config)
    : config_(config), wall_epoch_(std::chrono::steady_clock::now()) {}

void EventLog::configure(EventLogConfig config) {
  config_ = config;
  events_.clear();
  buckets_.clear();
  stats_ = Stats{};
  wall_epoch_ = std::chrono::steady_clock::now();
}

double EventLog::wall_ms_now() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - wall_epoch_)
      .count();
}

void EventLog::log(LogLevel level, sim::Time at, std::string component,
                   std::string event, SpanArgs fields) {
  LogEvent e;
  e.level = level;
  e.at = at;
  e.wall_ms = wall_ms_now();
  e.component = std::move(component);
  e.event = std::move(event);
  e.fields = std::move(fields);

  // The black box sees full verbosity, before any filtering.
  if (recorder_ != nullptr) recorder_->record(e);

  if (level < config_.min_level) {
    ++stats_.below_level;
    return;
  }

  if (config_.rate_limit_per_s > 0) {
    Bucket& bucket = buckets_[e.component + "/" + e.event];
    if (!bucket.primed) {
      bucket.tokens = static_cast<double>(config_.rate_limit_burst);
      bucket.last = at;
      bucket.primed = true;
    } else if (at > bucket.last) {
      // Refill in virtual time only; same-instant bursts share one refill.
      bucket.tokens = std::min(
          static_cast<double>(config_.rate_limit_burst),
          bucket.tokens + sim::to_seconds(at - bucket.last) *
                              config_.rate_limit_per_s);
      bucket.last = at;
    }
    if (bucket.tokens < 1.0) {
      ++bucket.suppressed_since;
      ++stats_.rate_suppressed;
      return;
    }
    bucket.tokens -= 1.0;
    e.suppressed = bucket.suppressed_since;
    bucket.suppressed_since = 0;
  }

  if (events_.size() >= config_.max_events) {
    ++stats_.overflow_dropped;
    return;
  }
  ++stats_.logged;
  events_.push_back(std::move(e));
}

void EventLog::write_event(std::ostream& out, const LogEvent& event) {
  JsonWriter w(out, 0);
  write_event(w, event);
}

void EventLog::write_event(JsonWriter& w, const LogEvent& event) {
  w.begin_object();
  w.member("ts_s", sim::to_seconds(event.at));
  w.member("wall_ms", event.wall_ms);
  w.member("level", level_name(event.level));
  w.member("component", event.component);
  w.member("event", event.event);
  w.key("fields").begin_object();
  for (const SpanArg& field : event.fields) {
    if (field.is_number) {
      w.member(field.key, field.number);
    } else {
      w.member(field.key, field.text);
    }
  }
  w.end_object();
  if (event.suppressed > 0) w.member("suppressed", event.suppressed);
  w.end_object();
}

void EventLog::write_ndjson(std::ostream& out) const {
  for (const LogEvent& event : events_) {
    write_event(out, event);
    out << "\n";
  }
}

}  // namespace mars::obs
