#include "obs/tracer.hpp"

#include "obs/json_writer.hpp"

namespace mars::obs {

namespace {

constexpr double ns_to_us(sim::Time t) {
  return static_cast<double>(t) / 1000.0;
}

}  // namespace

SpanTracer::SpanTracer() : wall_epoch_(std::chrono::steady_clock::now()) {}

void SpanTracer::complete(std::string name, std::string cat, sim::Time start,
                          sim::Time end, SpanArgs args) {
  events_.push_back(Event{.ph = 'X',
                          .pid = kVirtualPid,
                          .name = std::move(name),
                          .cat = std::move(cat),
                          .ts_us = ns_to_us(start),
                          .dur_us = ns_to_us(end - start),
                          .args = std::move(args)});
}

void SpanTracer::instant(std::string name, std::string cat, sim::Time at,
                         SpanArgs args) {
  events_.push_back(Event{.ph = 'i',
                          .pid = kVirtualPid,
                          .name = std::move(name),
                          .cat = std::move(cat),
                          .ts_us = ns_to_us(at),
                          .dur_us = 0.0,
                          .args = std::move(args)});
}

void SpanTracer::counter(std::string name, sim::Time at, double value) {
  events_.push_back(Event{.ph = 'C',
                          .pid = kVirtualPid,
                          .name = std::move(name),
                          .cat = "metric",
                          .ts_us = ns_to_us(at),
                          .dur_us = 0.0,
                          .counter_value = value,
                          .args = {}});
}

SpanTracer::WallSpan::WallSpan(SpanTracer* tracer, std::string name,
                               std::string cat, SpanArgs args)
    : tracer_(tracer), name_(std::move(name)), cat_(std::move(cat)),
      args_(std::move(args)), start_(std::chrono::steady_clock::now()) {}

SpanTracer::WallSpan::~WallSpan() {
  if (tracer_ != nullptr) {
    tracer_->record_wall(std::move(name_), std::move(cat_), start_,
                         std::move(args_));
  }
}

SpanTracer::WallSpan SpanTracer::wall_span(std::string name, std::string cat,
                                           SpanArgs args) {
  return WallSpan(this, std::move(name), std::move(cat), std::move(args));
}

void SpanTracer::record_wall(std::string name, std::string cat,
                             std::chrono::steady_clock::time_point start,
                             SpanArgs args) {
  const auto us = [this](std::chrono::steady_clock::time_point t) {
    return std::chrono::duration<double, std::micro>(t - wall_epoch_).count();
  };
  const auto now = std::chrono::steady_clock::now();
  events_.push_back(Event{.ph = 'X',
                          .pid = kWallPid,
                          .name = std::move(name),
                          .cat = std::move(cat),
                          .ts_us = us(start),
                          .dur_us = us(now) - us(start),
                          .args = std::move(args)});
}

void SpanTracer::write_chrome_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  // Process-name metadata so the two clock domains are labelled in the UI.
  const auto process_meta = [&w](int pid, const char* label) {
    w.begin_object();
    w.member("ph", "M").member("pid", std::int64_t{pid})
        .member("tid", std::int64_t{0})
        .member("name", "process_name");
    w.key("args").begin_object().member("name", label).end_object();
    w.end_object();
  };
  process_meta(kVirtualPid, "virtual time (simulated)");
  process_meta(kWallPid, "wall clock (host)");

  for (const Event& e : events_) {
    w.begin_object();
    w.member("ph", std::string_view(&e.ph, 1));
    w.member("pid", std::int64_t{e.pid});
    w.member("tid", std::int64_t{0});
    w.member("name", e.name);
    w.member("ts", e.ts_us);
    if (e.ph == 'X') {
      w.member("dur", e.dur_us);
    }
    if (e.ph == 'i') {
      w.member("s", "p");  // process-scoped instant marker
    }
    if (e.ph != 'C') {
      w.member("cat", e.cat.empty() ? "mars" : e.cat);
    }
    if (e.ph == 'C') {
      w.key("args").begin_object().member("value", e.counter_value)
          .end_object();
    } else if (!e.args.empty()) {
      w.key("args").begin_object();
      for (const SpanArg& a : e.args) {
        if (a.is_number) {
          w.member(a.key, a.number);
        } else {
          w.member(a.key, a.text);
        }
      }
      w.end_object();
    }
    w.end_object();
  }

  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace mars::obs
