#include "obs/net_scrape.hpp"

#include <algorithm>

#include "sim/sharded.hpp"

namespace mars::obs {

namespace {

/// Utilization of one egress port since t=0: busy_time / elapsed.
double port_utilization(net::Network& network, net::SwitchId sw,
                        net::PortId port) {
  const sim::Time now = network.simulator().now();
  if (now <= 0) return 0.0;
  return static_cast<double>(network.node(sw).counters(port).busy_time) /
         static_cast<double>(now);
}

}  // namespace

void scrape_network(net::Network& network, MetricsRegistry& registry,
                    const ScrapeOptions& options) {
  const std::string& p = options.prefix;

  if (options.totals) {
    registry.gauge("sim.events_executed", [&network] {
      return static_cast<double>(network.simulator().events_executed());
    });
    registry.gauge("sim.time_s", [&network] {
      return sim::to_seconds(network.simulator().now());
    });
    registry.gauge("sim.event_queue_depth", [&network] {
      // Live scheduled events: every shard queue plus the global/control
      // queue in sharded mode, the one queue in legacy mode.
      std::size_t depth = network.simulator().pending_events();
      if (auto* ssim = network.sharded(); ssim != nullptr) {
        for (int i = 0; i < ssim->shard_count(); ++i) {
          depth += ssim->shard(i).pending_events();
        }
      }
      return static_cast<double>(depth);
    });
    registry.gauge("sim.packet_pool.in_flight", [&network] {
      return static_cast<double>(network.pool_in_flight());
    });
    registry.gauge("sim.packet_pool.peak", [&network] {
      return static_cast<double>(network.pool_peak_in_flight());
    });
    registry.gauge(p + "injected", [&network] {
      return static_cast<double>(network.stats().injected);
    });
    registry.gauge(p + "delivered", [&network] {
      return static_cast<double>(network.stats().delivered);
    });
    registry.gauge(p + "dropped", [&network] {
      return static_cast<double>(network.stats().dropped);
    });
    registry.gauge(p + "unroutable", [&network] {
      return static_cast<double>(network.stats().unroutable);
    });
    registry.gauge(p + "queue_depth_total", [&network] {
      std::uint64_t total = 0;
      for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
        total += network.node(sw).total_queue_depth();
      }
      return static_cast<double>(total);
    });
  }

  if (options.per_port) {
    for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
      const std::string sw_prefix = p + "sw" + std::to_string(sw) + ".";
      registry.gauge(sw_prefix + "queue_depth", [&network, sw] {
        return static_cast<double>(network.node(sw).total_queue_depth());
      });
      const std::size_t ports = network.node(sw).port_count();
      for (net::PortId port = 0; port < ports; ++port) {
        const std::string pp =
            sw_prefix + "p" + std::to_string(port) + ".";
        registry.gauge(pp + "tx_packets", [&network, sw, port] {
          return static_cast<double>(
              network.node(sw).counters(port).tx_packets);
        });
        registry.gauge(pp + "tx_bytes", [&network, sw, port] {
          return static_cast<double>(
              network.node(sw).counters(port).tx_bytes);
        });
        registry.gauge(pp + "drops", [&network, sw, port] {
          return static_cast<double>(network.node(sw).counters(port).drops);
        });
        registry.gauge(pp + "busy_s", [&network, sw, port] {
          return sim::to_seconds(network.node(sw).counters(port).busy_time);
        });
        registry.gauge(pp + "queue_depth", [&network, sw, port] {
          return static_cast<double>(network.node(sw).queue_depth(port));
        });
      }
    }
  }

  if (options.link_utilization) {
    const auto& topo = network.topology();
    for (std::size_t i = 0; i < topo.links().size(); ++i) {
      const net::Link& link = topo.links()[i];
      // Fig. 2's classification: a link with an edge-switch endpoint is an
      // edge link; everything else belongs to the core.
      const bool touches_edge =
          topo.layer(link.a.sw) == net::Layer::kEdge ||
          topo.layer(link.b.sw) == net::Layer::kEdge;
      const char* klass = touches_edge ? "edge" : "core";
      for (const net::LinkEnd& end : {link.a, link.b}) {
        const net::LinkEnd& other = end.sw == link.a.sw ? link.b : link.a;
        const std::string name = p + "link." + klass + "." +
                                 std::to_string(end.sw) + "-" +
                                 std::to_string(other.sw) + ".util";
        const net::SwitchId sw = end.sw;
        const net::PortId port = end.port;
        registry.gauge(name, [&network, sw, port] {
          return port_utilization(network, sw, port);
        });
      }
    }
  }
}

}  // namespace mars::obs
