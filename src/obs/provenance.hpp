#pragma once
// Diagnosis provenance graph: a typed DAG explaining *why* each ranked
// suspect ranked where it did.
//
// Node kinds follow the diagnosis pipeline:
//   fault         — an injected fault-schedule event (ground truth)
//   notification  — the data-plane report that triggered collection
//   session       — one controller collection window + its quality
//   epoch         — an abnormal path group (path_id + classified epochs)
//   pattern       — a mined + SBFL-scored abnormal pattern
//   suspect       — one entry of the final ranked culprit list
//
// Edges point in causal/evidence order: notification -> session ->
// epoch -> pattern -> suspect, plus fault -> suspect attribution edges
// added after grading. The closure contract (tested per fault kind):
// every suspect is reachable from at least one abnormal epoch.
//
// The graph lives in obs and knows nothing about rca/control types —
// producers attach domain facts as SpanArg fields, and cross-layer joins
// go through string-valued fields (e.g. the canonical culprit key written
// by the analyzer and matched by the scenario runner). Node IDs are
// stable "<kind>:<index>" strings; the same IDs are attached to Perfetto
// spans ("prov" arg) so a trace viewer can join against the exported DAG.

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/tracer.hpp"  // SpanArg / SpanArgs double as node fields

namespace mars::obs {

class JsonWriter;

class ProvenanceGraph {
 public:
  enum class NodeKind : std::uint8_t {
    kFault = 0,
    kNotification = 1,
    kSession = 2,
    kEpoch = 3,
    kPattern = 4,
    kSuspect = 5,
    kRegistry = 6,  ///< PathID registry audit snapshot (one per deployment)
  };
  static constexpr std::size_t kNodeKinds = 7;

  [[nodiscard]] static const char* kind_name(NodeKind kind);

  struct Node {
    std::string id;  ///< "<kind>:<index>", stable for the graph's lifetime
    NodeKind kind = NodeKind::kFault;
    SpanArgs fields;
  };

  struct Edge {
    std::string from;
    std::string to;
    std::string relation;
  };

  /// Append a node; returns its id ("fault:0", "pattern:3", ...).
  std::string add_node(NodeKind kind, SpanArgs fields = {});
  /// Append an edge. Endpoints need not exist yet, but validate() flags
  /// any reference that never materializes.
  void add_edge(std::string from, std::string to, std::string relation);
  /// Set a field on an existing node (overwrites a same-key field).
  void annotate(const std::string& id, SpanArg field);

  [[nodiscard]] const Node* find(const std::string& id) const;
  [[nodiscard]] std::vector<const Node*> nodes_of(NodeKind kind) const;
  /// Node ids of `kind` whose string field `field_key` equals `value`.
  [[nodiscard]] std::vector<std::string> find_nodes(
      NodeKind kind, std::string_view field_key,
      std::string_view value) const;

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  void clear();

  /// Structural check: every edge endpoint resolves to a node. Returns
  /// one message per dangling reference (empty = closed).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Ids reachable (forward, including the seeds) from every node of
  /// `from`. Deterministic order (node insertion order).
  [[nodiscard]] std::vector<std::string> reachable_from(NodeKind from) const;

  /// {"nodes": [{"id", "kind", "fields"{...}}], "edges": [{"from", "to",
  /// "relation"}]}.
  void write_json(std::ostream& out, int indent = 2) const;
  void write_json(JsonWriter& w) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::map<std::string, std::size_t> index_;  // id -> nodes_ index
  std::array<std::uint32_t, kNodeKinds> next_id_{};
};

}  // namespace mars::obs
