#pragma once
// Promote substrate state (Simulator + Network/Switch PortCounters) onto a
// MetricsRegistry as lazy gauges, so benches and tests read named metrics
// from one place instead of reaching into `ports_[port].counters`
// piecemeal.
//
// All gauges are lazy: registering them costs nothing on the packet hot
// path; the counters they read are the ones Switch already maintains.
// The network must outlive the gauges — call
// MetricsRegistry::remove_gauges() (or snapshot first) before tearing the
// network down.

#include <string>

#include "net/network.hpp"
#include "obs/registry.hpp"

namespace mars::obs {

struct ScrapeOptions {
  std::string prefix = "net.";
  /// Per-port gauges: {prefix}sw{S}.p{P}.{tx_packets,tx_bytes,drops,
  /// busy_s,queue_depth} plus per-switch {prefix}sw{S}.queue_depth totals.
  bool per_port = true;
  /// Per-link-direction utilization gauges:
  ///   {prefix}link.{edge|core}.{upstream}-{downstream}.util
  /// classified like Fig. 2: a link touching an edge switch belongs to the
  /// edge layer, anything else to the core.
  bool link_utilization = true;
  /// Simulator + aggregate NetworkStats gauges under "sim." / {prefix}.
  bool totals = true;
};

/// Register gauges over `network` (and its simulator). Gauge names are
/// deterministic for a given topology.
void scrape_network(net::Network& network, MetricsRegistry& registry,
                    const ScrapeOptions& options = {});

}  // namespace mars::obs
