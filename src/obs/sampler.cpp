#include "obs/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json_writer.hpp"

namespace mars::obs {

// ---- SeriesStore ---------------------------------------------------------

const std::vector<double>* SeriesStore::column(const std::string& name) const {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) return nullptr;
  return &columns_[static_cast<std::size_t>(it - names_.begin())];
}

double SeriesStore::last(const std::string& name, double fallback) const {
  const std::vector<double>* col = column(name);
  return (col != nullptr && !col->empty()) ? col->back() : fallback;
}

void SeriesStore::append_row(
    sim::Time t,
    const std::vector<std::pair<std::string, double>>& named_values) {
  const std::size_t prior_rows = times_.size();
  times_.push_back(t);
  // Merge the (sorted) incoming names into the (sorted) column set; a new
  // name opens a column backfilled with NaN for the rows it missed.
  for (const auto& [name, value] : named_values) {
    auto it = std::lower_bound(names_.begin(), names_.end(), name);
    std::size_t idx;
    if (it == names_.end() || *it != name) {
      idx = static_cast<std::size_t>(it - names_.begin());
      names_.insert(it, name);
      columns_.insert(columns_.begin() + static_cast<std::ptrdiff_t>(idx),
                      std::vector<double>(
                          prior_rows, std::numeric_limits<double>::quiet_NaN()));
    } else {
      idx = static_cast<std::size_t>(it - names_.begin());
    }
    columns_[idx].push_back(value);
  }
  // Columns whose gauge vanished this tick get NaN to stay row-aligned.
  for (auto& col : columns_) {
    if (col.size() < times_.size()) {
      col.push_back(std::numeric_limits<double>::quiet_NaN());
    }
  }
}

void SeriesStore::write_csv(std::ostream& out) const {
  out << "time_s";
  for (const auto& name : names_) out << "," << name;
  out << "\n";
  for (std::size_t row = 0; row < times_.size(); ++row) {
    out << sim::to_seconds(times_[row]);
    for (const auto& col : columns_) {
      out << ",";
      if (std::isfinite(col[row])) out << col[row];
    }
    out << "\n";
  }
}

void SeriesStore::write_json(std::ostream& out) const {
  JsonWriter w(out);
  write_json(w);
  out << "\n";
}

void SeriesStore::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("times_s").begin_array();
  for (const sim::Time t : times_) w.value(sim::to_seconds(t));
  w.end_array();
  w.key("series").begin_object();
  for (std::size_t i = 0; i < names_.size(); ++i) {
    w.key(names_[i]).begin_array();
    for (const double v : columns_[i]) w.value(v);  // NaN -> null
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

// ---- Sampler -------------------------------------------------------------

Sampler::Sampler(sim::Simulator& sim, MetricsRegistry& registry,
                 SeriesStore& series, SamplerConfig config)
    : sim_(&sim), registry_(&registry), series_(&series), config_(config) {}

void Sampler::start() {
  stop();
  // Epoch alignment: first tick at the smallest multiple of period >= now.
  const sim::Time now = sim_->now();
  const sim::Time p = config_.period;
  const sim::Time first = ((now + p - 1) / p) * p;
  if (first > config_.until) return;
  pending_event_ = sim_->schedule_at(first, [this, first] {
    pending_valid_ = false;
    tick(first, /*periodic=*/true);
  });
  pending_valid_ = true;
}

void Sampler::stop() {
  if (pending_valid_) {
    sim_->cancel(pending_event_);
    pending_valid_ = false;
  }
}

void Sampler::sample_now() { tick(sim_->now(), /*periodic=*/false); }

void Sampler::schedule_next(sim::Time from) {
  const sim::Time next = from + config_.period;
  if (next > config_.until) return;
  pending_event_ = sim_->schedule_at(next, [this, next] {
    pending_valid_ = false;
    tick(next, /*periodic=*/true);
  });
  pending_valid_ = true;
}

void Sampler::tick(sim::Time at, bool periodic) {
  ++ticks_;
  const auto row = registry_->read_gauges();
  series_->append_row(at, row);
  if (tracer_ != nullptr && config_.counters_to_tracer) {
    for (const auto& [name, value] : row) {
      if (std::isfinite(value)) tracer_->counter(name, at, value);
    }
  }
  if (recorder_ != nullptr) {
    // Full snapshot (counters included): the recorder keeps only the
    // per-tick counter deltas, the black box's metric track.
    recorder_->note_metrics(at, registry_->snapshot());
  }
  // Only a periodic tick reschedules; sample_now() is an off-grid extra
  // that must not shift the phase of the pending periodic event.
  if (periodic) schedule_next(at);
}

}  // namespace mars::obs
