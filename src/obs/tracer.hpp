#pragma once
// Span tracer emitting Chrome/Perfetto trace-event JSON
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
// — the format chrome://tracing and ui.perfetto.dev both load).
//
// Two clock domains, shown as two "processes" in the trace UI:
//   - virtual time (pid 1): the simulated causal chain — fault injection ->
//     data-plane notification -> controller collection window -> diagnosis.
//     Timestamps are sim::Time nanoseconds rendered as microseconds.
//   - wall clock (pid 2): how long the control-plane/RCA code *actually*
//     takes (ring drain, FSM mining per miner, SBFL, report) — the profile
//     the paper's "diagnosis cost" discussion needs.
//
// Zero-overhead discipline: components hold a nullable SpanTracer* and
// guard every emission with one branch; with no tracer attached the only
// cost is that untaken branch on already-rare control-plane paths.

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mars::obs {

/// String/number argument attached to a trace event.
struct SpanArg {
  std::string key;
  std::string text;   ///< used when is_number == false
  double number = 0;  ///< used when is_number == true
  bool is_number = false;

  SpanArg(std::string k, std::string v)
      : key(std::move(k)), text(std::move(v)) {}
  SpanArg(std::string k, const char* v) : key(std::move(k)), text(v) {}
  SpanArg(std::string k, double v)
      : key(std::move(k)), number(v), is_number(true) {}
  SpanArg(std::string k, std::uint64_t v)
      : key(std::move(k)), number(static_cast<double>(v)), is_number(true) {}
  SpanArg(std::string k, std::int64_t v)
      : key(std::move(k)), number(static_cast<double>(v)), is_number(true) {}
  SpanArg(std::string k, std::uint32_t v)
      : key(std::move(k)), number(v), is_number(true) {}
  SpanArg(std::string k, int v)
      : key(std::move(k)), number(v), is_number(true) {}
};

using SpanArgs = std::vector<SpanArg>;

class SpanTracer {
 public:
  SpanTracer();

  // ---- virtual-time track ----
  /// Complete span [start, end] in simulated time.
  void complete(std::string name, std::string cat, sim::Time start,
                sim::Time end, SpanArgs args = {});
  /// Zero-duration marker at a simulated instant.
  void instant(std::string name, std::string cat, sim::Time at,
               SpanArgs args = {});
  /// Counter sample (renders as an area track in Perfetto).
  void counter(std::string name, sim::Time at, double value);

  // ---- wall-clock track ----
  /// RAII scope: measures wall time from construction to destruction and
  /// records one complete event on the wall track. Move-only.
  class WallSpan {
   public:
    WallSpan(WallSpan&& other) noexcept
        : tracer_(other.tracer_), name_(std::move(other.name_)),
          cat_(std::move(other.cat_)), args_(std::move(other.args_)),
          start_(other.start_) {
      other.tracer_ = nullptr;
    }
    WallSpan& operator=(WallSpan&&) = delete;
    WallSpan(const WallSpan&) = delete;
    WallSpan& operator=(const WallSpan&) = delete;
    ~WallSpan();

    /// Attach an argument after construction (e.g. a result count).
    void arg(SpanArg a) {
      if (tracer_ != nullptr) args_.push_back(std::move(a));
    }

   private:
    friend class SpanTracer;
    WallSpan(SpanTracer* tracer, std::string name, std::string cat,
             SpanArgs args);

    SpanTracer* tracer_;  ///< null: moved-from or tracer disabled
    std::string name_;
    std::string cat_;
    SpanArgs args_;
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] WallSpan wall_span(std::string name, std::string cat,
                                   SpanArgs args = {});

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Write the whole trace as Chrome trace-event JSON (object form with a
  /// "traceEvents" array, so metadata can ride along).
  void write_chrome_json(std::ostream& out) const;

  static constexpr int kVirtualPid = 1;
  static constexpr int kWallPid = 2;

 private:
  struct Event {
    char ph;  ///< 'X' complete, 'i' instant, 'C' counter
    int pid;
    std::string name;
    std::string cat;
    double ts_us;
    double dur_us;  ///< only for 'X'
    double counter_value = 0.0;
    SpanArgs args;
  };

  void record_wall(std::string name, std::string cat,
                   std::chrono::steady_clock::time_point start,
                   SpanArgs args);

  std::chrono::steady_clock::time_point wall_epoch_;
  std::vector<Event> events_;
};

}  // namespace mars::obs
