#include "obs/provenance.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "obs/json_writer.hpp"

namespace mars::obs {

const char* ProvenanceGraph::kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kFault: return "fault";
    case NodeKind::kNotification: return "notification";
    case NodeKind::kSession: return "session";
    case NodeKind::kEpoch: return "epoch";
    case NodeKind::kPattern: return "pattern";
    case NodeKind::kSuspect: return "suspect";
    case NodeKind::kRegistry: return "registry";
  }
  return "?";
}

std::string ProvenanceGraph::add_node(NodeKind kind, SpanArgs fields) {
  const std::size_t slot = static_cast<std::size_t>(kind);
  std::string id = std::string(kind_name(kind)) + ":" +
                   std::to_string(next_id_[slot]++);
  Node node;
  node.id = id;
  node.kind = kind;
  node.fields = std::move(fields);
  index_[id] = nodes_.size();
  nodes_.push_back(std::move(node));
  return id;
}

void ProvenanceGraph::add_edge(std::string from, std::string to,
                               std::string relation) {
  edges_.push_back(Edge{std::move(from), std::move(to), std::move(relation)});
}

void ProvenanceGraph::annotate(const std::string& id, SpanArg field) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  SpanArgs& fields = nodes_[it->second].fields;
  for (SpanArg& existing : fields) {
    if (existing.key == field.key) {
      existing = std::move(field);
      return;
    }
  }
  fields.push_back(std::move(field));
}

const ProvenanceGraph::Node* ProvenanceGraph::find(
    const std::string& id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::vector<const ProvenanceGraph::Node*> ProvenanceGraph::nodes_of(
    NodeKind kind) const {
  std::vector<const Node*> out;
  for (const Node& node : nodes_) {
    if (node.kind == kind) out.push_back(&node);
  }
  return out;
}

std::vector<std::string> ProvenanceGraph::find_nodes(
    NodeKind kind, std::string_view field_key, std::string_view value) const {
  std::vector<std::string> out;
  for (const Node& node : nodes_) {
    if (node.kind != kind) continue;
    for (const SpanArg& field : node.fields) {
      if (!field.is_number && field.key == field_key && field.text == value) {
        out.push_back(node.id);
        break;
      }
    }
  }
  return out;
}

void ProvenanceGraph::clear() {
  nodes_.clear();
  edges_.clear();
  index_.clear();
  next_id_.fill(0);
}

std::vector<std::string> ProvenanceGraph::validate() const {
  std::vector<std::string> errors;
  for (const Edge& edge : edges_) {
    if (index_.find(edge.from) == index_.end()) {
      errors.push_back("edge " + edge.from + " -[" + edge.relation + "]-> " +
                       edge.to + ": unknown source node");
    }
    if (index_.find(edge.to) == index_.end()) {
      errors.push_back("edge " + edge.from + " -[" + edge.relation + "]-> " +
                       edge.to + ": unknown target node");
    }
  }
  return errors;
}

std::vector<std::string> ProvenanceGraph::reachable_from(
    NodeKind from) const {
  std::set<std::string> seen;
  std::deque<std::string> frontier;
  for (const Node& node : nodes_) {
    if (node.kind == from && seen.insert(node.id).second) {
      frontier.push_back(node.id);
    }
  }
  // Adjacency on demand: the graphs are small (tens of nodes), so a scan
  // per frontier pop beats building an index.
  while (!frontier.empty()) {
    const std::string id = std::move(frontier.front());
    frontier.pop_front();
    for (const Edge& edge : edges_) {
      if (edge.from == id && seen.insert(edge.to).second) {
        frontier.push_back(edge.to);
      }
    }
  }
  std::vector<std::string> out;
  for (const Node& node : nodes_) {
    if (seen.count(node.id) > 0) out.push_back(node.id);
  }
  return out;
}

void ProvenanceGraph::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("nodes").begin_array();
  for (const Node& node : nodes_) {
    w.begin_object();
    w.member("id", node.id);
    w.member("kind", kind_name(node.kind));
    w.key("fields").begin_object();
    for (const SpanArg& field : node.fields) {
      if (field.is_number) {
        w.member(field.key, field.number);
      } else {
        w.member(field.key, field.text);
      }
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("edges").begin_array();
  for (const Edge& edge : edges_) {
    w.begin_object();
    w.member("from", edge.from);
    w.member("to", edge.to);
    w.member("relation", edge.relation);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void ProvenanceGraph::write_json(std::ostream& out, int indent) const {
  JsonWriter w(out, indent);
  write_json(w);
  out << "\n";
}

}  // namespace mars::obs
