#pragma once
// Flight recorder: a bounded ring of recent events and metric deltas that
// is dumped on demand when a diagnosis goes wrong (confidence below
// threshold, aborted collection), giving triggered post-mortem context
// instead of always-on verbosity.
//
// The ring stores LogEvents at *full* verbosity — an attached EventLog
// forwards every emission before its own level/rate filtering — plus
// synthetic "metrics/delta" events appended on sampler ticks, so a dump
// interleaves the last N control-plane decisions with how the counters
// moved between them. Dumps snapshot the ring without clearing it, so two
// triggers close together share the overlapping history.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/registry.hpp"
#include "sim/time.hpp"
#include "util/ring_buffer.hpp"

namespace mars::obs {

class JsonWriter;

struct FlightRecorderConfig {
  /// Events retained in the ring (oldest overwritten first).
  std::size_t capacity = 256;
  /// Sessions whose confidence lands strictly below this dump the ring.
  double confidence_threshold = 0.8;
  /// At most this many dumps are kept (later triggers still count).
  std::size_t max_dumps = 8;
};

class FlightRecorder {
 public:
  /// One triggered snapshot of the ring, oldest event first.
  struct Dump {
    std::string reason;
    sim::Time at = 0;
    std::vector<LogEvent> events;
  };

  explicit FlightRecorder(FlightRecorderConfig config = {});

  /// Replace the config and reset the ring, dumps, and counters.
  void configure(FlightRecorderConfig config);

  /// Append one event to the ring (called by EventLog pre-filter).
  void record(const LogEvent& event);

  /// Diff `snap` against the previous sampler tick and append one
  /// synthetic "metrics/delta" event listing the counters that moved.
  void note_metrics(sim::Time at, const MetricsSnapshot& snap);

  /// Snapshot the ring into a dump. Always counts the trigger; retains
  /// the dump only while under max_dumps.
  void trigger(std::string reason, sim::Time at);

  [[nodiscard]] bool should_trigger(double confidence) const {
    return confidence < config_.confidence_threshold;
  }

  [[nodiscard]] const std::vector<Dump>& dumps() const { return dumps_; }
  [[nodiscard]] std::uint64_t triggers_total() const {
    return triggers_total_;
  }
  [[nodiscard]] std::size_t ring_size() const { return ring_.size(); }
  [[nodiscard]] const FlightRecorderConfig& config() const { return config_; }

  /// {"dumps": [{"reason", "ts_s", "events": [...]}]} — events in the
  /// same compact object shape the NDJSON log uses.
  void write_json(std::ostream& out, int indent = 2) const;

 private:
  /// At most this many counter deltas per synthetic metrics event.
  static constexpr std::size_t kMaxDeltaFields = 24;

  FlightRecorderConfig config_;
  util::RingBuffer<LogEvent> ring_;
  std::vector<Dump> dumps_;
  std::uint64_t triggers_total_ = 0;
  MetricsSnapshot prev_metrics_;
  bool have_prev_metrics_ = false;
};

}  // namespace mars::obs
