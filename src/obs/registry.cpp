#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/json_writer.hpp"

namespace mars::obs {

// ---- LogHistogram --------------------------------------------------------
//
// Layout (S = 2^s sub-buckets per octave):
//   values [0, 2S)   -> buckets [0, 2S), exact (unit width);
//   values [2^k, 2^(k+1)) for k > s -> S buckets of width 2^(k-s).
// A value v >= 2S with top bit k lands in bucket
//   2S + (k - s - 1)*S + ((v >> (k - s)) - S).

LogHistogram::LogHistogram(std::uint32_t sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits) {
  assert(sub_bucket_bits_ < 32);
}

std::size_t LogHistogram::bucket_index(std::uint64_t value) const {
  const std::uint64_t s = sub_bucket_bits_;
  const std::uint64_t S = 1ull << s;
  if (value < 2 * S) return static_cast<std::size_t>(value);
  const auto k = static_cast<std::uint64_t>(std::bit_width(value)) - 1;
  const std::uint64_t sub = (value >> (k - s)) - S;
  return static_cast<std::size_t>(2 * S + (k - s - 1) * S + sub);
}

std::uint64_t LogHistogram::bucket_lo(std::size_t index) const {
  const std::uint64_t s = sub_bucket_bits_;
  const std::uint64_t S = 1ull << s;
  const auto i = static_cast<std::uint64_t>(index);
  if (i < 2 * S) return i;
  const std::uint64_t octave = (i - 2 * S) / S;  // k - s - 1
  const std::uint64_t sub = (i - 2 * S) % S;
  return (S + sub) << (octave + 1);
}

std::uint64_t LogHistogram::bucket_hi(std::size_t index) const {
  const std::uint64_t s = sub_bucket_bits_;
  const std::uint64_t S = 1ull << s;
  const auto i = static_cast<std::uint64_t>(index);
  if (i < 2 * S) return i + 1;
  const std::uint64_t octave = (i - 2 * S) / S;
  const std::uint64_t sub = (i - 2 * S) % S;
  return (S + sub + 1) << (octave + 1);
}

void LogHistogram::record(std::uint64_t value) { record_n(value, 1); }

void LogHistogram::record_n(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  const std::size_t idx = bucket_index(value);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += n;
  if (total_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  total_ += n;
  sum_ += value * n;
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > rank || (seen == total_ && seen >= rank)) {
      // Clamp to the observed max: the top bucket's upper bound can be far
      // above anything actually recorded.
      return std::min(bucket_hi(i) - 1, max_);
    }
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  assert(sub_bucket_bits_ == other.sub_bucket_bits_ &&
         "histograms must share a bucket layout to merge");
  if (other.total_ == 0) return;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (total_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  total_ += other.total_;
  sum_ += other.sum_;
}

// ---- MetricsSnapshot -----------------------------------------------------

namespace {

template <typename T>
const T* find_named(const std::vector<std::pair<std::string, T>>& sorted,
                    std::string_view name) {
  const auto it = std::lower_bound(
      sorted.begin(), sorted.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  if (it == sorted.end() || it->first != name) return nullptr;
  return &it->second;
}

}  // namespace

double MetricsSnapshot::gauge_or(std::string_view name,
                                 double fallback) const {
  const double* v = find_named(gauges, name);
  return v ? *v : fallback;
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  const std::uint64_t* v = find_named(counters, name);
  return v ? *v : fallback;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.gauges = gauges;
  out.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    const std::uint64_t* prev = find_named(earlier.counters, name);
    out.counters.emplace_back(name, value - (prev ? *prev : 0));
  }
  out.histograms.reserve(histograms.size());
  for (const auto& [name, view] : histograms) {
    const HistogramView* prev = find_named(earlier.histograms, name);
    if (prev == nullptr) {
      out.histograms.emplace_back(name, view);
      continue;
    }
    HistogramView d;
    d.sub_bucket_bits = view.sub_bucket_bits;
    d.total = view.total - prev->total;
    d.sum = view.sum - prev->sum;
    d.min = view.min;  // min/max are lifetime extremes, not window ones
    d.max = view.max;
    for (const auto& [lo, count] : view.buckets) {
      std::uint64_t before = 0;
      for (const auto& [plo, pcount] : prev->buckets) {
        if (plo == lo) {
          before = pcount;
          break;
        }
      }
      if (count > before) d.buckets.emplace_back(lo, count - before);
    }
    out.histograms.emplace_back(name, std::move(d));
  }
  return out;
}

// ---- MetricsRegistry -----------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name,
                                         std::uint32_t sub_bucket_bits) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>(sub_bucket_bits);
  return *slot;
}

void MetricsRegistry::gauge(const std::string& name, GaugeFn read) {
  gauges_[name] = std::move(read);
}

std::size_t MetricsRegistry::remove_gauges(std::string_view prefix) {
  std::size_t removed = 0;
  for (auto it = gauges_.begin(); it != gauges_.end();) {
    if (std::string_view(it->first).substr(0, prefix.size()) == prefix) {
      it = gauges_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) names.push_back(name);
  return names;
}

double MetricsRegistry::read_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() && it->second ? it->second() : 0.0;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::read_gauges()
    const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) {
    out.emplace_back(name, fn ? fn() : 0.0);
  }
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace_back(name, cell->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) {
    snap.gauges.emplace_back(name, fn ? fn() : 0.0);
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramView view;
    view.sub_bucket_bits = hist->sub_bucket_bits();
    view.total = hist->total();
    view.sum = hist->sum();
    view.min = hist->min();
    view.max = hist->max();
    for (std::size_t i = 0; i < hist->bucket_len(); ++i) {
      if (hist->bucket_count(i) > 0) {
        view.buckets.emplace_back(hist->bucket_lo(i), hist->bucket_count(i));
      }
    }
    snap.histograms.emplace_back(name, std::move(view));
  }
  return snap;
}

void MetricsRegistry::write_json(std::ostream& out,
                                 const MetricsSnapshot& snap) {
  JsonWriter w(out);
  write_json(w, snap);
  out << "\n";
}

void MetricsRegistry::write_json(JsonWriter& w, const MetricsSnapshot& snap) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) w.member(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snap.gauges) w.member(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, view] : snap.histograms) {
    w.key(name).begin_object();
    w.member("total", view.total);
    w.member("sum", view.sum);
    w.member("min", view.min);
    w.member("max", view.max);
    w.member("sub_bucket_bits", static_cast<std::uint64_t>(
                                    view.sub_bucket_bits));
    w.key("buckets").begin_array();
    for (const auto& [lo, count] : view.buckets) {
      w.begin_array().value(lo).value(count).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void MetricsRegistry::write_csv(std::ostream& out,
                                const MetricsSnapshot& snap) {
  out << "kind,name,value\n";
  for (const auto& [name, value] : snap.counters) {
    out << "counter," << name << "," << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge," << name << "," << value << "\n";
  }
  for (const auto& [name, view] : snap.histograms) {
    out << "histogram," << name << ".total," << view.total << "\n";
    out << "histogram," << name << ".sum," << view.sum << "\n";
    out << "histogram," << name << ".min," << view.min << "\n";
    out << "histogram," << name << ".max," << view.max << "\n";
  }
}

}  // namespace mars::obs
