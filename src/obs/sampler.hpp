#pragma once
// Virtual-time sampler: a periodic simulator event that scrapes every
// registered gauge into an epoch-aligned time series.
//
// Replaces the hand-rolled "schedule a lambda every 100 ms that reads
// counters into a map" loops the figure benches used to carry. The sampler
// ticks at exact multiples of its period (epoch alignment: the first tick
// is the smallest multiple of `period` >= the start time), so series from
// different runs line up sample-for-sample and rows can be joined on time.
//
// The SeriesStore outlives the sampler (and the simulator): run_scenario
// owns a Sampler on its stack while the caller keeps the SeriesStore.

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mars::obs {

class JsonWriter;

/// Column-oriented time series: one row per sampler tick, one column per
/// gauge. Gauges registered after the first tick join with NaN backfill so
/// every column has one value per row.
class SeriesStore {
 public:
  [[nodiscard]] std::size_t rows() const { return times_.size(); }
  [[nodiscard]] const std::vector<sim::Time>& times() const { return times_; }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }
  /// Column by name (empty if unknown).
  [[nodiscard]] const std::vector<double>* column(
      const std::string& name) const;
  /// Last value of a column (fallback when empty/unknown).
  [[nodiscard]] double last(const std::string& name, double fallback) const;

  /// Append one row. `named_values` must be sorted by name (the registry's
  /// snapshot order); unseen names become new NaN-backfilled columns.
  void append_row(
      sim::Time t,
      const std::vector<std::pair<std::string, double>>& named_values);

  /// CSV: header "time_s,<col>,..." then one row per tick.
  void write_csv(std::ostream& out) const;
  /// JSON: {"times_s": [...], "series": {name: [...], ...}}.
  void write_json(std::ostream& out) const;
  /// Same object written into an in-progress document.
  void write_json(JsonWriter& w) const;

 private:
  std::vector<sim::Time> times_;
  std::vector<std::string> names_;            // sorted
  std::vector<std::vector<double>> columns_;  // parallel to names_
};

struct SamplerConfig {
  sim::Time period = 100 * sim::kMillisecond;
  /// Stop sampling after this time (inclusive); the run's end.
  sim::Time until = std::numeric_limits<sim::Time>::max();
  /// Also emit each sample as a Perfetto counter event when a tracer is
  /// attached, so the metrics show up as area tracks next to the spans.
  bool counters_to_tracer = true;
};

class Sampler {
 public:
  /// Does not start sampling; call start(). `series` and `registry` must
  /// outlive the simulation run.
  Sampler(sim::Simulator& sim, MetricsRegistry& registry, SeriesStore& series,
          SamplerConfig config = {});

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;
  ~Sampler() { stop(); }

  /// Schedule the first tick at the next multiple of period (>= now).
  void start();
  /// Cancel the pending tick (safe if never started / already drained).
  void stop();

  /// Take one sample immediately at the current virtual time (used for a
  /// final scrape at end-of-run, off the periodic grid).
  void sample_now();

  void set_tracer(SpanTracer* tracer) { tracer_ = tracer; }

  /// Feed each tick's counter snapshot into a flight recorder (nullptr
  /// detaches): the recorder's ring gains one "metrics/delta" event per
  /// tick with every counter that moved since the previous tick.
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] sim::Time period() const { return config_.period; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void tick(sim::Time at, bool periodic);
  void schedule_next(sim::Time from);

  sim::Simulator* sim_;
  MetricsRegistry* registry_;
  SeriesStore* series_;
  SamplerConfig config_;
  SpanTracer* tracer_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  std::uint64_t pending_event_ = 0;
  bool pending_valid_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace mars::obs
