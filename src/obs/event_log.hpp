#pragma once
// Structured event log: NDJSON-exportable control-plane events with
// severity, virtual + wall timestamps, and per-key token-bucket rate
// limiting.
//
// This is the "triggered, condition-scoped evidence" half of the ops
// plane (PAPERS.md, "Programmable Event Detection for INT"): components
// that already hold a nullable MetricsRegistry*/SpanTracer* gain a third
// nullable obs::EventLog* and emit discrete, queryable events on the rare
// control-plane paths — controller retries and quarantines, channel
// degradation windows, injector firings — never on the packet hot path.
//
// Determinism: admission decisions (level filter + rate limiter) depend
// only on virtual timestamps and call order, so a fixed-seed run logs a
// bit-identical event sequence. Wall-clock timestamps (`wall_ms`, offset
// from EventLog construction) ride along for profiling but are the one
// nondeterministic field — tests must not depend on them.

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/tracer.hpp"  // SpanArg / SpanArgs double as log fields
#include "sim/time.hpp"

namespace mars::obs {

class FlightRecorder;
class JsonWriter;

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

[[nodiscard]] const char* level_name(LogLevel level);
/// Parse "debug" / "info" / "warn" / "error" (nullopt if unknown).
[[nodiscard]] std::optional<LogLevel> level_from_name(std::string_view name);

/// One structured event. `fields` reuses SpanArg so emit sites can share
/// argument lists with the Perfetto tracer.
struct LogEvent {
  LogLevel level = LogLevel::kInfo;
  sim::Time at = 0;     ///< virtual time
  double wall_ms = 0.0; ///< wall offset since EventLog construction
  std::string component;
  std::string event;
  SpanArgs fields;
  /// Same-key events the rate limiter dropped since the last admitted one.
  std::uint64_t suppressed = 0;
};

struct EventLogConfig {
  LogLevel min_level = LogLevel::kInfo;
  /// Token-bucket refill per (component, event) key in tokens per virtual
  /// second; <= 0 disables rate limiting.
  double rate_limit_per_s = 50.0;
  /// Bucket capacity: bursts up to this many same-key events pass.
  std::uint32_t rate_limit_burst = 16;
  /// Hard cap on retained events (guards runaway soak runs).
  std::size_t max_events = 1u << 20;
};

class EventLog {
 public:
  struct Stats {
    std::uint64_t logged = 0;           ///< admitted and retained
    std::uint64_t below_level = 0;      ///< dropped by the level filter
    std::uint64_t rate_suppressed = 0;  ///< dropped by the token bucket
    std::uint64_t overflow_dropped = 0; ///< dropped by max_events
  };

  explicit EventLog(EventLogConfig config = {});

  /// Replace the config and reset events, buckets, and stats (a fresh run).
  void configure(EventLogConfig config);

  /// Cheap pre-check so call sites can skip building fields entirely.
  [[nodiscard]] bool enabled(LogLevel level) const {
    return recorder_ != nullptr || level >= config_.min_level;
  }

  /// Record one event at virtual time `at`. An attached FlightRecorder
  /// sees every event *before* filtering (full verbosity on the black-box
  /// ring); the retained log applies min_level then the per-key bucket.
  void log(LogLevel level, sim::Time at, std::string component,
           std::string event, SpanArgs fields = {});

  /// Forward every event (pre-filter) to a flight recorder.
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] const std::vector<LogEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const EventLogConfig& config() const { return config_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// One compact JSON object per line (NDJSON): {"ts_s", "wall_ms",
  /// "level", "component", "event", "fields"{...}[, "suppressed"]}.
  void write_ndjson(std::ostream& out) const;
  /// Write one event as a single compact JSON object (no newline).
  static void write_event(std::ostream& out, const LogEvent& event);
  /// Same object written into an in-progress document (flight-recorder
  /// dumps nest events inside their own JSON).
  static void write_event(JsonWriter& w, const LogEvent& event);

 private:
  struct Bucket {
    double tokens = 0.0;
    sim::Time last = 0;
    std::uint64_t suppressed_since = 0;
    bool primed = false;
  };

  [[nodiscard]] double wall_ms_now() const;

  EventLogConfig config_;
  std::chrono::steady_clock::time_point wall_epoch_;
  std::vector<LogEvent> events_;
  // std::map keeps bucket iteration deterministic if it's ever exported.
  std::map<std::string, Bucket> buckets_;
  Stats stats_;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace mars::obs
