#pragma once
// Flow traces: record what a workload did, replay it deterministically,
// and exchange it as CSV. Substitute for the paper's proprietary
// data-center capture (DESIGN.md): experiments that want "the same
// traffic again, exactly" — detector regression runs, A/B-ing two MARS
// configurations — replay a trace instead of re-sampling the generative
// model.
//
// Also provides the incast pattern (many sources, one sink, synchronized
// start) — the classic data-center stressor the paper's micro-burst
// scenario approximates.

#include <iosfwd>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/types.hpp"
#include "sim/simulator.hpp"

namespace mars::workload {

/// One packet's injection, fully determined.
struct TraceEvent {
  sim::Time at = 0;
  net::FlowId flow;
  std::uint32_t flow_hash = 0;
  std::uint32_t size_bytes = 0;
};

class FlowTrace {
 public:
  void add(const TraceEvent& event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Sort by injection time (stable: equal timestamps keep add order).
  void sort();

  /// Schedule every event on the network's simulator. Events before the
  /// current simulation time are skipped (counted in the return value).
  std::size_t replay(net::Network& network) const;

  /// CSV: "time_ns,src,dst,flow_hash,size_bytes", one event per line,
  /// '#' comments allowed.
  void write_csv(std::ostream& out) const;
  /// Parse a CSV stream. Returns false (and leaves *this empty) on any
  /// malformed line.
  [[nodiscard]] bool read_csv(std::istream& in);

 private:
  std::vector<TraceEvent> events_;
};

/// Capture a live workload into a trace by observing injections.
/// Attach to the Network (as its delivery-independent tap) BEFORE
/// starting traffic: it snapshots every inject() call.
class TraceRecorder : public net::PacketObserver {
 public:
  /// Records at the packet's source switch only (one event per packet).
  void on_ingress(net::SwitchContext& ctx, net::Packet& pkt) override;

  [[nodiscard]] const FlowTrace& trace() const { return trace_; }
  [[nodiscard]] FlowTrace take() { return std::move(trace_); }

 private:
  FlowTrace trace_;
};

struct IncastConfig {
  net::SwitchId sink = net::kInvalidSwitch;
  std::vector<net::SwitchId> sources;
  /// Packets each source sends at fixed `spacing` intervals.
  int packets_per_source = 100;
  std::uint32_t size_bytes = 800;
  sim::Time start = 0;
  /// Inter-packet spacing per source (10us = line-rate hammering; larger
  /// values model a sustained synchronized burst).
  sim::Time spacing = 10 * sim::kMicrosecond;
  /// Per-source jitter on the synchronized start.
  sim::Time jitter = 100 * sim::kMicrosecond;
};

/// Build the incast pattern as a trace (deterministic in `seed`).
[[nodiscard]] FlowTrace make_incast(const IncastConfig& config,
                                    std::uint64_t seed);

}  // namespace mars::workload
