#include "workload/traffic_gen.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <numbers>

namespace mars::workload {

TrafficGenerator::TrafficGenerator(net::Network& network, std::uint64_t seed)
    : network_(&network), rng_(seed), seed_(seed),
      sharded_(network.is_sharded()) {}

void TrafficGenerator::add_flow(const FlowSpec& spec) {
  flows_.push_back(spec);
  if (sharded_) {
    // Per-flow stream seeded from (generator seed, flow index) only — the
    // draw sequence cannot depend on how other flows interleave.
    const std::size_t index = flows_.size() - 1;
    FlowRuntime rt;
    std::uint64_t sm = seed_ ^ (0xA5A5A5A5A5A5A5A5ull +
                                static_cast<std::uint64_t>(index));
    rt.rng = util::Rng(util::splitmix64(sm));
    rt.lane = network_->flow_lane(spec.flow.source, index);
    runtime_.push_back(std::move(rt));
  }
  if (running_) schedule_next(flows_.size() - 1);
}

void TrafficGenerator::add_background(const BackgroundConfig& config,
                                      const std::vector<net::SwitchId>& edges,
                                      int pods) {
  diurnal_ = config.diurnal;
  const int per_pod = static_cast<int>(edges.size()) / std::max(pods, 1);
  std::vector<int> sink_load(edges.size(), 0);
  for (int i = 0; i < config.flows; ++i) {
    // Round-robin sources and least-loaded sinks: random placement lets a
    // single edge draw several heavy flows and saturate its links at
    // baseline, which buries every fault signal under ambient congestion.
    const auto src_idx = static_cast<std::size_t>(i) % edges.size();
    const int src_pod = static_cast<int>(src_idx) / std::max(per_pod, 1);
    const bool want_inter_pod = rng_.chance(config.inter_pod_fraction);
    std::size_t dst_idx = (src_idx + 1) % edges.size();
    int best_load = INT_MAX;
    for (std::size_t cand = 0; cand < edges.size(); ++cand) {
      if (cand == src_idx) continue;
      const int cand_pod = static_cast<int>(cand) / std::max(per_pod, 1);
      if (pods > 1 && want_inter_pod != (cand_pod != src_pod)) continue;
      if (sink_load[cand] < best_load) {
        best_load = sink_load[cand];
        dst_idx = cand;
      }
    }
    ++sink_load[dst_idx];
    FlowSpec spec;
    spec.flow = net::FlowId{edges[src_idx], edges[dst_idx]};
    spec.flow_hash = static_cast<std::uint32_t>(rng_());
    // Mild per-flow rate variation; a wide range lets a few heavy flows
    // oversubscribe one edge at baseline and drown fault signals.
    spec.pps = config.pps * rng_.uniform(0.85, 1.15);
    add_flow(spec);
  }
}

net::FlowId TrafficGenerator::add_burst(net::FlowId flow, double pps,
                                        sim::Time start, sim::Time duration) {
  FlowSpec spec;
  spec.flow = flow;
  spec.flow_hash = static_cast<std::uint32_t>(rng_());
  spec.pps = pps;
  spec.start = start;
  spec.stop = start + duration;
  add_flow(spec);
  return flow;
}

void TrafficGenerator::start() {
  running_ = true;
  for (std::size_t i = 0; i < flows_.size(); ++i) schedule_next(i);
}

void TrafficGenerator::stop_at(sim::Time at) {
  for (auto& spec : flows_) spec.stop = std::min(spec.stop, at);
}

std::uint64_t TrafficGenerator::packets_injected() const {
  if (!sharded_) return injected_;
  std::uint64_t total = 0;
  for (const FlowRuntime& rt : runtime_) total += rt.injected;
  return total;
}

double TrafficGenerator::rate_multiplier(const FlowSpec& spec,
                                         sim::Time now) const {
  (void)spec;
  if (!diurnal_.enabled) return 1.0;
  const double t = sim::to_seconds(now) /
                   std::max(sim::to_seconds(diurnal_.period), 1e-9);
  return 1.0 + diurnal_.amplitude *
                   std::sin(2.0 * std::numbers::pi * t + diurnal_.phase);
}

void TrafficGenerator::schedule_next(std::size_t flow_index) {
  if (sharded_) {
    schedule_next_sharded(flow_index);
    return;
  }
  auto& sim = network_->simulator();
  const FlowSpec& spec = flows_[flow_index];
  const sim::Time now = sim.now();
  if (now >= spec.stop) return;

  const double mult = std::max(rate_multiplier(spec, now), 0.05);
  const double rate = spec.pps * mult;  // packets per second
  // Erlang(shape) gap: sum of `shape` exponentials at rate shape*rate
  // keeps the mean at 1/rate while smoothing the variance.
  const int shape = std::max(spec.arrival_shape, 1);
  double gap_s = 0.0;
  for (int i = 0; i < shape; ++i) {
    gap_s += rng_.exponential(rate * shape);
  }
  sim::Time next =
      std::max<sim::Time>(now, spec.start) +
      static_cast<sim::Time>(gap_s * static_cast<double>(sim::kSecond));
  if (next < spec.start) next = spec.start;
  if (next >= spec.stop) return;

  auto arrival = [this, flow_index] {
    const FlowSpec& s = flows_[flow_index];
    const double raw = rng_.lognormal(s.size_mu, s.size_sigma);
    const auto size = static_cast<std::uint32_t>(
        std::clamp(raw, 64.0, 1500.0));
    network_->inject(s.flow, s.flow_hash, size);
    ++injected_;
    schedule_next(flow_index);
  };
  static_assert(sim::event_fn_fits_inline<decltype(arrival)>,
                "per-packet arrival closure must fit the inline buffer");
  sim.schedule_at(next, std::move(arrival));
}

void TrafficGenerator::schedule_next_sharded(std::size_t flow_index) {
  FlowRuntime& rt = runtime_[flow_index];
  const FlowSpec& spec = flows_[flow_index];
  const sim::Time now = rt.lane.now();
  if (now >= spec.stop) return;

  const double mult = std::max(rate_multiplier(spec, now), 0.05);
  const double rate = spec.pps * mult;  // packets per second
  const int shape = std::max(spec.arrival_shape, 1);
  double gap_s = 0.0;
  for (int i = 0; i < shape; ++i) {
    gap_s += rt.rng.exponential(rate * shape);
  }
  sim::Time next =
      std::max<sim::Time>(now, spec.start) +
      static_cast<sim::Time>(gap_s * static_cast<double>(sim::kSecond));
  if (next < spec.start) next = spec.start;
  if (next >= spec.stop) return;

  auto arrival = [this, flow_index] {
    FlowRuntime& r = runtime_[flow_index];
    const FlowSpec& s = flows_[flow_index];
    const double raw = r.rng.lognormal(s.size_mu, s.size_sigma);
    const auto size = static_cast<std::uint32_t>(
        std::clamp(raw, 64.0, 1500.0));
    network_->inject(s.flow, s.flow_hash, size);
    ++r.injected;
    schedule_next(flow_index);
  };
  static_assert(sim::event_fn_fits_inline<decltype(arrival)>,
                "per-packet arrival closure must fit the inline buffer");
  rt.lane.schedule_at(next, std::move(arrival));
}

}  // namespace mars::workload
