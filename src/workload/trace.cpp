#include "workload/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/rng.hpp"

namespace mars::workload {

void FlowTrace::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
}

std::size_t FlowTrace::replay(net::Network& network) const {
  auto& sim = network.simulator();
  std::size_t skipped = 0;
  for (const TraceEvent& event : events_) {
    if (event.at < sim.now()) {
      ++skipped;
      continue;
    }
    auto replay_one = [&network, event] {
      network.inject(event.flow, event.flow_hash, event.size_bytes);
    };
    static_assert(sim::event_fn_fits_inline<decltype(replay_one)>,
                  "trace-replay closure must fit the inline buffer");
    sim.schedule_at(event.at, std::move(replay_one));
  }
  return skipped;
}

void FlowTrace::write_csv(std::ostream& out) const {
  out << "# time_ns,src,dst,flow_hash,size_bytes\n";
  for (const TraceEvent& e : events_) {
    out << e.at << ',' << e.flow.source << ',' << e.flow.sink << ','
        << e.flow_hash << ',' << e.size_bytes << '\n';
  }
}

bool FlowTrace::read_csv(std::istream& in) {
  events_.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    TraceEvent e;
    char c1 = 0, c2 = 0, c3 = 0, c4 = 0;
    if (!(fields >> e.at >> c1 >> e.flow.source >> c2 >> e.flow.sink >> c3 >>
          e.flow_hash >> c4 >> e.size_bytes) ||
        c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',') {
      events_.clear();
      return false;
    }
    events_.push_back(e);
  }
  return true;
}

void TraceRecorder::on_ingress(net::SwitchContext& ctx, net::Packet& pkt) {
  if (ctx.id != pkt.flow.source) return;
  trace_.add(TraceEvent{ctx.sim.now(), pkt.flow, pkt.flow_hash,
                        pkt.size_bytes});
}

FlowTrace make_incast(const IncastConfig& config, std::uint64_t seed) {
  util::Rng rng(seed);
  FlowTrace trace;
  for (const net::SwitchId src : config.sources) {
    if (src == config.sink) continue;
    const auto flow_hash = static_cast<std::uint32_t>(rng());
    const sim::Time start =
        config.start +
        static_cast<sim::Time>(rng.below(
            static_cast<std::uint64_t>(std::max<sim::Time>(config.jitter, 1))));
    // Synchronized burst: sources pace at `spacing`, which in aggregate
    // exceeds what the sink's links can drain — that is what makes an
    // incast an incast.
    for (int i = 0; i < config.packets_per_source; ++i) {
      trace.add(TraceEvent{start + i * config.spacing,
                           net::FlowId{src, config.sink}, flow_hash,
                           config.size_bytes});
    }
  }
  trace.sort();
  return trace;
}

}  // namespace mars::workload
