#pragma once
// Traffic generation (paper §5.1–5.2).
//
// Background flows run at ~200 pps with lognormal packet sizes whose
// parameters match the published summary statistics of the UW data-center
// trace (Benson et al., IMC'10) — the trace itself is not redistributable,
// so this generative stand-in reproduces the properties the experiments
// depend on: per-flow rates, heavy-tailed sizes, diurnal load variation,
// and a traffic matrix skewed toward inter-pod destinations (which is what
// concentrates load on core links, Fig. 2).
//
// Micro-bursts are short-lived flows exceeding 1000 pps (Fig. 7a).

#include <cstdint>
#include <limits>
#include <vector>

#include "net/network.hpp"
#include "net/types.hpp"
#include "sim/lane.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mars::workload {

/// Sinusoidal load modulation (the Fig. 5 "traffic varies through the day"
/// effect, compressed into simulation time).
struct DiurnalConfig {
  bool enabled = false;
  double amplitude = 0.5;            ///< rate swings by ±amplitude
  sim::Time period = 60 * sim::kSecond;
  double phase = 0.0;
};

struct FlowSpec {
  net::FlowId flow;
  std::uint32_t flow_hash = 0;  ///< per-flow entropy (the "5-tuple")
  double pps = 200.0;
  /// Lognormal size parameters (of the underlying normal).
  double size_mu = 6.2;     ///< median ≈ 490 B
  double size_sigma = 0.6;
  /// Erlang shape of the inter-packet gaps: 1 = Poisson, larger = smoother
  /// (CV = 1/sqrt(shape)). Replayed data-center traces are much steadier
  /// than Poisson; 4 approximates their pacing.
  int arrival_shape = 4;
  sim::Time start = 0;
  sim::Time stop = std::numeric_limits<sim::Time>::max();
};

struct BackgroundConfig {
  int flows = 32;
  double pps = 200.0;  ///< paper §5.2: ~200 packets per second per flow
  /// Fraction of flows whose endpoints sit in different pods.
  double inter_pod_fraction = 0.7;
  DiurnalConfig diurnal;
};

class TrafficGenerator {
 public:
  TrafficGenerator(net::Network& network, std::uint64_t seed);

  /// Register a flow; takes effect when start() is called (or immediately
  /// if the generator is already running).
  void add_flow(const FlowSpec& spec);

  /// Create `config.flows` random background flows between edge switches.
  /// `edges` must list the fat-tree's edge switches pod-major (as
  /// FatTree::edge does) so the inter-pod fraction can be honoured.
  void add_background(const BackgroundConfig& config,
                      const std::vector<net::SwitchId>& edges,
                      int pods);

  /// Add a micro-burst: a transient flow at `pps` (>1000 per the paper)
  /// lasting `duration`. Returns its FlowId.
  net::FlowId add_burst(net::FlowId flow, double pps, sim::Time start,
                        sim::Time duration);

  /// Begin scheduling packet arrivals.
  void start();

  /// Cease generating for every flow at absolute time `at` (flows with an
  /// earlier stop keep it). Packets already scheduled still inject.
  void stop_at(sim::Time at);

  [[nodiscard]] const std::vector<FlowSpec>& flows() const { return flows_; }
  [[nodiscard]] std::uint64_t packets_injected() const;

 private:
  /// Sharded mode gives every flow its own rng and its own keyed lane on
  /// the source switch's shard: arrival events then replay identically at
  /// any shard count, and flows on different shards never race on shared
  /// generator state. (Legacy mode keeps the single shared rng_ so the
  /// historical golden fingerprints are untouched.)
  struct FlowRuntime {
    util::Rng rng{0};
    sim::Lane lane;
    std::uint64_t injected = 0;
  };

  void schedule_next(std::size_t flow_index);
  void schedule_next_sharded(std::size_t flow_index);
  [[nodiscard]] double rate_multiplier(const FlowSpec& spec,
                                       sim::Time now) const;

  net::Network* network_;
  util::Rng rng_;
  std::uint64_t seed_;
  bool sharded_;
  std::vector<FlowSpec> flows_;
  std::vector<FlowRuntime> runtime_;  ///< index-aligned with flows_ (sharded)
  DiurnalConfig diurnal_;
  bool running_ = false;
  std::uint64_t injected_ = 0;
};

}  // namespace mars::workload
