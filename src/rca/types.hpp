#pragma once
// Root-cause-analysis vocabulary (paper §4.4): culprits are network
// locations (switch / link / port) or flows, each assigned one of the five
// cause signatures and a suspicious score.

#include <string>
#include <vector>

#include "fsm/miner.hpp"
#include "fsm/sequence.hpp"
#include "net/types.hpp"

namespace mars::rca {

/// The five root causes MARS ships signatures for (§4.4.4).
enum class CauseKind : std::uint8_t {
  kMicroBurst,           ///< flow-level: transient pps spike
  kEcmpImbalance,        ///< switch-level: uneven ECMP split upstream
  kProcessRateDecrease,  ///< port/switch-level: service rate dropped
  kDelay,                ///< port/switch-level: latency outside the queue
  kDrop,                 ///< port/switch-level: packet loss
};

enum class CulpritLevel : std::uint8_t { kFlow, kSwitch, kLink, kPort };

[[nodiscard]] inline const char* to_string(CauseKind kind) {
  switch (kind) {
    case CauseKind::kMicroBurst: return "micro-burst";
    case CauseKind::kEcmpImbalance: return "ecmp-imbalance";
    case CauseKind::kProcessRateDecrease: return "process-rate-decrease";
    case CauseKind::kDelay: return "delay";
    case CauseKind::kDrop: return "drop";
  }
  return "?";
}

[[nodiscard]] inline const char* to_string(CulpritLevel level) {
  switch (level) {
    case CulpritLevel::kFlow: return "flow";
    case CulpritLevel::kSwitch: return "switch";
    case CulpritLevel::kLink: return "link";
    case CulpritLevel::kPort: return "port";
  }
  return "?";
}

/// One entry of the ranked list handed to operators.
struct Culprit {
  CulpritLevel level = CulpritLevel::kSwitch;
  /// Switch(es) implicated: one id for switch/port level, two for a link.
  std::vector<net::SwitchId> location;
  /// Egress port on location[0], for port-level culprits.
  net::PortId port = net::kHostPort;
  /// Set for flow-level causes.
  net::FlowId flow{net::kInvalidSwitch, net::kInvalidSwitch};
  CauseKind cause = CauseKind::kDelay;
  double score = 0.0;

  [[nodiscard]] std::string describe() const;
};

/// Ranked output, highest score first.
using CulpritList = std::vector<Culprit>;

/// Canonical identity string for a culprit, normalized the same way
/// merge_and_rank's dedup key is (port only at port level, flow only at
/// flow level). This is the cross-layer join key the provenance graph
/// stores on suspect nodes, so consumers that only see the exported JSON
/// (scenario grading, trace tooling) can match culprits to nodes without
/// linking against rca types.
[[nodiscard]] std::string provenance_key(const Culprit& culprit);

}  // namespace mars::rca
