#include "rca/types.hpp"

namespace mars::rca {

std::string Culprit::describe() const {
  std::string out = std::string(to_string(level)) + "-level ";
  out += to_string(cause);
  out += " @ ";
  if (level == CulpritLevel::kFlow) {
    out += net::to_string(flow);
    if (!location.empty()) {
      out += " via ";
    }
  }
  for (std::size_t i = 0; i < location.size(); ++i) {
    if (i) out += "-";
    out += "s" + std::to_string(location[i]);
  }
  if (level == CulpritLevel::kPort && port != net::kHostPort) {
    out += " port " + std::to_string(port);
  }
  out += " (score " + std::to_string(score) + ")";
  return out;
}

std::string provenance_key(const Culprit& culprit) {
  std::string key = to_string(culprit.cause);
  key += '|';
  key += to_string(culprit.level);
  key += '|';
  for (std::size_t i = 0; i < culprit.location.size(); ++i) {
    if (i) key += '-';
    key += std::to_string(culprit.location[i]);
  }
  if (culprit.level == CulpritLevel::kPort) {
    key += "|p" + std::to_string(culprit.port);
  }
  if (culprit.level == CulpritLevel::kFlow) {
    key += "|f" + std::to_string(culprit.flow.source) + "-" +
           std::to_string(culprit.flow.sink);
  }
  return key;
}

}  // namespace mars::rca
