#pragma once
// Multi-epoch evidence accumulator (DESIGN.md "Gray failures &
// intermittency-hardened RCA").
//
// Single-window SBFL ranks each diagnosis session from scratch, so a
// culprit that only manifests in some collection windows (a flapping
// link, a slow-drain port that needs load) is re-ranked against fresh
// ambient noise every epoch and can fall out of the top-k even though it
// keeps reappearing. The accumulator keeps a sliding window of per-epoch
// culprit lists and scores each suspect (an *element*: level, location,
// port, flow — causes fused) magnitude-first:
//
//   score(e) = (sum over symptom classes of the element's loudest
//               normalized sighting in that class)
//              * (1 + 0.1 * max(0, weighted_appearances - 1))
//              * freshness(t_last - t_last_seen) // decay after silence
//
// where weighted_appearances sums, over the windows the element appears
// in, that window's peak score relative to the global peak — so
// recurrence in strong, diagnostic windows is corroboration while
// recurrence in quiet windows (the ambient background being re-measured)
// builds almost nothing,
//
// where freshness is 1.0 within one half-life of the newest retained
// window and 2^-(dt/half_life - 1) beyond it. Magnitude is primary
// because epochs are NOT independent evidence: a fault's collateral
// damage (congestion spreading from a slow-drain port lights up other
// ports) is re-reported by every later epoch at near-constant strength,
// so summing per-window support rewards the echo over the source, and
// plain exponential decay punishes a root cause whose loudest window
// came at fault onset — the most diagnostic moment. Recurrence breaks
// near-ties in favour of a culprit that keeps reappearing (a flapping
// link) without ever overturning a decisively louder suspect, and stale
// suspects fade only after a full half-life of silence. Summing across
// symptom classes (drop vs latency-family) — but never within one —
// rewards corroboration: a genuinely sick element tends to manifest
// through several symptoms over time — a slow-drain port reports
// latency-family evidence first, then drops once its queue overflows —
// while a healthy port echoing collateral congestion shows one. The
// normalizer is the peak score across ALL retained windows (not per
// window): quiet epochs contribute their ambient suspects at their true,
// weak magnitude instead of being inflated to parity with
// strongly-manifesting epochs. It also exposes per-suspect *presence* —
// the fraction of observed windows in which the suspect appeared at all —
// which MarsSystem folds into its confidence (an always-on fault keeps
// presence 1.0 and is unaffected; a fault seen in 3 of 10 windows reports
// proportionally lower confidence).
//
// The accumulator is passive bookkeeping: no RNG, no simulator access, no
// effect on any diagnosis unless RcaConfig::accumulator.enabled is set.

#include <cstdint>
#include <vector>

#include "rca/types.hpp"
#include "sim/time.hpp"

namespace mars::rca {

struct AccumulatorConfig {
  /// Off by default: existing single-window ranking (and every golden
  /// fingerprint built on it) is untouched unless a scenario opts in.
  bool enabled = false;
  /// Decay half-life for old epochs' evidence. Sized to exceed the
  /// longest credible quiet stretch WITHIN one incident: gray faults sit
  /// silent for seconds at a time, and onset evidence — the most
  /// diagnostic sighting — must survive to the post-incident grading
  /// query instead of being halved away while the fault idles.
  sim::Time half_life = 4 * sim::kSecond;
  /// Sliding-window bound on retained epochs (oldest evicted first).
  std::size_t max_windows = 64;
};

class EvidenceAccumulator {
 public:
  explicit EvidenceAccumulator(AccumulatorConfig config = {})
      : config_(config) {}

  [[nodiscard]] const AccumulatorConfig& config() const { return config_; }

  /// Record one diagnosis session's ranked list as one evidence window.
  void observe(const CulpritList& culprits, sim::Time when);

  /// Number of windows observed at or after `since`.
  [[nodiscard]] std::size_t window_count(sim::Time since) const;

  /// Decay-weighted accumulated ranking over windows at or after `since`
  /// (highest score first; suspects are elements with causes fused, and
  /// each entry's non-score fields come from the element's loudest
  /// sighting). Empty when no window qualifies.
  [[nodiscard]] CulpritList ranked(sim::Time since) const;

  /// Fraction of windows at or after `since` in which `culprit` appeared
  /// (identity: level/location/port/flow/cause, with kDelay and
  /// kProcessRateDecrease treated as one latency-family cause). 0 when no
  /// windows.
  [[nodiscard]] double presence_of(const Culprit& culprit,
                                   sim::Time since) const;

  /// presence_of the top entry of ranked(since); 1.0 when there is no
  /// evidence yet (nothing to discount confidence by).
  [[nodiscard]] double top_presence(sim::Time since) const;

  void clear() { windows_.clear(); }

 private:
  struct Window {
    sim::Time when = 0;
    CulpritList culprits;  ///< as observed (scores un-normalized)
  };

  AccumulatorConfig config_;
  std::vector<Window> windows_;
};

}  // namespace mars::rca
