#pragma once
// Spectrum-Based Fault Localization over path patterns (paper §4.4.3).
//
// MARS's score is the relative risk (Eq. 1):
//
//     Score(p) = (N_pf / (N_pf + N_ps)) / (N_nf / (N_nf + N_ns))
//
// where the "tests" are packets: failing = abnormal set, successful =
// normal set, and a packet "covers" a pattern when its path contains it.
// Classic SBFL formulas from the software-debugging literature are
// included as ablation alternatives.

#include <span>
#include <vector>

#include "fsm/sequence.hpp"

namespace mars::rca {

enum class SbflFormula : std::uint8_t {
  kRelativeRisk,  ///< Eq. 1 (MARS default)
  kTarantula,
  kOchiai,
  kJaccard,
  kDstar2,
};

[[nodiscard]] const char* to_string(SbflFormula formula);

/// Coverage counts for one pattern.
///   n_pf: abnormal ("failing") packets whose path contains the pattern
///   n_ps: normal ("successful") packets whose path contains the pattern
///   n_nf: abnormal packets whose path does not contain it
///   n_ns: normal packets whose path does not contain it
struct SpectrumCounts {
  std::uint64_t n_pf = 0;
  std::uint64_t n_ps = 0;
  std::uint64_t n_nf = 0;
  std::uint64_t n_ns = 0;
};

/// Evaluate a formula on one pattern's counts. Division-by-zero guards
/// follow §4.4.3 (N_nf treated as N_nf + 1 when zero).
[[nodiscard]] double sbfl_score(const SpectrumCounts& counts,
                                SbflFormula formula);

struct ScoredPattern {
  fsm::Pattern pattern;
  SpectrumCounts counts;
  double score = 0.0;
};

/// Count coverage of each mined pattern over the abnormal and normal
/// databases and score it. Output is sorted by score, descending (ties:
/// higher n_pf first, then lexicographic pattern for determinism).
[[nodiscard]] std::vector<ScoredPattern> score_patterns(
    std::span<const fsm::Pattern> patterns, const fsm::SequenceDatabase& abnormal,
    const fsm::SequenceDatabase& normal, bool contiguous, SbflFormula formula);

}  // namespace mars::rca
