#pragma once
// Operator-facing diagnosis report: the paper's deliverable is "an
// ordered list of culprits with causes" handed to network operators
// (§4.4.4). This module renders a diagnosis session as a readable
// incident report — the trigger, the evidence volume, the ranked list
// with per-cause remediation hints — and as machine-readable JSON for
// ticketing integrations.

#include <optional>
#include <string>

#include "control/controller.hpp"
#include "fsm/engine.hpp"
#include "rca/types.hpp"

namespace mars::rca {

struct ReportOptions {
  std::size_t max_culprits = 5;
  bool include_remediation = true;
  /// Top-suspect presence from the multi-epoch evidence accumulator
  /// (MarsSystem::presence()). Below 1 adds an INTERMITTENT line to the
  /// text report and a "presence" field to the JSON; unset omits both.
  std::optional<double> presence;
};

/// Short remediation hint per cause kind (extendable alongside the
/// signature catalogue, §4.4.4 "signatures can be extended").
[[nodiscard]] const char* remediation_hint(CauseKind cause);

/// Human-readable incident report. Passing the session's MiningStats
/// (e.g. Diagnosis::mining) adds a "mining" cost line; nullptr omits it.
[[nodiscard]] std::string render_report(
    const control::DiagnosisData& session, const CulpritList& culprits,
    const ReportOptions& options = {},
    const fsm::MiningStats* mining = nullptr);

/// Machine-readable JSON (stable field order, no external dependency).
/// Passing MiningStats adds a "mining" object; nullptr omits it.
[[nodiscard]] std::string render_json(
    const control::DiagnosisData& session, const CulpritList& culprits,
    const ReportOptions& options = {},
    const fsm::MiningStats* mining = nullptr);

}  // namespace mars::rca
