#include "rca/report.hpp"

#include <algorithm>
#include <cstdio>

namespace mars::rca {
namespace {

std::string format_time(sim::Time t) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3fs", sim::to_seconds(t));
  return buffer;
}

const char* trigger_name(dataplane::Notification::Kind kind) {
  return kind == dataplane::Notification::Kind::kHighLatency
             ? "high latency"
             : "packet loss";
}

}  // namespace

const char* remediation_hint(CauseKind cause) {
  switch (cause) {
    case CauseKind::kMicroBurst:
      return "transient application burst; consider pacing/ECN at the "
             "source or deeper buffers on the shared path";
    case CauseKind::kEcmpImbalance:
      return "rebalance or re-hash the ECMP group at the named switch; "
             "verify recent weight or membership changes";
    case CauseKind::kProcessRateDecrease:
      return "inspect the named port/switch for CPU, scheduler or meter "
             "misconfiguration throttling its service rate";
    case CauseKind::kDelay:
      return "latency added outside queueing: check interface errors, "
             "power, and recent configuration on the named element";
    case CauseKind::kDrop:
      return "verify cabling, forwarding entries and recent updates on "
             "the named element; loss is not congestion-correlated";
  }
  return "";
}

std::string render_report(const control::DiagnosisData& session,
                          const CulpritList& culprits,
                          const ReportOptions& options,
                          const fsm::MiningStats* mining) {
  std::string out;
  out += "=== MARS incident report ===\n";
  out += "trigger   : " + std::string(trigger_name(session.trigger.kind)) +
         " reported by s" + std::to_string(session.trigger.reporter) +
         " for flow " + net::to_string(session.trigger.flow) + " at " +
         format_time(session.trigger.when) + "\n";
  out += "collected : " + format_time(session.collected_at) + " (" +
         std::to_string(session.records.size()) +
         " telemetry records from edge switches, " +
         std::to_string(session.notifications.size()) + " notifications)\n";
  if (session.quality.degraded()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "evidence  : DEGRADED — confidence %.2f (%zu/%zu switches "
                  "drained, %llu records quarantined)\n",
                  session.quality.confidence(),
                  session.quality.switches_drained,
                  session.quality.switches_total,
                  static_cast<unsigned long long>(
                      session.quality.records_quarantined));
    out += buf;
  }
  if (options.presence && *options.presence < 1.0) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "evidence  : INTERMITTENT — top suspect present in %.0f%% "
                  "of diagnosis windows (gray-failure signature)\n",
                  *options.presence * 100.0);
    out += buf;
  }
  if (mining != nullptr) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "mining    : %zu patterns from %zu candidates in %.2f ms "
                  "(%.1f KB peak, %zu thread%s)\n",
                  mining->patterns, mining->nodes_expanded,
                  mining->wall_seconds * 1e3,
                  static_cast<double>(mining->peak_bytes) / 1024.0,
                  mining->threads_used,
                  mining->threads_used == 1 ? "" : "s");
    out += buf;
  }
  if (culprits.empty()) {
    out += "verdict   : no culprit isolated; likely transient\n";
    return out;
  }
  out += "culprits  :\n";
  const std::size_t n = std::min(culprits.size(), options.max_culprits);
  for (std::size_t i = 0; i < n; ++i) {
    out += "  " + std::to_string(i + 1) + ". " + culprits[i].describe() +
           "\n";
    if (options.include_remediation) {
      out += "     -> " + std::string(remediation_hint(culprits[i].cause)) +
             "\n";
    }
  }
  if (culprits.size() > n) {
    out += "  (+" + std::to_string(culprits.size() - n) +
           " lower-ranked entries)\n";
  }
  return out;
}

std::string render_json(const control::DiagnosisData& session,
                        const CulpritList& culprits,
                        const ReportOptions& options,
                        const fsm::MiningStats* mining) {
  std::string out = "{";
  out += "\"trigger\":{\"kind\":\"" +
         std::string(trigger_name(session.trigger.kind)) +
         "\",\"reporter\":" + std::to_string(session.trigger.reporter) +
         ",\"at_seconds\":" +
         std::to_string(sim::to_seconds(session.trigger.when)) + "},";
  out += "\"records\":" + std::to_string(session.records.size()) + ",";
  out += "\"confidence\":" + std::to_string(session.quality.confidence()) +
         ",";
  out += "\"coverage\":" + std::to_string(session.quality.coverage()) + ",";
  if (options.presence) {
    out += "\"presence\":" + std::to_string(*options.presence) + ",";
  }
  out += "\"quarantined\":" +
         std::to_string(session.quality.records_quarantined) + ",";
  if (mining != nullptr) {
    out += "\"mining\":{\"patterns\":" + std::to_string(mining->patterns) +
           ",\"nodes\":" + std::to_string(mining->nodes_expanded) +
           ",\"peak_bytes\":" + std::to_string(mining->peak_bytes) +
           ",\"wall_seconds\":" + std::to_string(mining->wall_seconds) +
           ",\"threads\":" + std::to_string(mining->threads_used) + "},";
  }
  out += "\"culprits\":[";
  const std::size_t n = std::min(culprits.size(), options.max_culprits);
  for (std::size_t i = 0; i < n; ++i) {
    const Culprit& c = culprits[i];
    if (i) out += ",";
    out += "{\"rank\":" + std::to_string(i + 1) + ",\"level\":\"" +
           to_string(c.level) + "\",\"cause\":\"" + to_string(c.cause) +
           "\",\"score\":" + std::to_string(c.score) + ",\"location\":[";
    for (std::size_t j = 0; j < c.location.size(); ++j) {
      if (j) out += ",";
      out += std::to_string(c.location[j]);
    }
    out += "]";
    if (c.level == CulpritLevel::kPort && c.port != net::kHostPort) {
      out += ",\"port\":" + std::to_string(c.port);
    }
    if (c.level == CulpritLevel::kFlow) {
      out += ",\"flow\":\"" + net::to_string(c.flow) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace mars::rca
