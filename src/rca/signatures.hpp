#pragma once
// Cause-signature matching (paper §4.4.4).
//
// For a culprit pattern and a flow that traverses it, MARS decides which
// of the five causes fits by comparing the flow's recent behaviour (pps,
// total queue depth) in the problematic window against its baseline:
//
//   micro-burst:            flow pps rises sharply;
//   ECMP load imbalance:    queue congestion + uneven per-path throughput
//                           within an ECMP group (culprit is the upstream
//                           switch that chooses the branch);
//   process-rate decrease:  queue builds up while pps stays stable;
//   delay:                  neither pps nor queue depth changed, yet the
//                           pattern scores high;
//   drop:                   diagnosed on a separate trigger path (§4.3.2).

#include <optional>
#include <span>
#include <vector>

#include "net/routing.hpp"
#include "net/types.hpp"
#include "rca/types.hpp"
#include "sim/time.hpp"
#include "telemetry/tables.hpp"

namespace mars::rca {

struct SignatureConfig {
  /// Micro-burst: problem pps > burst_ratio * baseline pps.
  double burst_ratio = 3.0;
  /// Queue congestion: problem queue depth > congestion_ratio * baseline
  /// and above an absolute floor.
  double queue_congestion_ratio = 2.0;
  double queue_abs_min = 4.0;
  /// "pps remains relatively stable": |problem-baseline| <= tol * baseline.
  double stable_pps_tolerance = 0.5;
  /// ECMP unevenness: max branch share / min branch share in the problem
  /// window, which must also exceed `imbalance_growth` times the baseline
  /// ratio at the same decision point.
  double imbalance_ratio = 2.5;
  double imbalance_growth = 2.0;
  /// Records younger than this (relative to the trigger) are "problematic".
  /// Detection is fast, so the window hugs the trigger (one epoch back).
  sim::Time problem_window = 100 * sim::kMillisecond;
};

/// Per-flow behavioural features split at the problem boundary.
struct FlowFeatures {
  double baseline_pps = 0.0;
  double problem_pps = 0.0;
  double baseline_queue = 0.0;
  double problem_queue = 0.0;
  bool has_baseline = false;
  bool has_problem = false;

  [[nodiscard]] bool pps_spiked(const SignatureConfig& cfg) const {
    return has_baseline && has_problem &&
           problem_pps > cfg.burst_ratio * std::max(baseline_pps, 1.0);
  }
  [[nodiscard]] bool pps_stable(const SignatureConfig& cfg) const {
    if (!has_baseline || !has_problem) return true;
    const double base = std::max(baseline_pps, 1.0);
    return std::abs(problem_pps - baseline_pps) <=
           cfg.stable_pps_tolerance * base;
  }
  [[nodiscard]] bool queue_congested(const SignatureConfig& cfg) const {
    return has_problem && problem_queue >= cfg.queue_abs_min &&
           (!has_baseline ||
            problem_queue >
                cfg.queue_congestion_ratio * std::max(baseline_queue, 1.0));
  }
};

/// Extract features for one flow from a diagnosis snapshot. `problem_start`
/// splits baseline from problematic records; `epoch_period` converts
/// per-epoch counts to pps.
[[nodiscard]] FlowFeatures extract_flow_features(
    std::span<const telemetry::RtRecord> records, const net::FlowId& flow,
    sim::Time problem_start, sim::Time epoch_period);

/// Per-path packet totals for a flow within a record window [from, to)
/// (the ECMP throughput evidence). Keyed by PathID.
struct PathShare {
  std::uint32_t path_id = 0;
  std::uint64_t packets = 0;
};
[[nodiscard]] std::vector<PathShare> path_shares(
    std::span<const telemetry::RtRecord> records, const net::FlowId& flow,
    sim::Time from, sim::Time to);

/// Result of the ECMP check: the diverging switch and the observed ratio.
struct EcmpVerdict {
  net::SwitchId chooser = net::kInvalidSwitch;
  double ratio = 1.0;
};

/// Look for an ECMP split that BECAME uneven: the problem-window branch
/// ratio must exceed the configured threshold, be markedly worse than the
/// baseline ratio at the same decision point (a split that was always
/// lopsided — hash skew — is not the fault), and the heavy branch's
/// absolute packet rate must have grown (traffic moved TO it; a stalled
/// sibling path shifting shares does not count). `paths_by_id` maps
/// observed PathIDs to switch sequences; window durations (seconds)
/// normalize the rates.
[[nodiscard]] std::optional<EcmpVerdict> detect_ecmp_imbalance(
    std::span<const PathShare> baseline, std::span<const PathShare> problem,
    const std::vector<std::pair<std::uint32_t, const net::SwitchPath*>>&
        paths_by_id,
    const SignatureConfig& cfg, double baseline_seconds,
    double problem_seconds);

}  // namespace mars::rca
