#include "rca/sbfl.hpp"

#include <algorithm>
#include <cmath>

namespace mars::rca {

const char* to_string(SbflFormula formula) {
  switch (formula) {
    case SbflFormula::kRelativeRisk: return "relative-risk";
    case SbflFormula::kTarantula: return "tarantula";
    case SbflFormula::kOchiai: return "ochiai";
    case SbflFormula::kJaccard: return "jaccard";
    case SbflFormula::kDstar2: return "dstar2";
  }
  return "?";
}

double sbfl_score(const SpectrumCounts& c, SbflFormula formula) {
  const auto pf = static_cast<double>(c.n_pf);
  const auto ps = static_cast<double>(c.n_ps);
  const auto ns = static_cast<double>(c.n_ns);
  // §4.4.3: add one to N_nf when it is zero (all abnormal data share the
  // pattern) to avoid dividing by zero.
  const double nf_guarded =
      c.n_nf == 0 ? 1.0 : static_cast<double>(c.n_nf);
  switch (formula) {
    case SbflFormula::kRelativeRisk: {
      if (pf + ps == 0.0) return 0.0;
      const double covered_fail_rate = pf / (pf + ps);
      const double denom_total = nf_guarded + ns;
      const double uncovered_fail_rate =
          denom_total == 0.0 ? 1.0 : nf_guarded / denom_total;
      return covered_fail_rate / uncovered_fail_rate;
    }
    case SbflFormula::kTarantula: {
      const double total_f = pf + static_cast<double>(c.n_nf);
      const double total_s = ps + ns;
      const double fail_frac = total_f == 0.0 ? 0.0 : pf / total_f;
      const double pass_frac = total_s == 0.0 ? 0.0 : ps / total_s;
      if (fail_frac + pass_frac == 0.0) return 0.0;
      return fail_frac / (fail_frac + pass_frac);
    }
    case SbflFormula::kOchiai: {
      const double total_f = pf + static_cast<double>(c.n_nf);
      const double denom = std::sqrt(total_f * (pf + ps));
      return denom == 0.0 ? 0.0 : pf / denom;
    }
    case SbflFormula::kJaccard: {
      const double denom = pf + static_cast<double>(c.n_nf) + ps;
      return denom == 0.0 ? 0.0 : pf / denom;
    }
    case SbflFormula::kDstar2: {
      const double denom = ps + static_cast<double>(c.n_nf);
      if (denom == 0.0) return pf * pf;  // conventionally "infinite"; cap
      return pf * pf / denom;
    }
  }
  return 0.0;
}

std::vector<ScoredPattern> score_patterns(
    std::span<const fsm::Pattern> patterns,
    const fsm::SequenceDatabase& abnormal, const fsm::SequenceDatabase& normal,
    bool contiguous, SbflFormula formula) {
  std::vector<ScoredPattern> out;
  out.reserve(patterns.size());
  for (const auto& pattern : patterns) {
    ScoredPattern sp;
    sp.pattern = pattern;
    for (const auto& e : abnormal.entries()) {
      if (fsm::contains_pattern(e.items, pattern.items, contiguous)) {
        sp.counts.n_pf += e.count;
      } else {
        sp.counts.n_nf += e.count;
      }
    }
    for (const auto& e : normal.entries()) {
      if (fsm::contains_pattern(e.items, pattern.items, contiguous)) {
        sp.counts.n_ps += e.count;
      } else {
        sp.counts.n_ns += e.count;
      }
    }
    sp.score = sbfl_score(sp.counts, formula);
    out.push_back(std::move(sp));
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredPattern& a, const ScoredPattern& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.counts.n_pf != b.counts.n_pf) {
                return a.counts.n_pf > b.counts.n_pf;
              }
              return a.pattern.items < b.pattern.items;
            });
  return out;
}

}  // namespace mars::rca
