#include "rca/accumulator.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

namespace mars::rca {
namespace {

/// Identity key for accumulation: everything that names the suspect, not
/// its score. Distinct causes at one location accumulate independently —
/// a port that is both dropping and delaying is two hypotheses. The one
/// exception is the latency family: the same degraded port classifies as
/// kProcessRateDecrease in congested windows and kDelay in quiet ones, so
/// keeping those separate splits one suspect's evidence into two entries
/// that each lose to persistent ambient noise. They name one hypothesis —
/// "this element serves slowly" — and accumulate as one.
const char* cause_token(CauseKind cause) {
  if (cause == CauseKind::kDelay || cause == CauseKind::kProcessRateDecrease) {
    return "latency";
  }
  return to_string(cause);
}

/// Element identity: the thing an operator would go look at, causes
/// aside. ranked() fuses evidence per element so a fault that manifests
/// through several symptom classes accumulates as one suspect.
std::string element_key(const Culprit& c) {
  std::string key = to_string(c.level);
  key += '|';
  for (const net::SwitchId sw : c.location) {
    key += std::to_string(sw);
    key += ',';
  }
  key += '|';
  key += std::to_string(c.port);
  key += '|';
  key += net::to_string(c.flow);
  return key;
}

std::string identity_key(const Culprit& c) {
  std::string key = element_key(c);
  key += '|';
  key += cause_token(c.cause);
  return key;
}

}  // namespace

void EvidenceAccumulator::observe(const CulpritList& culprits,
                                  sim::Time when) {
  windows_.push_back(Window{when, culprits});
  if (windows_.size() > config_.max_windows) {
    windows_.erase(windows_.begin(),
                   windows_.begin() +
                       static_cast<std::ptrdiff_t>(windows_.size() -
                                                   config_.max_windows));
  }
}

std::size_t EvidenceAccumulator::window_count(sim::Time since) const {
  std::size_t n = 0;
  for (const Window& w : windows_) {
    if (w.when >= since) ++n;
  }
  return n;
}

CulpritList EvidenceAccumulator::ranked(sim::Time since) const {
  struct Entry {
    Culprit rep;        ///< the element's loudest sighting (display + cause)
    double best = 0.0;  ///< strongest single-window evidence, undecayed
    sim::Time last_seen = 0;
    std::size_t appearances = 0;  ///< windows the element appeared in
    double weighted_appearances = 0.0;  ///< Σ window_peak / global peak
    /// Per symptom class (cause token): the strongest normalized sighting.
    std::vector<std::pair<const char*, double>> symptom_best;
    std::size_t order = 0;  ///< first-seen index, deterministic tiebreak
  };
  std::unordered_map<std::string, Entry> entries;

  sim::Time last = since;
  for (const Window& w : windows_) {
    if (w.when >= since) last = std::max(last, w.when);
  }

  const double half_life =
      static_cast<double>(std::max<sim::Time>(config_.half_life, 1));
  // Normalize by the GLOBAL peak across the whole range, not per window:
  // per-window normalization hands every quiet window's strongest ambient
  // suspect a full 1.0, so enough noise-only epochs outvote a true
  // culprit that only manifests occasionally. Against the global peak, a
  // quiet window's evidence counts for what it is — weak.
  double peak = 0.0;
  for (const Window& w : windows_) {
    if (w.when < since) continue;
    for (const Culprit& c : w.culprits) peak = std::max(peak, c.score);
  }
  if (peak <= 0.0) peak = 1.0;

  std::size_t next_order = 0;
  for (const Window& w : windows_) {
    if (w.when < since || w.culprits.empty()) continue;
    double window_peak = 0.0;
    for (const Culprit& c : w.culprits) {
      window_peak = std::max(window_peak, c.score);
    }
    for (const Culprit& c : w.culprits) {
      auto [it, inserted] = entries.try_emplace(element_key(c));
      Entry& entry = it->second;
      if (inserted) entry.order = next_order++;
      const double normalized = c.score / peak;
      if (inserted || normalized > entry.best) {
        entry.best = normalized;
        entry.rep = c;
      }
      if (inserted || entry.last_seen != w.when) {
        ++entry.appearances;
        entry.weighted_appearances += window_peak / peak;
      }
      entry.last_seen = w.when;
      const char* token = cause_token(c.cause);
      const auto st = std::find_if(
          entry.symptom_best.begin(), entry.symptom_best.end(),
          [token](const auto& kv) { return kv.first == token; });
      if (st == entry.symptom_best.end()) {
        entry.symptom_best.emplace_back(token, normalized);
      } else {
        st->second = std::max(st->second, normalized);
      }
    }
  }

  struct Scored {
    Entry entry;
    double score = 0.0;
  };
  std::vector<Scored> flat;
  flat.reserve(entries.size());
  for (auto& [key, entry] : entries) {
    // Magnitude first, recurrence second, decay last. Summing decayed
    // per-window support sounds right and fails in practice: a fault's
    // collateral damage (congestion spreading from a slow-drain port
    // lights up OTHER ports) is re-reported by every subsequent epoch at
    // near-constant strength, so a sum rewards the echo over the source,
    // and decay additionally punishes a root cause whose loudest window
    // came early — the onset IS the most diagnostic moment. So: a
    // suspect's score is its single best (undecayed) sighting, recurrence
    // multiplies it gently (10% per extra window — enough to break
    // near-ties for a culprit that keeps reappearing, never enough to
    // overturn a decisively louder one), and evidence only starts
    // decaying after a full half-life of silence. Suspects are elements
    // (level/location/port/flow), not (element, cause) pairs: a genuinely
    // sick element tends to manifest through more than one symptom class
    // over time — a slow-drain port first reports latency-family evidence,
    // then drops once its queue overflows — while collateral congestion on
    // healthy ports echoes a single symptom. The element's magnitude is
    // the SUM of its per-symptom bests (mirroring the cross-session
    // drop-fold refinement in MarsSystem's union-merge: the loss is the
    // congestion's shadow, one fault): single-symptom echoes gain
    // nothing, corroborated suspects can as much as double. The element
    // is displayed as its loudest sighting.
    // Recurrence counts appearances weighted by how loud each window was
    // overall (window peak over global peak): reappearing in strong,
    // diagnostic windows is corroboration; reappearing in quiet windows
    // is the ambient background being re-measured, and must not build a
    // score a genuinely loud suspect can't match.
    const double stale =
        static_cast<double>(last - entry.last_seen) / half_life;
    const double freshness = stale <= 1.0 ? 1.0 : std::exp2(-(stale - 1.0));
    const double recurrence =
        1.0 + 0.1 * std::max(0.0, entry.weighted_appearances - 1.0);
    double magnitude = 0.0;
    for (const auto& [token, best] : entry.symptom_best) magnitude += best;
    const double score = magnitude * recurrence * freshness;
    flat.push_back(Scored{std::move(entry), score});
  }
  // Exact ties are common: SBFL hands symmetric suspects (e.g. the two
  // halves of an ECMP pair) identical per-window scores. Break them by
  // weight of evidence — more windows first, then the fresher sighting —
  // before falling back to deterministic first-seen order.
  std::sort(flat.begin(), flat.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.entry.appearances != b.entry.appearances) {
      return a.entry.appearances > b.entry.appearances;
    }
    if (a.entry.last_seen != b.entry.last_seen) {
      return a.entry.last_seen > b.entry.last_seen;
    }
    return a.entry.order < b.entry.order;
  });

  CulpritList out;
  out.reserve(flat.size());
  for (Scored& s : flat) {
    s.entry.rep.score = s.score;
    out.push_back(std::move(s.entry.rep));
  }
  return out;
}

double EvidenceAccumulator::presence_of(const Culprit& culprit,
                                        sim::Time since) const {
  const std::string key = identity_key(culprit);
  std::size_t total = 0, seen = 0;
  for (const Window& w : windows_) {
    if (w.when < since) continue;
    ++total;
    for (const Culprit& c : w.culprits) {
      if (identity_key(c) == key) {
        ++seen;
        break;
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(seen) / static_cast<double>(total);
}

double EvidenceAccumulator::top_presence(sim::Time since) const {
  const CulpritList top = ranked(since);
  if (top.empty()) return 1.0;
  return presence_of(top.front(), since);
}

}  // namespace mars::rca
