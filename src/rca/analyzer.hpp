#pragma once
// The MARS root-cause analyzer (paper §4.4): orchestrates
//   (1) actual-traffic estimation (Alg. 2),
//   (2) abnormal/normal classification by reservoir thresholds,
//   (3) frequent-sequence mining of culprit locations (FSM, §4.4.2),
//   (4) relative-risk SBFL scoring (Eq. 1, §4.4.3),
//   (5) signature matching + culprit localization and merging (Alg. 3),
// and the separate second SBFL pass for drop events (§4.4.4 "Drop").

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/path_registry.hpp"
#include "fsm/miner.hpp"
#include "obs/provenance.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "parallel/thread_pool.hpp"
#include "rca/accumulator.hpp"
#include "rca/sbfl.hpp"
#include "rca/signatures.hpp"
#include "rca/traffic_estimator.hpp"
#include "rca/types.hpp"

namespace mars::rca {

struct RcaConfig {
  fsm::MiningParams mining{
      .min_support_abs = 1,
      .min_support_rel = 0.2,
      .max_length = 2,
      .contiguous = true,
  };
  fsm::MinerKind miner = fsm::MinerKind::kPrefixSpan;
  SbflFormula formula = SbflFormula::kRelativeRisk;
  SignatureConfig signatures;
  EstimatorConfig estimator;
  /// Count-mismatch tolerance when marking drop-affected flows:
  /// max(absolute, relative * source count), mirroring the data plane.
  std::uint32_t drop_count_threshold = 3;
  double drop_count_relative = 0.2;
  /// Only records this recent (relative to the trigger) enter the
  /// abnormal/normal sets — older Ring Table history is baseline context
  /// for the signatures, not evidence about the current fault.
  sim::Time analysis_window = 800 * sim::kMillisecond;
  /// Patterns examined for culprit assignment (the rest cannot enter the
  /// operator's short list anyway).
  std::size_t max_patterns = 16;
  std::size_t max_culprits = 20;
  /// Multi-epoch evidence accumulation for intermittent (gray) faults —
  /// consumed by MarsSystem, not by the single-session analyzer itself.
  AccumulatorConfig accumulator;
  /// Baseline/ablation knob (consumed by MarsSystem): grade only the
  /// newest post-fault diagnosis session — true single-window SBFL, what
  /// an operator sees with no cross-epoch merging at all. Ignored when
  /// the accumulator is enabled. Off by default: the default reporting
  /// path stays the cross-session union-merge.
  bool single_window = false;
};

/// One diagnosis session's output plus the aggregate cost of its FSM
/// mining passes (Fig. 11's axes: a session may mine once for latency,
/// once for drops — patterns/nodes/wall sum, peak_bytes is the max).
struct AnalysisResult {
  CulpritList culprits;
  fsm::MiningStats mining;
};

class RootCauseAnalyzer {
 public:
  /// `topology` (optional) enables port-level culprit attribution: a link
  /// pattern <a,b> with a port-scoped cause names a's egress port towards
  /// b. Without it, culprits stay at link/switch granularity.
  /// `config.mining.threads > 1` makes the analyzer own a thread pool,
  /// shared by every mining pass it runs.
  explicit RootCauseAnalyzer(const control::PathRegistry& registry,
                             RcaConfig config = {},
                             const net::Topology* topology = nullptr);

  /// Produce the ranked culprit list for one diagnosis session.
  [[nodiscard]] CulpritList analyze(const control::DiagnosisData& data) const {
    return analyze_with_stats(data).culprits;
  }

  /// analyze() plus the session's mining cost report.
  [[nodiscard]] AnalysisResult analyze_with_stats(
      const control::DiagnosisData& data) const;

  [[nodiscard]] const RcaConfig& config() const { return config_; }

  /// Attach a span tracer (nullptr detaches): wall-clock spans around each
  /// analysis phase — traffic estimation, FSM mining (named per miner),
  /// SBFL scoring, localization — the paper's "diagnosis cost" profile.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

  /// Attach a metrics registry (nullptr detaches): every mining pass bumps
  /// the mars.rca.mine.{calls,patterns,nodes} counters.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Attach a provenance graph (nullptr detaches): each analysis adds
  /// epoch nodes (abnormal path groups), pattern nodes (mined + scored),
  /// and suspect nodes (the final ranked list), chained session ->
  /// epoch -> pattern -> suspect. Suspect nodes carry the canonical
  /// provenance_key() so outcomes can be joined back to nodes.
  void set_provenance(obs::ProvenanceGraph* provenance) {
    provenance_ = provenance;
  }

 private:
  /// Per-analysis provenance scratch (defined in the .cpp); null when no
  /// graph is attached.
  struct ProvScratch;

  [[nodiscard]] CulpritList analyze_latency(const control::DiagnosisData& data,
                                            fsm::MiningStats& mining,
                                            ProvScratch* prov) const;
  [[nodiscard]] CulpritList analyze_drop(const control::DiagnosisData& data,
                                         fsm::MiningStats& mining,
                                         ProvScratch* prov) const;
  /// Append one suspect node per final ranked culprit, linked to the
  /// patterns that contributed its score.
  void finish_provenance(ProvScratch* prov, const CulpritList& culprits) const;
  /// Run the configured miner, fold its stats into `mining`, and feed the
  /// attached tracer/metrics.
  [[nodiscard]] std::vector<fsm::Pattern> mine_abnormal(
      const fsm::SequenceDatabase& abnormal, fsm::MiningStats& mining) const;
  /// Merge per §4.4.4: flow-level causes take the max score of duplicates,
  /// others sum; port-level causes of the same kind on multiple ports of
  /// one switch fold into a switch-level cause; then sort descending and
  /// truncate.
  [[nodiscard]] CulpritList merge_and_rank(std::vector<Culprit> raw) const;
  /// Refine a link-pattern culprit to port level when topology is known.
  void assign_location(Culprit& culprit, const fsm::Sequence& pattern) const;

  /// RAII wall span helper: inactive (and free) when no tracer is attached.
  [[nodiscard]] std::optional<obs::SpanTracer::WallSpan> phase_span(
      std::string name) const;

  const control::PathRegistry* registry_;
  RcaConfig config_;
  const net::Topology* topology_;
  obs::SpanTracer* tracer_ = nullptr;
  obs::ProvenanceGraph* provenance_ = nullptr;
  obs::Counter* mine_calls_ = nullptr;
  obs::Counter* mine_patterns_ = nullptr;
  obs::Counter* mine_nodes_ = nullptr;
  /// Shared by every mining pass; null when config_.mining.threads <= 1.
  std::unique_ptr<parallel::ThreadPool> mining_pool_;
};

}  // namespace mars::rca
