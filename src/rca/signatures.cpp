#include "rca/signatures.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/stats.hpp"

namespace mars::rca {

FlowFeatures extract_flow_features(
    std::span<const telemetry::RtRecord> records, const net::FlowId& flow,
    sim::Time problem_start, sim::Time epoch_period) {
  std::vector<double> base_pps, prob_pps, base_q, prob_q;
  const double period_s = sim::to_seconds(epoch_period);
  for (const auto& rec : records) {
    if (rec.flow != flow) continue;
    // Inflow rate from the SOURCE switch's count (carried in the telemetry
    // header): a queue that stalls and then flushes inflates sink-side
    // arrival counts, but the source count only moves when the flow itself
    // bursts — which is exactly the micro-burst signature.
    const double pps = static_cast<double>(rec.src_last_epoch_count) /
                       std::max(period_s, 1e-9);
    const auto q = static_cast<double>(rec.total_queue_depth);
    if (rec.sink_timestamp >= problem_start) {
      prob_pps.push_back(pps);
      prob_q.push_back(q);
    } else {
      base_pps.push_back(pps);
      base_q.push_back(q);
    }
  }
  FlowFeatures f;
  f.has_baseline = !base_pps.empty();
  f.has_problem = !prob_pps.empty();
  if (f.has_baseline) {
    f.baseline_pps = util::median(base_pps);
    f.baseline_queue = util::median(base_q);
  }
  if (f.has_problem) {
    // Upper quartile: a fault's records dominate the problem window but
    // can straggle in behind the congestion they measure, so the median
    // may still be pre-fault; a single ambient spike must not flip the
    // signature either, which rules out the maximum.
    f.problem_pps = util::quantile(prob_pps, 0.75);
    f.problem_queue = util::quantile(prob_q, 0.75);
  }
  return f;
}

std::vector<PathShare> path_shares(
    std::span<const telemetry::RtRecord> records, const net::FlowId& flow,
    sim::Time from, sim::Time to) {
  std::unordered_map<std::uint32_t, std::uint64_t> totals;
  for (const auto& rec : records) {
    if (rec.flow != flow || rec.sink_timestamp < from ||
        rec.sink_timestamp >= to) {
      continue;
    }
    // The record carries complete per-path counts from the Egress Table,
    // so paths the sampler skipped this epoch still contribute.
    for (std::uint8_t i = 0; i < rec.path_count_n; ++i) {
      totals[rec.path_counts[i].path_id] += rec.path_counts[i].packets;
    }
  }
  std::vector<PathShare> out;
  out.reserve(totals.size());
  for (const auto& [id, packets] : totals) out.push_back({id, packets});
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.path_id < b.path_id;
  });
  return out;
}

namespace {

/// Per-decision-point next-hop packet totals for one window.
using BranchMap =
    std::unordered_map<net::SwitchId, std::map<net::SwitchId, std::uint64_t>>;

BranchMap branch_totals(
    std::span<const PathShare> shares,
    const std::unordered_map<std::uint32_t, const net::SwitchPath*>& lookup) {
  BranchMap points;
  for (const auto& share : shares) {
    const auto it = lookup.find(share.path_id);
    if (it == lookup.end() || it->second == nullptr) continue;
    const net::SwitchPath& path = *it->second;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      points[path[i]][path[i + 1]] += share.packets;
    }
  }
  return points;
}

double branch_ratio(const std::map<net::SwitchId, std::uint64_t>& branches) {
  if (branches.size() < 2) return 1.0;
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& [next, packets] : branches) {
    lo = std::min(lo, packets);
    hi = std::max(hi, packets);
  }
  // +1 guards the all-on-one-branch case (lo may be 0).
  return static_cast<double>(hi) /
         static_cast<double>(std::max<std::uint64_t>(lo, 1));
}

}  // namespace

std::optional<EcmpVerdict> detect_ecmp_imbalance(
    std::span<const PathShare> baseline, std::span<const PathShare> problem,
    const std::vector<std::pair<std::uint32_t, const net::SwitchPath*>>&
        paths_by_id,
    const SignatureConfig& cfg, double baseline_seconds,
    double problem_seconds) {
  // The flow must have been seen on >= 2 distinct paths across the two
  // windows combined (one per window suffices: a wholesale branch switch).
  std::unordered_set<std::uint32_t> distinct_paths;
  for (const auto& s : baseline) distinct_paths.insert(s.path_id);
  for (const auto& s : problem) distinct_paths.insert(s.path_id);
  if (distinct_paths.size() < 2) return std::nullopt;

  std::unordered_map<std::uint32_t, const net::SwitchPath*> lookup;
  for (const auto& [id, path] : paths_by_id) lookup.emplace(id, path);

  const BranchMap base_points = branch_totals(baseline, lookup);
  const BranchMap prob_points = branch_totals(problem, lookup);
  baseline_seconds = std::max(baseline_seconds, 1e-3);
  problem_seconds = std::max(problem_seconds, 1e-3);

  std::optional<EcmpVerdict> best;
  for (const auto& [sw, branches] : prob_points) {
    double base_ratio = 1.0;
    // A branch that vanished in the problem window counts as zero; the
    // decision point must offer >= 2 branches across the two windows
    // combined (a flow that moved wholesale shows one branch per window).
    auto merged = branches;
    if (const auto it = base_points.find(sw); it != base_points.end()) {
      base_ratio = branch_ratio(it->second);
      for (const auto& [next, n] : it->second) merged.try_emplace(next, 0);
    }
    if (merged.size() < 2) continue;
    const double ratio = branch_ratio(merged);
    if (ratio < cfg.imbalance_ratio) continue;
    if (ratio < cfg.imbalance_growth * base_ratio) continue;  // always skewed

    // Rebalancing MOVES traffic: the heavy branch's absolute rate must
    // have grown. A share shift caused by the other branch stalling (a
    // process-rate or drop fault downstream) gains nothing here.
    net::SwitchId heavy = net::kInvalidSwitch;
    std::uint64_t heavy_packets = 0;
    for (const auto& [next, n] : merged) {
      if (n >= heavy_packets) {
        heavy_packets = n;
        heavy = next;
      }
    }
    const double heavy_problem_rate =
        static_cast<double>(heavy_packets) / problem_seconds;
    double heavy_base_rate = 0.0;
    if (const auto it = base_points.find(sw); it != base_points.end()) {
      if (const auto jt = it->second.find(heavy); jt != it->second.end()) {
        heavy_base_rate =
            static_cast<double>(jt->second) / baseline_seconds;
      }
    }
    if (heavy_problem_rate < 1.2 * std::max(heavy_base_rate, 1.0)) continue;

    if (!best || ratio > best->ratio) best = EcmpVerdict{sw, ratio};
  }
  return best;
}

}  // namespace mars::rca
