#include "rca/traffic_estimator.hpp"

#include <algorithm>

namespace mars::rca {

std::vector<EstimatedPacket> estimate_traffic(
    std::span<const telemetry::RtRecord> records,
    const EstimatorConfig& config) {
  std::vector<EstimatedPacket> out;
  for (const auto& rec : records) {
    // Every sample stands for at least itself.
    std::uint32_t count = std::max<std::uint32_t>(rec.path_epoch_packets, 1);
    if (config.max_per_record > 0) {
      count = std::min(count, config.max_per_record);
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      EstimatedPacket p;
      p.flow = rec.flow;
      p.path_id = rec.path_id;
      // Alg. 2 line 5: spread arrivals evenly across the sample gap.
      p.t = rec.sink_timestamp +
            static_cast<sim::Time>(
                (static_cast<double>(i) * static_cast<double>(config.sample_gap)) /
                static_cast<double>(count));
      p.latency = rec.latency;
      p.total_queue_depth = rec.total_queue_depth;
      p.epoch_id = rec.epoch_id;
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace mars::rca
