#include "rca/analyzer.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/stats.hpp"

namespace mars::rca {
namespace {

/// Observed paths grouped by PathID, with weights.
struct PathGroup {
  const net::SwitchPath* path = nullptr;
  std::uint64_t abnormal = 0;
  std::uint64_t normal = 0;
  /// Abnormal weight per flow through this path.
  std::unordered_map<net::FlowId, std::uint64_t> abnormal_by_flow;
};

[[nodiscard]] CulpritLevel level_of(const fsm::Sequence& items) {
  return items.size() >= 2 ? CulpritLevel::kLink : CulpritLevel::kSwitch;
}

[[nodiscard]] std::string sequence_label(const fsm::Sequence& items) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += '>';
    out += 's' + std::to_string(items[i]);
  }
  return out;
}

}  // namespace

/// Accumulates the evidence chain of one analysis: epoch node per abnormal
/// path group, pattern node per scored pattern, and (pattern -> culprit)
/// contributions keyed by the culprit's canonical provenance_key(), so the
/// final ranked list (assembled after merging, folding, and truncation)
/// can be linked back to the patterns that produced each entry.
struct RootCauseAnalyzer::ProvScratch {
  obs::ProvenanceGraph* graph = nullptr;
  std::string session_id;
  /// provenance_key(culprit) -> pattern node ids that contributed.
  std::map<std::string, std::vector<std::string>> contributions;
  /// Fallback for port -> switch folding: "<cause>|<front switch>".
  std::map<std::string, std::vector<std::string>> loose_contributions;

  void contribute(const Culprit& culprit, const std::string& pattern_id) {
    if (pattern_id.empty()) return;
    contributions[provenance_key(culprit)].push_back(pattern_id);
    if (!culprit.location.empty()) {
      loose_contributions[std::string(to_string(culprit.cause)) + "|" +
                          std::to_string(culprit.location.front())]
          .push_back(pattern_id);
    }
  }
};

RootCauseAnalyzer::RootCauseAnalyzer(const control::PathRegistry& registry,
                                     RcaConfig config,
                                     const net::Topology* topology)
    : registry_(&registry), config_(config), topology_(topology) {
  if (config_.mining.threads > 1) {
    mining_pool_ = std::make_unique<parallel::ThreadPool>(
        config_.mining.threads);
  }
}

void RootCauseAnalyzer::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    mine_calls_ = mine_patterns_ = mine_nodes_ = nullptr;
    return;
  }
  mine_calls_ = &metrics->counter("mars.rca.mine.calls");
  mine_patterns_ = &metrics->counter("mars.rca.mine.patterns");
  mine_nodes_ = &metrics->counter("mars.rca.mine.nodes");
}

std::vector<fsm::Pattern> RootCauseAnalyzer::mine_abnormal(
    const fsm::SequenceDatabase& abnormal, fsm::MiningStats& mining) const {
  const auto miner = fsm::make_miner(config_.miner);
  auto mine_span = phase_span(
      "rca.mine:" + std::string(fsm::miner_name(config_.miner)));
  auto result =
      miner->mine_with_stats(abnormal, config_.mining, mining_pool_.get());
  if (mine_span) {
    mine_span->arg({"patterns", std::uint64_t{result.stats.patterns}});
    mine_span->arg({"nodes", std::uint64_t{result.stats.nodes_expanded}});
    mine_span->arg({"peak_bytes", std::uint64_t{result.stats.peak_bytes}});
    mine_span->arg({"threads", std::uint64_t{result.stats.threads_used}});
    mine_span.reset();
  }
  if (mine_calls_ != nullptr) {
    mine_calls_->inc();
    mine_patterns_->inc(result.stats.patterns);
    mine_nodes_->inc(result.stats.nodes_expanded);
  }
  // A session can mine more than once (latency pass + drop pass): counts
  // and wall time add up, the memory axis keeps the widest pass.
  mining.patterns += result.stats.patterns;
  mining.nodes_expanded += result.stats.nodes_expanded;
  mining.peak_bytes = std::max(mining.peak_bytes, result.stats.peak_bytes);
  mining.wall_seconds += result.stats.wall_seconds;
  mining.threads_used =
      std::max(mining.threads_used, result.stats.threads_used);
  return std::move(result.patterns);
}

std::optional<obs::SpanTracer::WallSpan> RootCauseAnalyzer::phase_span(
    std::string name) const {
  std::optional<obs::SpanTracer::WallSpan> span;
  if (tracer_ != nullptr) {
    span.emplace(tracer_->wall_span(std::move(name), "rca"));
  }
  return span;
}

void RootCauseAnalyzer::assign_location(Culprit& culprit,
                                        const fsm::Sequence& pattern) const {
  // A link pattern <a,b> with a port-scoped cause names a's egress port
  // towards b (paper: process-rate/delay/drop are port/switch-level).
  if (topology_ != nullptr && pattern.size() == 2) {
    if (const auto port = topology_->port_towards(pattern[0], pattern[1])) {
      culprit.level = CulpritLevel::kPort;
      culprit.location = {pattern[0]};
      culprit.port = *port;
      return;
    }
  }
  culprit.level = level_of(pattern);
  culprit.location = pattern;
}

AnalysisResult RootCauseAnalyzer::analyze_with_stats(
    const control::DiagnosisData& data) const {
  AnalysisResult result;
  auto span = phase_span("rca.analyze");
  if (span) {
    span->arg({"trigger", dataplane::kind_name(data.trigger.kind)});
    span->arg({"records", std::uint64_t{data.records.size()}});
  }
  std::optional<ProvScratch> prov;
  if (provenance_ != nullptr) {
    prov.emplace();
    prov->graph = provenance_;
    // The controller normally created the session node; a standalone
    // analyzer (tests, tools) gets a minimal one so the chain still roots.
    prov->session_id =
        !data.provenance_id.empty()
            ? data.provenance_id
            : provenance_->add_node(
                  obs::ProvenanceGraph::NodeKind::kSession,
                  {{"trigger", dataplane::kind_name(data.trigger.kind)}});
  }
  ProvScratch* prov_ptr = prov ? &*prov : nullptr;
  // A count deficit also appears when packets stall behind a congested or
  // delaying port: they arrive, just late, and also raise HighLatency
  // notifications. The notification mix collected with the session decides
  // which pass leads: any HighLatency evidence makes the latency analysis
  // (whose signatures name the cause) primary, with drop culprits appended
  // when loss was also reported; Drop-only evidence is genuine loss and
  // runs the drop-specific SBFL pass alone (§4.4.4).
  const bool saw_latency =
      data.saw(dataplane::Notification::Kind::kHighLatency) ||
      data.trigger.kind == dataplane::Notification::Kind::kHighLatency;
  const bool saw_drop = data.saw(dataplane::Notification::Kind::kDrop) ||
                        data.trigger.kind ==
                            dataplane::Notification::Kind::kDrop;
  CulpritList& culprits = result.culprits;
  if (!saw_latency && saw_drop) {
    culprits = analyze_drop(data, result.mining, prov_ptr);
    finish_provenance(prov_ptr, culprits);
    return result;
  }

  // Both kinds (or latency only): is the loss evidence genuine, or the
  // shadow of congestion (packets stuck or delayed, not gone)? Genuine
  // loss leaves its affected flows with ordinary queues and ordinary
  // latency — the missing packets simply never arrive.
  bool real_drop = false;
  if (saw_drop) {
    std::vector<double> queues, latency_ratios;
    for (const auto& rec : data.records) {
      if (rec.sink_timestamp <
          data.trigger.when - config_.signatures.problem_window) {
        continue;
      }
      const auto threshold = std::max<std::uint32_t>(
          config_.drop_count_threshold,
          static_cast<std::uint32_t>(
              config_.drop_count_relative *
              static_cast<double>(rec.src_last_epoch_count)));
      const bool affected =
          rec.epoch_gap > 0 ||
          (rec.src_last_epoch_count > rec.sink_last_epoch_count &&
           rec.src_last_epoch_count - rec.sink_last_epoch_count > threshold);
      if (!affected) continue;
      queues.push_back(static_cast<double>(rec.total_queue_depth));
      const auto it = data.thresholds.find(rec.flow);
      const sim::Time thr =
          it != data.thresholds.end() ? it->second : data.default_threshold;
      latency_ratios.push_back(static_cast<double>(rec.latency) /
                               std::max(static_cast<double>(thr), 1.0));
    }
    const bool congested =
        !queues.empty() &&
        util::median(queues) >= config_.signatures.queue_abs_min;
    const bool latent =
        !latency_ratios.empty() && util::median(latency_ratios) > 1.0;
    real_drop = !congested && !latent;
  }

  if (real_drop) {
    // The loss is the story; ambient latency culprits rank behind it.
    culprits = analyze_drop(data, result.mining, prov_ptr);
    auto latency = analyze_latency(data, result.mining, prov_ptr);
    culprits.insert(culprits.end(),
                    std::make_move_iterator(latency.begin()),
                    std::make_move_iterator(latency.end()));
  } else {
    // Any loss evidence is congestion's shadow; the latency signatures
    // name the true cause.
    culprits = analyze_latency(data, result.mining, prov_ptr);
  }
  if (culprits.size() > config_.max_culprits) {
    culprits.resize(config_.max_culprits);
  }
  finish_provenance(prov_ptr, culprits);
  return result;
}

void RootCauseAnalyzer::finish_provenance(ProvScratch* prov,
                                          const CulpritList& culprits) const {
  if (prov == nullptr) return;
  obs::ProvenanceGraph& graph = *prov->graph;
  for (std::size_t i = 0; i < culprits.size(); ++i) {
    const Culprit& c = culprits[i];
    const std::string key = provenance_key(c);
    const std::string suspect_id = graph.add_node(
        obs::ProvenanceGraph::NodeKind::kSuspect,
        {{"rank", std::uint64_t{i + 1}},
         {"score", c.score},
         {"cause", to_string(c.cause)},
         {"level", to_string(c.level)},
         {"describe", c.describe()},
         {"key", key}});
    // Exact-key contributions first; port-level culprits folded into a
    // switch-level one fall back to (cause, front switch).
    const std::vector<std::string>* pattern_ids = nullptr;
    const auto exact = prov->contributions.find(key);
    if (exact != prov->contributions.end()) {
      pattern_ids = &exact->second;
    } else if (!c.location.empty()) {
      const auto loose = prov->loose_contributions.find(
          std::string(to_string(c.cause)) + "|" +
          std::to_string(c.location.front()));
      if (loose != prov->loose_contributions.end()) {
        pattern_ids = &loose->second;
      }
    }
    if (pattern_ids != nullptr) {
      std::vector<std::string> unique = *pattern_ids;
      std::sort(unique.begin(), unique.end());
      unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
      for (const std::string& pattern_id : unique) {
        graph.add_edge(pattern_id, suspect_id, "scored");
      }
    } else {
      // No mined contribution survived (should not happen; keeps the
      // graph connected if it does).
      graph.add_edge(prov->session_id, suspect_id, "ranked");
    }
  }
}

CulpritList RootCauseAnalyzer::analyze_latency(
    const control::DiagnosisData& data, fsm::MiningStats& mining,
    ProvScratch* prov) const {
  // Only recent history is evidence about THIS fault; older Ring Table
  // records feed the baseline features but not the abnormal/normal sets.
  std::vector<telemetry::RtRecord> recent;
  for (const auto& rec : data.records) {
    if (rec.sink_timestamp >= data.trigger.when - config_.analysis_window) {
      recent.push_back(rec);
    }
  }

  // (1) Restore an approximate packet-level view from the samples.
  EstimatorConfig est_cfg = config_.estimator;
  auto estimate_span = phase_span("rca.estimate");
  const auto estimated = estimate_traffic(recent, est_cfg);
  if (estimate_span) {
    estimate_span->arg({"packets", std::uint64_t{estimated.size()}});
    estimate_span.reset();
  }
  if (estimated.empty()) return {};

  // (2) Classify each estimated packet by its flow's dynamic threshold and
  // aggregate by PathID.
  std::unordered_map<std::uint32_t, PathGroup> groups;
  for (const auto& p : estimated) {
    const auto it = data.thresholds.find(p.flow);
    const sim::Time thr =
        it != data.thresholds.end() ? it->second : data.default_threshold;
    PathGroup& g = groups[p.path_id];
    if (g.path == nullptr) g.path = registry_->lookup(p.path_id);
    if (g.path == nullptr) continue;  // unknown id: cannot decompress
    if (p.latency > thr) {
      ++g.abnormal;
      ++g.abnormal_by_flow[p.flow];
    } else {
      ++g.normal;
    }
  }

  fsm::SequenceDatabase abnormal, normal;
  for (const auto& [id, g] : groups) {
    if (g.path == nullptr) continue;
    if (g.abnormal > 0) abnormal.add(*g.path, g.abnormal);
    if (g.normal > 0) normal.add(*g.path, g.normal);
  }
  if (abnormal.empty()) return {};

  // One epoch node per abnormal path group, in sorted path-id order so
  // node ids are deterministic regardless of hash-map iteration.
  std::unordered_map<std::uint32_t, std::string> epoch_ids;
  if (prov != nullptr) {
    std::vector<std::uint32_t> abnormal_ids;
    for (const auto& [id, g] : groups) {
      if (g.path != nullptr && g.abnormal > 0) abnormal_ids.push_back(id);
    }
    std::sort(abnormal_ids.begin(), abnormal_ids.end());
    for (const std::uint32_t id : abnormal_ids) {
      const PathGroup& g = groups.at(id);
      const std::string epoch_id = prov->graph->add_node(
          obs::ProvenanceGraph::NodeKind::kEpoch,
          {{"pass", "latency"},
           {"path_id", std::uint64_t{id}},
           {"path", sequence_label(*g.path)},
           {"abnormal", g.abnormal},
           {"normal", g.normal},
           {"flows", std::uint64_t{g.abnormal_by_flow.size()}}});
      prov->graph->add_edge(prov->session_id, epoch_id, "classified");
      epoch_ids.emplace(id, epoch_id);
    }
  }

  // (3) Mine culprit locations from the abnormal set.
  const auto patterns = mine_abnormal(abnormal, mining);
  if (patterns.empty()) return {};

  // (4) Relative-risk SBFL scores.
  auto sbfl_span = phase_span("rca.sbfl");
  auto scored = score_patterns(patterns, abnormal, normal,
                               config_.mining.contiguous, config_.formula);
  sbfl_span.reset();
  if (scored.size() > config_.max_patterns) {
    scored.resize(config_.max_patterns);
  }

  const sim::Time problem_start =
      data.trigger.when - config_.signatures.problem_window;

  // (5) Alg. 3: assign a cause per (pattern, flow) and score it.
  auto localize_span = phase_span("rca.localize");
  std::vector<Culprit> raw;
  for (const auto& sp : scored) {
    if (sp.score <= 0.0) continue;
    // Flows whose abnormal packets traverse this pattern, plus totals.
    std::unordered_map<net::FlowId, std::uint64_t> flow_pkts;
    std::uint64_t pattern_pkts = 0;
    std::vector<std::uint32_t> covering_groups;
    for (const auto& [id, g] : groups) {
      if (g.path == nullptr || g.abnormal == 0) continue;
      if (!fsm::contains_pattern(*g.path, sp.pattern.items,
                                 config_.mining.contiguous)) {
        continue;
      }
      covering_groups.push_back(id);
      for (const auto& [flow, n] : g.abnormal_by_flow) {
        flow_pkts[flow] += n;
        pattern_pkts += n;
      }
    }
    if (pattern_pkts == 0) continue;

    std::string pattern_id;
    if (prov != nullptr) {
      pattern_id = prov->graph->add_node(
          obs::ProvenanceGraph::NodeKind::kPattern,
          {{"pass", "latency"},
           {"items", sequence_label(sp.pattern.items)},
           {"support", sp.pattern.support},
           {"score", sp.score}});
      std::sort(covering_groups.begin(), covering_groups.end());
      for (const std::uint32_t id : covering_groups) {
        const auto it = epoch_ids.find(id);
        if (it != epoch_ids.end()) {
          prov->graph->add_edge(it->second, pattern_id, "mined");
        }
      }
    }

    // First pass: which flows through this pattern are bursting? A burst
    // explains the congestion every other flow on the pattern suffers, so
    // their evidence is attributed to the burst rather than spawning
    // competing process-rate culprits (explaining-away).
    std::vector<net::FlowId> spiked;
    for (const auto& [flow, pkts] : flow_pkts) {
      const auto features = extract_flow_features(
          data.records, flow, problem_start, config_.estimator.sample_gap);
      if (features.pps_spiked(config_.signatures)) spiked.push_back(flow);
    }

    for (const auto& [flow, pkts] : flow_pkts) {
      const double share = static_cast<double>(pkts) /
                           static_cast<double>(pattern_pkts);
      const double score = sp.score * share;
      const auto features = extract_flow_features(
          data.records, flow, problem_start,
          config_.estimator.sample_gap);

      if (!spiked.empty() &&
          std::find(spiked.begin(), spiked.end(), flow) == spiked.end()) {
        // Victim of the burst: credit its evidence to the burst culprits.
        for (const net::FlowId& burst_flow : spiked) {
          Culprit victim_credit;
          victim_credit.level = CulpritLevel::kFlow;
          victim_credit.flow = burst_flow;
          victim_credit.cause = CauseKind::kMicroBurst;
          victim_credit.location = sp.pattern.items;
          victim_credit.score =
              score / static_cast<double>(spiked.size());
          if (prov != nullptr) prov->contribute(victim_credit, pattern_id);
          raw.push_back(std::move(victim_credit));
        }
        continue;
      }

      Culprit culprit;
      culprit.score = score;

      // ECMP evidence: did this flow's per-path throughput split become
      // uneven in the problem window? Only a weight change moves packets
      // between paths, so this check is decisive when it fires.
      const auto baseline = path_shares(data.records, flow, 0, problem_start);
      const auto problem =
          path_shares(data.records, flow, problem_start,
                      std::numeric_limits<sim::Time>::max());
      std::vector<std::pair<std::uint32_t, const net::SwitchPath*>> paths;
      for (const auto* shares : {&baseline, &problem}) {
        for (const auto& s : *shares) {
          paths.emplace_back(s.path_id, registry_->lookup(s.path_id));
        }
      }
      sim::Time earliest = problem_start;
      for (const auto& r : data.records) {
        if (r.flow == flow) earliest = std::min(earliest, r.sink_timestamp);
      }
      const double baseline_s =
          sim::to_seconds(problem_start - earliest);
      const double problem_s =
          sim::to_seconds(data.collected_at - problem_start);
      const auto verdict =
          detect_ecmp_imbalance(baseline, problem, paths, config_.signatures,
                                baseline_s, problem_s);

      if (features.pps_spiked(config_.signatures)) {
        culprit.level = CulpritLevel::kFlow;
        culprit.flow = flow;
        culprit.cause = CauseKind::kMicroBurst;
        culprit.location = sp.pattern.items;
      } else if (verdict) {
        culprit.level = CulpritLevel::kSwitch;
        culprit.location = {verdict->chooser};
        culprit.cause = CauseKind::kEcmpImbalance;
      } else if (features.queue_congested(config_.signatures)) {
        assign_location(culprit, sp.pattern.items);
        culprit.cause = CauseKind::kProcessRateDecrease;
      } else {
        assign_location(culprit, sp.pattern.items);
        culprit.cause = CauseKind::kDelay;
      }
      if (prov != nullptr) prov->contribute(culprit, pattern_id);
      raw.push_back(std::move(culprit));
    }
  }
  if (localize_span) {
    localize_span->arg({"culprits", std::uint64_t{raw.size()}});
    localize_span.reset();
  }
  return merge_and_rank(std::move(raw));
}

CulpritList RootCauseAnalyzer::analyze_drop(
    const control::DiagnosisData& data, fsm::MiningStats& mining,
    ProvScratch* prov) const {
  // Flows with missing telemetry epochs or count mismatches are the
  // affected set (§4.4.4 "Drop").
  std::vector<telemetry::RtRecord> recent;
  for (const auto& rec : data.records) {
    if (rec.sink_timestamp >= data.trigger.when - config_.analysis_window) {
      recent.push_back(rec);
    }
  }
  std::unordered_set<net::FlowId> affected;
  for (const auto& rec : recent) {
    const bool gap = rec.epoch_gap > 0;
    const auto threshold = std::max<std::uint32_t>(
        config_.drop_count_threshold,
        static_cast<std::uint32_t>(
            config_.drop_count_relative *
            static_cast<double>(rec.src_last_epoch_count)));
    const bool mismatch =
        rec.src_last_epoch_count > rec.sink_last_epoch_count &&
        rec.src_last_epoch_count - rec.sink_last_epoch_count > threshold;
    if (gap || mismatch) affected.insert(rec.flow);
  }
  if (affected.empty()) return {};

  // Second SBFL instance. The abnormal set is weighted by the DEFICIT of
  // each affected flow's paths — where packets went missing — rather than
  // by surviving arrivals (which are lowest exactly where the loss is).
  // Per-path baseline and problem rates come from the records' complete
  // per-path counts.
  const sim::Time problem_start =
      data.trigger.when - config_.signatures.problem_window;
  struct PathRate {
    double base_packets = 0, base_records = 0;
    double prob_packets = 0, prob_records = 0;
  };
  std::unordered_map<net::FlowId, std::unordered_map<std::uint32_t, PathRate>>
      per_flow;
  std::unordered_map<std::uint32_t, std::uint64_t> normal_weights;
  std::unordered_map<std::uint32_t, std::uint64_t> abnormal_path_weights;
  for (const auto& rec : recent) {
    if (affected.count(rec.flow)) {
      auto& rates = per_flow[rec.flow];
      const bool problem = rec.sink_timestamp >= problem_start;
      for (std::uint8_t i = 0; i < rec.path_count_n; ++i) {
        PathRate& r = rates[rec.path_counts[i].path_id];
        if (problem) {
          r.prob_packets += rec.path_counts[i].packets;
          r.prob_records += 1;
        } else {
          r.base_packets += rec.path_counts[i].packets;
          r.base_records += 1;
        }
      }
    } else {
      normal_weights[rec.path_id] +=
          std::max<std::uint32_t>(rec.path_epoch_packets, 1);
    }
  }

  fsm::SequenceDatabase abnormal, normal;
  for (const auto& [flow, rates] : per_flow) {
    // Deficit per path: baseline per-epoch rate minus problem rate.
    double total_deficit = 0.0;
    std::vector<std::pair<std::uint32_t, double>> deficits;
    for (const auto& [path_id, r] : rates) {
      const double base =
          r.base_records > 0 ? r.base_packets / r.base_records : 0.0;
      const double prob =
          r.prob_records > 0 ? r.prob_packets / r.prob_records : 0.0;
      const double deficit = std::max(base - prob, 0.0);
      if (deficit > 0) {
        deficits.emplace_back(path_id, deficit);
        total_deficit += deficit;
      }
    }
    if (total_deficit <= 0.0) {
      // No per-path deficit visible; spread evenly over observed paths.
      for (const auto& [path_id, r] : rates) {
        deficits.emplace_back(path_id, 1.0);
        total_deficit += 1.0;
      }
    }
    for (const auto& [path_id, deficit] : deficits) {
      const net::SwitchPath* path = registry_->lookup(path_id);
      if (path == nullptr) continue;
      const auto weight = static_cast<std::uint64_t>(
          100.0 * deficit / total_deficit + 0.5);
      if (weight > 0) {
        abnormal.add(*path, weight);
        abnormal_path_weights[path_id] += weight;
      }
    }
  }
  for (const auto& [id, w] : normal_weights) {
    const net::SwitchPath* path = registry_->lookup(id);
    if (path != nullptr && w > 0) normal.add(*path, w);
  }
  if (abnormal.empty()) return {};

  // One epoch node per deficit-weighted abnormal path (sorted for
  // deterministic ids), mirroring the latency pass.
  std::unordered_map<std::uint32_t, std::string> epoch_ids;
  if (prov != nullptr) {
    std::vector<std::uint32_t> ids;
    for (const auto& [id, w] : abnormal_path_weights) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint32_t id : ids) {
      const net::SwitchPath* path = registry_->lookup(id);
      if (path == nullptr) continue;
      const std::string epoch_id = prov->graph->add_node(
          obs::ProvenanceGraph::NodeKind::kEpoch,
          {{"pass", "drop"},
           {"path_id", std::uint64_t{id}},
           {"path", sequence_label(*path)},
           {"deficit_weight", abnormal_path_weights.at(id)}});
      prov->graph->add_edge(prov->session_id, epoch_id, "classified");
      epoch_ids.emplace(id, epoch_id);
    }
  }

  const auto patterns = mine_abnormal(abnormal, mining);
  auto sbfl_span = phase_span("rca.sbfl");
  auto scored = score_patterns(patterns, abnormal, normal,
                               config_.mining.contiguous, config_.formula);
  sbfl_span.reset();
  if (scored.size() > config_.max_patterns) {
    scored.resize(config_.max_patterns);
  }

  std::vector<Culprit> raw;
  for (const auto& sp : scored) {
    if (sp.score <= 0.0) continue;
    Culprit culprit;
    assign_location(culprit, sp.pattern.items);
    culprit.cause = CauseKind::kDrop;
    culprit.score = sp.score;
    if (prov != nullptr) {
      const std::string pattern_id = prov->graph->add_node(
          obs::ProvenanceGraph::NodeKind::kPattern,
          {{"pass", "drop"},
           {"items", sequence_label(sp.pattern.items)},
           {"support", sp.pattern.support},
           {"score", sp.score}});
      std::vector<std::uint32_t> covering;
      for (const auto& [id, epoch_id] : epoch_ids) {
        const net::SwitchPath* path = registry_->lookup(id);
        if (path != nullptr &&
            fsm::contains_pattern(*path, sp.pattern.items,
                                  config_.mining.contiguous)) {
          covering.push_back(id);
        }
      }
      std::sort(covering.begin(), covering.end());
      for (const std::uint32_t id : covering) {
        prov->graph->add_edge(epoch_ids.at(id), pattern_id, "mined");
      }
      prov->contribute(culprit, pattern_id);
    }
    raw.push_back(std::move(culprit));
  }
  return merge_and_rank(std::move(raw));
}

CulpritList RootCauseAnalyzer::merge_and_rank(std::vector<Culprit> raw) const {
  struct Key {
    CauseKind cause;
    CulpritLevel level;
    std::vector<net::SwitchId> location;
    net::PortId port;
    net::FlowId flow;
    bool operator<(const Key& other) const {
      if (cause != other.cause) return cause < other.cause;
      if (level != other.level) return level < other.level;
      if (location != other.location) return location < other.location;
      if (port != other.port) return port < other.port;
      return flow < other.flow;
    }
  };
  std::map<Key, Culprit> merged;
  for (auto& c : raw) {
    Key key{c.cause, c.level, c.location,
            c.level == CulpritLevel::kPort ? c.port : net::kHostPort,
            c.level == CulpritLevel::kFlow
                ? c.flow
                : net::FlowId{net::kInvalidSwitch, net::kInvalidSwitch}};
    auto [it, inserted] = merged.try_emplace(std::move(key), c);
    if (inserted) continue;
    if (c.level == CulpritLevel::kFlow) {
      // Flow-level duplicates keep the max (actual anomaly localization
      // dominates, §4.4.4).
      it->second.score = std::max(it->second.score, c.score);
    } else {
      it->second.score += c.score;
    }
  }

  // §4.4.4: port-level causes of the same type assigned to MULTIPLE ports
  // of one switch fold into a single switch-level cause.
  std::map<std::pair<CauseKind, net::SwitchId>, std::vector<const Key*>>
      port_groups;
  for (const auto& [key, culprit] : merged) {
    if (culprit.level == CulpritLevel::kPort) {
      port_groups[{culprit.cause, culprit.location.front()}].push_back(&key);
    }
  }
  for (const auto& [group, keys] : port_groups) {
    if (keys.size() < 2) continue;
    Culprit folded;
    folded.level = CulpritLevel::kSwitch;
    folded.cause = group.first;
    folded.location = {group.second};
    for (const Key* key : keys) {
      folded.score += merged.at(*key).score;
      merged.erase(*key);
    }
    Key folded_key{folded.cause, folded.level, folded.location,
                   net::kHostPort,
                   net::FlowId{net::kInvalidSwitch, net::kInvalidSwitch}};
    auto [it, inserted] = merged.try_emplace(std::move(folded_key), folded);
    if (!inserted) it->second.score += folded.score;
  }

  CulpritList out;
  out.reserve(merged.size());
  for (auto& [key, culprit] : merged) out.push_back(std::move(culprit));
  std::sort(out.begin(), out.end(), [](const Culprit& a, const Culprit& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.level != b.level) return a.level < b.level;
    return a.location < b.location;
  });
  if (out.size() > config_.max_culprits) out.resize(config_.max_culprits);
  return out;
}

}  // namespace mars::rca
