#pragma once
// Actual traffic estimation (paper §4.4.1, Algorithm 2).
//
// The Ring Table holds one sampled telemetry record per flow per epoch,
// carrying the epoch's path-level packet count. The estimator restores an
// approximate per-packet view with gap-based sampling: each sample is
// replicated `count` times with arrival times spread evenly across the
// sample gap T.

#include <span>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"
#include "telemetry/tables.hpp"

namespace mars::rca {

/// One estimated packet (a copy of its sample with an interpolated time).
struct EstimatedPacket {
  net::FlowId flow;
  std::uint32_t path_id = 0;
  sim::Time t = 0;        ///< estimated arrival time
  sim::Time latency = 0;  ///< copied from the sample
  std::uint32_t total_queue_depth = 0;
  telemetry::EpochId epoch_id = 0;
};

struct EstimatorConfig {
  /// Time gap between telemetry samples (the epoch period T in Alg. 2).
  sim::Time sample_gap = telemetry::kDefaultEpochPeriod;
  /// Safety cap on packets estimated from one record; 0 disables. Counts
  /// beyond the cap are represented by weighting the capped packets.
  std::uint32_t max_per_record = 4096;
};

/// Algorithm 2 over a diagnosis snapshot.
[[nodiscard]] std::vector<EstimatedPacket> estimate_traffic(
    std::span<const telemetry::RtRecord> records,
    const EstimatorConfig& config = {});

}  // namespace mars::rca
