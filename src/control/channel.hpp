#pragma once
// ControlChannel: the (imperfect) wire between the data plane and the
// controller.
//
// The seed repo assumed a perfect control channel: every notification
// packet reached the controller and every Ring-Table drain returned a
// complete, uncorrupted snapshot instantly. Real deployments are not so
// kind — notification packets are dropped by the very congestion they
// report, P4Runtime reads time out under switch-CPU pressure, and
// register reads race the data plane writing them. This class sits
// between dataplane::MarsPipeline and control::Controller and models all
// of it, per a seeded ChannelConfig:
//
//   notification path:  drop with probability `notification_loss`; delay
//                       with probability `notification_delay_prob` by a
//                       uniform draw in [delay_min, delay_max] (delays
//                       reorder naturally through the event queue);
//   ring-read path:     a whole per-switch read fails (times out) with
//                       probability `read_failure`; surviving reads lose
//                       each record with probability `record_loss`
//                       (partial snapshot) and bit-corrupt each record
//                       with probability `record_corruption`.
//
// Determinism contract: a channel with a perfect() config draws NO random
// numbers, schedules NO events, and forwards everything synchronously —
// a perfectly-configured run is bit-identical to one without a channel at
// all (the golden-fingerprint tests pin this). Degraded channels are
// deterministic in their seed: same seed, same drops, same corrupted
// bits.
//
// Scheduled chaos: FaultSchedule telemetry events (notification-loss
// bursts, read outages) land here through schedule_degradation(), which
// raises one dial for a window and restores it afterwards — mid-run
// telemetry faults compose with any static degradation.

#include <cstdint>
#include <functional>
#include <vector>

#include "dataplane/mars_pipeline.hpp"
#include "obs/event_log.hpp"
#include "sim/simulator.hpp"
#include "telemetry/tables.hpp"
#include "util/rng.hpp"

namespace mars::control {

struct ChannelConfig {
  /// Probability a notification packet never reaches the controller.
  double notification_loss = 0.0;
  /// Probability a (surviving) notification is delayed instead of
  /// delivered synchronously.
  double notification_delay_prob = 0.0;
  sim::Time notification_delay_min = 1 * sim::kMillisecond;
  sim::Time notification_delay_max = 50 * sim::kMillisecond;
  /// Probability a per-switch Ring-Table read fails outright (timeout).
  double read_failure = 0.0;
  /// Per-record probability of being lost from a surviving read
  /// (truncated drain / partial snapshot).
  double record_loss = 0.0;
  /// Per-record probability of in-flight bit corruption. Some corrupted
  /// fields violate the record's internal consistency and are caught by
  /// the controller's quarantine checks; others are plausible garbage and
  /// slip through — exactly like real memory corruption under a weak
  /// checksum.
  double record_corruption = 0.0;
  /// Chaos RNG stream seed; trial runners mix the trial seed in so sweeps
  /// decorrelate.
  std::uint64_t seed = 0xC7A05C7A05ull;

  /// True when this config cannot perturb anything; the channel then
  /// never touches its RNG or the simulator.
  [[nodiscard]] bool perfect() const {
    return notification_loss <= 0.0 && notification_delay_prob <= 0.0 &&
           read_failure <= 0.0 && record_loss <= 0.0 &&
           record_corruption <= 0.0;
  }
};

/// Everything the channel did to the traffic crossing it (exported as
/// "mars.channel.*" gauges).
struct ChannelStats {
  std::uint64_t notifications_offered = 0;
  std::uint64_t notifications_dropped = 0;
  std::uint64_t notifications_delayed = 0;
  std::uint64_t reads_attempted = 0;
  std::uint64_t reads_failed = 0;
  std::uint64_t records_lost = 0;
  std::uint64_t records_corrupted = 0;
  /// Scheduled telemetry-fault windows applied (degrade + restore pairs).
  std::uint64_t scheduled_faults = 0;
};

/// Controller-side sanity gate for drained records. A genuine RtRecord is
/// internally consistent: latency == sink - source, timestamps ordered
/// and in the past, path fan-out within bounds. Corruption that breaks
/// any of these is quarantined; corruption that preserves them is
/// undetectable by construction (documented residual risk).
[[nodiscard]] bool plausible_record(const telemetry::RtRecord& rec,
                                    sim::Time now);

class ControlChannel {
 public:
  using DeliverFn = std::function<void(const dataplane::Notification&)>;

  /// Dials schedule_degradation can raise for a window (the FaultSchedule
  /// telemetry-fault kinds map onto these).
  enum class Dial : std::uint8_t {
    kNotificationLoss,
    kReadFailure,
    kRecordCorruption,
  };

  ControlChannel(sim::Simulator& simulator,
                 dataplane::MarsPipeline& pipeline, ChannelConfig config);

  /// Wire the controller side. Must be set before the first offer().
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Data-plane side entry point: maybe drop, maybe delay, else deliver
  /// synchronously. Perfect channels always deliver synchronously.
  void offer(const dataplane::Notification& n);

  /// One Ring-Table read attempt against `sw`.
  struct ReadResult {
    bool ok = false;  ///< false: the read timed out, records is empty
    std::vector<telemetry::RtRecord> records;
  };
  [[nodiscard]] ReadResult read_ring(net::SwitchId sw);

  /// Raise `dial` to max(current, severity) over [at, at + duration),
  /// restoring the pre-window value afterwards. Virtual-time scheduled,
  /// deterministic.
  void schedule_degradation(Dial dial, double severity, sim::Time at,
                            sim::Time duration);

  /// Attach a structured event log (nullptr detaches): one event at each
  /// degradation-window edge (raise / restore). Logging happens inside
  /// the already-scheduled window events, so attachment never changes the
  /// event schedule.
  void set_event_log(obs::EventLog* log) { log_ = log; }

  [[nodiscard]] static const char* dial_name(Dial dial);

  [[nodiscard]] const ChannelConfig& config() const { return config_; }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }

 private:
  [[nodiscard]] double& dial_value(Dial dial);
  void corrupt_record(telemetry::RtRecord& rec);

  sim::Simulator* simulator_;
  dataplane::MarsPipeline* pipeline_;
  ChannelConfig config_;
  DeliverFn deliver_;
  util::Rng rng_;
  ChannelStats stats_;
  obs::EventLog* log_ = nullptr;
};

}  // namespace mars::control
