#include "control/path_registry.hpp"

#include <cassert>

namespace mars::control {

PathRegistry::PathRegistry(const net::Topology& topology,
                           const net::RoutingTable& routing,
                           telemetry::PathIdConfig config)
    : topology_(&topology), config_(config) {
  for (auto& switches : routing.enumerate_edge_paths()) {
    RegisteredPath path;
    path.switches = std::move(switches);
    build_hops(path);
    paths_.push_back(std::move(path));
  }
  resolve_conflicts();
}

void PathRegistry::build_hops(RegisteredPath& path) const {
  const auto& sws = path.switches;
  path.hops.reserve(sws.size());
  for (std::size_t i = 0; i < sws.size(); ++i) {
    RegisteredPath::Hop hop{};
    hop.sw = sws[i];
    if (i == 0) {
      hop.in_port = net::kHostPort;
    } else {
      const auto in = topology_->port_towards(sws[i], sws[i - 1]);
      assert(in.has_value());
      hop.in_port = *in;
    }
    if (i + 1 == sws.size()) {
      hop.out_port = net::kHostPort;
    } else {
      const auto out = topology_->port_towards(sws[i], sws[i + 1]);
      assert(out.has_value());
      hop.out_port = *out;
    }
    path.hops.push_back(hop);
  }
}

std::uint32_t PathRegistry::replay(const RegisteredPath& path) const {
  std::uint32_t id = 0;
  for (const auto& hop : path.hops) {
    id = telemetry::update_path_id_with_mat(config_, mat_, id, hop.sw,
                                            hop.in_port, hop.out_port);
  }
  return id;
}

void PathRegistry::resolve_conflicts() {
  // Iteratively: recompute all ids; for every group of paths sharing an
  // id, keep the first and pin a fresh control value for each of the
  // others at the first hop where their running keys diverge from the
  // keeper's. Fixing whole groups per round shrinks the conflict count
  // geometrically, so even dense tables (K=8: ~15k paths in 16 bits)
  // settle in a handful of rounds.
  constexpr int kMaxRounds = 64;
  for (int round = 0; round < kMaxRounds; ++round) {
    id_to_path_.clear();
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < paths_.size(); ++i) {
      paths_[i].path_id = replay(paths_[i]);
      groups[paths_[i].path_id].push_back(i);
      id_to_path_.try_emplace(paths_[i].path_id, i);
    }
    std::size_t conflicts = 0;
    for (const auto& [id, members] : groups) {
      if (members.size() > 1) conflicts += members.size() - 1;
    }
    if (round == 0) initial_collisions_ = conflicts;
    if (conflicts == 0) {
      conflict_free_ = true;
      return;
    }

    for (const auto& [id, members] : groups) {
      if (members.size() < 2) continue;
      const RegisteredPath& keeper = paths_[members.front()];
      for (std::size_t m = 1; m < members.size(); ++m) {
        separate(keeper, paths_[members[m]]);
      }
    }
  }
  conflict_free_ = false;  // gave up after kMaxRounds
}

void PathRegistry::separate(const RegisteredPath& a, const RegisteredPath& b) {
  // Pin a fresh control value for `b` at the LAST hop whose running key
  // differs from `a`'s and has no MAT entry yet. Early hops' keys are
  // shared by every sibling path through the same prefix (e.g. all paths
  // leaving the source via one port), so rewriting them re-hashes large
  // path families and thrashes; the deepest key is the most specific.
  std::uint32_t id_a = 0, id_b = 0;
  std::optional<telemetry::HopKey> target;
  for (std::size_t h = 0; h < b.hops.size(); ++h) {
    const auto& hb = b.hops[h];
    const telemetry::HopKey kb{id_b, hb.sw, hb.in_port, hb.out_port};
    bool differs = true;
    if (h < a.hops.size()) {
      const auto& ha = a.hops[h];
      const telemetry::HopKey ka{id_a, ha.sw, ha.in_port, ha.out_port};
      differs = !(ka == kb);
      id_a = telemetry::update_path_id_with_mat(config_, mat_, id_a, ha.sw,
                                                ha.in_port, ha.out_port);
    }
    if (differs && mat_.find(kb) == mat_.end()) target = kb;
    id_b = telemetry::update_path_id_with_mat(config_, mat_, id_b, hb.sw,
                                              hb.in_port, hb.out_port);
  }
  if (target) {
    mat_.emplace(*target, next_control_++);
    return;
  }
  // Identical hop keys throughout would mean identical paths; as a last
  // resort bump the control on b's sink hop with a fresh value.
  const auto& hb = b.hops.back();
  // Recompute b's id entering the sink hop.
  std::uint32_t id = 0;
  for (std::size_t h = 0; h + 1 < b.hops.size(); ++h) {
    id = telemetry::update_path_id_with_mat(config_, mat_, id, b.hops[h].sw,
                                            b.hops[h].in_port,
                                            b.hops[h].out_port);
  }
  mat_[telemetry::HopKey{id, hb.sw, hb.in_port, hb.out_port}] =
      next_control_++;
}

const net::SwitchPath* PathRegistry::lookup(std::uint32_t path_id) const {
  const auto it = id_to_path_.find(path_id);
  if (it == id_to_path_.end()) return nullptr;
  return &paths_[it->second].switches;
}

std::size_t PathRegistry::intsight_memory_bytes() const {
  std::size_t hops = 0;
  for (const auto& p : paths_) hops += p.hops.size();
  return hops * kIntSightMatEntryBytes;
}

}  // namespace mars::control
