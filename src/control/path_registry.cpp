#include "control/path_registry.hpp"

#include <cassert>
#include <chrono>
#include <memory>
#include <thread>

#include "obs/event_log.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace mars::control {

namespace {

// Below this many paths the fork/join overhead dwarfs the work; the small
// registries used by unit tests and k=4 scenarios stay on the calling
// thread even when a pool exists.
constexpr std::size_t kMinParallelPaths = 4096;
// Replay is ~30 ns per path; keep per-task slices coarse enough that the
// pool's queue mutex never becomes the bottleneck.
constexpr std::size_t kMinChunk = 1024;

}  // namespace

PathRegistry::PathRegistry(const net::Topology& topology,
                           const net::RoutingTable& routing,
                           telemetry::PathIdConfig config, std::size_t threads)
    : topology_(&topology), config_(config) {
  const auto start = std::chrono::steady_clock::now();
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  std::unique_ptr<parallel::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<parallel::ThreadPool>(threads);

  enumerate(routing, pool.get());
  const Groups groups = resolve_conflicts(pool.get());
  finalize(groups);

  audit_.config = config_;
  audit_.path_count = paths_.size();
  for (const auto& p : paths_) audit_.hop_count += p.hops.size();
  audit_.id_space = static_cast<std::size_t>(config_.mask()) + 1;
  audit_.mat_entries = mat_.size();
  audit_.mars_memory_bytes = mars_memory_bytes();
  audit_.intsight_memory_bytes = intsight_memory_bytes();
  audit_.build_threads = threads;
  audit_.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

void PathRegistry::enumerate(const net::RoutingTable& routing,
                             parallel::ThreadPool* pool) {
  // Per-root task splitting (fsm::Engine's pattern): every source edge
  // switch enumerates into its own buffer, and the buffers concatenate in
  // source order — exactly RoutingTable::enumerate_edge_paths(), so the
  // path table is identical at every thread count.
  const auto roots = topology_->switches_in_layer(net::Layer::kEdge);
  std::vector<std::vector<RegisteredPath>> per_root(roots.size());
  const auto build_root = [&](std::size_t r) {
    std::vector<RegisteredPath>& out = per_root[r];
    for (auto& switches : routing.enumerate_edge_paths_from(roots[r])) {
      RegisteredPath path;
      path.switches = std::move(switches);
      build_hops(path);
      out.push_back(std::move(path));
    }
  };
  if (pool != nullptr && roots.size() > 1) {
    parallel::parallel_for(*pool, 0, roots.size(), build_root);
  } else {
    for (std::size_t r = 0; r < roots.size(); ++r) build_root(r);
  }
  std::size_t total = 0;
  for (const auto& buf : per_root) total += buf.size();
  paths_.reserve(total);
  for (auto& buf : per_root) {
    for (auto& path : buf) paths_.push_back(std::move(path));
  }
}

void PathRegistry::build_hops(RegisteredPath& path) const {
  const auto& sws = path.switches;
  path.hops.reserve(sws.size());
  for (std::size_t i = 0; i < sws.size(); ++i) {
    RegisteredPath::Hop hop{};
    hop.sw = sws[i];
    if (i == 0) {
      hop.in_port = net::kHostPort;
    } else {
      const auto in = topology_->port_towards(sws[i], sws[i - 1]);
      assert(in.has_value());
      hop.in_port = *in;
    }
    if (i + 1 == sws.size()) {
      hop.out_port = net::kHostPort;
    } else {
      const auto out = topology_->port_towards(sws[i], sws[i + 1]);
      assert(out.has_value());
      hop.out_port = *out;
    }
    path.hops.push_back(hop);
  }
}

std::uint32_t PathRegistry::replay(const RegisteredPath& path) const {
  std::uint32_t id = 0;
  for (const auto& hop : path.hops) {
    id = telemetry::update_path_id_with_mat(config_, mat_, id, hop.sw,
                                            hop.in_port, hop.out_port);
  }
  return id;
}

void PathRegistry::replay_all(parallel::ThreadPool* pool) {
  // Each path's id depends only on its own hops and the (frozen) MAT, so
  // the replays are embarrassingly parallel and write disjoint slots.
  const auto do_one = [&](std::size_t i) {
    paths_[i].path_id = replay(paths_[i]);
  };
  if (pool != nullptr && paths_.size() >= kMinParallelPaths) {
    parallel::parallel_for(*pool, 0, paths_.size(), do_one, kMinChunk);
  } else {
    for (std::size_t i = 0; i < paths_.size(); ++i) do_one(i);
  }
}

PathRegistry::Groups PathRegistry::group_paths(
    parallel::ThreadPool* pool) const {
  // Sequential reference: insert ids in path-index order. The parallel
  // version groups contiguous index chunks independently, then merges the
  // chunk results in chunk order, replaying each chunk's first-seen key
  // sequence. Because chunk c's indices all precede chunk c+1's, the
  // merged sequence of *successful* key insertions — and every group's
  // member order — is exactly the sequential one, so the map (and with it
  // the resolution pass that iterates it) is bit-identical at every
  // thread count.
  Groups groups;
  if (pool == nullptr || paths_.size() < kMinParallelPaths) {
    for (std::size_t i = 0; i < paths_.size(); ++i) {
      groups[paths_[i].path_id].push_back(i);
    }
    return groups;
  }

  struct ChunkGroups {
    std::vector<std::uint32_t> first_seen;
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> members;
  };
  const std::vector<std::size_t> sizes = parallel::detail::chunk_sizes(
      paths_.size(), kMinChunk, pool->size() * 4);
  std::vector<std::size_t> bounds{0};
  for (const std::size_t size : sizes) bounds.push_back(bounds.back() + size);
  std::vector<ChunkGroups> chunks(sizes.size());
  parallel::parallel_for(*pool, 0, chunks.size(), [&](std::size_t c) {
    ChunkGroups& chunk = chunks[c];
    for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      const auto [it, fresh] = chunk.members.try_emplace(paths_[i].path_id);
      if (fresh) chunk.first_seen.push_back(paths_[i].path_id);
      it->second.push_back(i);
    }
  });
  for (const ChunkGroups& chunk : chunks) {
    for (const std::uint32_t id : chunk.first_seen) {
      const std::vector<std::size_t>& members = chunk.members.at(id);
      std::vector<std::size_t>& out = groups[id];
      out.insert(out.end(), members.begin(), members.end());
    }
  }
  return groups;
}

PathRegistry::Groups PathRegistry::resolve_conflicts(
    parallel::ThreadPool* pool) {
  // Iteratively: recompute all ids; for every group of paths sharing an
  // id, keep the first and pin a fresh control value for each of the
  // others at the first hop where their running keys diverge from the
  // keeper's. Fixing whole groups per round shrinks the conflict count
  // geometrically, so even dense tables (K=8: ~15k paths in 16 bits)
  // settle in a handful of rounds.
  constexpr int kMaxRounds = 64;
  const auto count_conflicts = [](const Groups& groups) {
    std::size_t conflicts = 0;
    for (const auto& [id, members] : groups) {
      if (members.size() > 1) conflicts += members.size() - 1;
    }
    return conflicts;
  };

  // Pigeonhole: with more paths than PathID values no MAT assignment can
  // be injective, so 64 rounds of separation would only churn. Record the
  // raw collision census and stop — validation rejects the config.
  if (paths_.size() > static_cast<std::size_t>(config_.mask()) + 1) {
    replay_all(pool);
    Groups groups = group_paths(pool);
    audit_.initial_collisions = count_conflicts(groups);
    audit_.residual_collisions = audit_.initial_collisions;
    audit_.pigeonhole_infeasible = true;
    audit_.conflict_free = false;
    audit_.rounds = 0;
    return groups;
  }

  for (int round = 0; round < kMaxRounds; ++round) {
    replay_all(pool);
    Groups groups = group_paths(pool);
    const std::size_t conflicts = count_conflicts(groups);
    if (round == 0) audit_.initial_collisions = conflicts;
    if (conflicts == 0) {
      audit_.conflict_free = true;
      audit_.residual_collisions = 0;
      audit_.rounds = round + 1;
      return groups;
    }
    if (round + 1 == kMaxRounds) {
      // Give up *with the map consistent*: the ids and groups reflect the
      // final MAT (no separation whose effect was never re-checked), and
      // the residual census is what validation reports.
      audit_.conflict_free = false;
      audit_.residual_collisions = conflicts;
      audit_.rounds = kMaxRounds;
      return groups;
    }

    for (const auto& [id, members] : groups) {
      if (members.size() < 2) continue;
      const RegisteredPath& keeper = paths_[members.front()];
      for (std::size_t m = 1; m < members.size(); ++m) {
        separate(keeper, paths_[members[m]]);
      }
    }
  }
  assert(false);  // unreachable: the loop returns on its last round
  return {};
}

void PathRegistry::separate(const RegisteredPath& a, const RegisteredPath& b) {
  // Pin a fresh control value for `b` at the LAST hop whose running key
  // differs from `a`'s and has no MAT entry yet. Early hops' keys are
  // shared by every sibling path through the same prefix (e.g. all paths
  // leaving the source via one port), so rewriting them re-hashes large
  // path families and thrashes; the deepest key is the most specific.
  std::uint32_t id_a = 0, id_b = 0;
  std::optional<telemetry::HopKey> target;
  std::vector<telemetry::HopKey> keys;
  keys.reserve(b.hops.size());
  for (std::size_t h = 0; h < b.hops.size(); ++h) {
    const auto& hb = b.hops[h];
    const telemetry::HopKey kb{id_b, hb.sw, hb.in_port, hb.out_port};
    keys.push_back(kb);
    bool differs = true;
    if (h < a.hops.size()) {
      const auto& ha = a.hops[h];
      const telemetry::HopKey ka{id_a, ha.sw, ha.in_port, ha.out_port};
      differs = !(ka == kb);
      id_a = telemetry::update_path_id_with_mat(config_, mat_, id_a, ha.sw,
                                                ha.in_port, ha.out_port);
    }
    if (differs && mat_.find(kb) == mat_.end()) target = kb;
    id_b = telemetry::update_path_id_with_mat(config_, mat_, id_b, hb.sw,
                                              hb.in_port, hb.out_port);
  }
  if (target) {
    mat_.emplace(*target, next_control_++);
    return;
  }
  // No differing MAT-free hop. Re-rolling ANY hop of b re-hashes it (a
  // shares the key, so a re-rolls identically up to the fresh control's
  // avalanche), so take the deepest hop whose key is still free rather
  // than clobber an installed entry — overwriting un-resolves whichever
  // previously separated pair that entry was pinned for.
  for (std::size_t h = keys.size(); h-- > 0;) {
    if (mat_.find(keys[h]) == mat_.end()) {
      mat_.emplace(keys[h], next_control_++);
      return;
    }
  }
  // Every hop of b already carries an entry. Overwriting one would
  // un-resolve whichever previously separated pair that entry was pinned
  // for — the silent-clobber bug this pass exists to prevent — so leave b
  // alone this round. Other separations re-hash the table, which usually
  // frees a key by the next round; if not, the give-up path records b in
  // the residual census and validation rejects the config.
}

void PathRegistry::finalize(const Groups& groups) {
  id_to_path_.reserve(groups.size());
  for (const auto& [id, members] : groups) {
    if (members.size() == 1) {
      id_to_path_.emplace(id, members.front());
    } else {
      ambiguous_.insert(id);
    }
  }
  audit_.ambiguous_ids = ambiguous_.size();
}

const net::SwitchPath* PathRegistry::lookup(std::uint32_t path_id) const {
  if (ambiguous_.count(path_id) > 0) {
    // Decompressing an ambiguous id to an arbitrary survivor would feed
    // the analyzer a wrong switch sequence; refuse and count instead.
    ambiguous_lookups_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const auto it = id_to_path_.find(path_id);
  if (it == id_to_path_.end()) return nullptr;
  return &paths_[it->second].switches;
}

void PathRegistry::log_audit(obs::EventLog& log, sim::Time at) const {
  log.log(obs::LogLevel::kInfo, at, "pathid", "audit",
          {{"paths", std::uint64_t{audit_.path_count}},
           {"hops", std::uint64_t{audit_.hop_count}},
           {"hash", telemetry::hash_name(config_.hash)},
           {"width_bits", std::uint64_t{config_.width_bits}},
           {"initial_collisions", std::uint64_t{audit_.initial_collisions}},
           {"mat_entries", std::uint64_t{audit_.mat_entries}},
           {"rounds", std::uint64_t{static_cast<std::uint64_t>(audit_.rounds)}},
           {"build_threads", std::uint64_t{audit_.build_threads}},
           {"conflict_free", std::uint64_t{audit_.conflict_free ? 1u : 0u}}});
  if (!audit_.conflict_free) {
    log.log(obs::LogLevel::kError, at, "pathid", "unresolved_collisions",
            {{"residual_collisions",
              std::uint64_t{audit_.residual_collisions}},
             {"ambiguous_ids", std::uint64_t{audit_.ambiguous_ids}},
             {"pigeonhole_infeasible",
              std::uint64_t{audit_.pigeonhole_infeasible ? 1u : 0u}},
             {"rounds",
              std::uint64_t{static_cast<std::uint64_t>(audit_.rounds)}}});
  }
}

std::size_t PathRegistry::intsight_memory_bytes() const {
  std::size_t hops = 0;
  for (const auto& p : paths_) hops += p.hops.size();
  return hops * kIntSightMatEntryBytes;
}

}  // namespace mars::control
