#pragma once
// MARS control plane (paper §4.3–4.4 workflow):
//
//   - periodically polls the "latency" field of edge-switch Ring Tables
//     (P4Runtime reads), feeds per-flow reservoirs, and installs the
//     resulting dynamic thresholds back into the data plane;
//   - on a data-plane notification (rate-limited per window), drains the
//     Ring Tables of all *edge* switches into a DiagnosisData bundle and
//     hands it to the registered diagnosis callback (the RCA engine);
//   - accounts every byte moved from the data plane to the control plane
//     (diagnosis overhead, Fig. 9).
//
// Hardened against a degraded control channel (control/channel.hpp):
//   - Ring-Table reads can fail; a failed poll read falls back to the
//     stale thresholds and leaves the poll watermark untouched, so missed
//     records are caught up on the next successful poll;
//   - a failed drain read during a diagnosis collection is retried in
//     bounded, exponentially backed-off rounds (deterministic, virtual
//     time); switches still failing after the last round are abandoned
//     and the session proceeds on partial data;
//   - drained records pass range/consistency quarantine checks before
//     entering the session (corrupt telemetry must not poison the RCA
//     engine or the reservoirs);
//   - every session carries a CollectionQuality block (coverage,
//     quarantine counts, retry rounds) whose confidence() lets callers
//     distinguish a confident localization from a best-effort one.
// With no channel attached (or a perfect one) none of these paths run and
// behavior is bit-identical to the unhardened controller.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "control/channel.hpp"
#include "dataplane/mars_pipeline.hpp"
#include "detect/reservoir.hpp"
#include "net/network.hpp"
#include "obs/event_log.hpp"
#include "obs/provenance.hpp"
#include "obs/tracer.hpp"
#include "telemetry/tables.hpp"

namespace mars::control {

/// How complete the evidence behind one diagnosis session is. A perfect
/// collection has confidence() == 1; failed drains and quarantined
/// records lower it. Retries that eventually succeed cost time, not
/// confidence — the data is complete.
struct CollectionQuality {
  std::size_t switches_total = 0;    ///< edge switches the drain targeted
  std::size_t switches_drained = 0;  ///< drained OK (possibly after retry)
  std::uint64_t records_collected = 0;    ///< accepted into the session
  std::uint64_t records_quarantined = 0;  ///< failed sanity checks
  std::uint32_t retry_rounds = 0;         ///< backoff rounds this session

  /// Fraction of edge switches successfully drained (1 when none exist).
  [[nodiscard]] double coverage() const {
    return switches_total == 0
               ? 1.0
               : static_cast<double>(switches_drained) /
                     static_cast<double>(switches_total);
  }
  /// coverage x fraction of surviving records that passed quarantine.
  /// == 1 exactly when no observable degradation occurred (undetectably
  /// corrupted records are invisible here by definition).
  [[nodiscard]] double confidence() const {
    const std::uint64_t seen = records_collected + records_quarantined;
    const double clean = seen == 0
                             ? 1.0
                             : static_cast<double>(records_collected) /
                                   static_cast<double>(seen);
    return coverage() * clean;
  }
  [[nodiscard]] bool degraded() const {
    return switches_drained < switches_total || records_quarantined > 0;
  }
};

/// Everything the RCA engine receives for one diagnosis session.
struct DiagnosisData {
  dataplane::Notification trigger;
  /// Every notification that arrived between the trigger and collection
  /// (the trigger included). Congestion faults raise both HighLatency and
  /// Drop notifications; seeing the full set lets the analyzer pick the
  /// right pass instead of racing on which packet won.
  std::vector<dataplane::Notification> notifications;
  sim::Time collected_at = 0;

  [[nodiscard]] bool saw(dataplane::Notification::Kind kind) const {
    for (const auto& n : notifications) {
      if (n.kind == kind) return true;
    }
    return false;
  }
  /// Ring Table snapshots from all edge switches, concatenated (only
  /// records that survived the channel and the quarantine checks).
  std::vector<telemetry::RtRecord> records;
  /// Per-flow thresholds at collection time (classifies records into the
  /// abnormal/normal sets).
  std::unordered_map<net::FlowId, sim::Time> thresholds;
  sim::Time default_threshold = 10 * sim::kSecond;
  /// Evidence completeness for this session.
  CollectionQuality quality;
  /// Provenance node id of this session ("session:N") when a
  /// ProvenanceGraph is attached to the controller; empty otherwise.
  /// Downstream stages (RCA) parent their evidence nodes under it.
  std::string provenance_id;

  /// True if `rec` is in the abnormal set under the session thresholds.
  [[nodiscard]] bool is_abnormal(const telemetry::RtRecord& rec) const {
    const auto it = thresholds.find(rec.flow);
    const sim::Time thr =
        it != thresholds.end() ? it->second : default_threshold;
    return rec.latency > thr;
  }
};

struct ControllerConfig {
  sim::Time poll_interval = 100 * sim::kMillisecond;
  /// The control plane responds to at most one notification per window
  /// (paper §4.4).
  sim::Time response_window = 1 * sim::kSecond;
  /// Posterior collection: wait this long after the notification before
  /// draining the Ring Tables, so the anomaly's evidence (telemetry
  /// packets stuck behind the fault) has reached the sinks.
  sim::Time collection_delay = 500 * sim::kMillisecond;
  detect::ReservoirConfig reservoir;
  /// Bytes per polled latency sample (P4Runtime register read payload).
  std::uint32_t poll_sample_bytes = 4;

  // ---- degraded-channel hardening (no-ops when reads never fail) ----
  /// Virtual time a failed Ring-Table read burns before the failure is
  /// detected (the P4Runtime read deadline).
  sim::Time read_deadline = 20 * sim::kMillisecond;
  /// Failed drain reads are retried in up to this many backoff rounds
  /// before the session proceeds on partial data.
  std::uint32_t max_read_retries = 3;
  /// Base retry backoff; doubles every round (exponential, virtual-time).
  sim::Time retry_backoff = 25 * sim::kMillisecond;
};

/// Control-plane -> data-plane overhead accounting.
struct ControllerOverheads {
  std::uint64_t poll_bytes = 0;       ///< periodic latency reads
  std::uint64_t diagnosis_bytes = 0;  ///< RT drains on notifications
  std::uint64_t diagnoses = 0;
  std::uint64_t notifications_seen = 0;
  std::uint64_t notifications_suppressed = 0;
  // ---- degraded-channel accounting (all zero on a perfect channel) ----
  std::uint64_t poll_reads_failed = 0;  ///< stale-threshold fallbacks
  std::uint64_t drain_read_failures = 0;  ///< failed drain attempts
  std::uint64_t drain_retry_rounds = 0;   ///< backoff rounds scheduled
  std::uint64_t drains_abandoned = 0;   ///< switches given up per session
  std::uint64_t records_quarantined = 0;  ///< drain + poll sanity rejects
  std::uint64_t partial_sessions = 0;   ///< sessions with confidence < 1
};

class Controller {
 public:
  using DiagnosisFn = std::function<void(const DiagnosisData&)>;

  Controller(net::Network& network, dataplane::MarsPipeline& pipeline,
             ControllerConfig config);

  /// Begin periodic polling (schedules itself on the network's simulator).
  void start();

  /// Wire this to the pipeline's notification function.
  void on_notification(const dataplane::Notification& n);

  void set_diagnosis_callback(DiagnosisFn fn) { on_diagnosis_ = std::move(fn); }

  /// Route Ring-Table reads through a (possibly degraded) control
  /// channel. nullptr (the default) reads the pipeline directly — the
  /// perfect-channel fast path.
  void set_channel(ControlChannel* channel) { channel_ = channel; }

  [[nodiscard]] const ControllerOverheads& overheads() const {
    return overheads_;
  }
  [[nodiscard]] const std::vector<DiagnosisData>& sessions() const {
    return sessions_;
  }
  /// The reservoir maintained for one flow (tests/inspection).
  [[nodiscard]] const detect::Reservoir* reservoir(
      const net::FlowId& flow) const;

  /// Number of per-flow reservoirs currently maintained.
  [[nodiscard]] std::size_t reservoir_count() const {
    return reservoirs_.size();
  }
  /// Mean fill fraction (size / volume) across all reservoirs; 0 if none.
  [[nodiscard]] double mean_reservoir_fill() const;

  /// Attach a span tracer (nullptr detaches): instants per notification,
  /// a virtual-time span for each collection window, and wall-clock spans
  /// around poll and ring-drain work.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

  /// Attach a structured event log (nullptr detaches): poll fallbacks,
  /// quarantines, drain retries/abandons, and session summaries.
  void set_event_log(obs::EventLog* log) { log_ = log; }

  /// Attach a provenance graph (nullptr detaches): each finalized session
  /// gets a session node plus notification nodes, and DiagnosisData
  /// carries the session node id for downstream stages.
  void set_provenance(obs::ProvenanceGraph* provenance) {
    provenance_ = provenance;
  }

  /// One polling pass (normally driven by start(); exposed for tests).
  void poll_once();

  /// True while a collection (including retry rounds) is in flight.
  [[nodiscard]] bool collection_pending() const { return collection_pending_; }

 private:
  [[nodiscard]] std::vector<net::SwitchId> edge_switches() const;
  [[nodiscard]] ControlChannel::ReadResult read_ring(net::SwitchId sw);
  void collect_and_diagnose(const dataplane::Notification& n);
  void drain_round();
  void finalize_collection();

  net::Network* network_;
  dataplane::MarsPipeline* pipeline_;
  ControllerConfig config_;
  DiagnosisFn on_diagnosis_;
  ControlChannel* channel_ = nullptr;
  std::unordered_map<net::FlowId, detect::Reservoir> reservoirs_;
  /// Last RT record timestamp polled per edge switch (avoid re-reading).
  std::unordered_map<net::SwitchId, sim::Time> poll_watermark_;
  sim::Time last_response_ = -1;
  /// Notifications accumulated while a collection is pending.
  std::vector<dataplane::Notification> pending_;
  bool collection_pending_ = false;
  /// The in-flight collection: session under assembly plus the switches
  /// whose drain still has to succeed (retried across backoff rounds).
  struct Collection {
    DiagnosisData data;
    std::vector<net::SwitchId> remaining;
    std::uint32_t round = 0;
  };
  std::optional<Collection> collection_;
  std::vector<DiagnosisData> sessions_;
  ControllerOverheads overheads_;
  obs::SpanTracer* tracer_ = nullptr;
  obs::EventLog* log_ = nullptr;
  obs::ProvenanceGraph* provenance_ = nullptr;
  std::uint64_t reservoir_seed_ = 0x7E5E4D01ull;
};

}  // namespace mars::control
