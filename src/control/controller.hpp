#pragma once
// MARS control plane (paper §4.3–4.4 workflow):
//
//   - periodically polls the "latency" field of edge-switch Ring Tables
//     (P4Runtime reads), feeds per-flow reservoirs, and installs the
//     resulting dynamic thresholds back into the data plane;
//   - on a data-plane notification (rate-limited per window), drains the
//     Ring Tables of all *edge* switches into a DiagnosisData bundle and
//     hands it to the registered diagnosis callback (the RCA engine);
//   - accounts every byte moved from the data plane to the control plane
//     (diagnosis overhead, Fig. 9).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "dataplane/mars_pipeline.hpp"
#include "detect/reservoir.hpp"
#include "net/network.hpp"
#include "obs/tracer.hpp"
#include "telemetry/tables.hpp"

namespace mars::control {

/// Everything the RCA engine receives for one diagnosis session.
struct DiagnosisData {
  dataplane::Notification trigger;
  /// Every notification that arrived between the trigger and collection
  /// (the trigger included). Congestion faults raise both HighLatency and
  /// Drop notifications; seeing the full set lets the analyzer pick the
  /// right pass instead of racing on which packet won.
  std::vector<dataplane::Notification> notifications;
  sim::Time collected_at = 0;

  [[nodiscard]] bool saw(dataplane::Notification::Kind kind) const {
    for (const auto& n : notifications) {
      if (n.kind == kind) return true;
    }
    return false;
  }
  /// Ring Table snapshots from all edge switches, concatenated.
  std::vector<telemetry::RtRecord> records;
  /// Per-flow thresholds at collection time (classifies records into the
  /// abnormal/normal sets).
  std::unordered_map<net::FlowId, sim::Time> thresholds;
  sim::Time default_threshold = 10 * sim::kSecond;

  /// True if `rec` is in the abnormal set under the session thresholds.
  [[nodiscard]] bool is_abnormal(const telemetry::RtRecord& rec) const {
    const auto it = thresholds.find(rec.flow);
    const sim::Time thr =
        it != thresholds.end() ? it->second : default_threshold;
    return rec.latency > thr;
  }
};

struct ControllerConfig {
  sim::Time poll_interval = 100 * sim::kMillisecond;
  /// The control plane responds to at most one notification per window
  /// (paper §4.4).
  sim::Time response_window = 1 * sim::kSecond;
  /// Posterior collection: wait this long after the notification before
  /// draining the Ring Tables, so the anomaly's evidence (telemetry
  /// packets stuck behind the fault) has reached the sinks.
  sim::Time collection_delay = 500 * sim::kMillisecond;
  detect::ReservoirConfig reservoir;
  /// Bytes per polled latency sample (P4Runtime register read payload).
  std::uint32_t poll_sample_bytes = 4;
};

/// Control-plane -> data-plane overhead accounting.
struct ControllerOverheads {
  std::uint64_t poll_bytes = 0;       ///< periodic latency reads
  std::uint64_t diagnosis_bytes = 0;  ///< RT drains on notifications
  std::uint64_t diagnoses = 0;
  std::uint64_t notifications_seen = 0;
  std::uint64_t notifications_suppressed = 0;
};

class Controller {
 public:
  using DiagnosisFn = std::function<void(const DiagnosisData&)>;

  Controller(net::Network& network, dataplane::MarsPipeline& pipeline,
             ControllerConfig config);

  /// Begin periodic polling (schedules itself on the network's simulator).
  void start();

  /// Wire this to the pipeline's notification function.
  void on_notification(const dataplane::Notification& n);

  void set_diagnosis_callback(DiagnosisFn fn) { on_diagnosis_ = std::move(fn); }

  [[nodiscard]] const ControllerOverheads& overheads() const {
    return overheads_;
  }
  [[nodiscard]] const std::vector<DiagnosisData>& sessions() const {
    return sessions_;
  }
  /// The reservoir maintained for one flow (tests/inspection).
  [[nodiscard]] const detect::Reservoir* reservoir(
      const net::FlowId& flow) const;

  /// Number of per-flow reservoirs currently maintained.
  [[nodiscard]] std::size_t reservoir_count() const {
    return reservoirs_.size();
  }
  /// Mean fill fraction (size / volume) across all reservoirs; 0 if none.
  [[nodiscard]] double mean_reservoir_fill() const;

  /// Attach a span tracer (nullptr detaches): instants per notification,
  /// a virtual-time span for each collection window, and wall-clock spans
  /// around poll and ring-drain work.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

  /// One polling pass (normally driven by start(); exposed for tests).
  void poll_once();

 private:
  [[nodiscard]] std::vector<net::SwitchId> edge_switches() const;
  void collect_and_diagnose(const dataplane::Notification& n);

  net::Network* network_;
  dataplane::MarsPipeline* pipeline_;
  ControllerConfig config_;
  DiagnosisFn on_diagnosis_;
  std::unordered_map<net::FlowId, detect::Reservoir> reservoirs_;
  /// Last RT record timestamp polled per edge switch (avoid re-reading).
  std::unordered_map<net::SwitchId, sim::Time> poll_watermark_;
  sim::Time last_response_ = -1;
  /// Notifications accumulated while a collection is pending.
  std::vector<dataplane::Notification> pending_;
  bool collection_pending_ = false;
  std::vector<DiagnosisData> sessions_;
  ControllerOverheads overheads_;
  obs::SpanTracer* tracer_ = nullptr;
  std::uint64_t reservoir_seed_ = 0x7E5E4D01ull;
};

}  // namespace mars::control
