#include "control/channel.hpp"

#include <algorithm>
#include <memory>

namespace mars::control {

bool plausible_record(const telemetry::RtRecord& rec, sim::Time now) {
  if (rec.latency < 0 || rec.source_timestamp < 0 || rec.sink_timestamp < 0) {
    return false;
  }
  if (rec.sink_timestamp > now) return false;
  if (rec.source_timestamp > rec.sink_timestamp) return false;
  if (rec.latency != rec.sink_timestamp - rec.source_timestamp) return false;
  if (rec.path_count_n > telemetry::RtRecord::kMaxPaths) return false;
  return true;
}

ControlChannel::ControlChannel(sim::Simulator& simulator,
                               dataplane::MarsPipeline& pipeline,
                               ChannelConfig config)
    : simulator_(&simulator),
      pipeline_(&pipeline),
      config_(config),
      rng_(config.seed) {}

void ControlChannel::offer(const dataplane::Notification& n) {
  ++stats_.notifications_offered;
  if (config_.perfect()) {
    deliver_(n);
    return;
  }
  if (config_.notification_loss > 0.0 &&
      rng_.chance(config_.notification_loss)) {
    ++stats_.notifications_dropped;
    return;
  }
  if (config_.notification_delay_prob > 0.0 &&
      rng_.chance(config_.notification_delay_prob)) {
    ++stats_.notifications_delayed;
    const sim::Time lo = config_.notification_delay_min;
    const sim::Time hi = std::max(config_.notification_delay_max, lo);
    const sim::Time delay =
        lo + (hi > lo ? static_cast<sim::Time>(
                            rng_.below(static_cast<std::uint64_t>(hi - lo)))
                      : 0);
    // Delayed packets re-enter through the event queue, so two delayed
    // notifications (or a delayed one and a later prompt one) can arrive
    // out of order — exactly the reordering a congested CPU port causes.
    simulator_->schedule_in(delay, [this, n] { deliver_(n); });
    return;
  }
  deliver_(n);
}

ControlChannel::ReadResult ControlChannel::read_ring(net::SwitchId sw) {
  ++stats_.reads_attempted;
  ReadResult result;
  if (config_.perfect()) {
    result.ok = true;
    result.records = pipeline_->ring_snapshot(sw);
    return result;
  }
  if (config_.read_failure > 0.0 && rng_.chance(config_.read_failure)) {
    ++stats_.reads_failed;
    return result;
  }
  result.ok = true;
  result.records = pipeline_->ring_snapshot(sw);
  if (config_.record_loss > 0.0) {
    const auto end = std::remove_if(
        result.records.begin(), result.records.end(), [this](const auto&) {
          if (rng_.chance(config_.record_loss)) {
            ++stats_.records_lost;
            return true;
          }
          return false;
        });
    result.records.erase(end, result.records.end());
  }
  if (config_.record_corruption > 0.0) {
    for (auto& rec : result.records) {
      if (rng_.chance(config_.record_corruption)) {
        corrupt_record(rec);
        ++stats_.records_corrupted;
      }
    }
  }
  return result;
}

void ControlChannel::corrupt_record(telemetry::RtRecord& rec) {
  // A mix of detectable and silent damage: cases 0/1/4 violate the
  // record's internal consistency (caught by plausible_record), cases 2/3
  // are plausible garbage that no range check can refute.
  switch (rng_.below(5)) {
    case 0:
      rec.latency ^= static_cast<sim::Time>((rng_() >> 8) | 1);
      break;
    case 1:
      rec.source_timestamp =
          rec.sink_timestamp + 1 + static_cast<sim::Time>(rng_.below(1u << 20));
      break;
    case 2:
      rec.total_queue_depth ^= static_cast<std::uint32_t>(rng_()) | 1u;
      break;
    case 3:
      rec.src_last_epoch_count ^= static_cast<std::uint32_t>(rng_()) | 1u;
      break;
    case 4:
      rec.path_count_n = static_cast<std::uint8_t>(
          telemetry::RtRecord::kMaxPaths + 1 + rng_.below(100));
      break;
  }
}

double& ControlChannel::dial_value(Dial dial) {
  switch (dial) {
    case Dial::kNotificationLoss: return config_.notification_loss;
    case Dial::kReadFailure: return config_.read_failure;
    case Dial::kRecordCorruption: return config_.record_corruption;
  }
  return config_.notification_loss;  // unreachable
}

const char* ControlChannel::dial_name(Dial dial) {
  switch (dial) {
    case Dial::kNotificationLoss: return "notification_loss";
    case Dial::kReadFailure: return "read_failure";
    case Dial::kRecordCorruption: return "record_corruption";
  }
  return "?";
}

void ControlChannel::schedule_degradation(Dial dial, double severity,
                                          sim::Time at, sim::Time duration) {
  ++stats_.scheduled_faults;
  // The restore event needs the pre-window value, which only exists once
  // the degrade event runs; a shared cell carries it across.
  auto saved = std::make_shared<double>(0.0);
  simulator_->schedule_at(at, [this, dial, severity, saved] {
    double& value = dial_value(dial);
    *saved = value;
    value = std::max(value, severity);
    if (log_ != nullptr) {
      log_->log(obs::LogLevel::kWarn, simulator_->now(), "channel",
                "degradation_start",
                {{"dial", dial_name(dial)}, {"severity", severity}});
    }
  });
  simulator_->schedule_at(at + duration, [this, dial, saved] {
    dial_value(dial) = *saved;
    if (log_ != nullptr) {
      log_->log(obs::LogLevel::kInfo, simulator_->now(), "channel",
                "degradation_end",
                {{"dial", dial_name(dial)}, {"restored", *saved}});
    }
  });
}

}  // namespace mars::control
