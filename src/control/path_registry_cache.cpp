#include "control/path_registry_cache.hpp"

namespace mars::control {

PathRegistryCache& PathRegistryCache::instance() {
  static PathRegistryCache cache;
  return cache;
}

std::shared_ptr<const PathRegistry> PathRegistryCache::get_or_build(
    const net::Topology& topology, const net::RoutingTable& routing,
    telemetry::PathIdConfig config, std::size_t threads) {
  const Key key{net::structural_fingerprint(topology), config.hash,
                config.width_bits};
  // Building under the lock intentionally serializes concurrent first
  // builds of the same key: one thread pays the (parallel) build, the
  // rest block briefly and share the result instead of duplicating the
  // most expensive setup step in the process.
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  auto registry =
      std::make_shared<const PathRegistry>(topology, routing, config, threads);
  entries_.emplace(key, registry);
  return registry;
}

PathRegistryCacheStats PathRegistryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PathRegistryCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = {};
}

}  // namespace mars::control
