#include "control/controller.hpp"

#include <algorithm>
#include <optional>

#include "sim/simulator.hpp"

namespace mars::control {

Controller::Controller(net::Network& network,
                       dataplane::MarsPipeline& pipeline,
                       ControllerConfig config)
    : network_(&network), pipeline_(&pipeline), config_(config) {}

std::vector<net::SwitchId> Controller::edge_switches() const {
  return network_->topology().switches_in_layer(net::Layer::kEdge);
}

ControlChannel::ReadResult Controller::read_ring(net::SwitchId sw) {
  if (channel_ != nullptr) return channel_->read_ring(sw);
  ControlChannel::ReadResult result;
  result.ok = true;
  result.records = pipeline_->ring_snapshot(sw);
  return result;
}

void Controller::start() {
  network_->simulator().schedule_in(config_.poll_interval, [this] {
    poll_once();
    start();  // reschedule
  });
}

void Controller::poll_once() {
  const sim::Time now = network_->simulator().now();
  std::optional<obs::SpanTracer::WallSpan> span;
  std::uint64_t samples = 0;
  if (tracer_ != nullptr) {
    span.emplace(tracer_->wall_span("controller.poll", "control"));
  }
  for (const net::SwitchId sw : edge_switches()) {
    auto read = read_ring(sw);
    if (!read.ok) {
      // Stale-threshold fallback: keep the thresholds we have and leave
      // the watermark untouched, so the records we missed are picked up
      // by the next successful poll instead of silently skipped.
      ++overheads_.poll_reads_failed;
      if (log_ != nullptr) {
        log_->log(obs::LogLevel::kWarn, now, "controller",
                  "poll_read_failed", {{"switch", std::uint64_t{sw}}});
      }
      continue;
    }
    const sim::Time watermark =
        poll_watermark_.count(sw) ? poll_watermark_[sw] : -1;
    for (const auto& rec : read.records) {
      if (rec.sink_timestamp <= watermark) continue;
      overheads_.poll_bytes += config_.poll_sample_bytes;
      ++samples;
      if (!plausible_record(rec, now)) {
        // Corrupt latency samples must not steer the dynamic thresholds.
        ++overheads_.records_quarantined;
        if (log_ != nullptr) {
          log_->log(obs::LogLevel::kWarn, now, "controller",
                    "poll_record_quarantined",
                    {{"switch", std::uint64_t{sw}}});
        }
        continue;
      }
      auto [it, inserted] = reservoirs_.try_emplace(
          rec.flow, config_.reservoir, reservoir_seed_++);
      it->second.input(static_cast<double>(rec.latency));
      if (it->second.warmed_up()) {
        pipeline_->set_threshold(
            rec.flow, static_cast<sim::Time>(it->second.threshold()));
      }
    }
    poll_watermark_[sw] = now;
  }
  if (span) span->arg({"samples", samples});
}

void Controller::on_notification(const dataplane::Notification& n) {
  ++overheads_.notifications_seen;
  const sim::Time now = network_->simulator().now();
  if (collection_pending_) {
    // A collection is already scheduled: fold this notification into it.
    pending_.push_back(n);
    if (tracer_ != nullptr) {
      tracer_->instant("controller.fold_into_pending", "control", now,
                       {{"kind", dataplane::kind_name(n.kind)}});
    }
    if (log_ != nullptr) {
      log_->log(obs::LogLevel::kDebug, now, "controller", "fold_into_pending",
                {{"kind", dataplane::kind_name(n.kind)}});
    }
    return;
  }
  if (last_response_ >= 0 && now - last_response_ < config_.response_window) {
    ++overheads_.notifications_suppressed;
    if (tracer_ != nullptr) {
      tracer_->instant("controller.window_suppressed", "control", now,
                       {{"kind", dataplane::kind_name(n.kind)}});
    }
    if (log_ != nullptr) {
      log_->log(obs::LogLevel::kDebug, now, "controller", "window_suppressed",
                {{"kind", dataplane::kind_name(n.kind)}});
    }
    return;
  }
  last_response_ = now;
  if (log_ != nullptr) {
    log_->log(obs::LogLevel::kInfo, now, "controller", "notification_accepted",
              {{"kind", dataplane::kind_name(n.kind)},
               {"origin", std::uint64_t{n.origin}}});
  }
  pending_.clear();
  pending_.push_back(n);
  if (config_.collection_delay > 0) {
    collection_pending_ = true;
    network_->simulator().schedule_in(
        config_.collection_delay, [this, n] { collect_and_diagnose(n); });
  } else {
    collection_pending_ = true;
    collect_and_diagnose(n);
  }
}

void Controller::collect_and_diagnose(const dataplane::Notification& n) {
  collection_.emplace();
  Collection& c = *collection_;
  c.data.trigger = n;
  c.data.notifications = std::move(pending_);
  pending_.clear();
  c.data.default_threshold = pipeline_->config().default_threshold;
  // MARS only drains edge switches (Motivation #1: offload core switches).
  c.remaining = edge_switches();
  c.data.quality.switches_total = c.remaining.size();
  drain_round();
}

void Controller::drain_round() {
  Collection& c = *collection_;
  const sim::Time now = network_->simulator().now();
  {
    std::optional<obs::SpanTracer::WallSpan> span;
    if (tracer_ != nullptr) {
      span.emplace(tracer_->wall_span("controller.ring_drain", "control"));
    }
    std::vector<net::SwitchId> failed;
    for (const net::SwitchId sw : c.remaining) {
      auto read = read_ring(sw);
      if (!read.ok) {
        ++overheads_.drain_read_failures;
        if (log_ != nullptr) {
          log_->log(obs::LogLevel::kWarn, now, "controller",
                    "drain_read_failed",
                    {{"switch", std::uint64_t{sw}},
                     {"round", std::uint64_t{c.round}}});
        }
        failed.push_back(sw);
        continue;
      }
      ++c.data.quality.switches_drained;
      for (auto& rec : read.records) {
        // Quarantined records still crossed the wire: their bytes count
        // toward diagnosis overhead even though they never reach the RCA
        // engine.
        overheads_.diagnosis_bytes += pipeline_->record_wire_bytes();
        if (!plausible_record(rec, now)) {
          ++c.data.quality.records_quarantined;
          ++overheads_.records_quarantined;
          if (log_ != nullptr) {
            log_->log(obs::LogLevel::kWarn, now, "controller",
                      "drain_record_quarantined",
                      {{"switch", std::uint64_t{sw}}});
          }
          continue;
        }
        ++c.data.quality.records_collected;
        c.data.records.push_back(rec);
      }
    }
    c.remaining = std::move(failed);
    if (span) {
      span->arg({"records", std::uint64_t{c.data.records.size()}});
    }
  }
  if (!c.remaining.empty() && c.round < config_.max_read_retries) {
    ++c.round;
    c.data.quality.retry_rounds = c.round;
    ++overheads_.drain_retry_rounds;
    // Exponential backoff, all in virtual time: the failed read already
    // burned its deadline, then wait 2^(round-1) base backoffs.
    const sim::Time wait =
        config_.read_deadline + (config_.retry_backoff << (c.round - 1));
    if (log_ != nullptr) {
      log_->log(obs::LogLevel::kWarn, now, "controller", "drain_retry",
                {{"round", std::uint64_t{c.round}},
                 {"switches", std::uint64_t{c.remaining.size()}},
                 {"wait_ms", sim::to_seconds(wait) * 1e3}});
    }
    network_->simulator().schedule_in(wait, [this] { drain_round(); });
    return;
  }
  finalize_collection();
}

void Controller::finalize_collection() {
  Collection& c = *collection_;
  overheads_.drains_abandoned += c.remaining.size();
  c.data.collected_at = network_->simulator().now();
  // Notifications that arrived during retry rounds were folded into
  // pending_; they belong to this session.
  for (auto& n : pending_) c.data.notifications.push_back(n);
  pending_.clear();
  for (const auto& [flow, reservoir] : reservoirs_) {
    if (reservoir.warmed_up()) {
      c.data.thresholds[flow] = static_cast<sim::Time>(reservoir.threshold());
    }
  }
  ++overheads_.diagnoses;
  if (c.data.quality.degraded()) ++overheads_.partial_sessions;
  if (provenance_ != nullptr) {
    // Session + notification nodes: the root of this diagnosis's evidence
    // chain. RCA parents its epoch/pattern/suspect nodes under the id.
    c.data.provenance_id = provenance_->add_node(
        obs::ProvenanceGraph::NodeKind::kSession,
        {{"trigger", dataplane::kind_name(c.data.trigger.kind)},
         {"collected_at_s", sim::to_seconds(c.data.collected_at)},
         {"records", c.data.quality.records_collected},
         {"quarantined", c.data.quality.records_quarantined},
         {"coverage", c.data.quality.coverage()},
         {"confidence", c.data.quality.confidence()},
         {"retry_rounds", std::uint64_t{c.data.quality.retry_rounds}}});
    for (const auto& n : c.data.notifications) {
      const std::string nid = provenance_->add_node(
          obs::ProvenanceGraph::NodeKind::kNotification,
          {{"kind", dataplane::kind_name(n.kind)},
           {"origin", std::uint64_t{n.origin}},
           {"ts_s", sim::to_seconds(n.when)}});
      provenance_->add_edge(nid, c.data.provenance_id, "triggered");
    }
  }
  if (tracer_ != nullptr) {
    // The posterior-collection window in virtual time: notification ->
    // ring-table drain (including any retry rounds).
    obs::SpanArgs args{
        {"trigger", dataplane::kind_name(c.data.trigger.kind)},
        {"notifications", std::uint64_t{c.data.notifications.size()}},
        {"records", std::uint64_t{c.data.records.size()}}};
    if (!c.data.provenance_id.empty()) {
      args.emplace_back("prov", c.data.provenance_id);
    }
    tracer_->complete("collection_window", "control", c.data.trigger.when,
                      c.data.collected_at, std::move(args));
  }
  if (log_ != nullptr) {
    if (!c.remaining.empty()) {
      log_->log(obs::LogLevel::kError, c.data.collected_at, "controller",
                "drain_abandoned",
                {{"switches", std::uint64_t{c.remaining.size()}},
                 {"rounds", std::uint64_t{c.round}}});
    }
    log_->log(obs::LogLevel::kInfo, c.data.collected_at, "controller",
              "session_finalized",
              {{"records", c.data.quality.records_collected},
               {"coverage", c.data.quality.coverage()},
               {"confidence", c.data.quality.confidence()},
               {"retry_rounds", std::uint64_t{c.data.quality.retry_rounds}}});
  }
  sessions_.push_back(std::move(c.data));
  collection_.reset();
  collection_pending_ = false;
  if (on_diagnosis_) on_diagnosis_(sessions_.back());
}

double Controller::mean_reservoir_fill() const {
  if (reservoirs_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [flow, reservoir] : reservoirs_) {
    const auto volume = std::max<std::size_t>(reservoir.config().volume, 1);
    sum += static_cast<double>(reservoir.size()) /
           static_cast<double>(volume);
  }
  return sum / static_cast<double>(reservoirs_.size());
}

const detect::Reservoir* Controller::reservoir(const net::FlowId& flow) const {
  const auto it = reservoirs_.find(flow);
  return it != reservoirs_.end() ? &it->second : nullptr;
}

}  // namespace mars::control
