#include "control/controller.hpp"

#include <algorithm>
#include <optional>

#include "sim/simulator.hpp"

namespace mars::control {

Controller::Controller(net::Network& network,
                       dataplane::MarsPipeline& pipeline,
                       ControllerConfig config)
    : network_(&network), pipeline_(&pipeline), config_(config) {}

std::vector<net::SwitchId> Controller::edge_switches() const {
  return network_->topology().switches_in_layer(net::Layer::kEdge);
}

void Controller::start() {
  network_->simulator().schedule_in(config_.poll_interval, [this] {
    poll_once();
    start();  // reschedule
  });
}

void Controller::poll_once() {
  const sim::Time now = network_->simulator().now();
  std::optional<obs::SpanTracer::WallSpan> span;
  std::uint64_t samples = 0;
  if (tracer_ != nullptr) {
    span.emplace(tracer_->wall_span("controller.poll", "control"));
  }
  for (const net::SwitchId sw : edge_switches()) {
    const sim::Time watermark =
        poll_watermark_.count(sw) ? poll_watermark_[sw] : -1;
    for (const auto& rec : pipeline_->ring_snapshot(sw)) {
      if (rec.sink_timestamp <= watermark) continue;
      overheads_.poll_bytes += config_.poll_sample_bytes;
      ++samples;
      auto [it, inserted] = reservoirs_.try_emplace(
          rec.flow, config_.reservoir, reservoir_seed_++);
      it->second.input(static_cast<double>(rec.latency));
      if (it->second.warmed_up()) {
        pipeline_->set_threshold(
            rec.flow, static_cast<sim::Time>(it->second.threshold()));
      }
    }
    poll_watermark_[sw] = now;
  }
  if (span) span->arg({"samples", samples});
}

void Controller::on_notification(const dataplane::Notification& n) {
  ++overheads_.notifications_seen;
  const sim::Time now = network_->simulator().now();
  if (collection_pending_) {
    // A collection is already scheduled: fold this notification into it.
    pending_.push_back(n);
    if (tracer_ != nullptr) {
      tracer_->instant("controller.fold_into_pending", "control", now,
                       {{"kind", dataplane::kind_name(n.kind)}});
    }
    return;
  }
  if (last_response_ >= 0 && now - last_response_ < config_.response_window) {
    ++overheads_.notifications_suppressed;
    if (tracer_ != nullptr) {
      tracer_->instant("controller.window_suppressed", "control", now,
                       {{"kind", dataplane::kind_name(n.kind)}});
    }
    return;
  }
  last_response_ = now;
  pending_.clear();
  pending_.push_back(n);
  if (config_.collection_delay > 0) {
    collection_pending_ = true;
    network_->simulator().schedule_in(config_.collection_delay, [this, n] {
      collection_pending_ = false;
      collect_and_diagnose(n);
    });
  } else {
    collect_and_diagnose(n);
  }
}

void Controller::collect_and_diagnose(const dataplane::Notification& n) {
  DiagnosisData data;
  data.trigger = n;
  data.notifications = pending_;
  pending_.clear();
  data.collected_at = network_->simulator().now();
  data.default_threshold = pipeline_->config().default_threshold;
  // MARS only drains edge switches (Motivation #1: offload core switches).
  {
    std::optional<obs::SpanTracer::WallSpan> span;
    if (tracer_ != nullptr) {
      span.emplace(tracer_->wall_span("controller.ring_drain", "control"));
    }
    for (const net::SwitchId sw : edge_switches()) {
      for (auto& rec : pipeline_->ring_snapshot(sw)) {
        overheads_.diagnosis_bytes += telemetry::RtRecord::kWireBytes;
        data.records.push_back(rec);
      }
    }
    if (span) {
      span->arg({"records", std::uint64_t{data.records.size()}});
    }
  }
  for (const auto& [flow, reservoir] : reservoirs_) {
    if (reservoir.warmed_up()) {
      data.thresholds[flow] = static_cast<sim::Time>(reservoir.threshold());
    }
  }
  ++overheads_.diagnoses;
  if (tracer_ != nullptr) {
    // The posterior-collection window in virtual time: notification ->
    // ring-table drain.
    tracer_->complete(
        "collection_window", "control", n.when, data.collected_at,
        {{"trigger", dataplane::kind_name(n.kind)},
         {"notifications", std::uint64_t{data.notifications.size()}},
         {"records", std::uint64_t{data.records.size()}}});
  }
  sessions_.push_back(data);
  if (on_diagnosis_) on_diagnosis_(sessions_.back());
}

double Controller::mean_reservoir_fill() const {
  if (reservoirs_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [flow, reservoir] : reservoirs_) {
    const auto volume = std::max<std::size_t>(reservoir.config().volume, 1);
    sum += static_cast<double>(reservoir.size()) /
           static_cast<double>(volume);
  }
  return sum / static_cast<double>(reservoirs_.size());
}

const detect::Reservoir* Controller::reservoir(const net::FlowId& flow) const {
  const auto it = reservoirs_.find(flow);
  return it != reservoirs_.end() ? &it->second : nullptr;
}

}  // namespace mars::control
