#pragma once
// Control-plane PathID registry (paper §4.1, §5.5).
//
// The control plane enumerates every shortest edge-to-edge path, replays
// the data plane's per-hop PathID hash for each, and resolves hash
// conflicts by installing MAT entries that override the control word at
// the first hop where the colliding paths diverge. The result is
//   (a) the PathID -> switch-sequence map used to decompress diagnosis
//       reports, and
//   (b) the conflict MAT the data plane needs, whose entry count is the
//       switch-memory cost compared against IntSight in §5.5.
//
// Construction is a parallel pass over the `src/parallel` thread pool:
// path enumeration splits per source edge switch (the same per-root task
// pattern as fsm::Engine), PathID replay and collision grouping split
// over contiguous path-index chunks. The hard contract is that the MAT,
// the path order, and every collision count are bit-identical at every
// thread count — the sequential build is just the 1-thread special case.
//
// A registry that fails to resolve every collision is a *diagnosed*
// condition, not a silent one: ambiguous PathIDs decompress to nullptr
// (never to an arbitrary first-wins path), the PathAuditReport carries
// the residual counts, and scenario validation rejects the configuration.

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "telemetry/path_id.hpp"

namespace mars::obs {
class EventLog;
}

namespace mars::parallel {
class ThreadPool;
}

namespace mars::control {

/// A path with its precomputed hop coordinates and final PathID.
struct RegisteredPath {
  net::SwitchPath switches;
  std::uint32_t path_id = 0;

  struct Hop {
    net::SwitchId sw;
    net::PortId in_port;
    net::PortId out_port;
  };
  std::vector<Hop> hops;
};

/// Everything scenario validation, the CLI `--path-audit` view, and the
/// collision-rate bench need to judge a built registry. All counts are
/// deterministic; `build_seconds` is the one wall-clock field.
struct PathAuditReport {
  telemetry::PathIdConfig config;
  std::size_t path_count = 0;
  std::size_t hop_count = 0;
  std::size_t id_space = 0;  ///< 2^width_bits (distinct PathID values)
  std::size_t initial_collisions = 0;
  std::size_t residual_collisions = 0;  ///< 0 iff conflict_free
  std::size_t ambiguous_ids = 0;  ///< PathIDs shared by >1 path after build
  std::size_t mat_entries = 0;
  std::size_t mat_overwrites = 0;  ///< last-resort clobbers (expected 0)
  int rounds = 0;                  ///< resolution rounds actually run
  /// More paths than PathID values: resolution is skipped because no MAT
  /// can make the mapping injective (pigeonhole).
  bool pigeonhole_infeasible = false;
  bool conflict_free = false;
  std::size_t mars_memory_bytes = 0;
  std::size_t intsight_memory_bytes = 0;
  std::size_t build_threads = 1;
  double build_seconds = 0.0;  ///< wall clock; nondeterministic
};

class PathRegistry {
 public:
  /// Enumerates all shortest edge-to-edge paths and resolves conflicts.
  /// `threads`: 1 = sequential (the default, and the reference the
  /// parallel build must reproduce bit-for-bit), 0 = hardware
  /// concurrency, N = a private N-thread pool for the build only.
  PathRegistry(const net::Topology& topology, const net::RoutingTable& routing,
               telemetry::PathIdConfig config, std::size_t threads = 1);

  /// Decompress a PathID into its switch sequence. nullptr if unknown
  /// *or ambiguous* — an ambiguous id (only possible when the registry is
  /// not conflict_free()) must never decompress to an arbitrary survivor,
  /// so it counts in ambiguous_lookups() and returns nothing.
  [[nodiscard]] const net::SwitchPath* lookup(std::uint32_t path_id) const;

  /// True when `path_id` is shared by more than one registered path.
  [[nodiscard]] bool is_ambiguous(std::uint32_t path_id) const {
    return ambiguous_.count(path_id) > 0;
  }
  /// How many lookup() calls hit an ambiguous id (thread-safe counter).
  [[nodiscard]] std::uint64_t ambiguous_lookups() const {
    return ambiguous_lookups_.load(std::memory_order_relaxed);
  }

  /// The conflict-resolution MAT to install in the data plane.
  [[nodiscard]] const telemetry::ControlMat& mat() const { return mat_; }
  [[nodiscard]] std::size_t mat_entry_count() const { return mat_.size(); }

  [[nodiscard]] std::size_t path_count() const { return paths_.size(); }
  [[nodiscard]] const std::vector<RegisteredPath>& paths() const {
    return paths_;
  }
  /// Collisions seen before any MAT entry was installed.
  [[nodiscard]] std::size_t initial_collisions() const {
    return audit_.initial_collisions;
  }
  /// True if every registered path maps to a distinct PathID.
  [[nodiscard]] bool conflict_free() const { return audit_.conflict_free; }

  /// The full construction audit (counts are deterministic).
  [[nodiscard]] const PathAuditReport& audit() const { return audit_; }

  /// Emit the audit as structured events: one info summary, plus an error
  /// event when collisions survived resolution.
  void log_audit(obs::EventLog& log, sim::Time at) const;

  // ---- §5.5 switch-memory accounting ----
  /// MARS: one ~10-byte MAT entry per unresolved hash conflict.
  [[nodiscard]] std::size_t mars_memory_bytes() const {
    return mat_.size() * kMarsMatEntryBytes;
  }
  /// IntSight: one ~7-byte MAT entry per hop of every path.
  [[nodiscard]] std::size_t intsight_memory_bytes() const;

  static constexpr std::size_t kMarsMatEntryBytes = 10;
  static constexpr std::size_t kIntSightMatEntryBytes = 7;

 private:
  using Groups = std::unordered_map<std::uint32_t, std::vector<std::size_t>>;

  void enumerate(const net::RoutingTable& routing, parallel::ThreadPool* pool);
  void build_hops(RegisteredPath& path) const;
  [[nodiscard]] std::uint32_t replay(const RegisteredPath& path) const;
  void replay_all(parallel::ThreadPool* pool);
  [[nodiscard]] Groups group_paths(parallel::ThreadPool* pool) const;
  [[nodiscard]] Groups resolve_conflicts(parallel::ThreadPool* pool);
  void separate(const RegisteredPath& a, const RegisteredPath& b);
  void finalize(const Groups& groups);

  const net::Topology* topology_;
  telemetry::PathIdConfig config_;
  std::vector<RegisteredPath> paths_;
  telemetry::ControlMat mat_;
  std::unordered_map<std::uint32_t, std::size_t> id_to_path_;
  std::unordered_set<std::uint32_t> ambiguous_;
  mutable std::atomic<std::uint64_t> ambiguous_lookups_{0};
  PathAuditReport audit_;
  std::uint32_t next_control_ = 1;
};

}  // namespace mars::control
