#pragma once
// Control-plane PathID registry (paper §4.1, §5.5).
//
// The control plane enumerates every shortest edge-to-edge path, replays
// the data plane's per-hop PathID hash for each, and resolves hash
// conflicts by installing MAT entries that override the control word at
// the first hop where the colliding paths diverge. The result is
//   (a) the PathID -> switch-sequence map used to decompress diagnosis
//       reports, and
//   (b) the conflict MAT the data plane needs, whose entry count is the
//       switch-memory cost compared against IntSight in §5.5.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "telemetry/path_id.hpp"

namespace mars::control {

/// A path with its precomputed hop coordinates and final PathID.
struct RegisteredPath {
  net::SwitchPath switches;
  std::uint32_t path_id = 0;

  struct Hop {
    net::SwitchId sw;
    net::PortId in_port;
    net::PortId out_port;
  };
  std::vector<Hop> hops;
};

class PathRegistry {
 public:
  /// Enumerates all shortest edge-to-edge paths and resolves conflicts.
  PathRegistry(const net::Topology& topology, const net::RoutingTable& routing,
               telemetry::PathIdConfig config);

  /// Decompress a PathID into its switch sequence; nullptr if unknown.
  [[nodiscard]] const net::SwitchPath* lookup(std::uint32_t path_id) const;

  /// The conflict-resolution MAT to install in the data plane.
  [[nodiscard]] const telemetry::ControlMat& mat() const { return mat_; }
  [[nodiscard]] std::size_t mat_entry_count() const { return mat_.size(); }

  [[nodiscard]] std::size_t path_count() const { return paths_.size(); }
  [[nodiscard]] const std::vector<RegisteredPath>& paths() const {
    return paths_;
  }
  /// Collisions seen before any MAT entry was installed.
  [[nodiscard]] std::size_t initial_collisions() const {
    return initial_collisions_;
  }
  /// True if every registered path maps to a distinct PathID.
  [[nodiscard]] bool conflict_free() const { return conflict_free_; }

  // ---- §5.5 switch-memory accounting ----
  /// MARS: one ~10-byte MAT entry per unresolved hash conflict.
  [[nodiscard]] std::size_t mars_memory_bytes() const {
    return mat_.size() * kMarsMatEntryBytes;
  }
  /// IntSight: one ~7-byte MAT entry per hop of every path.
  [[nodiscard]] std::size_t intsight_memory_bytes() const;

  static constexpr std::size_t kMarsMatEntryBytes = 10;
  static constexpr std::size_t kIntSightMatEntryBytes = 7;

 private:
  void build_hops(RegisteredPath& path) const;
  [[nodiscard]] std::uint32_t replay(const RegisteredPath& path) const;
  void resolve_conflicts();
  void separate(const RegisteredPath& a, const RegisteredPath& b);

  const net::Topology* topology_;
  telemetry::PathIdConfig config_;
  std::vector<RegisteredPath> paths_;
  telemetry::ControlMat mat_;
  std::unordered_map<std::uint32_t, std::size_t> id_to_path_;
  std::size_t initial_collisions_ = 0;
  bool conflict_free_ = false;
  std::uint32_t next_control_ = 1;
};

}  // namespace mars::control
