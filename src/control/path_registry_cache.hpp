#pragma once
// Process-wide PathRegistry cache.
//
// Registry construction is the dominant setup cost at scale (k=16:
// ~990k paths, ~5M hops replayed per resolution round), yet its output
// depends only on the topology's wiring and the PathIdConfig — not on
// link capacities, ECMP weights, seeds, or anything else a sweep varies
// between trials. Caching on (structural fingerprint, hash, width) turns
// run_sweep's N identical builds, validate-then-run double construction,
// and repeated bench sections into a single build.
//
// Entries are shared immutable snapshots (shared_ptr<const PathRegistry>)
// so a trial can outlive a clear(). The only mutable state on a cached
// registry is the relaxed ambiguous_lookups() counter, and validated
// scenarios never take that branch (non-conflict-free registries are
// rejected before deployment).

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "control/path_registry.hpp"

namespace mars::control {

struct PathRegistryCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class PathRegistryCache {
 public:
  static PathRegistryCache& instance();

  /// Return the cached registry for (topology structure, config), building
  /// it on first use. `threads` only affects a cache miss: 0 = hardware
  /// concurrency for the build (the result is bit-identical either way —
  /// see PathRegistry's determinism contract, which is what makes the
  /// cache sound). Concurrent first builds of the same key serialize.
  std::shared_ptr<const PathRegistry> get_or_build(
      const net::Topology& topology, const net::RoutingTable& routing,
      telemetry::PathIdConfig config, std::size_t threads = 0);

  [[nodiscard]] PathRegistryCacheStats stats() const;

  /// Drop all entries (tests; long-lived processes cycling topologies).
  /// Outstanding shared_ptrs keep their registries alive.
  void clear();

 private:
  struct Key {
    std::uint64_t fingerprint = 0;
    telemetry::HashKind hash = telemetry::HashKind::kCrc16;
    std::uint32_t width_bits = 16;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.fingerprint);
      h = h * 1000003u ^ static_cast<std::size_t>(k.hash);
      h = h * 1000003u ^ k.width_bits;
      return h;
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const PathRegistry>, KeyHash>
      entries_;
  PathRegistryCacheStats stats_;
};

}  // namespace mars::control
