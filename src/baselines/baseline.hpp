#pragma once
// Common interface for the comparison systems of §5.4–5.5: SpiderMon,
// IntSight, and SyNDB. Each is implemented as a PacketObserver (its data
// plane) plus a diagnose() step producing the same ranked CulpritList as
// MARS, so Table 1 and Fig. 9 grade all four systems identically.

#include <cctype>
#include <string>
#include <string_view>

#include "net/observer.hpp"
#include "obs/registry.hpp"
#include "rca/types.hpp"
#include "sim/time.hpp"

namespace mars::baselines {

/// Byte accounting for Fig. 9.
struct OverheadReport {
  std::uint64_t telemetry_bytes = 0;  ///< in-band header bytes over links
  std::uint64_t diagnosis_bytes = 0;  ///< data-plane -> control-plane bytes
};

class BaselineSystem : public net::PacketObserver {
 public:
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Produce the ranked culprit list. Systems that never triggered return
  /// an empty list (the paper's "-" cells).
  [[nodiscard]] virtual rca::CulpritList diagnose() = 0;

  [[nodiscard]] virtual OverheadReport overheads() const = 0;

  /// True once the system's own detection logic fired.
  [[nodiscard]] virtual bool triggered() const = 0;

  /// Export this system's overhead accounting as lazy gauges:
  ///   {lowercased name()}.telemetry_bytes / .diagnosis_bytes / .triggered
  /// so Fig. 9 reads every system from one registry. Gauges capture `this`;
  /// remove them (or snapshot) before the system is destroyed.
  virtual void register_metrics(obs::MetricsRegistry& registry) {
    std::string prefix;
    for (const char c : name()) {
      prefix.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    prefix.push_back('.');
    registry.gauge(prefix + "telemetry_bytes", [this] {
      return static_cast<double>(overheads().telemetry_bytes);
    });
    registry.gauge(prefix + "diagnosis_bytes", [this] {
      return static_cast<double>(overheads().diagnosis_bytes);
    });
    registry.gauge(prefix + "triggered",
                   [this] { return triggered() ? 1.0 : 0.0; });
  }
};

}  // namespace mars::baselines
