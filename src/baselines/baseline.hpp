#pragma once
// The comparison systems of §5.4–5.5: SpiderMon, IntSight, and SyNDB.
// Each is a systems::TelemetrySystem (the interface MARS also implements,
// so Table 1 and Fig. 9 grade all four identically) whose data plane is a
// PacketObserver attached to every switch.

#include "net/observer.hpp"
#include "rca/types.hpp"
#include "systems/telemetry_system.hpp"

namespace mars::baselines {

using OverheadReport = systems::OverheadReport;

class BaselineSystem : public systems::TelemetrySystem,
                       public net::PacketObserver {
 public:
  /// Most baselines self-trigger and ignore the query; they implement the
  /// legacy no-argument diagnose(). SyNDB overrides the query form to use
  /// the expert hint.
  [[nodiscard]] rca::CulpritList diagnose(
      const systems::DiagnosisQuery& /*query*/) override {
    return diagnose();
  }

  /// Produce the ranked culprit list from the system's own state alone.
  [[nodiscard]] virtual rca::CulpritList diagnose() = 0;
};

}  // namespace mars::baselines
