#include "baselines/syndb.hpp"

#include <algorithm>
#include <map>

#include "sim/simulator.hpp"

namespace mars::baselines {

SynDb::SynDb(SynDbConfig config) : config_(config) {}

void SynDb::on_ingress(net::SwitchContext& ctx, net::Packet& pkt) {
  records_.push_back(PRecord{pkt.id, pkt.flow, ctx.id, 0, ctx.sim.now(), 0, 0,
                             PRecord::Kind::kIngress});
}

void SynDb::on_enqueue(net::SwitchContext& /*ctx*/, net::Packet& pkt,
                       net::PortId /*out*/, std::uint32_t queue_depth) {
  pending_depth_[pkt.id] = queue_depth;
}

void SynDb::on_egress(net::SwitchContext& ctx, net::Packet& pkt,
                      net::PortId out, sim::Time hop_latency) {
  std::uint32_t depth = 0;
  if (const auto it = pending_depth_.find(pkt.id);
      it != pending_depth_.end()) {
    depth = it->second;
    pending_depth_.erase(it);
  }
  records_.push_back(PRecord{pkt.id, pkt.flow, ctx.id, out, ctx.sim.now(),
                             hop_latency, depth, PRecord::Kind::kEgress});
}

void SynDb::on_deliver(net::SwitchContext& /*ctx*/, net::Packet& pkt) {
  pending_depth_.erase(pkt.id);
}

void SynDb::on_drop(net::SwitchContext& ctx, const net::Packet& pkt,
                    net::PortId out) {
  // A real SyNDB sees the drop implicitly (record present at switch k,
  // absent at k+1); we record the terminal hop explicitly to run the same
  // differential query cheaply.
  records_.push_back(PRecord{pkt.id, pkt.flow, ctx.id, out, ctx.sim.now(), 0,
                             0, PRecord::Kind::kDrop});
  pending_depth_.erase(pkt.id);
}

rca::CulpritList SynDb::diagnose_with_hint(faults::FaultKind hint,
                                           sim::Time now) {
  switch (hint) {
    case faults::FaultKind::kMicroBurst:
      return query_burst(now);
    case faults::FaultKind::kEcmpImbalance:
      return query_ecmp(now);
    case faults::FaultKind::kProcessRateDecrease:
      return query_latency_per_switch(now,
                                      rca::CauseKind::kProcessRateDecrease);
    case faults::FaultKind::kDelay:
      return query_latency_per_switch(now, rca::CauseKind::kDelay);
    case faults::FaultKind::kDrop:
    case faults::FaultKind::kLinkFlap:
    case faults::FaultKind::kAsymmetricLoss:
      return query_drop(now);
    case faults::FaultKind::kSlowDrain:
      return query_latency_per_switch(now,
                                      rca::CauseKind::kProcessRateDecrease);
    case faults::FaultKind::kLoadGatedDelay:
      return query_latency_per_switch(now, rca::CauseKind::kDelay);
    case faults::FaultKind::kNotificationLoss:
    case faults::FaultKind::kReadOutage:
      return {};  // channel chaos is not a queryable network incident
  }
  return {};
}

rca::CulpritList SynDb::query_latency_per_switch(sim::Time now,
                                                 rca::CauseKind cause) {
  // Per-switch mean hop latency: problem window vs everything before.
  struct Acc {
    double base_sum = 0;
    std::uint64_t base_n = 0;
    double prob_sum = 0;
    std::uint64_t prob_n = 0;
  };
  std::map<net::SwitchId, Acc> acc;
  const sim::Time from = now - config_.window;
  for (const auto& r : records_) {
    if (r.kind != PRecord::Kind::kEgress) continue;
    Acc& a = acc[r.sw];
    if (r.when >= from) {
      a.prob_sum += static_cast<double>(r.hop_latency);
      ++a.prob_n;
    } else {
      a.base_sum += static_cast<double>(r.hop_latency);
      ++a.base_n;
    }
  }
  rca::CulpritList out;
  for (const auto& [sw, a] : acc) {
    if (a.prob_n == 0) continue;
    const double prob = a.prob_sum / static_cast<double>(a.prob_n);
    const double base =
        a.base_n > 0 ? a.base_sum / static_cast<double>(a.base_n) : 1.0;
    const double score = prob / std::max(base, 1.0);
    rca::Culprit c;
    c.level = rca::CulpritLevel::kSwitch;
    c.location = {sw};
    c.cause = cause;
    c.score = score;
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  if (out.size() > config_.max_culprits) out.resize(config_.max_culprits);
  return out;
}

rca::CulpritList SynDb::query_drop(sim::Time now) {
  // Differential per-switch loss in the window.
  std::map<net::SwitchId, std::uint64_t> drops;
  const sim::Time from = now - config_.window;
  for (const auto& r : records_) {
    if (r.kind == PRecord::Kind::kDrop && r.when >= from) ++drops[r.sw];
  }
  rca::CulpritList out;
  for (const auto& [sw, n] : drops) {
    rca::Culprit c;
    c.level = rca::CulpritLevel::kSwitch;
    c.location = {sw};
    c.cause = rca::CauseKind::kDrop;
    c.score = static_cast<double>(n);
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  if (out.size() > config_.max_culprits) out.resize(config_.max_culprits);
  return out;
}

rca::CulpritList SynDb::query_burst(sim::Time now) {
  // Per-flow pps: problem window vs baseline.
  struct Acc {
    std::uint64_t base = 0;
    std::uint64_t prob = 0;
  };
  std::map<net::FlowId, Acc> acc;
  const sim::Time from = now - config_.window;
  sim::Time earliest = now;
  for (const auto& r : records_) {
    if (r.kind != PRecord::Kind::kIngress) continue;
    if (r.flow.source != r.sw) continue;  // count once, at the source
    earliest = std::min(earliest, r.when);
    if (r.when >= from) {
      ++acc[r.flow].prob;
    } else {
      ++acc[r.flow].base;
    }
  }
  const double base_seconds =
      std::max(sim::to_seconds(from - earliest), 1e-3);
  const double prob_seconds = std::max(sim::to_seconds(config_.window), 1e-3);
  rca::CulpritList out;
  for (const auto& [flow, a] : acc) {
    const double base_pps = static_cast<double>(a.base) / base_seconds;
    const double prob_pps = static_cast<double>(a.prob) / prob_seconds;
    const double score = prob_pps / std::max(base_pps, 1.0);
    rca::Culprit c;
    c.level = rca::CulpritLevel::kFlow;
    c.flow = flow;
    c.cause = rca::CauseKind::kMicroBurst;
    c.score = score;
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  if (out.size() > config_.max_culprits) out.resize(config_.max_culprits);
  return out;
}

rca::CulpritList SynDb::query_ecmp(sim::Time now) {
  // Per-switch egress-port split: problem window vs baseline. The faulty
  // chooser's split skews the most.
  struct PortCounts {
    std::map<net::PortId, std::uint64_t> base;
    std::map<net::PortId, std::uint64_t> prob;
  };
  std::map<net::SwitchId, PortCounts> acc;
  const sim::Time from = now - config_.window;
  for (const auto& r : records_) {
    if (r.kind != PRecord::Kind::kEgress) continue;
    auto& pc = acc[r.sw];
    auto& counts = (r.when >= from) ? pc.prob : pc.base;
    ++counts[r.out_port];
  }
  auto imbalance = [](const std::map<net::PortId, std::uint64_t>& counts) {
    if (counts.size() < 2) return 1.0;
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto& [port, n] : counts) {
      lo = std::min(lo, n);
      hi = std::max(hi, n);
    }
    return static_cast<double>(hi) /
           static_cast<double>(std::max<std::uint64_t>(lo, 1));
  };
  rca::CulpritList out;
  for (const auto& [sw, pc] : acc) {
    const double score = imbalance(pc.prob) / std::max(imbalance(pc.base), 1.0);
    rca::Culprit c;
    c.level = rca::CulpritLevel::kSwitch;
    c.location = {sw};
    c.cause = rca::CauseKind::kEcmpImbalance;
    c.score = score;
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  if (out.size() > config_.max_culprits) out.resize(config_.max_culprits);
  return out;
}

OverheadReport SynDb::overheads() const {
  OverheadReport report;
  report.telemetry_bytes = 0;  // no INT headers
  report.diagnosis_bytes =
      static_cast<std::uint64_t>(records_.size()) * config_.record_bytes;
  return report;
}

}  // namespace mars::baselines
