#include "baselines/spidermon.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "sim/simulator.hpp"

namespace mars::baselines {
namespace {

std::uint64_t queue_key(net::SwitchId sw, net::PortId port) {
  return (static_cast<std::uint64_t>(sw) << 16) | port;
}

}  // namespace

SpiderMon::SpiderMon(std::size_t switch_count, SpiderMonConfig config)
    : config_(config), switch_count_(switch_count) {}

void SpiderMon::on_enqueue(net::SwitchContext& ctx, net::Packet& pkt,
                           net::PortId out, std::uint32_t /*queue_depth*/) {
  auto& queue = queues_[queue_key(ctx.id, out)];
  // The arriving packet waits for everything already queued (including its
  // own flow's packets — the self-burst blind spot).
  for (const net::FlowId& holder : queue) {
    edges_.push_back(WaitForEdge{ctx.sim.now(), pkt.flow, holder, ctx.id});
  }
  queue.push_back(pkt.flow);
}

void SpiderMon::on_egress(net::SwitchContext& ctx, net::Packet& pkt,
                          net::PortId out, sim::Time hop_latency) {
  auto& queue = queues_[queue_key(ctx.id, out)];
  if (!queue.empty()) queue.pop_front();
  overheads_.telemetry_bytes += config_.header_bytes;

  // Accumulate queueing delay into the packet's in-band header.
  sim::Time& carried = carried_delay_[pkt.id];
  carried += hop_latency;
  if (!triggered_ && carried > config_.queue_delay_threshold) {
    triggered_ = true;
    trigger_time_ = ctx.sim.now();
  }
}

void SpiderMon::on_deliver(net::SwitchContext& /*ctx*/, net::Packet& pkt) {
  carried_delay_.erase(pkt.id);
}

void SpiderMon::on_drop(net::SwitchContext& /*ctx*/, const net::Packet& pkt,
                        net::PortId /*out*/) {
  // SpiderMon has no drop trigger (paper §5.4); just stop tracking.
  carried_delay_.erase(pkt.id);
}

rca::CulpritList SpiderMon::diagnose() {
  if (!triggered_) return {};  // nothing to collect: it never noticed
  const sim::Time from = trigger_time_ - config_.window;

  // Wait-For Graph over the problem window.
  std::map<net::FlowId, std::int64_t> in_degree, out_degree;
  std::map<net::SwitchId, std::int64_t> switch_weight;
  for (const auto& e : edges_) {
    if (e.when < from) continue;
    ++in_degree[e.holder];
    ++out_degree[e.waiter];
    ++switch_weight[e.at];
  }

  rca::CulpritList out;
  // Flow culprits: other flows wait for the culprit, so it has a large
  // indegree and small outdegree.
  for (const auto& [flow, in] : in_degree) {
    const std::int64_t score = in - out_degree[flow];
    if (score <= 0) continue;
    rca::Culprit c;
    c.level = rca::CulpritLevel::kFlow;
    c.flow = flow;
    c.cause = rca::CauseKind::kMicroBurst;
    c.score = static_cast<double>(score);
    out.push_back(std::move(c));
  }
  // Switch culprits: where the wait-for relations concentrate.
  for (const auto& [sw, weight] : switch_weight) {
    rca::Culprit c;
    c.level = rca::CulpritLevel::kSwitch;
    c.location = {sw};
    c.cause = rca::CauseKind::kProcessRateDecrease;
    c.score = static_cast<double>(weight);
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const rca::Culprit& a, const rca::Culprit& b) {
              return a.score > b.score;
            });
  if (out.size() > config_.max_culprits) out.resize(config_.max_culprits);
  return out;
}

OverheadReport SpiderMon::overheads() const {
  OverheadReport report = overheads_;
  if (triggered_) {
    // On trigger, ALL switches upload their wait-for state. A switch
    // aggregates repeat edges into counters, so the upload is one record
    // per distinct (switch, waiter, holder) triple in the window.
    const sim::Time from = trigger_time_ - config_.window;
    std::set<std::tuple<net::SwitchId, net::FlowId, net::FlowId>> distinct;
    for (const auto& e : edges_) {
      if (e.when >= from) distinct.emplace(e.at, e.waiter, e.holder);
    }
    report.diagnosis_bytes += distinct.size() * config_.record_bytes;
  }
  return report;
}

}  // namespace mars::baselines
