#pragma once
// IntSight (Marques et al., CoNEXT'20) — reimplementation of its
// diagnosis-relevant subset, as characterized in MARS §3/§5.4:
//
//   - a large per-packet INT header (33 bytes) carrying e2e delay and a
//     per-switch contention bitmap (48-bit path map);
//   - a switch marks its bit when the packet's queueing delta there
//     exceeds a static contention threshold;
//   - the sink checks a static per-flow SLO on e2e latency and, at most
//     once per epoch, sends a conditional flow report to the controller;
//   - flow-level drop detection by comparing per-epoch end-to-end counts;
//     it cannot localize drops to a switch or port.
//
// Reproduced limitations: static thresholds; contention points only track
// queueing (delay faults mark nothing); reports aggregate poorly into a
// ranked metric, so its recall improves only near Top-5.

#include <unordered_map>
#include <vector>

#include "baselines/baseline.hpp"
#include "net/types.hpp"
#include "telemetry/epoch.hpp"

namespace mars::baselines {

struct IntSightConfig {
  /// Static per-flow SLO on end-to-end latency.
  sim::Time slo = 10 * sim::kMillisecond;
  /// A hop marks its contention bit above this queueing delta.
  sim::Time contention_threshold = 1 * sim::kMillisecond;
  sim::Time epoch_period = telemetry::kDefaultEpochPeriod;
  std::uint32_t header_bytes = 33;
  std::uint32_t report_bytes = 24;
  std::size_t max_culprits = 20;
};

class IntSight final : public BaselineSystem {
 public:
  explicit IntSight(IntSightConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "IntSight"; }
  [[nodiscard]] rca::CulpritList diagnose() override;
  [[nodiscard]] OverheadReport overheads() const override;
  [[nodiscard]] bool triggered() const override { return !reports_.empty(); }

  /// Flow reports emitted so far (inspection/tests).
  struct FlowReport {
    net::FlowId flow;
    telemetry::EpochId epoch = 0;
    std::uint64_t contention_mask = 0;  ///< bit per switch id (48-bit map)
    std::uint32_t violations = 0;
    std::uint32_t packets = 0;
    std::uint32_t dropped_estimate = 0;
    std::vector<net::SwitchId> sample_path;  ///< a violating packet's path
  };
  [[nodiscard]] const std::vector<FlowReport>& reports() const {
    return reports_;
  }

  // ---- PacketObserver ----
  void on_ingress(net::SwitchContext& ctx, net::Packet& pkt) override;
  void on_egress(net::SwitchContext& ctx, net::Packet& pkt, net::PortId out,
                 sim::Time hop_latency) override;
  void on_deliver(net::SwitchContext& ctx, net::Packet& pkt) override;

 private:
  struct EpochState {
    telemetry::EpochId epoch = 0;
    std::uint64_t contention_mask = 0;
    std::uint32_t violations = 0;
    std::uint32_t packets = 0;
    std::vector<net::SwitchId> sample_path;
  };
  struct SourceCount {
    telemetry::EpochId epoch = 0;
    std::uint32_t count = 0;
    std::uint32_t previous = 0;
  };

  void flush(const net::FlowId& flow, EpochState& state);

  IntSightConfig config_;
  std::unordered_map<std::uint64_t, std::uint64_t> carried_mask_;  // pkt->bits
  std::unordered_map<net::FlowId, EpochState> sink_state_;
  std::unordered_map<net::FlowId, SourceCount> source_counts_;
  std::unordered_map<net::FlowId, SourceCount> sink_counts_;
  std::vector<FlowReport> reports_;
  OverheadReport overheads_;
};

}  // namespace mars::baselines
