#include "baselines/intsight.hpp"

#include <algorithm>
#include <map>

#include "sim/simulator.hpp"

namespace mars::baselines {

IntSight::IntSight(IntSightConfig config) : config_(config) {}

void IntSight::on_ingress(net::SwitchContext& ctx, net::Packet& pkt) {
  if (ctx.id != pkt.flow.source) return;
  auto& sc = source_counts_[pkt.flow];
  const auto epoch = telemetry::epoch_of(ctx.sim.now(), config_.epoch_period);
  if (epoch != sc.epoch) {
    sc.previous = (epoch == sc.epoch + 1) ? sc.count : 0;
    sc.epoch = epoch;
    sc.count = 0;
  }
  ++sc.count;
}

void IntSight::on_egress(net::SwitchContext& ctx, net::Packet& pkt,
                         net::PortId /*out*/, sim::Time hop_latency) {
  overheads_.telemetry_bytes += config_.header_bytes;
  if (hop_latency > config_.contention_threshold && ctx.id < 64) {
    carried_mask_[pkt.id] |= (1ull << ctx.id);
  }
}

void IntSight::flush(const net::FlowId& flow, EpochState& state) {
  if (state.violations == 0) return;  // conditional report: violations only
  FlowReport report;
  report.flow = flow;
  report.epoch = state.epoch;
  report.contention_mask = state.contention_mask;
  report.violations = state.violations;
  report.packets = state.packets;
  report.sample_path = state.sample_path;
  overheads_.diagnosis_bytes += config_.report_bytes;
  reports_.push_back(std::move(report));
}

void IntSight::on_deliver(net::SwitchContext& ctx, net::Packet& pkt) {
  const sim::Time now = ctx.sim.now();
  const auto epoch = telemetry::epoch_of(now, config_.epoch_period);
  auto& state = sink_state_[pkt.flow];
  if (epoch != state.epoch) {
    flush(pkt.flow, state);
    state = EpochState{};
    state.epoch = epoch;
  }
  ++state.packets;

  std::uint64_t mask = 0;
  if (const auto it = carried_mask_.find(pkt.id); it != carried_mask_.end()) {
    mask = it->second;
    carried_mask_.erase(it);
  }
  const sim::Time e2e = now - pkt.source_switch_time;
  if (e2e > config_.slo) {
    ++state.violations;
    state.contention_mask |= mask;
    if (state.sample_path.empty()) state.sample_path = pkt.true_path;
  }

  // Flow-level end-to-end count tracking (drop detection).
  auto& kc = sink_counts_[pkt.flow];
  if (epoch != kc.epoch) {
    // Compare the closed epoch's sink count against the source's.
    const auto& sc = source_counts_[pkt.flow];
    if (sc.epoch == epoch && sc.previous > kc.count + 2) {
      FlowReport report;
      report.flow = pkt.flow;
      report.epoch = kc.epoch;
      report.dropped_estimate = sc.previous - kc.count;
      overheads_.diagnosis_bytes += config_.report_bytes;
      reports_.push_back(std::move(report));
    }
    kc.previous = (epoch == kc.epoch + 1) ? kc.count : 0;
    kc.epoch = epoch;
    kc.count = 0;
  }
  ++kc.count;
}

rca::CulpritList IntSight::diagnose() {
  if (reports_.empty()) return {};

  // Rank switches by contention marks across violating reports; flows
  // with drop estimates become flow-level drop culprits (IntSight cannot
  // say which switch lost them). Anomalies that never build a queue leave
  // no contention marks — IntSight has nothing to rank then, the paper's
  // "-" cells for delay.
  std::map<net::SwitchId, double> contention_score;
  std::map<net::FlowId, double> drop_score;
  for (const auto& r : reports_) {
    for (net::SwitchId sw = 0; sw < 64; ++sw) {
      if (r.contention_mask & (1ull << sw)) {
        contention_score[sw] += r.violations;
      }
    }
    if (r.dropped_estimate > 0) {
      drop_score[r.flow] += r.dropped_estimate;
    }
  }

  rca::CulpritList out;
  for (const auto& [sw, score] : contention_score) {
    rca::Culprit c;
    c.level = rca::CulpritLevel::kSwitch;
    c.location = {sw};
    // IntSight reports contention points, not causes; the placeholder
    // cause is ignored by location-based grading.
    c.cause = rca::CauseKind::kProcessRateDecrease;
    c.score = score;
    out.push_back(std::move(c));
  }
  for (const auto& [flow, score] : drop_score) {
    rca::Culprit c;
    c.level = rca::CulpritLevel::kFlow;
    c.flow = flow;
    c.cause = rca::CauseKind::kDrop;
    c.score = score;
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const rca::Culprit& a, const rca::Culprit& b) {
              return a.score > b.score;
            });
  if (out.size() > config_.max_culprits) out.resize(config_.max_culprits);
  return out;
}

OverheadReport IntSight::overheads() const { return overheads_; }

}  // namespace mars::baselines
