#pragma once
// SyNDB (Kannan et al., NSDI'21) — reimplementation of its
// diagnosis-relevant subset, as characterized in MARS §5.4:
//
//   - no INT headers: every switch records a p-record per packet
//     (packet id, switch, ingress/egress timestamps, queue depth) and
//     streams them to the control plane — enormous diagnosis bandwidth,
//     zero telemetry bandwidth (Fig. 9);
//   - diagnosis is query-based and needs EXPERT KNOWLEDGE: the operator
//     must know which failure class to query for. We model that by
//     passing the injected fault kind as the query hint, exactly the
//     concession the paper makes ("we have to assume SyNDB knows the root
//     cause at first") — its Table 1 numbers are flagged as aided.
//
// With full per-switch packet histories the right query localizes almost
// anything; the price is the bandwidth shown in Fig. 9.

#include <unordered_map>
#include <vector>

#include "baselines/baseline.hpp"
#include "faults/injector.hpp"
#include "net/types.hpp"

namespace mars::baselines {

struct SynDbConfig {
  /// Bytes per p-record streamed to the control plane.
  std::uint32_t record_bytes = 40;
  /// Problem window examined by queries, counted back from the end.
  sim::Time window = 1 * sim::kSecond;
  std::size_t max_culprits = 20;
};

class SynDb final : public BaselineSystem {
 public:
  explicit SynDb(SynDbConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "SyNDB"; }
  /// Un-aided diagnosis: SyNDB has no trigger of its own; without the
  /// expert hint it cannot pick a query, so this returns nothing useful.
  [[nodiscard]] rca::CulpritList diagnose() override { return {}; }
  /// Query-based diagnosis: uses the expert hint when the query carries
  /// one (the gray cells of Table 1), otherwise falls back to un-aided.
  [[nodiscard]] rca::CulpritList diagnose(
      const systems::DiagnosisQuery& query) override {
    if (!query.hint) return diagnose();
    return diagnose_with_hint(*query.hint, query.incident_end);
  }
  /// Expert-aided diagnosis (the gray cells of Table 1).
  [[nodiscard]] rca::CulpritList diagnose_with_hint(faults::FaultKind hint,
                                                    sim::Time now);
  [[nodiscard]] OverheadReport overheads() const override;
  [[nodiscard]] bool triggered() const override {
    // Query-based: it "triggers" only when an operator asks.
    return !records_.empty();
  }

  // ---- PacketObserver ----
  void on_enqueue(net::SwitchContext& ctx, net::Packet& pkt, net::PortId out,
                  std::uint32_t queue_depth) override;
  void on_egress(net::SwitchContext& ctx, net::Packet& pkt, net::PortId out,
                 sim::Time hop_latency) override;
  void on_ingress(net::SwitchContext& ctx, net::Packet& pkt) override;
  void on_deliver(net::SwitchContext& ctx, net::Packet& pkt) override;
  void on_drop(net::SwitchContext& ctx, const net::Packet& pkt,
               net::PortId out) override;

 private:
  struct PRecord {
    std::uint64_t packet_id;
    net::FlowId flow;
    net::SwitchId sw;
    net::PortId out_port;
    sim::Time when;
    sim::Time hop_latency;   ///< set on egress records
    std::uint32_t queue_depth;
    enum class Kind : std::uint8_t { kIngress, kEgress, kDrop } kind;
  };

  rca::CulpritList query_latency_per_switch(sim::Time now,
                                            rca::CauseKind cause);
  rca::CulpritList query_drop(sim::Time now);
  rca::CulpritList query_burst(sim::Time now);
  rca::CulpritList query_ecmp(sim::Time now);

  SynDbConfig config_;
  std::vector<PRecord> records_;
  /// Queue depth observed at enqueue, pending the egress record.
  std::unordered_map<std::uint64_t, std::uint32_t> pending_depth_;
};

}  // namespace mars::baselines
