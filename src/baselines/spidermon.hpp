#pragma once
// SpiderMon (Wang et al., NSDI'22) — reimplementation of its
// diagnosis-relevant subset, as characterized in MARS §5.4/§6:
//
//   - every packet carries a small INT header (cumulative queueing delay,
//     4 bytes) — much lighter than IntSight's;
//   - a switch triggers when a packet's cumulative queueing delay exceeds
//     a *static* threshold; telemetry is then pulled from ALL switches
//     (including core), unlike MARS's edge-only collection;
//   - diagnosis builds a Wait-For Graph between flows that share queues in
//     the problem window and ranks by vertex degree (indegree −
//     outdegree); switch locations are ranked by wait-for concentration.
//
// Reproduced limitations: it senses only queueing anomalies, so delay and
// drop faults never trigger it; and a flow that bursts against itself has
// indegree ≈ outdegree, hiding the culprit.

#include <deque>
#include <unordered_map>
#include <vector>

#include "baselines/baseline.hpp"
#include "net/types.hpp"

namespace mars::baselines {

struct SpiderMonConfig {
  /// Static cumulative-queueing-delay trigger.
  sim::Time queue_delay_threshold = 5 * sim::kMillisecond;
  /// Wait-for edges older than this are ignored at diagnosis time.
  sim::Time window = 1 * sim::kSecond;
  /// Per-packet INT header bytes (cumulative latency only).
  std::uint32_t header_bytes = 4;
  /// Bytes per wait-for record a switch uploads on collection.
  std::uint32_t record_bytes = 12;
  std::size_t max_culprits = 20;
};

class SpiderMon final : public BaselineSystem {
 public:
  SpiderMon(std::size_t switch_count, SpiderMonConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "SpiderMon"; }
  [[nodiscard]] rca::CulpritList diagnose() override;
  [[nodiscard]] OverheadReport overheads() const override;
  [[nodiscard]] bool triggered() const override { return triggered_; }
  [[nodiscard]] sim::Time trigger_time() const { return trigger_time_; }

  // ---- PacketObserver ----
  void on_enqueue(net::SwitchContext& ctx, net::Packet& pkt, net::PortId out,
                  std::uint32_t queue_depth) override;
  void on_egress(net::SwitchContext& ctx, net::Packet& pkt, net::PortId out,
                 sim::Time hop_latency) override;
  void on_deliver(net::SwitchContext& ctx, net::Packet& pkt) override;
  void on_drop(net::SwitchContext& ctx, const net::Packet& pkt,
               net::PortId out) override;

 private:
  struct WaitForEdge {
    sim::Time when;
    net::FlowId waiter;
    net::FlowId holder;
    net::SwitchId at;
  };

  SpiderMonConfig config_;
  /// FIFO mirror of each (switch, port) queue, by flow.
  std::unordered_map<std::uint64_t, std::deque<net::FlowId>> queues_;
  /// Cumulative queueing delay carried in each in-flight packet's header.
  std::unordered_map<std::uint64_t, sim::Time> carried_delay_;
  std::vector<WaitForEdge> edges_;
  OverheadReport overheads_;
  bool triggered_ = false;
  sim::Time trigger_time_ = 0;
  std::size_t switch_count_;
};

}  // namespace mars::baselines
