#pragma once
// TelemetrySystem: the one interface every monitored system — MARS itself
// and the §5.4 comparison systems (SpiderMon, IntSight, SyNDB) — deploys
// behind. Trials create systems by registry name (mars/system_registry.hpp),
// run them over the same packets, and grade them identically: Table 1 and
// Fig. 9 code no longer special-cases MARS.
//
// Lifecycle: a factory constructs the system fully attached to the
// network (observers added, metrics registered); start() begins any
// control-plane activity before the simulation runs; diagnose() is called
// once after the run with the trial's DiagnosisQuery.

#include <cctype>
#include <optional>
#include <string>
#include <string_view>

#include "faults/injector.hpp"
#include "metrics/ranking.hpp"
#include "obs/registry.hpp"
#include "rca/types.hpp"
#include "sim/time.hpp"

namespace mars::control {
class ControlChannel;
}  // namespace mars::control

namespace mars::systems {

/// Byte accounting for Fig. 9.
struct OverheadReport {
  std::uint64_t telemetry_bytes = 0;  ///< in-band header bytes over links
  std::uint64_t diagnosis_bytes = 0;  ///< data-plane -> control-plane bytes
};

/// Everything a system may consult when producing its ranked culprits.
/// Self-triggering systems (MARS, SpiderMon, IntSight) ignore the hint;
/// query-based systems (SyNDB) need it — the paper's expert-knowledge
/// concession, flagged in Table 1.
struct DiagnosisQuery {
  /// Grade diagnoses at or after this time (first scheduled fault).
  sim::Time fault_start = 0;
  /// Simulation time when the query is made (end of run).
  sim::Time now = 0;
  /// Expert hint: the fault class to query for, when known.
  std::optional<faults::FaultKind> hint;
  /// End of the incident window the expert would examine.
  sim::Time incident_end = 0;
};

class TelemetrySystem {
 public:
  virtual ~TelemetrySystem() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Begin control-plane activity (polling). Called once, before the
  /// simulation runs. Data-plane-only systems need nothing here.
  virtual void start() {}

  /// Produce the ranked culprit list for this trial. Systems that never
  /// triggered return an empty list (the paper's "-" cells).
  [[nodiscard]] virtual rca::CulpritList diagnose(
      const DiagnosisQuery& query) = 0;

  [[nodiscard]] virtual OverheadReport overheads() const = 0;

  /// True once the system's own detection logic fired.
  [[nodiscard]] virtual bool triggered() const = 0;

  /// How much of the telemetry evidence behind this system's diagnoses
  /// actually arrived, in [0, 1]; 1 means no observed degradation.
  /// nullopt when the system never diagnosed anything (or does not model
  /// a degradable channel).
  [[nodiscard]] virtual std::optional<double> confidence() const {
    return std::nullopt;
  }

  /// Fraction of diagnosis windows this system's top suspect appeared in,
  /// in [0, 1] — below 1 signals an intermittent (gray) fault. nullopt
  /// when the system does not track multi-epoch evidence.
  [[nodiscard]] virtual std::optional<double> presence() const {
    return std::nullopt;
  }

  /// The degradable control channel this system reads telemetry through,
  /// if it models one (scheduled telemetry faults attach here). Default:
  /// none.
  [[nodiscard]] virtual control::ControlChannel* control_channel() {
    return nullptr;
  }

  /// How this system's culprits are graded against ground truth: MARS
  /// names causes and is held to them; systems that emit bare locations
  /// are graded on location only.
  [[nodiscard]] virtual metrics::MatchOptions match_options() const {
    return {.require_cause = false};
  }

  /// Export this system's overhead accounting as lazy gauges:
  ///   {lowercased name()}.telemetry_bytes / .diagnosis_bytes / .triggered
  /// so Fig. 9 reads every system from one registry. Gauges capture `this`;
  /// remove them (or snapshot) before the system is destroyed.
  virtual void register_metrics(obs::MetricsRegistry& registry) {
    std::string prefix;
    for (const char c : name()) {
      prefix.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    prefix.push_back('.');
    registry.gauge(prefix + "telemetry_bytes", [this] {
      return static_cast<double>(overheads().telemetry_bytes);
    });
    registry.gauge(prefix + "diagnosis_bytes", [this] {
      return static_cast<double>(overheads().diagnosis_bytes);
    });
    registry.gauge(prefix + "triggered",
                   [this] { return triggered() ? 1.0 : 0.0; });
  }
};

}  // namespace mars::systems
